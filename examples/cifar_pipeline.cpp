// Domain example 1: the full CIFAR-10 codesign pipeline, end to end.
//
// Mirrors the paper's Section 6 flow on the CIFAR benchmark:
//   float training -> range analysis -> Algorithm 1 (Phase 1 + Phase 2)
//   -> deployment image -> bit-accurate accelerator run -> hardware report.
//
// If the real CIFAR-10 binary batches are available (pass the directory as
// argv[1], e.g. ./cifar_pipeline /data/cifar-10-batches-bin), they are used;
// otherwise the synthetic CIFAR-like dataset stands in (see DESIGN.md).
// Artifacts: cifar_float.weights, cifar_mfdfp.weights, cifar_curves.csv.
#include <cstdio>

#include "core/converter.hpp"
#include "core/hw_eval.hpp"
#include "data/cifar10_loader.hpp"
#include "data/synthetic.hpp"
#include "hw/cycle_model.hpp"
#include "hw/executor.hpp"
#include "hw/qnet_io.hpp"
#include "nn/metrics.hpp"
#include "nn/serialize.hpp"
#include "nn/zoo.hpp"
#include "quant/memory.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace mfdfp;

  // ---------------------------------------------------------------- data
  data::DatasetPair dataset;
  std::size_t in_h = 16, in_w = 16;
  if (argc > 1) {
    if (auto real = data::load_cifar10(argv[1])) {
      dataset = std::move(*real);
      in_h = in_w = 32;
      std::printf("using real CIFAR-10 from %s (%zu train / %zu test)\n",
                  argv[1], dataset.train.size(), dataset.test.size());
    } else {
      std::printf("CIFAR-10 not found under %s; using synthetic data\n",
                  argv[1]);
    }
  }
  if (dataset.train.size() == 0) {
    dataset = data::make_synthetic(data::cifar_like_spec());
    std::printf("synthetic CIFAR-like dataset: %zu train / %zu test\n",
                dataset.train.size(), dataset.test.size());
  }

  // ------------------------------------------------------ float baseline
  util::Rng rng{42};
  nn::ZooConfig zoo;
  zoo.in_channels = 3;
  zoo.in_h = in_h;
  zoo.in_w = in_w;
  zoo.num_classes = dataset.train.num_classes;
  zoo.width_multiplier = 0.5f;
  nn::Network float_net = nn::make_cifar10_net(zoo, rng);

  core::FloatTrainConfig train_config;
  train_config.max_epochs = 12;
  train_config.verbose = true;
  core::train_float_network(float_net, dataset.train, dataset.test,
                            train_config);
  nn::save_weights(float_net, "cifar_float.weights");
  const nn::EvalResult float_eval =
      nn::evaluate(float_net, dataset.test.images, dataset.test.labels);
  std::printf("\nfloat baseline: top-1 %.2f%%\n", 100.0 * float_eval.top1);

  // --------------------------------------------- Algorithm 1 conversion
  core::ConverterConfig config;
  config.phase1_epochs = 6;
  config.phase2_epochs = 4;
  config.verbose = true;
  core::MfDfpConverter converter(config);
  core::ConversionResult converted =
      converter.convert(float_net, dataset.train, dataset.test);
  nn::save_weights(converted.network, "cifar_mfdfp.weights");

  util::CsvWriter curves({"epoch", "phase", "val_error"});
  std::size_t epoch = 0;
  for (float e : converted.curves.phase1_error) {
    curves.add_row({std::to_string(epoch++), "1", util::fmt_fixed(e, 5)});
  }
  for (float e : converted.curves.phase2_error) {
    curves.add_row({std::to_string(epoch++), "2", util::fmt_fixed(e, 5)});
  }
  curves.write_file("cifar_curves.csv");

  std::printf("\nMF-DFP: top-1 %.2f%% (float %.2f%%, gap %+.2f pts)\n",
              100.0 * (1.0 - converted.final_error), 100.0 * float_eval.top1,
              100.0 * (float_eval.top1 - 1.0 + converted.final_error));
  std::printf("per-layer formats: %s\n", converted.spec.to_string().c_str());

  // ----------------------------------------------- deployment + hardware
  const hw::QNetDesc qnet =
      hw::extract_qnet(converted.network, converted.spec, "cifar-mfdfp");
  hw::save_qnet(qnet, "cifar_mfdfp.image");  // flashable deployment image
  const hw::AcceleratorExecutor executor(hw::load_qnet("cifar_mfdfp.image"));
  const tensor::Tensor sample =
      tensor::slice_outer(dataset.test.images, 0, 64);
  const float diff = tensor::max_abs_diff(
      executor.run(sample),
      converted.network.forward(
          quant::quantize_input(converted.spec, sample), nn::Mode::kEval));
  std::printf("\naccelerator bit-exactness on 64 images: max|diff| = %g\n",
              diff);

  // Full-test-set accuracy through the compiled batched hardware path —
  // bit-identical to the software MF-DFP number above by construction.
  const nn::EvalResult hw_eval = core::evaluate_qnets_compiled(
      std::span<const hw::QNetDesc>(&qnet, 1), dataset.test.images,
      dataset.test.labels);
  std::printf("compiled hardware eval over %zu test images: top-1 %.2f%% "
              "(software MF-DFP %.2f%%)\n",
              hw_eval.sample_count, 100.0 * hw_eval.top1,
              100.0 * (1.0 - converted.final_error));

  const auto work = hw::workload_from_qnet(qnet, 3, in_h, in_w);
  const hw::AcceleratorConfig mf = hw::mfdfp_config(1);
  const hw::AcceleratorConfig fp = hw::float_baseline_config();
  const hw::CycleReport mf_cycles = hw::count_cycles(work, mf);
  const hw::CycleReport fp_cycles = hw::count_cycles(work, fp);
  std::printf("latency %.2f us, energy %.2f uJ (float: %.2f us, %.2f uJ) -> "
              "%.1f%% energy saved\n",
              mf_cycles.microseconds(mf), hw::energy_uj(mf_cycles, mf),
              fp_cycles.microseconds(fp), hw::energy_uj(fp_cycles, fp),
              100.0 * hw::saving(hw::energy_uj(fp_cycles, fp),
                                 hw::energy_uj(mf_cycles, mf)));
  std::printf("deployment image: %zu parameter bytes (%.2fx smaller than "
              "float)\n",
              qnet.parameter_bytes(),
              quant::memory_report(converted.network).compression());
  std::printf("\nartifacts: cifar_float.weights, cifar_mfdfp.weights, "
              "cifar_mfdfp.image, cifar_curves.csv\n");
  return 0;
}
