// Serving demo: two MF-DFP models behind one ModelServer, under mixed
// Poisson traffic, with a heterogeneous device placement.
//
// End-to-end: train two float networks, convert each with Algorithm 1
// (Phase 3 ensemble), extract the per-member deployment images, and deploy
// them twice on one serve::ModelServer — the full averaged-logit ensemble as
// "ensemble", placed on two differently-provisioned accelerator devices
// (DeployConfig.placement: a 1x "npu-base" and a 2x "npu-fast", so
// normalized-work routing sends the fast device ~2x the traffic), and its
// first member alone as "single" — then drive both with open-loop Poisson
// arrivals mixing priority classes: kInteractive probes with a tight SLO
// and kBatch bulk traffic that admission control may shed under overload.
// Prints the per-model ServerStats tables: tail latency per priority class,
// batch-size mix, queue depth, sheds/timeouts, the simulated accelerator
// busy time / DMA traffic of the served load, and the per-device
// utilization rows of the heterogeneous deployment.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/ensemble.hpp"
#include "data/synthetic.hpp"
#include "hw/cost_model.hpp"
#include "nn/zoo.hpp"
#include "serve/server.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"

int main() {
  using namespace mfdfp;
  util::set_log_level(util::LogLevel::kWarn);

  // 1. Train + convert a 2-member ensemble (reduced scale for demo speed).
  data::SyntheticSpec spec = data::cifar_like_spec();
  spec.train_count = 400;
  spec.test_count = 160;
  const data::DatasetPair dataset = data::make_synthetic(spec);

  nn::ZooConfig zoo;
  zoo.in_channels = spec.channels;
  zoo.in_h = spec.height;
  zoo.in_w = spec.width;
  zoo.num_classes = spec.num_classes;
  zoo.width_multiplier = 0.25f;

  core::FloatNetFactory factory = [&](std::size_t member) {
    util::Rng rng{300 + member * 17};
    nn::Network net = nn::make_cifar10_net(zoo, rng);
    core::FloatTrainConfig config;
    config.max_epochs = 6;
    config.seed = 300 + member;
    core::train_float_network(net, dataset.train, dataset.test, config);
    return net;
  };
  core::EnsembleConfig ensemble_config;
  ensemble_config.member_count = 2;
  ensemble_config.converter.phase1_epochs = 2;
  ensemble_config.converter.phase2_epochs = 2;
  std::printf("training + converting a 2-member MF-DFP ensemble...\n");
  core::EnsembleResult ensemble = core::EnsembleBuilder(ensemble_config)
                                      .build(factory, dataset.train,
                                             dataset.test);

  // 2. Deploy both models on one server: the averaged-logit ensemble (one
  //    simulated PU per member) on a heterogeneous two-device placement,
  //    and its first member as a cheaper single-device variant.
  std::vector<hw::QNetDesc> members =
      core::extract_member_qnets(ensemble, "demo");
  serve::DeployConfig config;
  config.in_c = spec.channels;
  config.in_h = spec.height;
  config.in_w = spec.width;
  config.max_batch = 8;
  config.max_wait_us = 3000;
  config.workers = 4;
  config.default_deadline_us = 200'000;  // 200 ms SLO
  config.accel = hw::mfdfp_config(ensemble_config.member_count);
  // Placement: one baseline device plus a 2x-provisioned one behind the
  // same name. Normalized-work routing balances outstanding *time*, so
  // whenever requests queue, "npu-fast" absorbs roughly twice the traffic
  // of "npu-base" (an idle set ties and spreads round-robin instead).
  serve::DeviceSpec base_device, fast_device;
  base_device.name = "npu-base";
  fast_device.name = "npu-fast";
  fast_device.speed_factor = 2.0;
  config.placement = {base_device, fast_device};

  serve::ModelServer server;
  serve::DeployConfig single_config = config;
  single_config.accel = hw::mfdfp_config(1);
  single_config.placement.clear();  // one replica on the default device
  server.deploy("single", {members.front()}, single_config);
  server.deploy("ensemble", std::move(members), config);
  for (const serve::ModelHandle& handle : server.models()) {
    const auto set = server.replica_set(handle.name);
    std::printf("deployed \"%s\" v%u: %zu member(s), %zu device(s) "
                "[total speed %.1fx], batch <= %zu\n",
                handle.name.c_str(), handle.version,
                set->replica(0)->member_count(), set->replica_count(),
                set->total_speed(), config.max_batch);
    for (std::size_t r = 0; r < set->replica_count(); ++r) {
      const serve::DeviceSpec& device = set->device(r);
      std::printf("  replica %zu -> device \"%s\" (%.1fx)\n", r,
                  device.name.c_str(), device.speed_factor);
    }
  }

  // 3. Open-loop Poisson traffic over the test set: 75% kBatch bulk to the
  //    ensemble, 25% kInteractive probes alternating between both models.
  constexpr double kArrivalRps = 300.0;
  const std::size_t total = dataset.test.images.shape().n();
  std::printf("replaying %zu test images as Poisson arrivals at %.0f req/s "
              "(mixed models + priorities)...\n\n", total, kArrivalRps);
  util::Rng arrivals{11};
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    const double gap_s = -std::log(1.0 - arrivals.uniform()) / kArrivalRps;
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<std::int64_t>(gap_s * 1e6)));
    serve::SubmitOptions options;
    options.priority = i % 4 == 0 ? serve::Priority::kInteractive
                                  : serve::Priority::kBatch;
    const std::string model =
        options.priority == serve::Priority::kInteractive && i % 8 == 0
            ? "single"
            : "ensemble";
    futures.push_back(server.submit(
        model, tensor::slice_outer(dataset.test.images, i, i + 1),
        options));
  }

  std::size_t correct = 0, served = 0, shed = 0, timed_out = 0;
  std::map<std::string, std::size_t> served_by_device;
  for (std::size_t i = 0; i < total; ++i) {
    const serve::Response response = futures[i].get();
    if (response.status == serve::StatusCode::kShedded) ++shed;
    if (response.status == serve::StatusCode::kDeadlineExceeded) ++timed_out;
    if (!serve::ok(response.status)) continue;
    ++served;
    ++served_by_device[response.device];
    if (response.predicted_class == dataset.test.labels[i]) ++correct;
  }

  // 4. Report per model — the "ensemble" tables include the per-device
  //    utilization rows of its heterogeneous placement — then shut down.
  std::printf("%s\n\n", server.stats_table("ensemble").c_str());
  std::printf("%s\n\n", server.stats_table("single").c_str());
  std::printf("served %zu/%zu requests (%zu shed, %zu timed out), "
              "top-1 %.2f%%\n", served, total, shed, timed_out,
              served == 0 ? 0.0 : 100.0 * static_cast<double>(correct) /
                                      static_cast<double>(served));
  for (const auto& [device, count] : served_by_device) {
    std::printf("  device \"%s\" served %zu\n", device.c_str(), count);
  }
  server.shutdown();
  return 0;
}
