// Serving demo: three MF-DFP models behind one ModelServer, under mixed
// Poisson traffic, with heterogeneous and shared device placements.
//
// End-to-end: train two float networks, convert each with Algorithm 1
// (Phase 3 ensemble), extract the per-member deployment images, and deploy
// them on one serve::ModelServer — the full averaged-logit ensemble as
// "ensemble", placed on two differently-provisioned accelerator devices
// (DeployConfig.placement: a 1x "npu-base" and a 2x "npu-fast", so
// normalized-work routing sends the fast device ~2x the traffic), and its
// first member twice, as "single" and "canary", both *tenants of one
// shared PU* ("edge-pu", serve::SharedDevice: cross-model co-batching,
// weight-reload pricing, central pacing off for demo speed) — then drive
// everything with open-loop Poisson arrivals mixing priority classes:
// kInteractive probes with a tight SLO and kBatch bulk traffic that
// admission control may shed under overload. Prints the per-model
// ServerStats tables (tail latency per priority class, batch-size mix,
// queue depth, sheds/timeouts, simulated accelerator busy time / DMA,
// per-device utilization rows) and the shared PU's cross-model tenant
// table. The traffic phase runs with request-lifecycle tracing enabled
// (docs/observability.md): the demo writes the whole run as
// bench-out/serving_demo_trace.json — load it at
// https://ui.perfetto.dev — and
// finishes with the ensemble's per-layer profile table and the server's
// Prometheus metrics dump.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <future>
#include <system_error>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/ensemble.hpp"
#include "data/synthetic.hpp"
#include "hw/cost_model.hpp"
#include "hw/layer_profile.hpp"
#include "nn/zoo.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "serve/shared_device.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"

int main() {
  using namespace mfdfp;
  util::set_log_level(util::LogLevel::kWarn);

  // 1. Train + convert a 2-member ensemble (reduced scale for demo speed).
  data::SyntheticSpec spec = data::cifar_like_spec();
  spec.train_count = 400;
  spec.test_count = 160;
  const data::DatasetPair dataset = data::make_synthetic(spec);

  nn::ZooConfig zoo;
  zoo.in_channels = spec.channels;
  zoo.in_h = spec.height;
  zoo.in_w = spec.width;
  zoo.num_classes = spec.num_classes;
  zoo.width_multiplier = 0.25f;

  core::FloatNetFactory factory = [&](std::size_t member) {
    util::Rng rng{300 + member * 17};
    nn::Network net = nn::make_cifar10_net(zoo, rng);
    core::FloatTrainConfig config;
    config.max_epochs = 6;
    config.seed = 300 + member;
    core::train_float_network(net, dataset.train, dataset.test, config);
    return net;
  };
  core::EnsembleConfig ensemble_config;
  ensemble_config.member_count = 2;
  ensemble_config.converter.phase1_epochs = 2;
  ensemble_config.converter.phase2_epochs = 2;
  std::printf("training + converting a 2-member MF-DFP ensemble...\n");
  core::EnsembleResult ensemble = core::EnsembleBuilder(ensemble_config)
                                      .build(factory, dataset.train,
                                             dataset.test);

  // 2. Deploy both models on one server: the averaged-logit ensemble (one
  //    simulated PU per member) on a heterogeneous two-device placement,
  //    and its first member as a cheaper single-device variant.
  std::vector<hw::QNetDesc> members =
      core::extract_member_qnets(ensemble, "demo");
  serve::DeployConfig config;
  config.in_c = spec.channels;
  config.in_h = spec.height;
  config.in_w = spec.width;
  config.max_batch = 8;
  config.max_wait_us = 3000;
  config.workers = 4;
  config.default_deadline_us = 200'000;  // 200 ms SLO
  config.accel = hw::mfdfp_config(ensemble_config.member_count);
  // Declare the traffic each deployment is sized for: deploy() runs the
  // capacity analyzer (analysis/capacity.hpp) over the declared envelope
  // and the placement's static facts, proving the 200 ms SLO is
  // schedulable before a single request arrives. warn_only keeps the demo
  // running (with a logged report) if a bound is ever violated instead of
  // refusing the deploy; the proven bounds print beside the measured
  // stats below.
  config.envelope.arrival_rps = 260.0;          // ~7/8 of the 300 rps mix
  config.envelope.interactive_fraction = 0.25;  // 1-in-4 probes
  config.envelope.interactive_burst = 8;
  config.envelope.interactive_deadline_us = 200'000;
  config.envelope.batch_deadline_us = 200'000;
  config.envelope.warn_only = true;
  // Placement: one baseline device plus a 2x-provisioned one behind the
  // same name. Normalized-work routing balances outstanding *time*, so
  // whenever requests queue, "npu-fast" absorbs roughly twice the traffic
  // of "npu-base" (an idle set ties and spreads round-robin instead).
  serve::DeviceSpec base_device, fast_device;
  base_device.name = "npu-base";
  fast_device.name = "npu-fast";
  fast_device.speed_factor = 2.0;
  config.placement = {base_device, fast_device};

  serve::ModelServer server;
  // "single" and "canary" are two deployments of the same member network,
  // co-located as tenants of one shared PU: they contend for — and
  // co-batch on — the same device's cycles (unpaced for demo speed).
  serve::DeviceSpec edge_spec;
  edge_spec.name = "edge-pu";
  serve::SharedDeviceConfig edge_config;
  edge_config.paced = false;
  auto edge_pu = serve::SharedDevice::create(edge_spec, edge_config);
  serve::DeployConfig single_config = config;
  single_config.accel = hw::mfdfp_config(1);
  single_config.placement = {serve::DeviceSpec::on(edge_pu)};
  // Each shared-PU tenant takes every 8th interactive probe; the analyzer
  // prices their mutual blocking on "edge-pu" from these declarations.
  single_config.envelope.arrival_rps = 40.0;
  single_config.envelope.interactive_fraction = 1.0;
  server.deploy("single", {members.front()}, single_config);
  server.deploy("canary", {members.front()}, single_config);
  server.deploy("ensemble", std::move(members), config);
  for (const serve::ModelHandle& handle : server.models()) {
    const auto set = server.replica_set(handle.name);
    std::printf("deployed \"%s\" v%u: %zu member(s), %zu device(s) "
                "[total speed %.1fx], batch <= %zu\n",
                handle.name.c_str(), handle.version,
                set->replica(0)->member_count(), set->replica_count(),
                set->total_speed(), config.max_batch);
    for (std::size_t r = 0; r < set->replica_count(); ++r) {
      const serve::DeviceSpec& device = set->device(r);
      std::printf("  replica %zu -> device \"%s\" (%.1fx)\n", r,
                  device.name.c_str(), device.speed_factor);
    }
  }

  // 3. Open-loop Poisson traffic over the test set: 75% kBatch bulk to the
  //    ensemble, 25% kInteractive probes alternating between both models.
  //    Trace the whole phase: every queue wait, device pass, shared-PU
  //    co-batch, and admission decision lands in the ring buffers.
  obs::trace().set_enabled(true);
  constexpr double kArrivalRps = 300.0;
  const std::size_t total = dataset.test.images.shape().n();
  std::printf("replaying %zu test images as Poisson arrivals at %.0f req/s "
              "(mixed models + priorities)...\n\n", total, kArrivalRps);
  util::Rng arrivals{11};
  // Mirrored probes go to the shared-PU pair; the predicate is shared by
  // the submit and gather loops so primary_class[] and shadows[] stay
  // index-aligned. Every mirrored index is interactive (8 is a multiple
  // of the 1-in-4 interactive cadence below).
  const auto is_mirrored = [](std::size_t i) { return i % 8 == 0; };
  std::vector<std::future<serve::Response>> futures, shadows;
  futures.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    const double gap_s = -std::log(1.0 - arrivals.uniform()) / kArrivalRps;
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<std::int64_t>(gap_s * 1e6)));
    serve::SubmitOptions options;
    options.priority = i % 4 == 0 ? serve::Priority::kInteractive
                                  : serve::Priority::kBatch;
    // Every 8th interactive probe goes to the shared-PU "single" model,
    // with the same sample mirrored to "canary" — a canary deployment
    // shadowing live traffic. The two sub-batches land on "edge-pu"
    // together, so the device's coalesce window co-batches the pair into
    // one cross-model pass (visible as "co-batched passes" below).
    const bool edge = is_mirrored(i);
    const std::string model = edge ? "single" : "ensemble";
    futures.push_back(server.submit(
        model, tensor::slice_outer(dataset.test.images, i, i + 1),
        options));
    if (edge) {
      shadows.push_back(server.submit(
          "canary", tensor::slice_outer(dataset.test.images, i, i + 1),
          options));
    }
  }

  std::size_t correct = 0, served = 0, shed = 0, timed_out = 0;
  std::size_t shadow_agree = 0;
  std::vector<int> primary_class;  // "single"'s prediction per mirrored probe
  std::map<std::string, std::size_t> served_by_device;
  for (std::size_t i = 0; i < total; ++i) {
    const serve::Response response = futures[i].get();
    if (is_mirrored(i)) {
      primary_class.push_back(
          serve::ok(response.status) ? response.predicted_class : -2);
    }
    if (response.status == serve::StatusCode::kShedded) ++shed;
    if (response.status == serve::StatusCode::kDeadlineExceeded) ++timed_out;
    if (!serve::ok(response.status)) continue;
    ++served;
    ++served_by_device[response.device];
    if (response.predicted_class == dataset.test.labels[i]) ++correct;
  }
  // The canary verifies outputs, not just liveness: over probe pairs where
  // *both* sides were served, predictions must match (same member network,
  // bit-accurate execution — disagreement means a broken rollout). Pairs
  // with a shed/expired side verify nothing and are reported separately.
  std::size_t shadow_pairs = 0;
  for (std::size_t s = 0; s < shadows.size(); ++s) {
    const serve::Response response = shadows[s].get();
    if (!serve::ok(response.status) || primary_class[s] == -2) continue;
    ++shadow_pairs;
    if (response.predicted_class == primary_class[s]) ++shadow_agree;
  }

  // 4. Export the trace (the rings hold the most recent window of the
  //    traffic phase) and stop recording.
  obs::trace().set_enabled(false);
  const obs::TraceRecorder::Stats trace_stats = obs::trace().stats();
  // Artifacts land in the gitignored bench-out/, never the repo root.
  std::error_code trace_dir_ec;
  std::filesystem::create_directories("bench-out", trace_dir_ec);
  const char* trace_path = "bench-out/serving_demo_trace.json";
  if (!trace_dir_ec && obs::trace().write_chrome_json(trace_path)) {
    std::printf("\nwrote %s (%llu events recorded across %zu threads, "
                "%llu overwritten) — load it at https://ui.perfetto.dev\n",
                trace_path,
                static_cast<unsigned long long>(trace_stats.recorded),
                trace_stats.threads,
                static_cast<unsigned long long>(trace_stats.dropped));
  }

  // 5. Report per model — the "ensemble" tables include the per-device
  //    utilization rows of its heterogeneous placement, and the shared PU
  //    prints its own cross-model tenant table. The per-layer profiles
  //    (one per ensemble member) break the modeled cycles, DMA, and
  //    datapath occupancy down by layer; their cycle totals reconcile
  //    bit-exactly with the cycle model the serving costs are priced on.
  std::printf("%s\n\n", server.stats_table("ensemble").c_str());
  const std::vector<hw::LayerProfile> profiles =
      server.engine("ensemble")->layer_profiles();
  for (std::size_t m = 0; m < profiles.size(); ++m) {
    std::printf("%s\n\n",
                hw::render_layer_profile_table(
                    profiles[m], "ensemble member " + std::to_string(m))
                    .c_str());
  }
  std::printf("%s\n\n", server.stats_table("single").c_str());
  std::printf("%s\n\n", edge_pu->stats_table("demo").c_str());
  // The deploy-time proofs next to the measured tails they bound: every
  // row is a static worst case derived from the declared envelopes — the
  // measured p99s above must sit at or under the interactive bounds here.
  const analysis::CapacityReport capacity = server.capacity_report();
  std::printf("%s%s\n\n",
              capacity.table("deploy-time capacity analysis "
                             "(static bounds vs declared envelopes)")
                  .c_str(),
              capacity.summary().c_str());
  std::printf("served %zu/%zu requests (%zu shed, %zu timed out), "
              "top-1 %.2f%%; canary agreed on %zu/%zu served probe pairs "
              "(%zu unserved)\n",
              served, total, shed, timed_out,
              served == 0 ? 0.0 : 100.0 * static_cast<double>(correct) /
                                      static_cast<double>(served),
              shadow_agree, shadow_pairs, shadows.size() - shadow_pairs);
  for (const auto& [device, count] : served_by_device) {
    std::printf("  device \"%s\" served %zu\n", device.c_str(), count);
  }

  // 6. The same observations, scrape-shaped: the whole server as one
  //    Prometheus text dump (series reference in docs/observability.md).
  std::printf("\n--- export_metrics() ---\n%s",
              server.export_metrics().c_str());
  server.shutdown();
  return 0;
}
