// Serving demo: an MF-DFP ensemble behind the inference engine, under
// Poisson traffic.
//
// End-to-end: train two float networks, convert each with Algorithm 1
// (Phase 3 ensemble), extract the per-member deployment images, deploy them
// in a serve::InferenceEngine (one simulated processing unit per member,
// logits averaged on the engine), and drive it with open-loop Poisson
// arrivals — the traffic shape a production endpoint sees. Prints the
// ServerStats tables: tail latency, batch-size mix, queue depth, and the
// simulated accelerator busy time / DMA traffic of the served load.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "core/ensemble.hpp"
#include "data/synthetic.hpp"
#include "hw/cost_model.hpp"
#include "nn/zoo.hpp"
#include "serve/engine.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"

int main() {
  using namespace mfdfp;
  util::set_log_level(util::LogLevel::kWarn);

  // 1. Train + convert a 2-member ensemble (reduced scale for demo speed).
  data::SyntheticSpec spec = data::cifar_like_spec();
  spec.train_count = 400;
  spec.test_count = 160;
  const data::DatasetPair dataset = data::make_synthetic(spec);

  nn::ZooConfig zoo;
  zoo.in_channels = spec.channels;
  zoo.in_h = spec.height;
  zoo.in_w = spec.width;
  zoo.num_classes = spec.num_classes;
  zoo.width_multiplier = 0.25f;

  core::FloatNetFactory factory = [&](std::size_t member) {
    util::Rng rng{300 + member * 17};
    nn::Network net = nn::make_cifar10_net(zoo, rng);
    core::FloatTrainConfig config;
    config.max_epochs = 6;
    config.seed = 300 + member;
    core::train_float_network(net, dataset.train, dataset.test, config);
    return net;
  };
  core::EnsembleConfig ensemble_config;
  ensemble_config.member_count = 2;
  ensemble_config.converter.phase1_epochs = 2;
  ensemble_config.converter.phase2_epochs = 2;
  std::printf("training + converting a 2-member MF-DFP ensemble...\n");
  core::EnsembleResult ensemble = core::EnsembleBuilder(ensemble_config)
                                      .build(factory, dataset.train,
                                             dataset.test);

  // 2. Deploy on the serving engine: one PU per member, logits averaged.
  serve::EngineConfig engine_config;
  engine_config.in_c = spec.channels;
  engine_config.in_h = spec.height;
  engine_config.in_w = spec.width;
  engine_config.max_batch = 8;
  engine_config.max_wait_us = 3000;
  engine_config.workers = 4;
  engine_config.default_deadline_us = 200'000;  // 200 ms SLO
  engine_config.accel = hw::mfdfp_config(ensemble_config.member_count);
  serve::InferenceEngine engine(
      core::extract_member_qnets(ensemble, "demo"), engine_config);
  std::printf("engine up: %zu members, %zu workers, batch <= %zu\n",
              engine.member_count(), engine_config.workers,
              engine_config.max_batch);

  // 3. Open-loop Poisson traffic over the test set.
  constexpr double kArrivalRps = 300.0;
  const std::size_t total = dataset.test.images.shape().n();
  std::printf("replaying %zu test images as Poisson arrivals at %.0f req/s"
              "...\n\n", total, kArrivalRps);
  engine.stats().clear();
  util::Rng arrivals{11};
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    const double gap_s = -std::log(1.0 - arrivals.uniform()) / kArrivalRps;
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<std::int64_t>(gap_s * 1e6)));
    futures.push_back(
        engine.submit(tensor::slice_outer(dataset.test.images, i, i + 1)));
  }

  std::size_t correct = 0, ok = 0;
  for (std::size_t i = 0; i < total; ++i) {
    const serve::Response response = futures[i].get();
    if (!response.ok) continue;
    ++ok;
    if (response.predicted_class == dataset.test.labels[i]) ++correct;
  }
  engine.stop();

  // 4. Report.
  std::printf("%s\n\n", engine.stats().to_table("serving demo").c_str());
  std::printf("served %zu/%zu requests, ensemble top-1 %.2f%%\n", ok, total,
              ok == 0 ? 0.0 : 100.0 * static_cast<double>(correct) /
                                  static_cast<double>(ok));
  return 0;
}
