// Domain example 2: Phase 3 — can an ensemble of cheap MF-DFP networks beat
// the floating-point network it came from?
//
// The paper's headline claim (Section 4.3 / Table 2): two MF-DFP networks
// run on two processing units deliver *better* accuracy than the float
// baseline while still saving ~80% energy. This example trains M
// independent float networks, converts each with Algorithm 1, and sweeps
// the ensemble size, printing accuracy and the hardware cost of each point.
#include <cstdio>

#include "core/ensemble.hpp"
#include "data/synthetic.hpp"
#include "hw/cycle_model.hpp"
#include "nn/metrics.hpp"
#include "nn/zoo.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

int main() {
  using namespace mfdfp;
  util::set_log_level(util::LogLevel::kWarn);

  const data::SyntheticSpec spec = data::cifar_like_spec();
  const data::DatasetPair dataset = data::make_synthetic(spec);

  nn::ZooConfig zoo;
  zoo.in_channels = spec.channels;
  zoo.in_h = spec.height;
  zoo.in_w = spec.width;
  zoo.num_classes = spec.num_classes;
  zoo.width_multiplier = 0.5f;

  // Independent float baselines (different init + shuffle seeds).
  constexpr std::size_t kMaxMembers = 3;
  std::printf("training %zu independent float networks...\n", kMaxMembers);
  core::FloatNetFactory factory = [&](std::size_t member) {
    util::Rng rng{100 + member * 17};
    nn::Network net = nn::make_cifar10_net(zoo, rng);
    core::FloatTrainConfig config;
    config.max_epochs = 12;
    config.seed = 100 + member;
    core::train_float_network(net, dataset.train, dataset.test, config);
    return net;
  };

  core::EnsembleConfig config;
  config.member_count = kMaxMembers;
  config.converter.phase1_epochs = 6;
  config.converter.phase2_epochs = 4;
  core::EnsembleBuilder builder(config);
  core::EnsembleResult ensemble =
      builder.build(factory, dataset.train, dataset.test);

  // Float reference = best single float baseline error observed during
  // conversion (each member recorded its teacher's error).
  double float_top1 = 0.0;
  for (const auto& member : ensemble.members) {
    float_top1 = std::max(float_top1,
                          1.0 - static_cast<double>(
                                    member.curves.float_error));
  }

  util::TablePrinter table("Ensemble sweep (CIFAR-like benchmark)");
  table.set_header({"Design", "Top-1 (%)", "PUs", "Power (mW)",
                    "Energy saving (%)"});
  table.add_row({"Floating-point", util::fmt_percent(float_top1), "1",
                 util::fmt_fixed(
                     hw::cost_model(hw::float_baseline_config())
                         .total_power_mw(), 2),
                 "0.00"});

  const double fp_power =
      hw::cost_model(hw::float_baseline_config()).total_power_mw();
  const tensor::Tensor qtest = quant::quantize_input(
      ensemble.members.front().spec, dataset.test.images);
  for (std::size_t m = 1; m <= kMaxMembers; ++m) {
    std::vector<nn::Network*> members;
    for (std::size_t i = 0; i < m; ++i) {
      members.push_back(&ensemble.members[i].network);
    }
    const nn::EvalResult eval =
        nn::evaluate_ensemble(members, qtest, dataset.test.labels);
    const double power =
        hw::cost_model(hw::mfdfp_config(m)).total_power_mw();
    table.add_row({"MF-DFP x" + std::to_string(m),
                   util::fmt_percent(eval.top1), std::to_string(m),
                   util::fmt_fixed(power, 2),
                   util::fmt_percent(hw::saving(fp_power, power))});
  }
  table.print();
  std::printf(
      "\npaper shape: the 2-member ensemble beats the float baseline while "
      "saving ~80%% energy.\n");
  return 0;
}
