// Domain example 3: architectural exploration of the accelerator with the
// cost + cycle models (the design-space sweep the paper declares out of
// scope in Section 5 — "altering number of hardware neurons and synapses" —
// which the block-level model makes cheap to explore).
//
// Sweeps processing-unit count and synapse width for both precisions on the
// paper-scale workloads, reporting area, power, latency, energy, and an
// energy-delay product, so a designer can pick an operating point.
#include <cstdio>

#include "hw/cycle_model.hpp"
#include "util/table.hpp"

int main() {
  using namespace mfdfp;

  const auto workloads = {
      std::pair{"cuda-convnet CIFAR-10", hw::paper_cifar10_workload()},
      std::pair{"AlexNet ImageNet", hw::paper_imagenet_workload()},
  };

  for (const auto& [name, work] : workloads) {
    util::TablePrinter table(std::string("Design space: ") + name);
    table.set_header({"Design", "Area (mm2)", "Power (mW)", "Time (us)",
                      "Energy (uJ)", "EDP (uJ*ms)"});

    auto add = [&](const std::string& label,
                   const hw::AcceleratorConfig& config) {
      const hw::CostBreakdown cost = hw::cost_model(config);
      const hw::CycleReport cycles = hw::count_cycles(work, config);
      const double time_us = cycles.microseconds(config);
      const double energy = hw::energy_uj(cycles, config);
      table.add_row({label, util::fmt_fixed(cost.total_area_mm2(), 2),
                     util::fmt_fixed(cost.total_power_mw(), 2),
                     util::fmt_fixed(time_us, 2),
                     util::fmt_fixed(energy, 2),
                     util::fmt_fixed(energy * time_us / 1000.0, 3)});
    };

    add("FP32 16n/16s", hw::float_baseline_config());
    for (std::size_t pus : {1, 2, 4}) {
      add("MF-DFP x" + std::to_string(pus) + "PU", hw::mfdfp_config(pus));
    }
    // Wider datapath variants: more synapses per neuron shorten conv layers
    // with large patches but inflate the adder tree and buffers.
    for (std::size_t synapses : {32, 64}) {
      hw::AcceleratorConfig wide = hw::mfdfp_config(1);
      wide.synapses_per_neuron = synapses;
      wide.weight_buffer_entries *= synapses / 16;
      wide.input_buffer_entries *= synapses / 16;
      add("MF-DFP 16n/" + std::to_string(synapses) + "s", wide);
    }
    // More neurons: parallel output channels.
    hw::AcceleratorConfig tall = hw::mfdfp_config(1);
    tall.neurons_per_pu = 32;
    tall.output_buffer_entries *= 2;
    add("MF-DFP 32n/16s", tall);

    table.print();
    std::printf("\n");
  }

  std::printf(
      "notes: FP32 row = paper baseline; MF-DFP x1 = paper design; larger "
      "PU counts model\nensembles (throughput), wider rows trade adder-tree "
      "area against fewer tiles per output.\nEDP = energy-delay product "
      "(lower is better for balanced designs).\n");
  return 0;
}
