// Quickstart: float training -> MF-DFP conversion -> accelerator deployment.
//
// Walks the full public API on a small synthetic dataset in about a minute:
//  1. generate data, build the CIFAR-style network, train it in float;
//  2. convert to a multiplier-free dynamic fixed-point network (Algorithm 1);
//  3. extract the deployment image, run it bit-accurately on the simulated
//     accelerator, and compare accuracy, latency, energy, and memory.
#include <cstdio>

#include "core/converter.hpp"
#include "core/report.hpp"
#include "data/synthetic.hpp"
#include "hw/cycle_model.hpp"
#include "hw/executor.hpp"
#include "nn/metrics.hpp"
#include "nn/zoo.hpp"
#include "quant/memory.hpp"
#include "util/stopwatch.hpp"

int main() {
  using namespace mfdfp;

  // 1. Data + float baseline --------------------------------------------
  data::SyntheticSpec spec = data::cifar_like_spec();
  spec.train_count = 600;
  spec.test_count = 200;
  const data::DatasetPair dataset = data::make_synthetic(spec);

  util::Rng rng{1};
  nn::ZooConfig zoo;
  zoo.in_channels = spec.channels;
  zoo.in_h = spec.height;
  zoo.in_w = spec.width;
  zoo.num_classes = spec.num_classes;
  zoo.width_multiplier = 0.25f;
  nn::Network float_net = nn::make_cifar10_net(zoo, rng);

  core::FloatTrainConfig train_config;
  train_config.max_epochs = 8;
  train_config.verbose = true;
  util::Stopwatch watch;
  core::train_float_network(float_net, dataset.train, dataset.test,
                            train_config);
  const nn::EvalResult float_eval =
      nn::evaluate(float_net, dataset.test.images, dataset.test.labels);
  std::printf("float net:  top-1 %.2f%%  (trained in %.1fs)\n",
              100.0 * float_eval.top1, watch.seconds());

  // 2. MF-DFP conversion (Algorithm 1) ----------------------------------
  core::ConverterConfig conv_config;
  conv_config.phase1_epochs = 4;
  conv_config.phase2_epochs = 3;
  conv_config.verbose = true;
  core::MfDfpConverter converter(conv_config);
  core::ConversionResult converted =
      converter.convert(float_net, dataset.train, dataset.test);
  std::printf("mf-dfp net: top-1 %.2f%%  (float was %.2f%%)\n",
              100.0 * (1.0 - converted.final_error),
              100.0 * (1.0 - converted.curves.float_error));
  core::ReportOptions report_options;
  report_options.in_c = spec.channels;
  report_options.in_h = spec.height;
  report_options.in_w = spec.width;
  std::printf("%s", core::conversion_report(converted,
                                            report_options).c_str());

  // 3. Deployment on the simulated accelerator --------------------------
  const hw::QNetDesc qnet =
      hw::extract_qnet(converted.network, converted.spec, "quickstart");
  const hw::AcceleratorExecutor executor(qnet);
  const tensor::Tensor sample =
      tensor::slice_outer(dataset.test.images, 0, 32);
  const tensor::Tensor hw_logits = executor.run(sample);
  const tensor::Tensor sw_logits = converted.network.forward(
      quant::quantize_input(converted.spec, sample), nn::Mode::kEval);
  std::printf("hw-vs-sw logit max|diff| on 32 images: %g (expect 0)\n",
              tensor::max_abs_diff(hw_logits, sw_logits));

  const hw::AcceleratorConfig mf = hw::mfdfp_config();
  const hw::AcceleratorConfig fp = hw::float_baseline_config();
  const auto work = hw::workload_from_qnet(qnet, spec.channels, spec.height,
                                           spec.width);
  const hw::CycleReport mf_cycles = hw::count_cycles(work, mf);
  const hw::CycleReport fp_cycles = hw::count_cycles(work, fp);
  std::printf("latency: %.2f us (mf-dfp) vs %.2f us (float)\n",
              mf_cycles.microseconds(mf), fp_cycles.microseconds(fp));
  std::printf("energy:  %.2f uJ (mf-dfp) vs %.2f uJ (float)  -> %.1f%% saved\n",
              hw::energy_uj(mf_cycles, mf), hw::energy_uj(fp_cycles, fp),
              100.0 * hw::saving(hw::energy_uj(fp_cycles, fp),
                                 hw::energy_uj(mf_cycles, mf)));
  const quant::MemoryReport memory = quant::memory_report(converted.network);
  std::printf("weights: %.4f MB float -> %.4f MB mf-dfp (x%.1f smaller)\n",
              memory.float_mb(), memory.mfdfp_mb(), memory.compression());
  return 0;
}
