#!/usr/bin/env bash
# Runs clang-tidy (check set in .clang-tidy) over every translation unit,
# using the compile_commands.json CMake exports into the build directory
# (CMAKE_EXPORT_COMPILE_COMMANDS is on by default in CMakeLists.txt).
#
# Usage: scripts/run_clang_tidy.sh [build-dir]   (default: build)
# CI runs this as the static-analysis job; it exits 0 with a notice on
# machines without clang-tidy so local gcc-only setups are unaffected.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
clang_tidy="${CLANG_TIDY:-clang-tidy}"

if ! command -v "$clang_tidy" >/dev/null 2>&1; then
  echo "run_clang_tidy: $clang_tidy not installed; skipping (CI runs it)"
  exit 0
fi

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "run_clang_tidy: $build_dir/compile_commands.json not found;" \
       "configure first: cmake -B $build_dir -S $repo_root" >&2
  exit 1
fi

mapfile -t sources < <(
  find "$repo_root/src" "$repo_root/tools" "$repo_root/bench" \
       "$repo_root/tests" "$repo_root/examples" -name '*.cpp' 2>/dev/null |
    sort
)
if [[ "${#sources[@]}" -eq 0 ]]; then
  echo "run_clang_tidy: no sources found" >&2
  exit 1
fi

echo "run_clang_tidy: ${#sources[@]} files against $build_dir"
"$clang_tidy" -p "$build_dir" --quiet "${sources[@]}"
echo "run_clang_tidy: clean"
