#!/usr/bin/env bash
# Runs the serving benches and assembles bench-out/BENCH_serve.json (the
# gitignored bench-artifact directory — nothing is written to the repo
# root) for the perf trajectory: the git SHA, the serial-vs-batched throughput
# numbers (serve_throughput), the multi-model priority/admission ablation
# numbers (ablation_multimodel), the replica-scaling numbers
# (ablation_replicas), the heterogeneous-device scaling + routing numbers
# (ablation_hetero), the shared-PU cross-model batching numbers
# (ablation_shared_pu), the capacity-analyzer soundness numbers
# (ablation_capacity), the tracing-overhead + layer-profile
# reconciliation numbers (ablation_trace_overhead), and the deploy-time
# compiler speedup/ablation numbers (ablation_compile). See
# docs/benchmarks.md for every bench's enforced thresholds.
#
# Failure discipline: every bench must exit 0 AND write a non-empty JSON
# fragment, or this script fails loudly with a nonzero exit. The stamp is
# assembled and validated in a temp dir and only then moved into place —
# a failing run never leaves a partial or stale-looking BENCH_serve.json.
#
# Usage: scripts/run_bench.sh [build-dir]   (default: build)
# Respects MFDFP_QUICK=1 for a ~4x faster run.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

benches=(serve_throughput ablation_multimodel ablation_replicas
         ablation_hetero ablation_shared_pu ablation_capacity
         ablation_trace_overhead ablation_compile)

for target in "${benches[@]}"; do
  if [[ ! -x "$build_dir/$target" ]]; then
    echo "building $target in $build_dir..."
    cmake -B "$build_dir" -S "$repo_root"
    cmake --build "$build_dir" -j "$(nproc)" --target "$target"
  fi
done

tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT

# Runs one bench and insists on both a zero exit and a non-empty JSON
# fragment; anything else aborts the whole stamp.
run_bench() {
  local name="$1" out="$2"
  echo "=== $name ==="
  if ! "$build_dir/$name" "$out"; then
    echo "FAIL: $name exited nonzero; refusing to stamp BENCH_serve.json" >&2
    exit 1
  fi
  if [[ ! -s "$out" ]]; then
    echo "FAIL: $name exited 0 but wrote no JSON fragment to $out;" \
         "refusing to stamp BENCH_serve.json" >&2
    exit 1
  fi
}

run_bench serve_throughput "$tmp_dir/serve.json"
run_bench ablation_multimodel "$tmp_dir/multimodel.json"
run_bench ablation_replicas "$tmp_dir/replicas.json"
run_bench ablation_hetero "$tmp_dir/hetero.json"
run_bench ablation_shared_pu "$tmp_dir/shared_pu.json"
run_bench ablation_capacity "$tmp_dir/capacity.json"
run_bench ablation_trace_overhead "$tmp_dir/trace_overhead.json"
run_bench ablation_compile "$tmp_dir/compile.json"

git_sha="$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unknown)"
stamp="$tmp_dir/BENCH_serve.json"
{
  echo "{"
  echo "  \"git_sha\": \"$git_sha\","
  echo "  \"serve_throughput\":"
  sed 's/^/  /' "$tmp_dir/serve.json"
  echo "  ,"
  echo "  \"multimodel\":"
  sed 's/^/  /' "$tmp_dir/multimodel.json"
  echo "  ,"
  echo "  \"replicas\":"
  sed 's/^/  /' "$tmp_dir/replicas.json"
  echo "  ,"
  echo "  \"hetero\":"
  sed 's/^/  /' "$tmp_dir/hetero.json"
  echo "  ,"
  echo "  \"shared_pu\":"
  sed 's/^/  /' "$tmp_dir/shared_pu.json"
  echo "  ,"
  echo "  \"capacity\":"
  sed 's/^/  /' "$tmp_dir/capacity.json"
  echo "  ,"
  echo "  \"trace_overhead\":"
  sed 's/^/  /' "$tmp_dir/trace_overhead.json"
  echo "  ,"
  echo "  \"compile\":"
  sed 's/^/  /' "$tmp_dir/compile.json"
  echo "}"
} > "$stamp"

# Validate the assembled stamp parses before it replaces the previous one.
if command -v python3 >/dev/null 2>&1; then
  if ! python3 -m json.tool "$stamp" >/dev/null; then
    echo "FAIL: assembled stamp is not valid JSON; refusing to overwrite" \
         "BENCH_serve.json" >&2
    exit 1
  fi
fi

out_dir="$repo_root/bench-out"
mkdir -p "$out_dir"
mv "$stamp" "$out_dir/BENCH_serve.json"

echo "---"
cat "$out_dir/BENCH_serve.json"
