#!/usr/bin/env bash
# Runs the serving throughput bench and leaves BENCH_serve.json (throughput,
# p99, speedup) in the repo root for the perf trajectory.
#
# Usage: scripts/run_bench.sh [build-dir]   (default: build)
# Respects MFDFP_QUICK=1 for a ~4x faster run.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

if [[ ! -x "$build_dir/serve_throughput" ]]; then
  echo "building serve_throughput in $build_dir..."
  cmake -B "$build_dir" -S "$repo_root"
  cmake --build "$build_dir" -j "$(nproc)" --target serve_throughput
fi

"$build_dir/serve_throughput" "$repo_root/BENCH_serve.json"
echo "---"
cat "$repo_root/BENCH_serve.json"
