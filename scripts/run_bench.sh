#!/usr/bin/env bash
# Runs the serving benches and assembles BENCH_serve.json in the repo root
# for the perf trajectory: the git SHA, the serial-vs-batched throughput
# numbers (serve_throughput), the multi-model priority/admission ablation
# numbers (ablation_multimodel), the replica-scaling numbers
# (ablation_replicas), the heterogeneous-device scaling + routing numbers
# (ablation_hetero), and the shared-PU cross-model batching numbers
# (ablation_shared_pu). See docs/benchmarks.md for every bench's enforced
# thresholds.
#
# Usage: scripts/run_bench.sh [build-dir]   (default: build)
# Respects MFDFP_QUICK=1 for a ~4x faster run.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

for target in serve_throughput ablation_multimodel ablation_replicas \
              ablation_hetero ablation_shared_pu; do
  if [[ ! -x "$build_dir/$target" ]]; then
    echo "building $target in $build_dir..."
    cmake -B "$build_dir" -S "$repo_root"
    cmake --build "$build_dir" -j "$(nproc)" --target "$target"
  fi
done

tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT

"$build_dir/serve_throughput" "$tmp_dir/serve.json"
"$build_dir/ablation_multimodel" "$tmp_dir/multimodel.json"
"$build_dir/ablation_replicas" "$tmp_dir/replicas.json"
"$build_dir/ablation_hetero" "$tmp_dir/hetero.json"
"$build_dir/ablation_shared_pu" "$tmp_dir/shared_pu.json"

git_sha="$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unknown)"
{
  echo "{"
  echo "  \"git_sha\": \"$git_sha\","
  echo "  \"serve_throughput\":"
  sed 's/^/  /' "$tmp_dir/serve.json"
  echo "  ,"
  echo "  \"multimodel\":"
  sed 's/^/  /' "$tmp_dir/multimodel.json"
  echo "  ,"
  echo "  \"replicas\":"
  sed 's/^/  /' "$tmp_dir/replicas.json"
  echo "  ,"
  echo "  \"hetero\":"
  sed 's/^/  /' "$tmp_dir/hetero.json"
  echo "  ,"
  echo "  \"shared_pu\":"
  sed 's/^/  /' "$tmp_dir/shared_pu.json"
  echo "}"
} > "$repo_root/BENCH_serve.json"

echo "---"
cat "$repo_root/BENCH_serve.json"
