#!/usr/bin/env bash
# Link-checks the documentation tree and enforces bench coverage:
#  - every relative markdown link in docs/*.md and README.md must resolve
#    to an existing file or directory (external http(s)/mailto links are
#    skipped, markdown link titles are stripped);
#  - every #anchor into a markdown file (including in-page anchors) must
#    match a heading of the target file under GitHub's slug rules
#    (lowercase, punctuation dropped, spaces -> hyphens);
#  - every bench/ablation_*.cpp binary must be mentioned in
#    docs/benchmarks.md, so a new ablation cannot land undocumented.
# CI runs this as the `docs` job; run it locally before touching docs/.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
fail=0

# Does markdown file $1 contain a heading whose GitHub slug is $2?
has_anchor() {
  grep -E '^#{1,6} ' "$1" |
    sed -E 's/^#{1,6} +//' |
    tr '[:upper:]' '[:lower:]' |
    sed -E 's/[^a-z0-9 _-]//g; s/ /-/g' |
    grep -qx "$2"
}

check_links() {
  local doc="$1"
  local dir
  dir="$(dirname "$doc")"
  while IFS= read -r target; do
    case "$target" in
      http://* | https://* | mailto:*) continue ;;
    esac
    local path="${target%%#*}"   # file part ("" for in-page anchors)
    path="${path%% *}"           # strip markdown link title
    local file="$dir/$path"
    [[ -z "$path" ]] && file="$doc"
    if [[ ! -e "$file" ]]; then
      echo "BROKEN LINK: $doc -> $target"
      fail=1
      continue
    fi
    if [[ "$target" == *'#'* && "$file" == *.md ]]; then
      local anchor="${target#*#}"
      if [[ -n "$anchor" ]] && ! has_anchor "$file" "$anchor"; then
        echo "BROKEN ANCHOR: $doc -> $target (no matching heading)"
        fail=1
      fi
    fi
  done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')
}

shopt -s nullglob
docs=("$repo_root"/docs/*.md "$repo_root/README.md")
if [[ "${#docs[@]}" -lt 2 ]]; then
  echo "MISSING: docs/*.md"
  fail=1
fi
for doc in "${docs[@]}"; do
  [[ -f "$doc" ]] && check_links "$doc"
done

benchdoc="$repo_root/docs/benchmarks.md"
if [[ ! -f "$benchdoc" ]]; then
  echo "MISSING: docs/benchmarks.md"
  fail=1
else
  for bench in "$repo_root"/bench/ablation_*.cpp; do
    name="$(basename "$bench" .cpp)"
    if ! grep -q "$name" "$benchdoc"; then
      echo "UNDOCUMENTED BENCH: $name is not mentioned in docs/benchmarks.md"
      fail=1
    fi
  done
fi

if [[ "$fail" -ne 0 ]]; then
  echo "docs check FAILED"
  exit 1
fi
echo "docs check OK"
