#!/usr/bin/env bash
# Line-coverage gate for the concurrency-heavy subsystems: builds an
# instrumented tree (gcc --coverage, -O0 so branches aren't folded away),
# runs the full ctest suite, then measures line coverage over src/serve
# and src/analysis with gcov's JSON output and fails if it drops below
# the enforced floor. These two subsystems carry the scheduler
# (preemption, continuous batching, lane policy) and the capacity
# analyzer's proofs — the code where an untested branch is a data race
# or an unsound bound, not a cosmetic gap.
#
# If lcov/genhtml are installed (the CI coverage job installs them), an
# HTML report is also rendered into bench-out/coverage-html/ for the
# artifact upload; locally the gate runs with plain gcov.
#
# Usage: scripts/run_coverage.sh [build-dir]   (default: build-cov)
# MFDFP_COVERAGE_FLOOR overrides the enforced floor (percent).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-cov}"
# Measured ~93% on the seed of this gate (gcc 12); the floor sits well
# below that so legitimate hard-to-hit error paths don't flake the job,
# while a whole untested subsystem (or a suite silently dropping out of
# the build) still fails loudly.
floor_pct="${MFDFP_COVERAGE_FLOOR:-80}"

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="--coverage -O0 -g" \
  -DCMAKE_EXE_LINKER_FLAGS="--coverage"
cmake --build "$build_dir" -j "$(nproc)"

# Stale counters from a previous run would inflate the numbers.
find "$build_dir" -name '*.gcda' -delete
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"

# Aggregate gcov's JSON over every instrumented object, keeping only
# sources under src/serve and src/analysis (headers included: the lane
# and snapshot logic lives in .hpp files too).
python3 - "$build_dir" "$floor_pct" <<'EOF'
import json, pathlib, subprocess, sys

build_dir = pathlib.Path(sys.argv[1]).resolve()
floor = float(sys.argv[2])
subsystems = ("src/serve/", "src/analysis/")

covered = {}  # (source, line) -> hit?
gcdas = sorted(build_dir.rglob("*.gcda"))
if not gcdas:
    sys.exit("FAIL: no .gcda files under %s — did ctest run?" % build_dir)
for gcda in gcdas:
    out = subprocess.run(
        ["gcov", "--json-format", "--stdout", gcda.name],
        capture_output=True, text=True, cwd=gcda.parent, check=True).stdout
    for doc in out.splitlines():
        if not doc.strip():
            continue
        for f in json.loads(doc).get("files", []):
            name = f["file"]
            if not any(s in name for s in subsystems):
                continue
            short = name[name.index("src/"):]
            for line in f["lines"]:
                key = (short, line["line_number"])
                covered[key] = covered.get(key, False) or line["count"] > 0

if not covered:
    sys.exit("FAIL: gcov reported no executable lines in src/serve or "
             "src/analysis — instrumentation is broken")

per_file = {}
for (source, _), hit in covered.items():
    total, hits = per_file.get(source, (0, 0))
    per_file[source] = (total + 1, hits + (1 if hit else 0))

width = max(len(s) for s in per_file)
for source in sorted(per_file):
    total, hits = per_file[source]
    print(f"{source:<{width}}  {hits:5d}/{total:<5d}  {100*hits/total:6.1f}%")

total = len(covered)
hits = sum(covered.values())
pct = 100.0 * hits / total
print(f"{'TOTAL':<{width}}  {hits:5d}/{total:<5d}  {pct:6.1f}%")
if pct < floor:
    sys.exit(f"FAIL: line coverage {pct:.1f}% over src/serve + "
             f"src/analysis is below the {floor:.0f}% floor")
print(f"OK: line coverage {pct:.1f}% >= {floor:.0f}% floor")
EOF

# HTML report (CI artifact) when lcov is around; the ignore list keeps
# lcov's stricter consistency checks from failing on gcc's coverage
# notes for headers compiled into several objects.
if command -v lcov >/dev/null 2>&1 && command -v genhtml >/dev/null 2>&1; then
  html_dir="$repo_root/bench-out/coverage-html"
  mkdir -p "$html_dir"
  lcov --capture --directory "$build_dir" --output-file "$build_dir/coverage.info" \
       --ignore-errors mismatch,negative,unused,empty,inconsistent 2>/dev/null
  lcov --extract "$build_dir/coverage.info" "*/src/serve/*" "*/src/analysis/*" \
       --output-file "$build_dir/coverage.filtered.info" \
       --ignore-errors mismatch,negative,unused,empty,inconsistent 2>/dev/null
  genhtml "$build_dir/coverage.filtered.info" --output-directory "$html_dir" \
          --ignore-errors mismatch,negative,unused,empty,inconsistent 2>/dev/null
  echo "HTML report: $html_dir/index.html"
fi
