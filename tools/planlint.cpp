// planlint: numeric static analysis of compiled plans, standalone.
//
// Compiles every zoo architecture at several input geometries, runs the
// interval-domain analyzer (src/analysis) over each CompiledPlan, and
// prints the per-layer bound table: worst-case dot range, accumulator
// bits, routed range before saturation, output code range, and clip mass.
// Exits nonzero if any plan fails a proof obligation — CI runs this over
// the whole zoo so "every deployable model is overflow-free" stays an
// enforced invariant, not a one-time observation.
//
// Usage:
//   planlint [--strict]
//
//   --strict   also fail on any layer that can saturate (clip mass > 0);
//              by default clip mass is reported but not fatal, matching
//              the deploy-time `analyze` pass.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "compile/passes.hpp"
#include "hw/qnet.hpp"
#include "nn/zoo.hpp"
#include "quant/quantizer.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace {

struct Geometry {
  std::size_t c, h, w;
};

mfdfp::hw::QNetDesc build_qnet(const std::string& arch, const Geometry& g,
                               std::uint64_t seed) {
  using namespace mfdfp;
  util::Rng rng{seed};
  nn::ZooConfig config;
  config.in_channels = g.c;
  config.in_h = g.h;
  config.in_w = g.w;
  config.num_classes = 10;
  config.width_multiplier = g.h <= 16 ? 0.25f : 0.5f;
  nn::Network net = [&] {
    if (arch == "cifar") return nn::make_cifar10_net(config, rng);
    if (arch == "alexnet") return nn::make_alexnet_mini(config, rng);
    return nn::make_mlp(config, 32, rng);
  }();
  tensor::Tensor calibration{tensor::Shape{8, g.c, g.h, g.w}};
  calibration.fill_uniform(rng, -1.0f, 1.0f);
  const quant::QuantSpec spec = quant::quantize_network(net, calibration);
  return hw::extract_qnet(net, spec, arch);
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else {
      std::fprintf(stderr, "planlint: unknown argument '%s'\n", argv[i]);
      std::fprintf(stderr, "usage: planlint [--strict]\n");
      return 2;
    }
  }

  const std::vector<std::string> archs = {"cifar", "alexnet", "mlp"};
  // Zoo conv nets require spatial dims divisible by 8 (three 2x2 pools).
  const std::vector<Geometry> geometries = {
      {3, 16, 16}, {3, 32, 32}, {1, 24, 24}};

  mfdfp::analysis::AnalysisOptions options;
  options.fail_on_clip = strict;

  int unsafe = 0;
  std::uint64_t seed = 1;
  for (const std::string& arch : archs) {
    for (const Geometry& g : geometries) {
      const mfdfp::hw::QNetDesc desc = build_qnet(arch, g, seed++);
      // Compile with the analyze pass off: planlint wants the full report
      // table even for a plan the deploy-time pass would reject.
      mfdfp::compile::CompileOptions copts;
      copts.analyze = false;
      const auto plan =
          mfdfp::compile::compile_qnet(desc, g.c, g.h, g.w, copts);
      const mfdfp::analysis::AnalysisReport report =
          mfdfp::analysis::analyze_plan(*plan, options);

      std::printf("== %s @ %zux%zux%zu ==\n", arch.c_str(), g.c, g.h, g.w);
      std::printf("%s", report.table().c_str());
      std::printf("%s\n\n", report.summary().c_str());
      if (!report.ok()) ++unsafe;
    }
  }

  if (unsafe != 0) {
    std::fprintf(stderr, "planlint: %d plan(s) failed analysis\n", unsafe);
    return 1;
  }
  std::printf("planlint: all plans proven safe\n");
  return 0;
}
