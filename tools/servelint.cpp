// servelint: deploy-time SLO schedulability analysis over checked-in
// serving specs, standalone.
//
// Loads one or more *.envelope spec files — each describing a placement
// (models, replicas, shared-PU tenancy) plus its declared TrafficEnvelope —
// runs the capacity analyzer (src/analysis/capacity.hpp) over each, and
// prints the per-proof bound table: device utilization, worst-case
// interactive latency against its deadline, batch-lane feasibility, and
// queue-capacity overflow. Exits nonzero if any spec fails a proof
// obligation — CI runs this over bench/envelopes/ so "every benchmarked
// serving config is schedulable" stays an enforced invariant, the serving
// analogue of planlint's overflow-freedom check.
//
// Usage:
//   servelint <spec.envelope>...
//
// Spec format (line-oriented; '#' starts a comment):
//   model <name>                   starts a model section
//   arrival_rps <x>                envelope scalars, applied to the
//   interactive_fraction <x>         current model section
//   interactive_burst <n>
//   interactive_deadline_us <x>
//   batch_deadline_us <x>
//   batch_quota <n>
//   admission_control <0|1>
//   replica k=v k=v ...            one replica; keys: device, shared,
//                                    speed_factor, sample_us, max_batch,
//                                    max_wait_us, queue_capacity, switch_us,
//                                    max_pass_samples, cobatch,
//                                    coalesce_window_us, pass_overhead_us,
//                                    preempt_granularity_us
//
// Replicas naming the same `device` with shared=1 are tenants of one PU
// (the analyzer prices their mutual blocking); dedicated replicas get
// private per-replica device keys. docs/static-analysis.md walks through a
// full spec.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/capacity.hpp"

namespace {

using mfdfp::analysis::ModelFacts;
using mfdfp::analysis::ReplicaFacts;

struct ParseError {
  std::string message;
};

double to_double(const std::string& token, const std::string& context) {
  try {
    std::size_t used = 0;
    const double value = std::stod(token, &used);
    if (used != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    throw ParseError{"bad number '" + token + "' in " + context};
  }
}

std::size_t to_count(const std::string& token, const std::string& context) {
  const double value = to_double(token, context);
  if (value < 0.0) throw ParseError{"negative count in " + context};
  return static_cast<std::size_t>(value);
}

/// One `k=v` token of a replica line.
void apply_replica_key(ReplicaFacts& replica, const std::string& key,
                       const std::string& value, const std::string& context) {
  if (key == "device") {
    replica.device = value;
  } else if (key == "shared") {
    replica.shared = to_count(value, context) != 0;
  } else if (key == "speed_factor") {
    replica.speed_factor = to_double(value, context);
  } else if (key == "sample_us") {
    replica.sample_us = to_double(value, context);
  } else if (key == "max_batch") {
    replica.max_batch = to_count(value, context);
  } else if (key == "max_wait_us") {
    replica.max_wait_us =
        static_cast<std::int64_t>(to_double(value, context));
  } else if (key == "queue_capacity") {
    replica.queue_capacity = to_count(value, context);
  } else if (key == "switch_us") {
    replica.switch_us = to_double(value, context);
  } else if (key == "max_pass_samples") {
    replica.max_pass_samples = to_count(value, context);
  } else if (key == "cobatch") {
    replica.cobatch = to_count(value, context) != 0;
  } else if (key == "coalesce_window_us") {
    replica.coalesce_window_us =
        static_cast<std::int64_t>(to_double(value, context));
  } else if (key == "pass_overhead_us") {
    replica.pass_overhead_us = to_double(value, context);
  } else if (key == "preempt_granularity_us") {
    replica.preempt_granularity_us = to_double(value, context);
  } else {
    throw ParseError{"unknown replica key '" + key + "' in " + context};
  }
}

std::vector<ModelFacts> parse_spec(std::istream& in,
                                   const std::string& path) {
  std::vector<ModelFacts> models;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string context =
        path + ":" + std::to_string(line_no);
    if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream tokens(line);
    std::string keyword;
    if (!(tokens >> keyword)) continue;  // blank / comment-only line

    if (keyword == "model") {
      std::string name;
      if (!(tokens >> name)) throw ParseError{"model needs a name, " + context};
      models.emplace_back();
      models.back().model = name;
      continue;
    }
    if (models.empty()) {
      throw ParseError{"'" + keyword + "' before any model section, " +
                       context};
    }
    ModelFacts& model = models.back();

    if (keyword == "replica") {
      ReplicaFacts replica;
      std::string pair;
      while (tokens >> pair) {
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos || eq == 0) {
          throw ParseError{"replica token '" + pair + "' is not k=v, " +
                           context};
        }
        apply_replica_key(replica, pair.substr(0, eq), pair.substr(eq + 1),
                          context);
      }
      if (replica.device.empty()) {
        throw ParseError{"replica without device=..., " + context};
      }
      // Tenants of one shared PU share its key; dedicated replicas are
      // private hardware — same derivation ReplicaSet::capacity_facts uses.
      replica.device_key =
          replica.shared
              ? replica.device
              : model.model + "/" + replica.device + "#r" +
                    std::to_string(model.replicas.size());
      model.replicas.push_back(replica);
      continue;
    }

    std::string value;
    if (!(tokens >> value)) {
      throw ParseError{"'" + keyword + "' needs a value, " + context};
    }
    if (keyword == "arrival_rps") {
      model.envelope.arrival_rps = to_double(value, context);
    } else if (keyword == "interactive_fraction") {
      model.envelope.interactive_fraction = to_double(value, context);
    } else if (keyword == "interactive_burst") {
      model.envelope.interactive_burst = to_count(value, context);
    } else if (keyword == "interactive_deadline_us") {
      model.envelope.interactive_deadline_us = to_double(value, context);
    } else if (keyword == "batch_deadline_us") {
      model.envelope.batch_deadline_us = to_double(value, context);
    } else if (keyword == "batch_quota") {
      model.batch_quota = to_count(value, context);
    } else if (keyword == "admission_control") {
      model.admission_control = to_count(value, context) != 0;
    } else {
      throw ParseError{"unknown keyword '" + keyword + "', " + context};
    }
  }
  if (models.empty()) throw ParseError{path + ": no model sections"};
  return models;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: servelint <spec.envelope>...\n");
    return 2;
  }

  int infeasible = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "servelint: cannot read %s\n", path.c_str());
      return 2;
    }
    std::vector<ModelFacts> models;
    try {
      models = parse_spec(in, path);
    } catch (const ParseError& error) {
      std::fprintf(stderr, "servelint: %s\n", error.message.c_str());
      return 2;
    }

    const mfdfp::analysis::CapacityReport report =
        mfdfp::analysis::analyze_capacity(models);
    std::printf("== %s ==\n", path.c_str());
    std::printf("%s", report.table("schedulability bounds").c_str());
    std::printf("%s\n\n", report.summary().c_str());
    if (!report.feasible()) ++infeasible;
  }

  if (infeasible != 0) {
    std::fprintf(stderr, "servelint: %d spec(s) infeasible\n", infeasible);
    return 1;
  }
  std::printf("servelint: all specs schedulable\n");
  return 0;
}
