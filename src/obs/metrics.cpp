#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>

namespace mfdfp::obs {

namespace {

[[nodiscard]] const char* type_name(MetricType type) noexcept {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kSummary: return "summary";
  }
  return "untyped";
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
void append_escaped(std::string& out, std::string_view value) {
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

void append_labels(std::string& out, const MetricLabels& labels) {
  if (labels.empty()) return;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    append_escaped(out, value);
    out += '"';
  }
  out += '}';
}

void append_value(std::string& out, double value) {
  if (std::isnan(value)) {
    out += "NaN";
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  out += buffer;
}

}  // namespace

MetricsRegistry::Family& MetricsRegistry::Family::add(MetricLabels labels,
                                                      double value) {
  Sample sample;
  sample.labels = std::move(labels);
  sample.value = value;
  registry_->families_[index_].samples.push_back(std::move(sample));
  return *this;
}

MetricsRegistry::Family& MetricsRegistry::Family::add_quantile(
    MetricLabels labels, double quantile, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", quantile);
  labels.emplace_back("quantile", buffer);
  return add(std::move(labels), value);
}

MetricsRegistry::Family& MetricsRegistry::Family::add_summary_totals(
    MetricLabels labels, std::uint64_t count, double sum) {
  Sample sum_sample;
  sum_sample.suffix = "_sum";
  sum_sample.labels = labels;
  sum_sample.value = sum;
  registry_->families_[index_].samples.push_back(std::move(sum_sample));

  Sample count_sample;
  count_sample.suffix = "_count";
  count_sample.labels = std::move(labels);
  count_sample.integral = true;
  count_sample.ivalue = count;
  registry_->families_[index_].samples.push_back(std::move(count_sample));
  return *this;
}

MetricsRegistry::Family MetricsRegistry::family(std::string name,
                                                std::string help,
                                                MetricType type) {
  FamilyData data;
  data.name = std::move(name);
  data.help = std::move(help);
  data.type = type;
  families_.push_back(std::move(data));
  return Family(this, families_.size() - 1);
}

std::string MetricsRegistry::render() const {
  std::string out;
  for (const FamilyData& family : families_) {
    out += "# HELP ";
    out += family.name;
    out += ' ';
    out += family.help;
    out += '\n';
    out += "# TYPE ";
    out += family.name;
    out += ' ';
    out += type_name(family.type);
    out += '\n';
    for (const Sample& sample : family.samples) {
      out += family.name;
      out += sample.suffix;
      append_labels(out, sample.labels);
      out += ' ';
      if (sample.integral) {
        out += std::to_string(sample.ivalue);
      } else {
        append_value(out, sample.value);
      }
      out += '\n';
    }
  }
  return out;
}

}  // namespace mfdfp::obs
