// Prometheus-style metrics exposition (text format 0.0.4).
//
// MetricsRegistry is a *builder*, not a live store: the serving stack
// already keeps its counters in ServerStats / SharedDevice / RequestQueue,
// so ModelServer::export_metrics() takes a snapshot of those and renders it
// through a registry — declare a family (name + help + type), add one
// sample per label set, render. No locks, no background threads, no
// double-counting risk: every export is one consistent pass over the
// snapshots that already exist.
//
// Supported families map onto Prometheus types:
//   kCounter  -> "counter": monotonic totals (requests completed, sheds)
//   kGauge    -> "gauge":   point-in-time values (queue depth, utilization)
//   kSummary  -> "summary": pre-aggregated quantiles (latency p50/p95/p99)
//                rendered as name{quantile="0.99"} plus _sum / _count rows.
//
// Output conforms to the exposition format scrapers parse: one # HELP and
// # TYPE line per family, then samples in insertion order with escaped
// label values. See docs/observability.md for the full name reference.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mfdfp::obs {

enum class MetricType : std::uint8_t { kCounter, kGauge, kSummary };

/// One label set, e.g. {{"model", "cnn"}, {"lane", "interactive"}}.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

class MetricsRegistry {
 public:
  /// Handle for adding samples to one declared family.
  class Family {
   public:
    /// Adds one sample with the given labels.
    Family& add(MetricLabels labels, double value);

    /// Summary families only: one quantile row
    /// (name{...,quantile="0.99"} value).
    Family& add_quantile(MetricLabels labels, double quantile, double value);

    /// Summary families only: the _count and _sum rows for one label set.
    Family& add_summary_totals(MetricLabels labels, std::uint64_t count,
                               double sum);

   private:
    friend class MetricsRegistry;
    Family(MetricsRegistry* registry, std::size_t index)
        : registry_(registry), index_(index) {}
    MetricsRegistry* registry_;
    std::size_t index_;
  };

  /// Declares a family; families render in declaration order. `name` must
  /// be a valid Prometheus metric name ([a-zA-Z_:][a-zA-Z0-9_:]*) — callers
  /// pass literals, this is not revalidated.
  Family family(std::string name, std::string help, MetricType type);

  /// The full exposition text (HELP/TYPE headers + samples).
  [[nodiscard]] std::string render() const;

 private:
  struct Sample {
    std::string suffix;  ///< appended to the family name ("", "_sum", ...)
    MetricLabels labels;
    bool integral = false;  ///< render value without decimal point
    double value = 0.0;
    std::uint64_t ivalue = 0;
  };
  struct FamilyData {
    std::string name;
    std::string help;
    MetricType type = MetricType::kGauge;
    std::vector<Sample> samples;
  };

  std::vector<FamilyData> families_;
};

}  // namespace mfdfp::obs
