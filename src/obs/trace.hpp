// Request-lifecycle tracing: a low-overhead, bounded-memory TraceRecorder
// whose output loads straight into Perfetto / chrome://tracing.
//
// Design constraints, in order:
//   1. Off by default, and nearly free when off: every instrumentation site
//      guards on enabled() — one relaxed atomic load — before touching
//      anything else.
//   2. Lock-free append when on: each recording thread owns a private ring
//      buffer (registered on first use), so record() never contends with
//      another recorder. Publication uses a per-slot seqlock whose payload
//      fields are relaxed atomics — a concurrent export skips slots it
//      catches mid-write instead of blocking the writer, and the whole
//      scheme is clean under ThreadSanitizer (no raw racing loads).
//   3. Bounded memory: rings are fixed-capacity (TraceConfig.events_per_
//      thread, rounded up to a power of two) and wrap, overwriting the
//      oldest events; dropped() counts the overwrites. A trace therefore
//      always holds the *most recent* window of activity.
//
// Event payloads are pointers to immortal strings plus integers — no
// allocation on the hot path. Dynamic names (model names, device names) are
// interned once per deployment via intern(), which returns a stable
// const char* for the recorder's lifetime.
//
// Export (to_chrome_json / write_chrome_json) emits the Chrome trace-event
// JSON array format: complete spans (ph "X", microsecond timestamps on the
// util::Stopwatch::now_us clock), instant events (ph "i") for point events
// like weight reloads and admission sheds, and counter tracks (ph "C") for
// queue depth. Load the file at https://ui.perfetto.dev or
// chrome://tracing. Export runs concurrently with recording and returns a
// consistent-enough view for a trace tool: per-ring, the last
// min(recorded, capacity) fully-published events.
//
// The serving stack records through the process-global trace() recorder;
// tests may also instantiate private recorders.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/mutex.hpp"

namespace mfdfp::obs {

/// What one trace event renders as (Chrome trace-event "ph" values).
enum class TraceEventKind : std::uint8_t {
  kSpan = 0,     ///< complete event "X": ts + dur
  kInstant = 1,  ///< instant event "i": point in time
  kCounter = 2,  ///< counter event "C": value sampled at ts
};

struct TraceConfig {
  /// Ring capacity per recording thread, in events; rounded up to a power
  /// of two. Memory is ~96 bytes per slot, allocated lazily on a thread's
  /// first record under an enabled recorder.
  std::size_t events_per_thread = 8192;
};

/// One exported event (the decoded, stable-string view a reader gets).
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kSpan;
  const char* name = nullptr;   ///< never null for published events
  const char* cat = nullptr;    ///< category ("serve", "pu", ...); may be null
  std::int64_t ts_us = 0;       ///< util::Stopwatch::now_us clock
  std::int64_t dur_us = 0;      ///< spans only
  std::uint64_t id = 0;         ///< correlation id (request id); 0 = none
  const char* arg_name = nullptr;  ///< optional integer arg
  std::int64_t arg_value = 0;
  const char* model = nullptr;  ///< optional model tag (interned)
  std::uint64_t tid = 0;        ///< recording thread's display id
  const char* thread_label = nullptr;  ///< set via set_thread_label
};

class TraceRecorder {
 public:
  explicit TraceRecorder(TraceConfig config = {});
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The master switch. Disabled recorders drop record_* calls at the cost
  /// of one relaxed load; already-buffered events stay readable.
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Returns a stable, immortal (for the recorder's lifetime) copy of
  /// `name`, deduplicated by content. Call once per dynamic name (deploy
  /// time), never on the hot path — interning takes a mutex.
  [[nodiscard]] const char* intern(std::string_view name)
      EXCLUDES(intern_mutex_);

  /// Records a complete span [ts_us, ts_us + dur_us). No-op when disabled.
  void record_span(const char* name, const char* cat, std::int64_t ts_us,
                   std::int64_t dur_us, std::uint64_t id = 0,
                   const char* arg_name = nullptr, std::int64_t arg_value = 0,
                   const char* model = nullptr) noexcept {
    if (!enabled()) return;
    record(TraceEventKind::kSpan, name, cat, ts_us, dur_us, id, arg_name,
           arg_value, model);
  }

  /// Records a point event (shed, reject, weight reload). No-op when
  /// disabled.
  void record_instant(const char* name, const char* cat, std::int64_t ts_us,
                      std::uint64_t id = 0, const char* arg_name = nullptr,
                      std::int64_t arg_value = 0,
                      const char* model = nullptr) noexcept {
    if (!enabled()) return;
    record(TraceEventKind::kInstant, name, cat, ts_us, 0, id, arg_name,
           arg_value, model);
  }

  /// Records a counter sample (rendered as a counter track named `name`).
  /// No-op when disabled.
  void record_counter(const char* name, std::int64_t ts_us,
                      std::int64_t value) noexcept {
    if (!enabled()) return;
    record(TraceEventKind::kCounter, name, nullptr, ts_us, 0, 0, nullptr,
           value, nullptr);
  }

  /// Names this thread's track in the exported trace ("cnn/r0/w1",
  /// "pu/edge"). Takes effect from the thread's next published event;
  /// no-op when the recorder is disabled and the thread has no ring yet.
  void set_thread_label(const char* label) noexcept;

  struct Stats {
    std::uint64_t recorded = 0;  ///< events ever appended
    std::uint64_t dropped = 0;   ///< oldest events overwritten by wraparound
    std::size_t threads = 0;     ///< rings registered
  };
  [[nodiscard]] Stats stats() const EXCLUDES(registry_mutex_);

  /// All currently-published events, oldest-first per thread (the reader's
  /// snapshot; concurrent writers may be appending past it).
  [[nodiscard]] std::vector<TraceEvent> events() const
      EXCLUDES(registry_mutex_);

  /// The buffered events as a Chrome trace-event JSON object
  /// ({"traceEvents": [...]}), sorted by timestamp, with thread-name
  /// metadata records for labeled threads.
  [[nodiscard]] std::string to_chrome_json() const EXCLUDES(registry_mutex_);

  /// Writes to_chrome_json() to `path`; false on I/O failure.
  bool write_chrome_json(const std::string& path) const;

  /// Resets every ring and the drop counters. Callers must ensure no thread
  /// is concurrently recording (disable first, then quiesce) — clear() is
  /// for tests and between-phase resets, not live use.
  void clear() EXCLUDES(registry_mutex_);

 private:
  struct Slot {
    /// Seqlock: odd while the owner writes, even once published; readers
    /// retry/skip on odd or changed sequence. Payload fields are relaxed
    /// atomics so the (benign) read-during-write race is defined behaviour.
    std::atomic<std::uint32_t> seq{0};
    std::atomic<std::uint8_t> kind{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<const char*> cat{nullptr};
    std::atomic<std::int64_t> ts_us{0};
    std::atomic<std::int64_t> dur_us{0};
    std::atomic<std::uint64_t> id{0};
    std::atomic<const char*> arg_name{nullptr};
    std::atomic<std::int64_t> arg_value{0};
    std::atomic<const char*> model{nullptr};
  };

  struct Ring {
    explicit Ring(std::size_t capacity_pow2, std::uint64_t display_tid)
        : slots(capacity_pow2), tid(display_tid) {}
    std::vector<Slot> slots;           ///< size is a power of two
    std::atomic<std::uint64_t> head{0};  ///< next append position, monotonic
    std::uint64_t tid = 0;             ///< display id in the export
    std::atomic<const char*> label{nullptr};  ///< set_thread_label
  };

  void record(TraceEventKind kind, const char* name, const char* cat,
              std::int64_t ts_us, std::int64_t dur_us, std::uint64_t id,
              const char* arg_name, std::int64_t arg_value,
              const char* model) noexcept;

  /// This thread's ring under this recorder, created on first use
  /// (thread-local cache keyed by a process-unique recorder id, so
  /// distinct recorders — and recorder reincarnations at the same address —
  /// never alias).
  [[nodiscard]] Ring* ring_for_this_thread() noexcept
      EXCLUDES(registry_mutex_);

  std::atomic<bool> enabled_{false};
  const std::size_t ring_capacity_;  ///< power of two
  const std::uint64_t recorder_id_;  ///< process-unique, never reused

  /// Guards the ring *registry* (the vector and tid counter) only: each
  /// Ring's contents are seqlock-published atomics, appended lock-free by
  /// their owning thread and read through acquire loads by exporters.
  mutable util::Mutex registry_mutex_;
  std::vector<std::unique_ptr<Ring>> rings_ GUARDED_BY(registry_mutex_);
  std::uint64_t next_tid_ GUARDED_BY(registry_mutex_) = 1;

  mutable util::Mutex intern_mutex_;
  std::deque<std::string> interned_storage_ GUARDED_BY(intern_mutex_);
  std::unordered_map<std::string_view, const char*> interned_
      GUARDED_BY(intern_mutex_);
};

/// The process-global recorder the serving stack records through.
[[nodiscard]] TraceRecorder& trace();

}  // namespace mfdfp::obs
