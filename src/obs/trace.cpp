#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace mfdfp::obs {

namespace {

[[nodiscard]] std::size_t round_up_pow2(std::size_t value) noexcept {
  std::size_t pow2 = 1;
  while (pow2 < value) pow2 <<= 1;
  return pow2;
}

/// Process-unique recorder ids: the thread-local ring cache keys on these,
/// so a new recorder constructed at a dead one's address never aliases it.
std::atomic<std::uint64_t> next_recorder_id{1};

/// Per-thread ring cache: one entry per (recorder, thread) pair this thread
/// has recorded under. Entries for destroyed recorders are inert — their id
/// never matches again — and the list stays tiny (one per live recorder).
struct TlsRingRef {
  std::uint64_t recorder_id = 0;
  void* ring = nullptr;
};
thread_local std::vector<TlsRingRef> tls_rings;

void json_escape(std::ostringstream& out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

TraceRecorder::TraceRecorder(TraceConfig config)
    : ring_capacity_(round_up_pow2(std::max<std::size_t>(
          config.events_per_thread, 2))),
      recorder_id_(next_recorder_id.fetch_add(1, std::memory_order_relaxed)) {}

TraceRecorder::~TraceRecorder() = default;

const char* TraceRecorder::intern(std::string_view name) {
  util::MutexLock lock(intern_mutex_);
  const auto it = interned_.find(name);
  if (it != interned_.end()) return it->second;
  interned_storage_.emplace_back(name);
  const std::string& stored = interned_storage_.back();
  interned_.emplace(std::string_view{stored}, stored.c_str());
  return stored.c_str();
}

TraceRecorder::Ring* TraceRecorder::ring_for_this_thread() noexcept {
  for (const TlsRingRef& ref : tls_rings) {
    if (ref.recorder_id == recorder_id_) {
      return static_cast<Ring*>(ref.ring);
    }
  }
  Ring* ring = nullptr;
  {
    util::MutexLock lock(registry_mutex_);
    rings_.push_back(std::make_unique<Ring>(ring_capacity_, next_tid_++));
    ring = rings_.back().get();
  }
  tls_rings.push_back(TlsRingRef{recorder_id_, ring});
  return ring;
}

void TraceRecorder::set_thread_label(const char* label) noexcept {
  if (!enabled()) return;
  Ring* ring = ring_for_this_thread();
  ring->label.store(label, std::memory_order_relaxed);
}

void TraceRecorder::record(TraceEventKind kind, const char* name,
                           const char* cat, std::int64_t ts_us,
                           std::int64_t dur_us, std::uint64_t id,
                           const char* arg_name, std::int64_t arg_value,
                           const char* model) noexcept {
  if (name == nullptr) return;
  Ring* ring = ring_for_this_thread();
  // Single producer per ring: only this thread appends, so a plain
  // read-modify-write of head is race-free; the release store below
  // publishes the slot to concurrent exporters.
  const std::uint64_t pos = ring->head.load(std::memory_order_relaxed);
  Slot& slot = ring->slots[pos & (ring->slots.size() - 1)];

  // Seqlock write: odd while in flight, new even value once published.
  const std::uint32_t seq = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(seq + 1, std::memory_order_release);
  slot.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  slot.name.store(name, std::memory_order_relaxed);
  slot.cat.store(cat, std::memory_order_relaxed);
  slot.ts_us.store(ts_us, std::memory_order_relaxed);
  slot.dur_us.store(dur_us, std::memory_order_relaxed);
  slot.id.store(id, std::memory_order_relaxed);
  slot.arg_name.store(arg_name, std::memory_order_relaxed);
  slot.arg_value.store(arg_value, std::memory_order_relaxed);
  slot.model.store(model, std::memory_order_relaxed);
  slot.seq.store(seq + 2, std::memory_order_release);
  ring->head.store(pos + 1, std::memory_order_release);
}

TraceRecorder::Stats TraceRecorder::stats() const {
  util::MutexLock lock(registry_mutex_);
  Stats s;
  s.threads = rings_.size();
  for (const auto& ring : rings_) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    s.recorded += head;
    if (head > ring->slots.size()) s.dropped += head - ring->slots.size();
  }
  return s;
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::vector<TraceEvent> out;
  util::MutexLock lock(registry_mutex_);
  for (const auto& ring : rings_) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t count =
        std::min<std::uint64_t>(head, ring->slots.size());
    const char* label = ring->label.load(std::memory_order_relaxed);
    for (std::uint64_t i = head - count; i < head; ++i) {
      const Slot& slot = ring->slots[i & (ring->slots.size() - 1)];
      // Seqlock read: skip slots caught mid-write or overwritten while we
      // were reading (sequence moved). Payload loads are relaxed atomics,
      // sandwiched between two acquire loads of the sequence.
      const std::uint32_t seq_before =
          slot.seq.load(std::memory_order_acquire);
      if (seq_before & 1u) continue;
      TraceEvent event;
      event.kind = static_cast<TraceEventKind>(
          slot.kind.load(std::memory_order_relaxed));
      event.name = slot.name.load(std::memory_order_relaxed);
      event.cat = slot.cat.load(std::memory_order_relaxed);
      event.ts_us = slot.ts_us.load(std::memory_order_relaxed);
      event.dur_us = slot.dur_us.load(std::memory_order_relaxed);
      event.id = slot.id.load(std::memory_order_relaxed);
      event.arg_name = slot.arg_name.load(std::memory_order_relaxed);
      event.arg_value = slot.arg_value.load(std::memory_order_relaxed);
      event.model = slot.model.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_acquire) != seq_before) continue;
      if (event.name == nullptr) continue;
      event.tid = ring->tid;
      event.thread_label = label;
      out.push_back(event);
    }
  }
  return out;
}

std::string TraceRecorder::to_chrome_json() const {
  std::vector<TraceEvent> all = events();
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });

  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };

  // Thread-name metadata first, one per labeled ring.
  {
    std::vector<std::pair<std::uint64_t, const char*>> labels;
    {
      util::MutexLock lock(registry_mutex_);
      for (const auto& ring : rings_) {
        const char* label = ring->label.load(std::memory_order_relaxed);
        if (label != nullptr) labels.emplace_back(ring->tid, label);
      }
    }
    for (const auto& [tid, label] : labels) {
      comma();
      out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
          << ",\"args\":{\"name\":\"";
      json_escape(out, label);
      out << "\"}}";
    }
  }

  for (const TraceEvent& event : all) {
    comma();
    out << "{\"name\":\"";
    json_escape(out, event.name);
    out << "\"";
    if (event.cat != nullptr) {
      out << ",\"cat\":\"";
      json_escape(out, event.cat);
      out << "\"";
    }
    switch (event.kind) {
      case TraceEventKind::kSpan:
        out << ",\"ph\":\"X\",\"dur\":" << event.dur_us;
        break;
      case TraceEventKind::kInstant:
        out << ",\"ph\":\"i\",\"s\":\"t\"";
        break;
      case TraceEventKind::kCounter:
        out << ",\"ph\":\"C\"";
        break;
    }
    out << ",\"ts\":" << event.ts_us << ",\"pid\":1,\"tid\":" << event.tid;
    out << ",\"args\":{";
    bool first_arg = true;
    const auto arg_comma = [&] {
      if (!first_arg) out << ",";
      first_arg = false;
    };
    if (event.kind == TraceEventKind::kCounter) {
      arg_comma();
      out << "\"value\":" << event.arg_value;
    } else if (event.arg_name != nullptr) {
      arg_comma();
      out << "\"";
      json_escape(out, event.arg_name);
      out << "\":" << event.arg_value;
    }
    if (event.id != 0) {
      arg_comma();
      out << "\"request\":" << event.id;
    }
    if (event.model != nullptr) {
      arg_comma();
      out << "\"model\":\"";
      json_escape(out, event.model);
      out << "\"";
    }
    out << "}}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out.str();
}

bool TraceRecorder::write_chrome_json(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return false;
  file << to_chrome_json();
  file.flush();
  return static_cast<bool>(file);
}

void TraceRecorder::clear() {
  util::MutexLock lock(registry_mutex_);
  for (const auto& ring : rings_) {
    for (Slot& slot : ring->slots) {
      slot.name.store(nullptr, std::memory_order_relaxed);
      slot.seq.store(0, std::memory_order_relaxed);
    }
    ring->head.store(0, std::memory_order_release);
  }
}

TraceRecorder& trace() {
  static TraceRecorder recorder;
  return recorder;
}

}  // namespace mfdfp::obs
