#include "quant/dfp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mfdfp::quant {

double DfpFormat::step() const noexcept { return std::ldexp(1.0, -frac); }

double DfpFormat::min_value() const noexcept {
  return static_cast<double>(min_code()) * step();
}

double DfpFormat::max_value() const noexcept {
  return static_cast<double>(max_code()) * step();
}

std::int32_t DfpFormat::encode(float value) const noexcept {
  const double scaled = static_cast<double>(value) / step();
  // Round half away from zero; keeps symmetry around 0 like the RTL would
  // with a sign-magnitude rounder.
  const double rounded =
      scaled >= 0.0 ? std::floor(scaled + 0.5) : std::ceil(scaled - 0.5);
  const double clamped =
      std::clamp(rounded, static_cast<double>(min_code()),
                 static_cast<double>(max_code()));
  return static_cast<std::int32_t>(clamped);
}

float DfpFormat::decode(std::int32_t code) const noexcept {
  return static_cast<float>(static_cast<double>(code) * step());
}

float DfpFormat::quantize(float value) const noexcept {
  return decode(encode(value));
}

std::string DfpFormat::to_string() const {
  return "<" + std::to_string(bits) + "," + std::to_string(frac) + ">";
}

DfpFormat choose_format(float max_abs, int bits) {
  if (bits < 2 || bits > 31) {
    throw std::invalid_argument("choose_format: bits out of range");
  }
  DfpFormat format;
  format.bits = bits;
  if (!(max_abs > 0.0f) || !std::isfinite(max_abs)) {
    format.frac = bits - 1;
    return format;
  }
  // Minimal integer bits il (incl. sign) with 2^(il-1) >= max_abs.
  const int il = static_cast<int>(
                     std::ceil(std::log2(static_cast<double>(max_abs)))) +
                 1;
  format.frac = bits - il;
  return format;
}

void quantize_tensor(const DfpFormat& format, const tensor::Tensor& src,
                     tensor::Tensor& dst) {
  if (dst.shape() != src.shape()) {
    throw std::invalid_argument("quantize_tensor: shape mismatch");
  }
  const auto in = src.data();
  auto out = dst.data();
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = format.quantize(in[i]);
  }
}

float quantization_error(const DfpFormat& format, const tensor::Tensor& src) {
  float worst = 0.0f;
  for (float v : src.data()) {
    worst = std::max(worst, std::fabs(format.quantize(v) - v));
  }
  return worst;
}

}  // namespace mfdfp::quant
