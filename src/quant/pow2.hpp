// Integer power-of-two weight quantization (paper Section 5).
//
// Each weight w is represented by <s, e>: sign s and exponent
// e = max(round(log2|w|), -7), so the quantized value is s * 2^e. Because
// trained weight magnitudes are (almost always) below 1, e ranges over the 8
// values {0, -1, ..., -7}, giving a 4-bit encoding: 1 sign bit + 3 exponent
// bits. Multiplication by such a weight is an arithmetic shift in hardware.
//
// There is no zero code: w == 0 maps to the smallest magnitude 2^-7 — this
// matches the paper's encoding, and fine-tuning compensates.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace mfdfp::quant {

/// Exponent bounds of the 4-bit encoding.
inline constexpr int kPow2MinExp = -7;
inline constexpr int kPow2MaxExp = 0;

/// Decoded power-of-two weight.
struct Pow2Weight {
  bool negative = false;
  int exponent = kPow2MinExp;  ///< in [kPow2MinExp, kPow2MaxExp]

  [[nodiscard]] float value() const noexcept;
  [[nodiscard]] bool operator==(const Pow2Weight&) const noexcept = default;
};

enum class Rounding {
  kDeterministic,  ///< round(log2|w|) to nearest (paper's choice)
  kStochastic,     ///< Courbariaux-style stochastic rounding in log domain
};

/// Quantizes one float weight. `rng` is only consulted for kStochastic.
[[nodiscard]] Pow2Weight quantize_pow2(float w,
                                       Rounding rounding =
                                           Rounding::kDeterministic,
                                       util::Rng* rng = nullptr);

/// Nearest power-of-two value of `w` (deterministic mode convenience).
[[nodiscard]] float pow2_value(float w);

/// 4-bit nibble encoding: bit3 = sign (1 = negative), bits2..0 = -e.
[[nodiscard]] std::uint8_t encode_nibble(const Pow2Weight& w) noexcept;
[[nodiscard]] Pow2Weight decode_nibble(std::uint8_t nibble) noexcept;

/// Packs a weight tensor into nibbles, two per byte (low nibble first).
/// The packed stream is what the accelerator's weight buffer holds; its size
/// in bytes backs the Table 3 memory accounting.
[[nodiscard]] std::vector<std::uint8_t> pack_pow2(const tensor::Tensor& w);

/// Unpacks `count` weights from a nibble stream into float values.
[[nodiscard]] std::vector<float> unpack_pow2(
    const std::vector<std::uint8_t>& packed, std::size_t count);

/// Quantizes every element of `src` into `dst` (shapes must match).
void quantize_tensor_pow2(const tensor::Tensor& src, tensor::Tensor& dst,
                          Rounding rounding = Rounding::kDeterministic,
                          util::Rng* rng = nullptr);

}  // namespace mfdfp::quant
