#include "quant/quantizer.hpp"

#include <memory>
#include <stdexcept>

namespace mfdfp::quant {
namespace {

nn::TensorTransform make_pow2_transform(Rounding rounding,
                                        std::uint64_t seed) {
  if (rounding == Rounding::kDeterministic) {
    return [](const tensor::Tensor& src, tensor::Tensor& dst) {
      quantize_tensor_pow2(src, dst, Rounding::kDeterministic, nullptr);
    };
  }
  // One persistent stream per transform instance keeps stochastic draws
  // decorrelated across steps without reseeding.
  auto rng = std::make_shared<util::Rng>(seed);
  return [rng](const tensor::Tensor& src, tensor::Tensor& dst) {
    quantize_tensor_pow2(src, dst, Rounding::kStochastic, rng.get());
  };
}

nn::TensorTransform make_dfp_transform(DfpFormat format) {
  return [format](const tensor::Tensor& src, tensor::Tensor& dst) {
    quantize_tensor(format, src, dst);
  };
}

}  // namespace

void install_mf_dfp(nn::Network& network, const QuantSpec& spec,
                    const QuantizerOptions& options) {
  if (spec.layer_output.size() != network.layer_count()) {
    throw std::invalid_argument("install_mf_dfp: spec arity " +
                                std::to_string(spec.layer_output.size()) +
                                " != layer count " +
                                std::to_string(network.layer_count()));
  }
  for (std::size_t i = 0; i < network.layer_count(); ++i) {
    nn::Layer& layer = network.layer(i);
    layer.set_output_transform(make_dfp_transform(spec.layer_output[i]));
    if (auto* weighted = dynamic_cast<nn::WeightedLayer*>(&layer)) {
      weighted->set_param_transform(
          make_pow2_transform(options.rounding, options.seed + i),
          options.quantize_bias
              ? make_dfp_transform(spec.layer_output[i])
              : nn::TensorTransform{});
    }
  }
}

void strip_quantization(nn::Network& network) { network.clear_transforms(); }

void bake_quantized_params(nn::Network& network, const QuantSpec& spec,
                           const QuantizerOptions& options) {
  if (spec.layer_output.size() != network.layer_count()) {
    throw std::invalid_argument("bake_quantized_params: spec arity mismatch");
  }
  for (std::size_t i = 0; i < network.layer_count(); ++i) {
    auto* weighted = dynamic_cast<nn::WeightedLayer*>(&network.layer(i));
    if (weighted == nullptr) continue;
    tensor::Tensor qw{weighted->master_weights().shape()};
    quantize_tensor_pow2(weighted->master_weights(), qw,
                         Rounding::kDeterministic, nullptr);
    weighted->master_weights() = std::move(qw);
    if (options.quantize_bias) {
      tensor::Tensor qb{weighted->master_bias().shape()};
      quantize_tensor(spec.layer_output[i], weighted->master_bias(), qb);
      weighted->master_bias() = std::move(qb);
    }
  }
}

tensor::Tensor quantize_input(const QuantSpec& spec,
                              const tensor::Tensor& images) {
  tensor::Tensor out{images.shape()};
  quantize_tensor(spec.input, images, out);
  return out;
}

QuantSpec quantize_network(nn::Network& network,
                           const tensor::Tensor& calibration,
                           int activation_bits,
                           const QuantizerOptions& options) {
  QuantSpec spec = analyze_ranges(network, calibration, activation_bits);
  install_mf_dfp(network, spec, options);
  return spec;
}

}  // namespace mfdfp::quant
