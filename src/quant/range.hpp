// Ristretto-style range analysis (paper Section 4.1, following Gysel et al.).
//
// Runs calibration data through the *float* network and records per-layer
// activation ranges; each layer's dynamic fixed-point fractional length is
// then the largest f such that <bits, f> covers the observed max |activation|.
#pragma once

#include <vector>

#include "nn/network.hpp"
#include "quant/dfp.hpp"

namespace mfdfp::quant {

/// Per-network quantization decisions.
struct QuantSpec {
  int activation_bits = 8;
  DfpFormat input;                      ///< format of the network input
  std::vector<DfpFormat> layer_output;  ///< one per layer, post-activation
  std::vector<float> layer_max_abs;     ///< observed ranges (diagnostics)

  [[nodiscard]] std::string to_string() const;
};

/// Observes activation ranges over `calibration` ({N,C,H,W}) in eval mode
/// and derives formats with the given bit width. The network is run with its
/// currently installed transforms (normally none: a float network).
[[nodiscard]] QuantSpec analyze_ranges(nn::Network& network,
                                       const tensor::Tensor& calibration,
                                       int activation_bits = 8,
                                       std::size_t batch_size = 64);

}  // namespace mfdfp::quant
