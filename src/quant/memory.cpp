#include "quant/memory.hpp"

#include <sstream>

namespace mfdfp::quant {

std::string MemoryReport::to_string() const {
  std::ostringstream out;
  out << "MemoryReport{weights=" << weight_count << ", biases=" << bias_count
      << ", float=" << float_bytes << "B, mfdfp=" << mfdfp_bytes
      << "B, x" << compression() << "}";
  return out.str();
}

MemoryReport memory_report(const nn::Network& network) {
  MemoryReport report;
  report.layer_count = network.layer_count();
  std::size_t weighted_layers = 0;
  std::size_t packed_weight_bytes = 0;
  for (std::size_t i = 0; i < network.layer_count(); ++i) {
    const auto* weighted =
        dynamic_cast<const nn::WeightedLayer*>(&network.layer(i));
    if (weighted == nullptr) continue;
    ++weighted_layers;
    report.weight_count += weighted->master_weights().size();
    report.bias_count += weighted->master_bias().size();
    // Nibbles are packed per layer (as in the deployment image), so each
    // layer's stream rounds up to a whole byte independently.
    packed_weight_bytes += (weighted->master_weights().size() + 1) / 2;
  }
  report.float_bytes = 4 * (report.weight_count + report.bias_count);
  // 4-bit weights, 8-bit biases, and two 4-bit radix indices (m, n) per
  // weighted layer.
  report.mfdfp_bytes = packed_weight_bytes + report.bias_count +
                       weighted_layers;
  return report;
}

}  // namespace mfdfp::quant
