// Parameter-memory accounting (paper Table 3).
//
// Floating-point baseline: 32 bits per weight and per bias.
// MF-DFP: 4 bits per weight (sign + 3-bit exponent), 8 bits per bias, plus
// per-layer radix bookkeeping (two small indices per layer, negligible but
// counted for honesty).
#pragma once

#include <string>

#include "nn/network.hpp"

namespace mfdfp::quant {

struct MemoryReport {
  std::size_t weight_count = 0;
  std::size_t bias_count = 0;
  std::size_t layer_count = 0;

  std::size_t float_bytes = 0;   ///< 32-bit weights + biases
  std::size_t mfdfp_bytes = 0;   ///< 4-bit weights, 8-bit biases, radix regs

  [[nodiscard]] double float_mb() const noexcept {
    return static_cast<double>(float_bytes) / (1024.0 * 1024.0);
  }
  [[nodiscard]] double mfdfp_mb() const noexcept {
    return static_cast<double>(mfdfp_bytes) / (1024.0 * 1024.0);
  }
  /// float / mfdfp compression factor.
  [[nodiscard]] double compression() const noexcept {
    return mfdfp_bytes == 0
               ? 0.0
               : static_cast<double>(float_bytes) /
                     static_cast<double>(mfdfp_bytes);
  }

  [[nodiscard]] std::string to_string() const;
};

/// Counts parameters of `network` and sizes both representations.
[[nodiscard]] MemoryReport memory_report(const nn::Network& network);

}  // namespace mfdfp::quant
