// Dynamic fixed-point (DFP) value format (paper Section 4).
//
// A DFP format is a pair <b, f>: b-bit two's-complement codes interpreted as
// code * 2^-f. "Dynamic" means different layers use different f; the format
// itself is static per layer. The paper fixes b = 8 for all activations.
//
// quantize() is round-to-nearest with saturation to the representable range
// [-(2^(b-1)) * 2^-f, (2^(b-1)-1) * 2^-f].
#pragma once

#include <cstdint>
#include <string>

#include "tensor/tensor.hpp"

namespace mfdfp::quant {

struct DfpFormat {
  int bits = 8;  ///< total width incl. sign; 2 <= bits <= 31
  int frac = 0;  ///< fractional length f (may be negative or > bits)

  /// Value of one LSB: 2^-frac.
  [[nodiscard]] double step() const noexcept;

  /// Smallest/largest representable values.
  [[nodiscard]] double min_value() const noexcept;
  [[nodiscard]] double max_value() const noexcept;

  /// Integer code range.
  [[nodiscard]] std::int32_t min_code() const noexcept {
    return -(std::int32_t{1} << (bits - 1));
  }
  [[nodiscard]] std::int32_t max_code() const noexcept {
    return (std::int32_t{1} << (bits - 1)) - 1;
  }

  /// Nearest representable code for `value` (round half away from zero,
  /// saturating).
  [[nodiscard]] std::int32_t encode(float value) const noexcept;

  /// Real value of a code (no range check).
  [[nodiscard]] float decode(std::int32_t code) const noexcept;

  /// encode-then-decode: nearest representable value.
  [[nodiscard]] float quantize(float value) const noexcept;

  /// "<8,5>" display form.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool operator==(const DfpFormat&) const noexcept = default;
};

/// Chooses the fractional length for `bits`-wide codes so that `max_abs`
/// fits without saturation of the negative range: the minimal number of
/// integer bits il with 2^(il-1) >= max_abs, then f = bits - il.
/// A zero/degenerate range yields the all-fractional format f = bits - 1.
[[nodiscard]] DfpFormat choose_format(float max_abs, int bits = 8);

/// Quantizes every element of `src` into `dst` (shapes must match).
void quantize_tensor(const DfpFormat& format, const tensor::Tensor& src,
                     tensor::Tensor& dst);

/// Returns the worst-case (max) absolute quantization error over the tensor.
[[nodiscard]] float quantization_error(const DfpFormat& format,
                                       const tensor::Tensor& src);

}  // namespace mfdfp::quant
