#include "quant/pow2.hpp"

#include <cmath>
#include <stdexcept>

namespace mfdfp::quant {

float Pow2Weight::value() const noexcept {
  const float magnitude = std::ldexp(1.0f, exponent);
  return negative ? -magnitude : magnitude;
}

Pow2Weight quantize_pow2(float w, Rounding rounding, util::Rng* rng) {
  Pow2Weight q;
  q.negative = std::signbit(w);
  const float magnitude = std::fabs(w);
  if (!(magnitude > 0.0f) || !std::isfinite(magnitude)) {
    q.exponent = kPow2MinExp;  // zero / non-finite -> smallest magnitude
    return q;
  }
  const double log_mag = std::log2(static_cast<double>(magnitude));
  double rounded;
  if (rounding == Rounding::kDeterministic) {
    rounded = std::floor(log_mag + 0.5);
  } else {
    if (rng == nullptr) {
      throw std::invalid_argument("quantize_pow2: stochastic needs rng");
    }
    // P(ceil) = fractional part: unbiased in the log domain.
    const double floor_e = std::floor(log_mag);
    const double frac = log_mag - floor_e;
    rounded = floor_e + (rng->uniform() < frac ? 1.0 : 0.0);
  }
  q.exponent = static_cast<int>(
      std::min<double>(std::max<double>(rounded, kPow2MinExp), kPow2MaxExp));
  return q;
}

float pow2_value(float w) { return quantize_pow2(w).value(); }

std::uint8_t encode_nibble(const Pow2Weight& w) noexcept {
  const auto magnitude_bits = static_cast<std::uint8_t>(-w.exponent);
  return static_cast<std::uint8_t>((w.negative ? 0x8 : 0x0) |
                                   (magnitude_bits & 0x7));
}

Pow2Weight decode_nibble(std::uint8_t nibble) noexcept {
  Pow2Weight w;
  w.negative = (nibble & 0x8) != 0;
  w.exponent = -static_cast<int>(nibble & 0x7);
  return w;
}

std::vector<std::uint8_t> pack_pow2(const tensor::Tensor& w) {
  std::vector<std::uint8_t> packed((w.size() + 1) / 2, 0);
  for (std::size_t i = 0; i < w.size(); ++i) {
    const std::uint8_t nibble = encode_nibble(quantize_pow2(w[i]));
    if (i % 2 == 0) {
      packed[i / 2] = nibble;
    } else {
      packed[i / 2] |= static_cast<std::uint8_t>(nibble << 4);
    }
  }
  return packed;
}

std::vector<float> unpack_pow2(const std::vector<std::uint8_t>& packed,
                               std::size_t count) {
  if (packed.size() < (count + 1) / 2) {
    throw std::invalid_argument("unpack_pow2: stream too short");
  }
  std::vector<float> values(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint8_t byte = packed[i / 2];
    const std::uint8_t nibble =
        (i % 2 == 0) ? (byte & 0xF) : static_cast<std::uint8_t>(byte >> 4);
    values[i] = decode_nibble(nibble).value();
  }
  return values;
}

void quantize_tensor_pow2(const tensor::Tensor& src, tensor::Tensor& dst,
                          Rounding rounding, util::Rng* rng) {
  if (dst.shape() != src.shape()) {
    throw std::invalid_argument("quantize_tensor_pow2: shape mismatch");
  }
  const auto in = src.data();
  auto out = dst.data();
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = quantize_pow2(in[i], rounding, rng).value();
  }
}

}  // namespace mfdfp::quant
