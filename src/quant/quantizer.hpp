// Installs / removes MF-DFP fake quantization on a Network.
//
// After install():
//   * every WeightedLayer's forward uses power-of-two effective weights and
//     8-bit-DFP effective biases derived from its float masters;
//   * every layer's output is snapped to its 8-bit DFP format;
//   * the backward pass is unchanged (straight-through estimator), so the
//     optimizer keeps updating float master weights — Algorithm 1 lines 4-7.
//
// The *input* image format is part of QuantSpec; callers quantize inputs via
// quantize_input (the hardware DMA would deliver 8-bit inputs).
#pragma once

#include "nn/network.hpp"
#include "quant/pow2.hpp"
#include "quant/range.hpp"

namespace mfdfp::quant {

struct QuantizerOptions {
  Rounding rounding = Rounding::kDeterministic;
  /// Quantize biases to the layer's output DFP format (8-bit). Disable to
  /// keep float biases (ablation only; hardware requires quantized biases).
  bool quantize_bias = true;
  /// Seed for stochastic rounding streams.
  std::uint64_t seed = 0x9e3779b9ULL;
};

/// Applies the spec to `network` in place. The spec must have one output
/// format per layer. Throws std::invalid_argument on arity mismatch.
void install_mf_dfp(nn::Network& network, const QuantSpec& spec,
                    const QuantizerOptions& options = {});

/// Removes all transforms (the network computes in float again).
void strip_quantization(nn::Network& network);

/// Convenience: snaps master weights/biases to their quantized values so the
/// network remains quantized even after strip_quantization. Used when
/// freezing a converted model for deployment.
void bake_quantized_params(nn::Network& network, const QuantSpec& spec,
                           const QuantizerOptions& options = {});

/// Quantizes input images to the spec's input format.
[[nodiscard]] tensor::Tensor quantize_input(const QuantSpec& spec,
                                            const tensor::Tensor& images);

/// One-shot post-training quantization: analyze + install.
[[nodiscard]] QuantSpec quantize_network(nn::Network& network,
                                         const tensor::Tensor& calibration,
                                         int activation_bits = 8,
                                         const QuantizerOptions& options = {});

}  // namespace mfdfp::quant
