#include "quant/range.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace mfdfp::quant {

std::string QuantSpec::to_string() const {
  std::ostringstream out;
  out << "QuantSpec{bits=" << activation_bits
      << ", input=" << input.to_string();
  for (std::size_t i = 0; i < layer_output.size(); ++i) {
    out << ", L" << i << "=" << layer_output[i].to_string();
    if (i < layer_max_abs.size()) out << "(|max|=" << layer_max_abs[i] << ")";
  }
  out << "}";
  return out.str();
}

QuantSpec analyze_ranges(nn::Network& network,
                         const tensor::Tensor& calibration,
                         int activation_bits, std::size_t batch_size) {
  if (calibration.shape().rank() != 4 || calibration.shape().dim(0) == 0) {
    throw std::invalid_argument("analyze_ranges: need {N,C,H,W} calibration");
  }
  if (network.layer_count() == 0) {
    throw std::invalid_argument("analyze_ranges: empty network");
  }

  const std::size_t total = calibration.shape().dim(0);
  float input_max = 0.0f;
  std::vector<float> layer_max(network.layer_count(), 0.0f);

  for (std::size_t begin = 0; begin < total; begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, total);
    tensor::Tensor activation =
        tensor::slice_outer(calibration, begin, end);
    input_max = std::max(input_max, activation.max_abs());
    for (std::size_t i = 0; i < network.layer_count(); ++i) {
      activation = network.layer(i).forward(activation, nn::Mode::kEval);
      layer_max[i] = std::max(layer_max[i], activation.max_abs());
    }
  }

  QuantSpec spec;
  spec.activation_bits = activation_bits;
  spec.input = choose_format(input_max, activation_bits);
  spec.layer_max_abs = layer_max;
  spec.layer_output.reserve(layer_max.size());
  for (float m : layer_max) {
    spec.layer_output.push_back(choose_format(m, activation_bits));
  }
  return spec;
}

}  // namespace mfdfp::quant
