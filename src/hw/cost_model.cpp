#include "hw/cost_model.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace mfdfp::hw {
namespace {

// ---------------------------------------------------------------------------
// Calibrated 65 nm / 250 MHz block constants.
//
// Derivation (see DESIGN.md): with the three Table 1 design points
//   FP(32,32) 1 PU : 16.52 mm2, 1361.61 mW
//   MF-DFP(8,4) 1 PU : 1.99 mm2, 138.96 mW
//   MF-DFP(8,4) 2 PU : 3.96 mm2, 270.27 mW
// the shared (DMA + memory interface + global control) block and the per-PU
// totals separate linearly:
//   area: shared 0.02 mm2, MF PU 1.97 mm2, FP PU 16.50 mm2
//   power: shared 7.65 mW, MF PU 131.31 mW, FP PU 1353.96 mW
// Block constants below decompose each PU with physically plausible ratios
// (FP32 multiplier ~18k um2 / ~2.3 mW at 250 MHz; FP adder 0.4x multiplier;
// SRAM macro ~121 um2/byte incl. periphery at these small capacities) and
// reproduce the totals to < 0.1 %.
// ---------------------------------------------------------------------------

// Product wire width feeding the MF-DFP adder tree (Fig. 2a).
constexpr int kProductBitsForCost = 16;

// Area (mm^2 per instance, or per bit / per byte where noted).
constexpr double kAreaShifter = 0.0008;          // 8->16 arithmetic shifter
constexpr double kAreaIntAddPerBit = 0.00004;    // ripple/carry-select adder
constexpr double kAreaAccRoute = 0.0045;         // 48b acc + routing + m/n regs
constexpr double kAreaNlMfdfp = 0.0005;          // 8-bit NL unit
constexpr double kAreaNlFloat = 0.002;           // 32-bit NL unit
constexpr double kAreaFpMult = 0.0181611;        // FP32 multiplier (pipelined)
constexpr double kAreaFpAdd = kAreaFpMult * 0.4;
constexpr double kAreaFpAcc = kAreaFpMult * 0.5;
constexpr double kAreaSramPerByte = 1.2084961e-4;
constexpr double kAreaPuControl = 0.03;
constexpr double kAreaShared = 0.02;

// Power (mW per instance / per bit / per byte) at 250 MHz, typical corner.
constexpr double kPowerShifter = 0.05;
constexpr double kPowerIntAddPerBit = 0.0025;
constexpr double kPowerAccRoute = 0.35;
constexpr double kPowerNlMfdfp = 0.04;
constexpr double kPowerNlFloat = 0.15;
constexpr double kPowerFpMult = 2.2658139;
constexpr double kPowerFpAdd = kPowerFpMult * 0.4;
constexpr double kPowerFpAcc = kPowerFpMult * 0.5;
constexpr double kPowerSramPerByte = 6.23617e-3;
constexpr double kPowerPuControl = 25.0;
constexpr double kPowerShared = 7.65;

/// Total adder-tree bit count per neuron for a widening tree over `synapses`
/// product lanes of `product_bits` each: rank i has synapses/2^i adders of
/// (product_bits + i) bits.
[[nodiscard]] double adder_tree_bits(std::size_t synapses, int product_bits) {
  double bits = 0.0;
  int rank = 1;
  for (std::size_t count = synapses / 2; count >= 1; count /= 2, ++rank) {
    bits += static_cast<double>(count) * (product_bits + rank);
    if (count == 1) break;
  }
  return bits;
}

}  // namespace

std::size_t AcceleratorConfig::buffer_bytes_per_pu() const noexcept {
  const std::size_t act_bits = activation_bits();
  const std::size_t w_bits = weight_bits();
  return (input_buffer_entries * act_bits + weight_buffer_entries * w_bits +
          output_buffer_entries * act_bits) /
         8;
}

std::string AcceleratorConfig::to_string() const {
  std::ostringstream out;
  out << (precision == Precision::kFloat32 ? "Float(32,32)" : "MF-DFP(8,4)")
      << " x" << processing_units << "PU " << neurons_per_pu << "n/"
      << synapses_per_neuron << "s @" << clock_hz / 1e6 << "MHz";
  return out.str();
}

AcceleratorConfig float_baseline_config() {
  AcceleratorConfig config;
  config.precision = Precision::kFloat32;
  config.processing_units = 1;
  return config;
}

AcceleratorConfig mfdfp_config(std::size_t processing_units) {
  AcceleratorConfig config;
  config.precision = Precision::kMfDfp;
  config.processing_units = processing_units;
  return config;
}

double CostBreakdown::total_area_mm2() const noexcept {
  return multiplier_area_mm2 + adder_tree_area_mm2 + accumulator_area_mm2 +
         nonlinearity_area_mm2 + buffer_area_mm2 + control_area_mm2;
}

double CostBreakdown::total_power_mw() const noexcept {
  return multiplier_power_mw + adder_tree_power_mw + accumulator_power_mw +
         nonlinearity_power_mw + buffer_power_mw + control_power_mw;
}

CostBreakdown cost_model(const AcceleratorConfig& config) {
  if (config.processing_units == 0 || config.neurons_per_pu == 0 ||
      config.synapses_per_neuron < 2 ||
      (config.synapses_per_neuron & (config.synapses_per_neuron - 1)) != 0) {
    throw std::invalid_argument(
        "cost_model: need >=1 PU and a power-of-two synapse count >= 2");
  }
  const auto pus = static_cast<double>(config.processing_units);
  const auto neurons = static_cast<double>(config.neurons_per_pu);
  const auto synapses = static_cast<double>(config.synapses_per_neuron);
  const double mult_count = pus * neurons * synapses;
  const double buffer_bytes =
      pus * static_cast<double>(config.buffer_bytes_per_pu());

  CostBreakdown cost;
  if (config.precision == Precision::kFloat32) {
    // 32-bit FP multipliers, (synapses-1) FP adders per neuron + FP acc.
    const double adders = pus * neurons * (synapses - 1.0);
    cost.multiplier_area_mm2 = mult_count * kAreaFpMult;
    cost.adder_tree_area_mm2 = adders * kAreaFpAdd;
    cost.accumulator_area_mm2 = pus * neurons * kAreaFpAcc;
    cost.nonlinearity_area_mm2 = pus * neurons * kAreaNlFloat;
    cost.multiplier_power_mw = mult_count * kPowerFpMult;
    cost.adder_tree_power_mw = adders * kPowerFpAdd;
    cost.accumulator_power_mw = pus * neurons * kPowerFpAcc;
    cost.nonlinearity_power_mw = pus * neurons * kPowerNlFloat;
  } else {
    const double tree_bits =
        pus * neurons *
        adder_tree_bits(config.synapses_per_neuron, kProductBitsForCost);
    cost.multiplier_area_mm2 = mult_count * kAreaShifter;
    cost.adder_tree_area_mm2 = tree_bits * kAreaIntAddPerBit;
    cost.accumulator_area_mm2 = pus * neurons * kAreaAccRoute;
    cost.nonlinearity_area_mm2 = pus * neurons * kAreaNlMfdfp;
    cost.multiplier_power_mw = mult_count * kPowerShifter;
    cost.adder_tree_power_mw = tree_bits * kPowerIntAddPerBit;
    cost.accumulator_power_mw = pus * neurons * kPowerAccRoute;
    cost.nonlinearity_power_mw = pus * neurons * kPowerNlMfdfp;
  }
  cost.buffer_area_mm2 = buffer_bytes * kAreaSramPerByte;
  cost.buffer_power_mw = buffer_bytes * kPowerSramPerByte;
  cost.control_area_mm2 = kAreaShared + pus * kAreaPuControl;
  cost.control_power_mw = kPowerShared + pus * kPowerPuControl;
  return cost;
}

double saving(double base, double x) {
  if (base <= 0.0) throw std::invalid_argument("saving: base <= 0");
  return (base - x) / base;
}

}  // namespace mfdfp::hw
