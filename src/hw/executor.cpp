#include "hw/executor.hpp"

#include <cmath>
#include <stdexcept>

namespace mfdfp::hw {

using quant::DfpFormat;
using quant::Pow2Weight;
using tensor::Shape;
using tensor::Tensor;

Tensor CodeTensor::decode() const {
  const DfpFormat format{kInputBits, frac};
  Tensor out{shape};
  for (std::size_t i = 0; i < codes.size(); ++i) {
    out[i] = format.decode(codes[i]);
  }
  return out;
}

CodeTensor CodeTensor::encode(const Tensor& values, int frac) {
  const DfpFormat format{kInputBits, frac};
  CodeTensor out;
  out.shape = values.shape();
  out.frac = frac;
  out.codes.resize(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out.codes[i] = static_cast<std::int8_t>(format.encode(values[i]));
  }
  return out;
}

AcceleratorExecutor::AcceleratorExecutor(const QNetDesc& desc) : desc_(desc) {
  decoded_weights_.resize(desc_.layers.size());
  for (std::size_t i = 0; i < desc_.layers.size(); ++i) {
    const std::vector<std::uint8_t>* packed = nullptr;
    std::size_t count = 0;
    if (const auto* conv = std::get_if<QConv>(&desc_.layers[i])) {
      packed = &conv->packed_weights;
      count = conv->out_c * conv->in_c * conv->kernel * conv->kernel;
    } else if (const auto* fc =
                   std::get_if<QFullyConnected>(&desc_.layers[i])) {
      packed = &fc->packed_weights;
      count = fc->out_features * fc->in_features;
    }
    if (packed == nullptr) continue;
    if (packed->size() < (count + 1) / 2) {
      throw std::invalid_argument("AcceleratorExecutor: short weight stream");
    }
    auto& decoded = decoded_weights_[i];
    decoded.resize(count);
    for (std::size_t k = 0; k < count; ++k) {
      const std::uint8_t byte = (*packed)[k / 2];
      const std::uint8_t nibble =
          (k % 2 == 0) ? (byte & 0xF) : static_cast<std::uint8_t>(byte >> 4);
      decoded[k] = quant::decode_nibble(nibble);
    }
  }
}

namespace {

/// Runs one neuron over `count` (input code, weight) pairs in 16-synapse
/// tiles through the shift datapath; returns the routed 8-bit output code.
std::int32_t neuron_dot(std::span<const std::int8_t> input_codes,
                        std::span<const std::size_t> input_index,
                        std::span<const Pow2Weight> weights, int in_frac,
                        int out_frac, std::int32_t bias_code) {
  AccumulatorRouting acc(in_frac, out_frac, bias_code);
  std::int64_t products[kSynapsesPerNeuron];
  const std::size_t count = weights.size();
  for (std::size_t tile = 0; tile < count; tile += kSynapsesPerNeuron) {
    const std::size_t lanes =
        std::min<std::size_t>(kSynapsesPerNeuron, count - tile);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const std::size_t k = tile + lane;
      const std::int32_t x =
          input_index.empty()
              ? input_codes[k]
              : (input_index[k] == SIZE_MAX
                     ? 0
                     : input_codes[input_index[k]]);
      products[lane] = synapse_product(x, weights[k]);
    }
    acc.accumulate(adder_tree({products, lanes}));
  }
  return acc.route();
}

}  // namespace

CodeTensor AcceleratorExecutor::run_conv(const QConv& conv,
                                         std::span<const Pow2Weight> weights,
                                         const CodeTensor& input) const {
  const Shape& in_shape = input.shape;
  if (in_shape.rank() != 4 || in_shape.c() != conv.in_c) {
    throw std::invalid_argument("run_conv: bad input shape");
  }
  const std::size_t batch = in_shape.n();
  const std::size_t ih = in_shape.h(), iw = in_shape.w();
  const std::size_t k = conv.kernel;
  const std::size_t oh = (ih + 2 * conv.pad - k) / conv.stride + 1;
  const std::size_t ow = (iw + 2 * conv.pad - k) / conv.stride + 1;
  const std::size_t patch = conv.in_c * k * k;

  CodeTensor out;
  out.shape = Shape{batch, conv.out_c, oh, ow};
  out.frac = conv.out_frac;
  out.codes.resize(out.shape.size());

  // Patch gather indices (SIZE_MAX marks a padded tap -> zero input).
  std::vector<std::size_t> index(patch);
  std::size_t out_i = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    const std::size_t image_base = n * conv.in_c * ih * iw;
    for (std::size_t oc = 0; oc < conv.out_c; ++oc) {
      const std::span<const Pow2Weight> row{weights.data() + oc * patch,
                                            patch};
      const std::int32_t bias = conv.bias_codes[oc];
      // Recompute gather indices per output pixel (oc-invariant, but the
      // loop order keeps weight rows hot; index build is cheap).
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++out_i) {
          std::size_t p = 0;
          for (std::size_t c = 0; c < conv.in_c; ++c) {
            for (std::size_t ky = 0; ky < k; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * conv.stride + ky) -
                  static_cast<std::ptrdiff_t>(conv.pad);
              for (std::size_t kx = 0; kx < k; ++kx, ++p) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * conv.stride + kx) -
                    static_cast<std::ptrdiff_t>(conv.pad);
                const bool inside =
                    iy >= 0 && iy < static_cast<std::ptrdiff_t>(ih) &&
                    ix >= 0 && ix < static_cast<std::ptrdiff_t>(iw);
                index[p] = inside
                               ? image_base + (c * ih +
                                               static_cast<std::size_t>(iy)) *
                                                  iw +
                                     static_cast<std::size_t>(ix)
                               : SIZE_MAX;
              }
            }
          }
          out.codes[out_i] = static_cast<std::int8_t>(
              neuron_dot(input.codes, index, row, input.frac, conv.out_frac,
                         bias));
        }
      }
    }
  }
  return out;
}

CodeTensor AcceleratorExecutor::run_fc(const QFullyConnected& fc,
                                       std::span<const Pow2Weight> weights,
                                       const CodeTensor& input) const {
  if (input.shape.rank() != 2 || input.shape.dim(1) != fc.in_features) {
    throw std::invalid_argument("run_fc: bad input shape");
  }
  const std::size_t batch = input.shape.dim(0);
  CodeTensor out;
  out.shape = Shape{batch, fc.out_features};
  out.frac = fc.out_frac;
  out.codes.resize(out.shape.size());
  for (std::size_t n = 0; n < batch; ++n) {
    const std::span<const std::int8_t> row{
        input.codes.data() + n * fc.in_features, fc.in_features};
    for (std::size_t o = 0; o < fc.out_features; ++o) {
      const std::span<const Pow2Weight> wrow{
          weights.data() + o * fc.in_features, fc.in_features};
      out.codes[n * fc.out_features + o] = static_cast<std::int8_t>(
          neuron_dot(row, {}, wrow, input.frac, fc.out_frac,
                     fc.bias_codes[o]));
    }
  }
  return out;
}

CodeTensor AcceleratorExecutor::run_pool(const QPool& pool,
                                         const CodeTensor& input) const {
  const Shape& s = input.shape;
  if (s.rank() != 4) throw std::invalid_argument("run_pool: rank-4 required");
  const std::size_t ih = s.h(), iw = s.w();
  const std::size_t oh = (ih + 2 * pool.pad - pool.window) / pool.stride + 1;
  const std::size_t ow = (iw + 2 * pool.pad - pool.window) / pool.stride + 1;

  CodeTensor out;
  out.shape = Shape{s.n(), s.c(), oh, ow};
  out.frac = pool.out_frac;
  out.codes.resize(out.shape.size());

  const DfpFormat out_format{kInputBits, pool.out_frac};
  const float inv_area =
      1.0f / static_cast<float>(pool.window * pool.window);
  std::size_t out_i = 0;
  for (std::size_t n = 0; n < s.n(); ++n) {
    for (std::size_t c = 0; c < s.c(); ++c) {
      const std::size_t plane = (n * s.c() + c) * ih * iw;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++out_i) {
          bool found = false;
          std::int32_t best = 0;
          std::int64_t sum = 0;
          for (std::size_t ky = 0; ky < pool.window; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * pool.stride + ky) -
                static_cast<std::ptrdiff_t>(pool.pad);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(ih)) continue;
            for (std::size_t kx = 0; kx < pool.window; ++kx) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * pool.stride + kx) -
                  static_cast<std::ptrdiff_t>(pool.pad);
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(iw)) continue;
              const std::int32_t code =
                  input.codes[plane + static_cast<std::size_t>(iy) * iw +
                              static_cast<std::size_t>(ix)];
              if (!found || code > best) best = code;
              found = true;
              sum += code;
            }
          }
          if (pool.is_max) {
            out.codes[out_i] = static_cast<std::int8_t>(
                convert_code(found ? best : 0, input.frac, pool.out_frac));
          } else {
            // Mirror the float model exactly: float mean of decoded taps
            // (exact for window^2 * 127 < 2^24), then re-encode.
            const float value =
                static_cast<float>(std::ldexp(static_cast<double>(sum),
                                              -input.frac)) *
                inv_area;
            out.codes[out_i] =
                static_cast<std::int8_t>(out_format.encode(value));
          }
        }
      }
    }
  }
  return out;
}

CodeTensor AcceleratorExecutor::run_codes(CodeTensor input) const {
  for (std::size_t i = 0; i < desc_.layers.size(); ++i) {
    const QLayer& layer = desc_.layers[i];
    if (const auto* conv = std::get_if<QConv>(&layer)) {
      input = run_conv(*conv, decoded_weights_[i], input);
    } else if (const auto* fc = std::get_if<QFullyConnected>(&layer)) {
      input = run_fc(*fc, decoded_weights_[i], input);
    } else if (const auto* pool = std::get_if<QPool>(&layer)) {
      input = run_pool(*pool, input);
    } else if (const auto* relu = std::get_if<QRelu>(&layer)) {
      for (std::int8_t& code : input.codes) {
        const std::int32_t rectified = std::max<std::int32_t>(0, code);
        code = static_cast<std::int8_t>(
            convert_code(rectified, input.frac, relu->out_frac));
      }
      input.frac = relu->out_frac;
    } else if (const auto* flat = std::get_if<QFlatten>(&layer)) {
      std::size_t features = 1;
      for (std::size_t axis = 1; axis < input.shape.rank(); ++axis) {
        features *= input.shape.dim(axis);
      }
      input.shape = Shape{input.shape.dim(0), features};
      if (flat->out_frac != input.frac) {
        for (std::int8_t& code : input.codes) {
          code = static_cast<std::int8_t>(
              convert_code(code, input.frac, flat->out_frac));
        }
        input.frac = flat->out_frac;
      }
    }
  }
  return input;
}

Tensor AcceleratorExecutor::run(const Tensor& images) const {
  const CodeTensor input = CodeTensor::encode(images, desc_.input_frac);
  return run_codes(input).decode();
}

Tensor run_ensemble(std::span<const AcceleratorExecutor* const> members,
                    const Tensor& images) {
  if (members.empty()) {
    throw std::invalid_argument("run_ensemble: no members");
  }
  Tensor sum = members.front()->run(images);
  for (std::size_t m = 1; m < members.size(); ++m) {
    sum.add(members[m]->run(images));
  }
  sum.scale(1.0f / static_cast<float>(members.size()));
  return sum;
}

}  // namespace mfdfp::hw
