#include "hw/executor.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "hw/layer_profile.hpp"

namespace mfdfp::hw {

using quant::DfpFormat;
using quant::Pow2Weight;
using tensor::Shape;
using tensor::Tensor;

Tensor CodeTensor::decode() const {
  const DfpFormat format{kInputBits, frac};
  Tensor out{shape};
  for (std::size_t i = 0; i < codes.size(); ++i) {
    out[i] = format.decode(codes[i]);
  }
  return out;
}

void CodeTensor::encode_into(const Tensor& values, int frac, CodeTensor& out) {
  const DfpFormat format{kInputBits, frac};
  out.shape = values.shape();
  out.frac = frac;
  out.codes.resize(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out.codes[i] = static_cast<std::int8_t>(format.encode(values[i]));
  }
}

CodeTensor CodeTensor::encode(const Tensor& values, int frac) {
  CodeTensor out;
  encode_into(values, frac, out);
  return out;
}

AcceleratorExecutor::AcceleratorExecutor(QNetDesc desc)
    : desc_(std::move(desc)) {
  decoded_weights_.resize(desc_.layers.size());
  fast_weights_.resize(desc_.layers.size());
  for (std::size_t i = 0; i < desc_.layers.size(); ++i) {
    const std::vector<std::uint8_t>* packed = nullptr;
    std::size_t count = 0;
    if (const auto* conv = std::get_if<QConv>(&desc_.layers[i])) {
      packed = &conv->packed_weights;
      count = conv->out_c * conv->in_c * conv->kernel * conv->kernel;
    } else if (const auto* fc =
                   std::get_if<QFullyConnected>(&desc_.layers[i])) {
      packed = &fc->packed_weights;
      count = fc->out_features * fc->in_features;
    }
    if (packed == nullptr) continue;
    if (packed->size() < (count + 1) / 2) {
      throw std::invalid_argument("AcceleratorExecutor: short weight stream");
    }
    auto& decoded = decoded_weights_[i];
    auto& fast = fast_weights_[i];
    decoded.resize(count);
    fast.resize(count);
    for (std::size_t k = 0; k < count; ++k) {
      const std::uint8_t byte = (*packed)[k / 2];
      const std::uint8_t nibble =
          (k % 2 == 0) ? (byte & 0xF) : static_cast<std::uint8_t>(byte >> 4);
      decoded[k] = quant::decode_nibble(nibble);
      // synapse_product as a plain multiplier: x * (+/-2^(7+e)), same
      // 2^-(m+7) units — the batched kernels' integer dot product.
      const std::int32_t magnitude =
          std::int32_t{1} << (kProductFracBits + decoded[k].exponent);
      fast[k] = decoded[k].negative ? -magnitude : magnitude;
    }
  }
}

namespace {

/// Runs one neuron over `count` (input code, weight) pairs in 16-synapse
/// tiles through the shift datapath; returns the routed 8-bit output code.
std::int32_t neuron_dot(std::span<const std::int8_t> input_codes,
                        std::span<const std::size_t> input_index,
                        std::span<const Pow2Weight> weights, int in_frac,
                        int out_frac, std::int32_t bias_code) {
  AccumulatorRouting acc(in_frac, out_frac, bias_code);
  std::int64_t products[kSynapsesPerNeuron];
  const std::size_t count = weights.size();
  for (std::size_t tile = 0; tile < count; tile += kSynapsesPerNeuron) {
    const std::size_t lanes =
        std::min<std::size_t>(kSynapsesPerNeuron, count - tile);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const std::size_t k = tile + lane;
      const std::int32_t x =
          input_index.empty()
              ? input_codes[k]
              : (input_index[k] == SIZE_MAX
                     ? 0
                     : input_codes[input_index[k]]);
      products[lane] = synapse_product(x, weights[k]);
    }
    acc.accumulate(adder_tree({products, lanes}));
  }
  return acc.route();
}

/// Layer geometry shared by the reference and fast conv kernels.
struct ConvGeometry {
  std::size_t batch, ih, iw, oh, ow, patch;
};

ConvGeometry conv_geometry(const QConv& conv, const Shape& in_shape,
                           const char* who) {
  if (in_shape.rank() != 4 || in_shape.c() != conv.in_c) {
    throw std::invalid_argument(std::string(who) + ": bad input shape");
  }
  ConvGeometry g;
  g.batch = in_shape.n();
  g.ih = in_shape.h();
  g.iw = in_shape.w();
  g.oh = (g.ih + 2 * conv.pad - conv.kernel) / conv.stride + 1;
  g.ow = (g.iw + 2 * conv.pad - conv.kernel) / conv.stride + 1;
  g.patch = conv.in_c * conv.kernel * conv.kernel;
  return g;
}

/// In-place ReLU + refrac stage, shared by the reference and fast layer
/// loops (the run_batch == run bit-identity depends on there being exactly
/// one implementation of this rounding).
void apply_relu(CodeTensor& input, int out_frac) {
  for (std::int8_t& code : input.codes) {
    const std::int32_t rectified = std::max<std::int32_t>(0, code);
    code = static_cast<std::int8_t>(
        convert_code(rectified, input.frac, out_frac));
  }
  input.frac = out_frac;
}

/// In-place flatten (+ refrac when the output format differs), shared by
/// both layer loops for the same reason as apply_relu.
void apply_flatten(CodeTensor& input, int out_frac) {
  std::size_t features = 1;
  for (std::size_t axis = 1; axis < input.shape.rank(); ++axis) {
    features *= input.shape.dim(axis);
  }
  input.shape = Shape{input.shape.dim(0), features};
  if (out_frac != input.frac) {
    for (std::int8_t& code : input.codes) {
      code = static_cast<std::int8_t>(
          convert_code(code, input.frac, out_frac));
    }
    input.frac = out_frac;
  }
}

/// Fast-path neuron: exact integer dot product with the +/-2^(7+e)
/// multiplier table, then the same Accumulator & Routing arithmetic as the
/// reference path (one accumulate of the full sum — integer addition is
/// exact, so the result matches tile-wise accumulation bit for bit).
std::int32_t fast_neuron_dot(const std::int8_t* codes,
                             const std::size_t* index, std::size_t base,
                             const std::int32_t* weights, std::size_t count,
                             int in_frac, int out_frac,
                             std::int32_t bias_code) {
  std::int64_t sum = 0;
  if (index != nullptr) {
    for (std::size_t k = 0; k < count; ++k) {
      if (index[k] == SIZE_MAX) continue;  // padded tap -> zero input
      sum += static_cast<std::int64_t>(codes[base + index[k]]) * weights[k];
    }
  } else {
    for (std::size_t k = 0; k < count; ++k) {
      sum += static_cast<std::int64_t>(codes[k]) * weights[k];
    }
  }
  AccumulatorRouting acc(in_frac, out_frac, bias_code);
  acc.accumulate(sum);
  return acc.route();
}

}  // namespace

void AcceleratorExecutor::run_conv(const QConv& conv,
                                   std::span<const Pow2Weight> weights,
                                   const CodeTensor& input, CodeTensor& out,
                                   std::vector<std::size_t>& index) const {
  const auto [batch, ih, iw, oh, ow, patch] =
      conv_geometry(conv, input.shape, "run_conv");
  const std::size_t k = conv.kernel;

  out.shape = Shape{batch, conv.out_c, oh, ow};
  out.frac = conv.out_frac;
  out.codes.resize(out.shape.size());

  // Patch gather indices (SIZE_MAX marks a padded tap -> zero input).
  index.resize(patch);
  std::size_t out_i = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    const std::size_t image_base = n * conv.in_c * ih * iw;
    for (std::size_t oc = 0; oc < conv.out_c; ++oc) {
      const std::span<const Pow2Weight> row{weights.data() + oc * patch,
                                            patch};
      const std::int32_t bias = conv.bias_codes[oc];
      // Recompute gather indices per output pixel (oc-invariant, but the
      // loop order keeps weight rows hot; index build is cheap).
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++out_i) {
          std::size_t p = 0;
          for (std::size_t c = 0; c < conv.in_c; ++c) {
            for (std::size_t ky = 0; ky < k; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * conv.stride + ky) -
                  static_cast<std::ptrdiff_t>(conv.pad);
              for (std::size_t kx = 0; kx < k; ++kx, ++p) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * conv.stride + kx) -
                    static_cast<std::ptrdiff_t>(conv.pad);
                const bool inside =
                    iy >= 0 && iy < static_cast<std::ptrdiff_t>(ih) &&
                    ix >= 0 && ix < static_cast<std::ptrdiff_t>(iw);
                index[p] = inside
                               ? image_base + (c * ih +
                                               static_cast<std::size_t>(iy)) *
                                                  iw +
                                     static_cast<std::size_t>(ix)
                               : SIZE_MAX;
              }
            }
          }
          out.codes[out_i] = static_cast<std::int8_t>(
              neuron_dot(input.codes, index, row, input.frac, conv.out_frac,
                         bias));
        }
      }
    }
  }
}

void AcceleratorExecutor::run_fc(const QFullyConnected& fc,
                                 std::span<const Pow2Weight> weights,
                                 const CodeTensor& input,
                                 CodeTensor& out) const {
  if (input.shape.rank() != 2 || input.shape.dim(1) != fc.in_features) {
    throw std::invalid_argument("run_fc: bad input shape");
  }
  const std::size_t batch = input.shape.dim(0);
  out.shape = Shape{batch, fc.out_features};
  out.frac = fc.out_frac;
  out.codes.resize(out.shape.size());
  for (std::size_t n = 0; n < batch; ++n) {
    const std::span<const std::int8_t> row{
        input.codes.data() + n * fc.in_features, fc.in_features};
    for (std::size_t o = 0; o < fc.out_features; ++o) {
      const std::span<const Pow2Weight> wrow{
          weights.data() + o * fc.in_features, fc.in_features};
      out.codes[n * fc.out_features + o] = static_cast<std::int8_t>(
          neuron_dot(row, {}, wrow, input.frac, fc.out_frac,
                     fc.bias_codes[o]));
    }
  }
}

void AcceleratorExecutor::run_pool(const QPool& pool, const CodeTensor& input,
                                   CodeTensor& out) const {
  const Shape& s = input.shape;
  if (s.rank() != 4) throw std::invalid_argument("run_pool: rank-4 required");
  const std::size_t ih = s.h(), iw = s.w();
  const std::size_t oh = (ih + 2 * pool.pad - pool.window) / pool.stride + 1;
  const std::size_t ow = (iw + 2 * pool.pad - pool.window) / pool.stride + 1;

  out.shape = Shape{s.n(), s.c(), oh, ow};
  out.frac = pool.out_frac;
  out.codes.resize(out.shape.size());

  const DfpFormat out_format{kInputBits, pool.out_frac};
  const float inv_area =
      1.0f / static_cast<float>(pool.window * pool.window);
  std::size_t out_i = 0;
  for (std::size_t n = 0; n < s.n(); ++n) {
    for (std::size_t c = 0; c < s.c(); ++c) {
      const std::size_t plane = (n * s.c() + c) * ih * iw;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++out_i) {
          bool found = false;
          std::int32_t best = 0;
          std::int64_t sum = 0;
          for (std::size_t ky = 0; ky < pool.window; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * pool.stride + ky) -
                static_cast<std::ptrdiff_t>(pool.pad);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(ih)) continue;
            for (std::size_t kx = 0; kx < pool.window; ++kx) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * pool.stride + kx) -
                  static_cast<std::ptrdiff_t>(pool.pad);
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(iw)) continue;
              const std::int32_t code =
                  input.codes[plane + static_cast<std::size_t>(iy) * iw +
                              static_cast<std::size_t>(ix)];
              if (!found || code > best) best = code;
              found = true;
              sum += code;
            }
          }
          if (pool.is_max) {
            out.codes[out_i] = static_cast<std::int8_t>(
                convert_code(found ? best : 0, input.frac, pool.out_frac));
          } else {
            // Mirror the float model exactly: float mean of decoded taps
            // (exact for window^2 * 127 < 2^24), then re-encode.
            const float value =
                static_cast<float>(std::ldexp(static_cast<double>(sum),
                                              -input.frac)) *
                inv_area;
            out.codes[out_i] =
                static_cast<std::int8_t>(out_format.encode(value));
          }
        }
      }
    }
  }
}

void AcceleratorExecutor::run_conv_fast(const QConv& conv,
                                        std::span<const std::int32_t> weights,
                                        const CodeTensor& input,
                                        CodeTensor& out,
                                        std::vector<std::size_t>& index) const {
  const auto [batch, ih, iw, oh, ow, patch] =
      conv_geometry(conv, input.shape, "run_conv_fast");
  const std::size_t k = conv.kernel;

  out.shape = Shape{batch, conv.out_c, oh, ow};
  out.frac = conv.out_frac;
  out.codes.resize(out.shape.size());

  // Build the patch gather table once per invocation: indices are relative
  // to the sample's image base, so one table serves every sample of the
  // batch and every output channel (the per-pixel rebuild the reference
  // path does in its inner loop is the single hottest overhead there).
  index.resize(oh * ow * patch);
  for (std::size_t oy = 0; oy < oh; ++oy) {
    for (std::size_t ox = 0; ox < ow; ++ox) {
      std::size_t* row = index.data() + (oy * ow + ox) * patch;
      std::size_t p = 0;
      for (std::size_t c = 0; c < conv.in_c; ++c) {
        for (std::size_t ky = 0; ky < k; ++ky) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * conv.stride + ky) -
              static_cast<std::ptrdiff_t>(conv.pad);
          for (std::size_t kx = 0; kx < k; ++kx, ++p) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * conv.stride + kx) -
                static_cast<std::ptrdiff_t>(conv.pad);
            const bool inside =
                iy >= 0 && iy < static_cast<std::ptrdiff_t>(ih) && ix >= 0 &&
                ix < static_cast<std::ptrdiff_t>(iw);
            row[p] = inside
                         ? (c * ih + static_cast<std::size_t>(iy)) * iw +
                               static_cast<std::size_t>(ix)
                         : SIZE_MAX;
          }
        }
      }
    }
  }

  for (std::size_t n = 0; n < batch; ++n) {
    const std::size_t image_base = n * conv.in_c * ih * iw;
    for (std::size_t pixel = 0; pixel < oh * ow; ++pixel) {
      const std::size_t* row = index.data() + pixel * patch;
      for (std::size_t oc = 0; oc < conv.out_c; ++oc) {
        out.codes[(n * conv.out_c + oc) * oh * ow + pixel] =
            static_cast<std::int8_t>(fast_neuron_dot(
                input.codes.data(), row, image_base,
                weights.data() + oc * patch, patch, input.frac,
                conv.out_frac, conv.bias_codes[oc]));
      }
    }
  }
}

void AcceleratorExecutor::run_fc_fast(const QFullyConnected& fc,
                                      std::span<const std::int32_t> weights,
                                      const CodeTensor& input,
                                      CodeTensor& out) const {
  if (input.shape.rank() != 2 || input.shape.dim(1) != fc.in_features) {
    throw std::invalid_argument("run_fc_fast: bad input shape");
  }
  const std::size_t batch = input.shape.dim(0);
  out.shape = Shape{batch, fc.out_features};
  out.frac = fc.out_frac;
  out.codes.resize(out.shape.size());
  for (std::size_t n = 0; n < batch; ++n) {
    const std::int8_t* row = input.codes.data() + n * fc.in_features;
    for (std::size_t o = 0; o < fc.out_features; ++o) {
      out.codes[n * fc.out_features + o] = static_cast<std::int8_t>(
          fast_neuron_dot(row, nullptr, 0, weights.data() + o * fc.in_features,
                          fc.in_features, input.frac, fc.out_frac,
                          fc.bias_codes[o]));
    }
  }
}

void AcceleratorExecutor::run_codes_scratch(ExecScratch& scratch) const {
  CodeTensor& input = scratch.input;
  CodeTensor& out = scratch.output;
  using clock = std::chrono::steady_clock;
  const bool profiled = profiler_ != nullptr;
  for (std::size_t i = 0; i < desc_.layers.size(); ++i) {
    const QLayer& layer = desc_.layers[i];
    const clock::time_point layer_start =
        profiled ? clock::now() : clock::time_point{};
    if (const auto* conv = std::get_if<QConv>(&layer)) {
      run_conv_fast(*conv, fast_weights_[i], input, out, scratch.index);
      std::swap(input, out);
    } else if (const auto* fc = std::get_if<QFullyConnected>(&layer)) {
      run_fc_fast(*fc, fast_weights_[i], input, out);
      std::swap(input, out);
    } else if (const auto* pool = std::get_if<QPool>(&layer)) {
      run_pool(*pool, input, out);
      std::swap(input, out);
    } else if (const auto* relu = std::get_if<QRelu>(&layer)) {
      apply_relu(input, relu->out_frac);
    } else if (const auto* flat = std::get_if<QFlatten>(&layer)) {
      apply_flatten(input, flat->out_frac);
    }
    if (profiled) {
      profiler_->record_layer_host_ns(
          i, static_cast<std::uint64_t>(
                 std::chrono::duration_cast<std::chrono::nanoseconds>(
                     clock::now() - layer_start)
                     .count()));
    }
  }
}

CodeTensor AcceleratorExecutor::run_codes(CodeTensor input) const {
  // Reference path: every conv/FC neuron goes through the width-asserted
  // shift datapath (synapse_product / adder_tree), exactly as the NPU
  // schedules it. The batched fast path must match this bit for bit.
  CodeTensor out;
  std::vector<std::size_t> index;
  for (std::size_t i = 0; i < desc_.layers.size(); ++i) {
    const QLayer& layer = desc_.layers[i];
    if (const auto* conv = std::get_if<QConv>(&layer)) {
      run_conv(*conv, decoded_weights_[i], input, out, index);
      std::swap(input, out);
    } else if (const auto* fc = std::get_if<QFullyConnected>(&layer)) {
      run_fc(*fc, decoded_weights_[i], input, out);
      std::swap(input, out);
    } else if (const auto* pool = std::get_if<QPool>(&layer)) {
      run_pool(*pool, input, out);
      std::swap(input, out);
    } else if (const auto* relu = std::get_if<QRelu>(&layer)) {
      apply_relu(input, relu->out_frac);
    } else if (const auto* flat = std::get_if<QFlatten>(&layer)) {
      apply_flatten(input, flat->out_frac);
    }
  }
  return input;
}

Tensor AcceleratorExecutor::run(const Tensor& images) const {
  const CodeTensor input = CodeTensor::encode(images, desc_.input_frac);
  return run_codes(input).decode();
}

Tensor AcceleratorExecutor::run_batch(const Tensor& images,
                                      ExecScratch& scratch) const {
  CodeTensor::encode_into(images, desc_.input_frac, scratch.input);
  run_codes_scratch(scratch);
  if (profiler_ != nullptr) profiler_->record_pass(images.shape().n());
  return scratch.input.decode();
}

Tensor run_ensemble(std::span<const AcceleratorExecutor* const> members,
                    const Tensor& images) {
  if (members.empty()) {
    throw std::invalid_argument("run_ensemble: no members");
  }
  Tensor sum = members.front()->run(images);
  for (std::size_t m = 1; m < members.size(); ++m) {
    sum.add(members[m]->run(images));
  }
  sum.scale(1.0f / static_cast<float>(members.size()));
  return sum;
}

Tensor run_ensemble_batch(std::span<const AcceleratorExecutor* const> members,
                          const Tensor& images, ExecScratch& scratch) {
  if (members.empty()) {
    throw std::invalid_argument("run_ensemble_batch: no members");
  }
  Tensor sum = members.front()->run_batch(images, scratch);
  for (std::size_t m = 1; m < members.size(); ++m) {
    sum.add(members[m]->run_batch(images, scratch));
  }
  sum.scale(1.0f / static_cast<float>(members.size()));
  return sum;
}

}  // namespace mfdfp::hw
