#include "hw/executor.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "hw/kernels.hpp"
#include "hw/layer_profile.hpp"

namespace mfdfp::hw {

using quant::DfpFormat;
using quant::Pow2Weight;
using tensor::Shape;
using tensor::Tensor;

Tensor CodeTensor::decode() const {
  const DfpFormat format{kInputBits, frac};
  Tensor out{shape};
  for (std::size_t i = 0; i < codes.size(); ++i) {
    out[i] = format.decode(codes[i]);
  }
  return out;
}

void CodeTensor::encode_into(const Tensor& values, int frac, CodeTensor& out) {
  const DfpFormat format{kInputBits, frac};
  out.shape = values.shape();
  out.frac = frac;
  out.codes.resize(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out.codes[i] = static_cast<std::int8_t>(format.encode(values[i]));
  }
}

CodeTensor CodeTensor::encode(const Tensor& values, int frac) {
  CodeTensor out;
  encode_into(values, frac, out);
  return out;
}

AcceleratorExecutor::AcceleratorExecutor(QNetDesc desc)
    : desc_(std::move(desc)) {
  decoded_weights_.resize(desc_.layers.size());
  fast_weights_.resize(desc_.layers.size());
  for (std::size_t i = 0; i < desc_.layers.size(); ++i) {
    const std::vector<std::uint8_t>* packed = nullptr;
    std::size_t count = 0;
    if (const auto* conv = std::get_if<QConv>(&desc_.layers[i])) {
      packed = &conv->packed_weights;
      count = conv->out_c * conv->in_c * conv->kernel * conv->kernel;
    } else if (const auto* fc =
                   std::get_if<QFullyConnected>(&desc_.layers[i])) {
      packed = &fc->packed_weights;
      count = fc->out_features * fc->in_features;
    }
    if (packed == nullptr) continue;
    if (packed->size() < (count + 1) / 2) {
      throw std::invalid_argument("AcceleratorExecutor: short weight stream");
    }
    auto& decoded = decoded_weights_[i];
    auto& fast = fast_weights_[i];
    decoded.resize(count);
    fast.resize(count);
    for (std::size_t k = 0; k < count; ++k) {
      const std::uint8_t byte = (*packed)[k / 2];
      const std::uint8_t nibble =
          (k % 2 == 0) ? (byte & 0xF) : static_cast<std::uint8_t>(byte >> 4);
      decoded[k] = quant::decode_nibble(nibble);
      // synapse_product as a plain multiplier: x * (+/-2^(7+e)), same
      // 2^-(m+7) units — the batched kernels' integer dot product.
      const std::int32_t magnitude =
          std::int32_t{1} << (kProductFracBits + decoded[k].exponent);
      fast[k] = decoded[k].negative ? -magnitude : magnitude;
    }
  }
}

namespace {

/// Runs one neuron over `count` (input code, weight) pairs in 16-synapse
/// tiles through the shift datapath; returns the routed 8-bit output code.
std::int32_t neuron_dot(std::span<const std::int8_t> input_codes,
                        std::span<const std::size_t> input_index,
                        std::span<const Pow2Weight> weights, int in_frac,
                        int out_frac, std::int32_t bias_code) {
  AccumulatorRouting acc(in_frac, out_frac, bias_code);
  std::int64_t products[kSynapsesPerNeuron];
  const std::size_t count = weights.size();
  for (std::size_t tile = 0; tile < count; tile += kSynapsesPerNeuron) {
    const std::size_t lanes =
        std::min<std::size_t>(kSynapsesPerNeuron, count - tile);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const std::size_t k = tile + lane;
      const std::int32_t x =
          input_index.empty()
              ? input_codes[k]
              : (input_index[k] == SIZE_MAX
                     ? 0
                     : input_codes[input_index[k]]);
      products[lane] = synapse_product(x, weights[k]);
    }
    acc.accumulate(adder_tree({products, lanes}));
  }
  return acc.route();
}

}  // namespace

void AcceleratorExecutor::run_conv(const QConv& conv,
                                   std::span<const Pow2Weight> weights,
                                   const CodeTensor& input, CodeTensor& out,
                                   std::vector<std::size_t>& index) const {
  const auto [batch, ih, iw, oh, ow, patch] = conv_geometry(
      conv.in_c, conv.kernel, conv.stride, conv.pad, input.shape, "run_conv");
  const std::size_t k = conv.kernel;

  out.shape = Shape{batch, conv.out_c, oh, ow};
  out.frac = conv.out_frac;
  out.codes.resize(out.shape.size());

  // Patch gather indices (SIZE_MAX marks a padded tap -> zero input).
  index.resize(patch);
  std::size_t out_i = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    const std::size_t image_base = n * conv.in_c * ih * iw;
    for (std::size_t oc = 0; oc < conv.out_c; ++oc) {
      const std::span<const Pow2Weight> row{weights.data() + oc * patch,
                                            patch};
      const std::int32_t bias = conv.bias_codes[oc];
      // Recompute gather indices per output pixel (oc-invariant, but the
      // loop order keeps weight rows hot; index build is cheap).
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++out_i) {
          std::size_t p = 0;
          for (std::size_t c = 0; c < conv.in_c; ++c) {
            for (std::size_t ky = 0; ky < k; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * conv.stride + ky) -
                  static_cast<std::ptrdiff_t>(conv.pad);
              for (std::size_t kx = 0; kx < k; ++kx, ++p) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * conv.stride + kx) -
                    static_cast<std::ptrdiff_t>(conv.pad);
                const bool inside =
                    iy >= 0 && iy < static_cast<std::ptrdiff_t>(ih) &&
                    ix >= 0 && ix < static_cast<std::ptrdiff_t>(iw);
                index[p] = inside
                               ? image_base + (c * ih +
                                               static_cast<std::size_t>(iy)) *
                                                  iw +
                                     static_cast<std::size_t>(ix)
                               : SIZE_MAX;
              }
            }
          }
          out.codes[out_i] = static_cast<std::int8_t>(
              neuron_dot(input.codes, index, row, input.frac, conv.out_frac,
                         bias));
        }
      }
    }
  }
}

void AcceleratorExecutor::run_fc(const QFullyConnected& fc,
                                 std::span<const Pow2Weight> weights,
                                 const CodeTensor& input,
                                 CodeTensor& out) const {
  if (input.shape.rank() != 2 || input.shape.dim(1) != fc.in_features) {
    throw std::invalid_argument("run_fc: bad input shape");
  }
  const std::size_t batch = input.shape.dim(0);
  out.shape = Shape{batch, fc.out_features};
  out.frac = fc.out_frac;
  out.codes.resize(out.shape.size());
  for (std::size_t n = 0; n < batch; ++n) {
    const std::span<const std::int8_t> row{
        input.codes.data() + n * fc.in_features, fc.in_features};
    for (std::size_t o = 0; o < fc.out_features; ++o) {
      const std::span<const Pow2Weight> wrow{
          weights.data() + o * fc.in_features, fc.in_features};
      out.codes[n * fc.out_features + o] = static_cast<std::int8_t>(
          neuron_dot(row, {}, wrow, input.frac, fc.out_frac,
                     fc.bias_codes[o]));
    }
  }
}

void AcceleratorExecutor::run_pool(const QPool& pool, const CodeTensor& input,
                                   CodeTensor& out) const {
  pool_forward(pool, input, out);
}

void AcceleratorExecutor::run_conv_fast(const QConv& conv,
                                        std::span<const std::int32_t> weights,
                                        const CodeTensor& input,
                                        CodeTensor& out,
                                        std::vector<std::size_t>& index) const {
  const auto [batch, ih, iw, oh, ow, patch] =
      conv_geometry(conv.in_c, conv.kernel, conv.stride, conv.pad, input.shape,
                    "run_conv_fast");

  out.shape = Shape{batch, conv.out_c, oh, ow};
  out.frac = conv.out_frac;
  out.codes.resize(out.shape.size());

  // Build the patch gather table once per invocation: indices are relative
  // to the sample's image base, so one table serves every sample of the
  // batch and every output channel (the per-pixel rebuild the reference
  // path does in its inner loop is the single hottest overhead there).
  build_conv_gather(conv.in_c, ih, iw, conv.kernel, conv.stride, conv.pad, oh,
                    ow, index);

  for (std::size_t n = 0; n < batch; ++n) {
    const std::size_t image_base = n * conv.in_c * ih * iw;
    for (std::size_t pixel = 0; pixel < oh * ow; ++pixel) {
      const std::size_t* row = index.data() + pixel * patch;
      for (std::size_t oc = 0; oc < conv.out_c; ++oc) {
        out.codes[(n * conv.out_c + oc) * oh * ow + pixel] =
            static_cast<std::int8_t>(fast_neuron_dot(
                input.codes.data(), row, image_base,
                weights.data() + oc * patch, patch, input.frac,
                conv.out_frac, conv.bias_codes[oc]));
      }
    }
  }
}

void AcceleratorExecutor::run_fc_fast(const QFullyConnected& fc,
                                      std::span<const std::int32_t> weights,
                                      const CodeTensor& input,
                                      CodeTensor& out) const {
  if (input.shape.rank() != 2 || input.shape.dim(1) != fc.in_features) {
    throw std::invalid_argument("run_fc_fast: bad input shape");
  }
  const std::size_t batch = input.shape.dim(0);
  out.shape = Shape{batch, fc.out_features};
  out.frac = fc.out_frac;
  out.codes.resize(out.shape.size());
  for (std::size_t n = 0; n < batch; ++n) {
    const std::int8_t* row = input.codes.data() + n * fc.in_features;
    for (std::size_t o = 0; o < fc.out_features; ++o) {
      out.codes[n * fc.out_features + o] = static_cast<std::int8_t>(
          fast_neuron_dot(row, nullptr, 0, weights.data() + o * fc.in_features,
                          fc.in_features, input.frac, fc.out_frac,
                          fc.bias_codes[o]));
    }
  }
}

void AcceleratorExecutor::run_codes_scratch(ExecScratch& scratch) const {
  CodeTensor& input = scratch.input;
  CodeTensor& out = scratch.output;
  using clock = std::chrono::steady_clock;
  const bool profiled = profiler_ != nullptr;
  for (std::size_t i = 0; i < desc_.layers.size(); ++i) {
    const QLayer& layer = desc_.layers[i];
    const clock::time_point layer_start =
        profiled ? clock::now() : clock::time_point{};
    if (const auto* conv = std::get_if<QConv>(&layer)) {
      run_conv_fast(*conv, fast_weights_[i], input, out, scratch.index);
      std::swap(input, out);
    } else if (const auto* fc = std::get_if<QFullyConnected>(&layer)) {
      run_fc_fast(*fc, fast_weights_[i], input, out);
      std::swap(input, out);
    } else if (const auto* pool = std::get_if<QPool>(&layer)) {
      run_pool(*pool, input, out);
      std::swap(input, out);
    } else if (const auto* relu = std::get_if<QRelu>(&layer)) {
      apply_relu(input, relu->out_frac);
    } else if (const auto* flat = std::get_if<QFlatten>(&layer)) {
      apply_flatten(input, flat->out_frac);
    }
    if (profiled) {
      profiler_->record_layer_host_ns(
          i, static_cast<std::uint64_t>(
                 std::chrono::duration_cast<std::chrono::nanoseconds>(
                     clock::now() - layer_start)
                     .count()));
    }
  }
}

CodeTensor AcceleratorExecutor::run_codes(CodeTensor input) const {
  // Reference path: every conv/FC neuron goes through the width-asserted
  // shift datapath (synapse_product / adder_tree), exactly as the NPU
  // schedules it. The batched fast path must match this bit for bit.
  CodeTensor out;
  std::vector<std::size_t> index;
  for (std::size_t i = 0; i < desc_.layers.size(); ++i) {
    const QLayer& layer = desc_.layers[i];
    if (const auto* conv = std::get_if<QConv>(&layer)) {
      run_conv(*conv, decoded_weights_[i], input, out, index);
      std::swap(input, out);
    } else if (const auto* fc = std::get_if<QFullyConnected>(&layer)) {
      run_fc(*fc, decoded_weights_[i], input, out);
      std::swap(input, out);
    } else if (const auto* pool = std::get_if<QPool>(&layer)) {
      run_pool(*pool, input, out);
      std::swap(input, out);
    } else if (const auto* relu = std::get_if<QRelu>(&layer)) {
      apply_relu(input, relu->out_frac);
    } else if (const auto* flat = std::get_if<QFlatten>(&layer)) {
      apply_flatten(input, flat->out_frac);
    }
  }
  return input;
}

Tensor AcceleratorExecutor::run(const Tensor& images) const {
  const CodeTensor input = CodeTensor::encode(images, desc_.input_frac);
  return run_codes(input).decode();
}

Tensor AcceleratorExecutor::run_batch(const Tensor& images,
                                      ExecScratch& scratch) const {
  CodeTensor::encode_into(images, desc_.input_frac, scratch.input);
  run_codes_scratch(scratch);
  if (profiler_ != nullptr) profiler_->record_pass(images.shape().n());
  return scratch.input.decode();
}

Tensor run_ensemble(std::span<const AcceleratorExecutor* const> members,
                    const Tensor& images) {
  if (members.empty()) {
    throw std::invalid_argument("run_ensemble: no members");
  }
  Tensor sum = members.front()->run(images);
  for (std::size_t m = 1; m < members.size(); ++m) {
    sum.add(members[m]->run(images));
  }
  sum.scale(1.0f / static_cast<float>(members.size()));
  return sum;
}

Tensor run_ensemble_batch(std::span<const AcceleratorExecutor* const> members,
                          const Tensor& images, ExecScratch& scratch) {
  if (members.empty()) {
    throw std::invalid_argument("run_ensemble_batch: no members");
  }
  Tensor sum = members.front()->run_batch(images, scratch);
  for (std::size_t m = 1; m < members.size(); ++m) {
    sum.add(members[m]->run_batch(images, scratch));
  }
  sum.scale(1.0f / static_cast<float>(members.size()));
  return sum;
}

}  // namespace mfdfp::hw
