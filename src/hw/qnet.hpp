// Deployment artifact: the quantized network as the accelerator sees it.
//
// Extracted from a Network with MF-DFP transforms installed plus its
// QuantSpec. Weights are stored as 4-bit power-of-two codes, biases as 8-bit
// DFP codes in the layer's output format, and each layer carries its radix
// indices (the <m, n> control inputs of the Accumulator & Routing block).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "nn/network.hpp"
#include "quant/quantizer.hpp"

namespace mfdfp::hw {

/// Conv layer as mapped onto the accelerator: kernel matrix rows are the
/// synapse streams ({out_c, in_c*k*k} nibble-packed).
struct QConv {
  std::size_t in_c = 0, out_c = 0;
  std::size_t kernel = 0, stride = 1, pad = 0;
  std::vector<std::uint8_t> packed_weights;  ///< nibbles, row-major
  std::vector<std::int8_t> bias_codes;       ///< format <8, out_frac>
  int out_frac = 0;                          ///< n (output radix index)
};

struct QFullyConnected {
  std::size_t in_features = 0, out_features = 0;
  std::vector<std::uint8_t> packed_weights;
  std::vector<std::int8_t> bias_codes;
  int out_frac = 0;
};

struct QPool {
  bool is_max = true;
  std::size_t window = 2, stride = 2, pad = 0;
  int out_frac = 0;
};

struct QRelu {
  int out_frac = 0;
};

struct QFlatten {
  int out_frac = 0;
};

using QLayer = std::variant<QConv, QFullyConnected, QPool, QRelu, QFlatten>;

/// The full per-network deployment image.
struct QNetDesc {
  std::string name;
  int input_frac = 0;  ///< m of the first layer's inputs
  std::vector<QLayer> layers;

  /// Total parameter bytes in the packed representation (Table 3).
  [[nodiscard]] std::size_t parameter_bytes() const;
};

/// Extracts the deployment image from a quantized network. The network must
/// have exactly spec.layer_output.size() layers; weighted layers are
/// re-quantized deterministically from their float masters (identical to
/// what the installed transforms produce in deterministic mode).
[[nodiscard]] QNetDesc extract_qnet(const nn::Network& network,
                                    const quant::QuantSpec& spec,
                                    std::string name = "qnet");

}  // namespace mfdfp::hw
