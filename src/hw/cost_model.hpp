// Analytical 65 nm area/power model of the accelerator (paper Table 1).
//
// We cannot run Synopsys DC here, so the synthesis step is replaced by a
// block-level cost model: the accelerator is decomposed into the same
// structural pieces the RTL has (multipliers or shifters, adder-tree ranks,
// accumulator/routing, nonlinearity units, SRAM buffers, per-PU control,
// shared DMA/memory interface), each with an area and power constant at
// 65 nm / 250 MHz / typical corner. Constants are calibrated so the three
// designs of Table 1 land on the paper's synthesis results; the model then
// *extrapolates structurally* for other configurations (more PUs, different
// neuron/synapse counts, different buffer sizes), which is what the ablation
// benches exercise.
#pragma once

#include <cstddef>
#include <string>

namespace mfdfp::hw {

enum class Precision {
  kFloat32,  ///< 32-bit floating-point datapath + 32-bit buffers (baseline)
  kMfDfp,    ///< 8-bit activations, 4-bit pow2 weights, shift datapath
};

/// Structural description of one accelerator instance.
struct AcceleratorConfig {
  Precision precision = Precision::kMfDfp;
  std::size_t processing_units = 1;
  std::size_t neurons_per_pu = 16;
  std::size_t synapses_per_neuron = 16;
  double clock_hz = 250e6;

  // Buffer capacity in *entries* per PU (input / weight / output). Entry
  // width follows the precision (activations 8 vs 32 bit, weights 4 vs 32).
  std::size_t input_buffer_entries = 2048;
  std::size_t weight_buffer_entries = 16384;
  std::size_t output_buffer_entries = 2048;

  /// Extra pipeline stages of the multiply stage (FP multiplier is deeply
  /// pipelined; the shifter is combinational). Affects per-layer drain
  /// cycles in the cycle model.
  [[nodiscard]] int pipeline_depth() const noexcept {
    return precision == Precision::kFloat32 ? 12 : 4;
  }

  [[nodiscard]] std::size_t activation_bits() const noexcept {
    return precision == Precision::kFloat32 ? 32 : 8;
  }
  [[nodiscard]] std::size_t weight_bits() const noexcept {
    return precision == Precision::kFloat32 ? 32 : 4;
  }

  /// Total buffer bytes per PU given the precision's entry widths.
  [[nodiscard]] std::size_t buffer_bytes_per_pu() const noexcept;

  [[nodiscard]] std::string to_string() const;
};

/// Canonical configurations of the paper's three designs.
[[nodiscard]] AcceleratorConfig float_baseline_config();
[[nodiscard]] AcceleratorConfig mfdfp_config(std::size_t processing_units = 1);

struct CostBreakdown {
  double multiplier_area_mm2 = 0.0;  ///< multipliers or shifters
  double adder_tree_area_mm2 = 0.0;
  double accumulator_area_mm2 = 0.0;
  double nonlinearity_area_mm2 = 0.0;
  double buffer_area_mm2 = 0.0;
  double control_area_mm2 = 0.0;  ///< per-PU control + shared DMA/interface

  double multiplier_power_mw = 0.0;
  double adder_tree_power_mw = 0.0;
  double accumulator_power_mw = 0.0;
  double nonlinearity_power_mw = 0.0;
  double buffer_power_mw = 0.0;
  double control_power_mw = 0.0;

  [[nodiscard]] double total_area_mm2() const noexcept;
  [[nodiscard]] double total_power_mw() const noexcept;
};

/// Evaluates the block-level model for a configuration.
[[nodiscard]] CostBreakdown cost_model(const AcceleratorConfig& config);

/// Relative saving helper: (base - x) / base, in [0, 1] when x <= base.
[[nodiscard]] double saving(double base, double x);

}  // namespace mfdfp::hw
