// Cycle-accurate (loop-nest level) latency model of the tile-based
// accelerator, plus the derived time/energy metrics of paper Table 2.
//
// Scheduling model (DianNao-style, Section 5): each cycle, one processing
// unit evaluates `neurons` output neurons over `synapses` inputs. A conv
// layer therefore takes
//   out_h*out_w * ceil(out_c/neurons) * ceil(in_c*k*k/synapses)
// cycles, an FC layer ceil(out/neurons) * ceil(in/synapses), and a pool
// layer streams its windows through the (otherwise idle) datapath at one
// window-tile per cycle. Each layer pays a pipeline-drain cost equal to the
// datapath depth, which is where the (tiny) FP-vs-MF-DFP time difference in
// Table 2 comes from: the FP multiplier is deeply pipelined, the shifter is
// combinational. DMA transfers are assumed perfectly double-buffered
// (paper reports identical times for both precisions, implying
// compute-bound operation).
//
// An ensemble maps one member network per processing unit, so its latency is
// the maximum over members (== the single-network latency for identical
// topologies).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/cost_model.hpp"
#include "hw/qnet.hpp"

namespace mfdfp::hw {

/// Workload of one layer, independent of data precision.
struct LayerWork {
  enum class Kind { kConv, kFullyConnected, kPool, kElementwise };
  std::string name;
  Kind kind = Kind::kConv;
  std::uint64_t output_pixels = 0;   ///< out_h*out_w (1 for FC)
  std::uint64_t out_channels = 0;    ///< out_c (out_features for FC)
  std::uint64_t patch = 0;           ///< in_c*k*k (in_features for FC;
                                     ///< window^2 for pool)
  [[nodiscard]] std::uint64_t macs() const noexcept {
    return output_pixels * out_channels * patch;
  }
};

/// Derives the workload list from a deployment image, given the input
/// geometry (channels, height, width).
[[nodiscard]] std::vector<LayerWork> workload_from_qnet(
    const QNetDesc& desc, std::size_t in_c, std::size_t in_h,
    std::size_t in_w);

/// The paper's CIFAR-10 network (cuda-convnet: 3x32x32, conv5x32 maxpool3s2,
/// conv5x32 avgpool3s2, conv5x64 avgpool3s2, fc10) as a workload list —
/// used to cross-check the model against Table 2's absolute times.
[[nodiscard]] std::vector<LayerWork> paper_cifar10_workload();

/// AlexNet (ImageNet 3x227x227, no grouping, LRN removed) workload list.
[[nodiscard]] std::vector<LayerWork> paper_imagenet_workload();

struct LayerCycles {
  std::string name;
  std::uint64_t cycles = 0;
  std::uint64_t macs = 0;
};

struct CycleReport {
  std::vector<LayerCycles> layers;
  std::uint64_t total_cycles = 0;

  [[nodiscard]] double seconds(const AcceleratorConfig& config) const {
    return static_cast<double>(total_cycles) / config.clock_hz;
  }
  [[nodiscard]] double microseconds(const AcceleratorConfig& config) const {
    return seconds(config) * 1e6;
  }

  /// Speed-scaled variants for differently-provisioned device instances
  /// (serve::DeviceSpec): the effective clock is clock_hz * speed_factor,
  /// so a 2x device finishes the same cycle count in half the time.
  /// Non-positive factors fall back to 1 (the baseline provisioning).
  [[nodiscard]] double seconds(const AcceleratorConfig& config,
                               double speed_factor) const {
    return seconds(config) / (speed_factor > 0.0 ? speed_factor : 1.0);
  }
  [[nodiscard]] double microseconds(const AcceleratorConfig& config,
                                    double speed_factor) const {
    return seconds(config, speed_factor) * 1e6;
  }
};

/// Counts cycles for one inference of the workload on `config`.
[[nodiscard]] CycleReport count_cycles(const std::vector<LayerWork>& workload,
                                       const AcceleratorConfig& config);

/// Energy per inference in microjoules: total power x latency.
[[nodiscard]] double energy_uj(const CycleReport& cycles,
                               const AcceleratorConfig& config);

}  // namespace mfdfp::hw
