#include "hw/layer_profile.hpp"

#include <variant>

#include "hw/traffic_model.hpp"
#include "util/table.hpp"

namespace mfdfp::hw {

namespace {

[[nodiscard]] const char* kind_name(LayerWork::Kind kind) noexcept {
  switch (kind) {
    case LayerWork::Kind::kConv: return "conv";
    case LayerWork::Kind::kFullyConnected: return "fc";
    case LayerWork::Kind::kPool: return "pool";
    case LayerWork::Kind::kElementwise: return "elementwise";
  }
  return "?";
}

}  // namespace

LayerProfiler::LayerProfiler(const QNetDesc& desc, std::size_t in_c,
                             std::size_t in_h, std::size_t in_w,
                             const AcceleratorConfig& config) {
  // Same workload -> cycle/traffic pipeline as the serving cost accounting;
  // capturing the CycleReport's own integers is what makes the profile's
  // cycle sums reconcile bit-exactly with CycleReport::total_cycles.
  const std::vector<LayerWork> work =
      workload_from_qnet(desc, in_c, in_h, in_w);
  const CycleReport cycles = count_cycles(work, config);
  const TrafficReport traffic = dma_traffic(work, config);
  cycles_per_sample_total_ = cycles.total_cycles;

  const double datapath_lanes = static_cast<double>(config.neurons_per_pu) *
                                static_cast<double>(config.synapses_per_neuron);
  static_.reserve(work.size());
  for (std::size_t i = 0; i < work.size(); ++i) {
    StaticRow row;
    row.name = work[i].name;
    row.kind = work[i].kind;
    row.cycles = cycles.layers[i].cycles;
    row.macs = cycles.layers[i].macs;
    row.weight_bytes = traffic.layers[i].weight_bytes;
    row.act_bytes =
        traffic.layers[i].input_bytes + traffic.layers[i].output_bytes;
    // Useful MACs over offered datapath slots, drain cycles included as
    // idle. Pool/elementwise layers stream through otherwise-idle slots.
    const bool mac_layer = row.kind == LayerWork::Kind::kConv ||
                           row.kind == LayerWork::Kind::kFullyConnected;
    if (mac_layer && row.cycles > 0) {
      row.occupancy = static_cast<double>(row.macs) /
                      (static_cast<double>(row.cycles) * datapath_lanes);
    }
    static_.push_back(std::move(row));
  }

  // Map executor layer indices onto workload rows: workload_from_qnet
  // emits one row per desc layer except flatten (free wiring).
  row_of_layer_.reserve(desc.layers.size());
  std::size_t next_row = 0;
  for (const QLayer& layer : desc.layers) {
    if (std::holds_alternative<QFlatten>(layer)) {
      row_of_layer_.push_back(SIZE_MAX);
    } else {
      row_of_layer_.push_back(next_row++);
    }
  }

  host_ns_ = std::make_unique<std::atomic<std::uint64_t>[]>(static_.size());
  for (std::size_t i = 0; i < static_.size(); ++i) host_ns_[i] = 0;
}

void LayerProfiler::record_pass(std::size_t batch_samples) noexcept {
  passes_.fetch_add(1, std::memory_order_relaxed);
  samples_.fetch_add(batch_samples, std::memory_order_relaxed);
}

void LayerProfiler::record_layer_host_ns(std::size_t desc_layer,
                                         std::uint64_t ns) noexcept {
  if (desc_layer >= row_of_layer_.size()) return;
  const std::size_t row = row_of_layer_[desc_layer];
  if (row == SIZE_MAX) return;
  host_ns_[row].fetch_add(ns, std::memory_order_relaxed);
}

void LayerProfiler::record_fused_host_ns(
    std::span<const std::size_t> desc_layers, std::uint64_t ns) noexcept {
  // Resolve the profiled rows and their modeled cycle weights first; the
  // attribution split must sum exactly to `ns` (remainder to the first
  // row) so fused-step totals reconcile with the unfused ones.
  std::size_t rows[16];
  std::uint64_t weights[16];
  std::size_t count = 0;
  std::uint64_t weight_sum = 0;
  for (std::size_t desc_layer : desc_layers) {
    if (count == 16) break;
    if (desc_layer >= row_of_layer_.size()) continue;
    const std::size_t row = row_of_layer_[desc_layer];
    if (row == SIZE_MAX) continue;
    rows[count] = row;
    weights[count] = static_[row].cycles;
    weight_sum += weights[count];
    ++count;
  }
  if (count == 0) return;
  if (count == 1) {
    host_ns_[rows[0]].fetch_add(ns, std::memory_order_relaxed);
    return;
  }
  std::uint64_t attributed = 0;
  for (std::size_t i = 1; i < count; ++i) {
    const std::uint64_t share =
        weight_sum > 0 ? ns * weights[i] / weight_sum : ns / count;
    host_ns_[rows[i]].fetch_add(share, std::memory_order_relaxed);
    attributed += share;
  }
  host_ns_[rows[0]].fetch_add(ns - attributed, std::memory_order_relaxed);
}

LayerProfile LayerProfiler::snapshot() const {
  LayerProfile profile;
  profile.passes = passes_.load(std::memory_order_relaxed);
  profile.samples = samples_.load(std::memory_order_relaxed);
  profile.cycles_per_sample_total = cycles_per_sample_total_;
  profile.cycles_total = profile.samples * cycles_per_sample_total_;

  profile.rows.reserve(static_.size());
  for (std::size_t i = 0; i < static_.size(); ++i) {
    const StaticRow& fixed = static_[i];
    LayerProfileRow row;
    row.name = fixed.name;
    row.kind = fixed.kind;
    row.cycles_per_sample = fixed.cycles;
    row.macs_per_sample = fixed.macs;
    row.weight_bytes = fixed.weight_bytes;
    row.act_bytes_per_sample = fixed.act_bytes;
    row.occupancy = fixed.occupancy;
    row.cycles_total = profile.samples * fixed.cycles;
    row.host_ns_total = host_ns_[i].load(std::memory_order_relaxed);
    profile.host_ns_total += row.host_ns_total;
    profile.rows.push_back(std::move(row));
  }
  return profile;
}

std::string render_layer_profile_table(const LayerProfile& profile,
                                       const std::string& title) {
  util::TablePrinter table(title + " — per-layer profile (" +
                           std::to_string(profile.samples) + " samples, " +
                           std::to_string(profile.passes) + " passes)");
  table.set_header({"layer", "kind", "cycles/sample", "share (%)",
                    "occupancy (%)", "weights (KB)", "acts (KB/sample)",
                    "host (ms)"});
  const double total =
      static_cast<double>(profile.cycles_per_sample_total);
  for (const LayerProfileRow& row : profile.rows) {
    const double share =
        total > 0.0 ? static_cast<double>(row.cycles_per_sample) / total : 0.0;
    table.add_row({row.name, kind_name(row.kind),
                   std::to_string(row.cycles_per_sample),
                   util::fmt_percent(share, 1),
                   util::fmt_percent(row.occupancy, 1),
                   util::fmt_fixed(
                       static_cast<double>(row.weight_bytes) / 1e3, 2),
                   util::fmt_fixed(
                       static_cast<double>(row.act_bytes_per_sample) / 1e3, 2),
                   util::fmt_fixed(
                       static_cast<double>(row.host_ns_total) / 1e6, 2)});
  }
  table.add_row({"total", "",
                 std::to_string(profile.cycles_per_sample_total), "100.0",
                 "", "", "",
                 util::fmt_fixed(
                     static_cast<double>(profile.host_ns_total) / 1e6, 2)});
  return table.to_string();
}

}  // namespace mfdfp::hw
