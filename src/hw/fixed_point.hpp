// Integer fixed-point primitives with explicit bit-width contracts.
//
// The accelerator model computes on int64 carriers but asserts that every
// intermediate value fits the wire width the RTL would provision (Fig. 2a:
// 16-bit products, 17/18/19/20-bit adder tree ranks, accumulator, 8-bit
// output). A width violation is a hardware design bug, so it throws.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace mfdfp::hw {

/// Smallest/largest value representable in `bits`-wide two's complement.
[[nodiscard]] constexpr std::int64_t min_for_bits(int bits) noexcept {
  return -(std::int64_t{1} << (bits - 1));
}
[[nodiscard]] constexpr std::int64_t max_for_bits(int bits) noexcept {
  return (std::int64_t{1} << (bits - 1)) - 1;
}

/// True iff `value` fits in `bits`-wide two's complement.
[[nodiscard]] constexpr bool fits_bits(std::int64_t value, int bits) noexcept {
  return value >= min_for_bits(bits) && value <= max_for_bits(bits);
}

/// Asserts the wire-width contract; throws std::logic_error on violation.
inline std::int64_t check_width(std::int64_t value, int bits,
                                const char* wire) {
  if (!fits_bits(value, bits)) {
    throw std::logic_error(std::string("width violation on ") + wire + ": " +
                           std::to_string(value) + " does not fit " +
                           std::to_string(bits) + " bits");
  }
  return value;
}

/// Saturates `value` into `bits`-wide two's complement.
[[nodiscard]] constexpr std::int64_t saturate(std::int64_t value,
                                              int bits) noexcept {
  if (value < min_for_bits(bits)) return min_for_bits(bits);
  if (value > max_for_bits(bits)) return max_for_bits(bits);
  return value;
}

/// Arithmetic right shift with round-half-away-from-zero — the rounding the
/// Accumulator & Routing block applies when realigning radix points. Matches
/// quant::DfpFormat::encode so software and hardware models agree bit-exact.
/// shift must be >= 0.
[[nodiscard]] std::int64_t shift_round(std::int64_t value, int shift);

/// Left shift with overflow check against int64 (model carrier, not a wire).
[[nodiscard]] std::int64_t shift_left_checked(std::int64_t value, int shift);

}  // namespace mfdfp::hw
