// Binary (de)serialization of the deployment image (QNetDesc).
//
// This is the artifact a toolchain would flash to the accelerator: packed
// 4-bit weights, 8-bit biases, layer geometry, and radix indices. Format
// (little-endian):
//   magic "MFHW" | u32 version | u32 name_len | name | i32 input_frac |
//   u64 layer_count | per layer: u8 tag | tag-specific payload
// Payload integers are u64 (dims) / i32 (fracs); weight/bias blobs are
// length-prefixed byte streams.
#pragma once

#include <string>

#include "hw/qnet.hpp"

namespace mfdfp::hw {

/// Serializes to a byte string (exact round-trip with qnet_from_bytes).
[[nodiscard]] std::string qnet_to_bytes(const QNetDesc& desc);

/// Parses a byte string; throws std::runtime_error on malformed input.
[[nodiscard]] QNetDesc qnet_from_bytes(const std::string& bytes);

/// File convenience wrappers; throw std::runtime_error on I/O failure.
void save_qnet(const QNetDesc& desc, const std::string& path);
[[nodiscard]] QNetDesc load_qnet(const std::string& path);

}  // namespace mfdfp::hw
