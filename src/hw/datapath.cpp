#include "hw/datapath.hpp"

#include <stdexcept>

namespace mfdfp::hw {

std::int64_t synapse_product(std::int32_t input_code,
                             quant::Pow2Weight weight) {
  check_width(input_code, kInputBits, "synapse input");
  if (weight.exponent < quant::kPow2MinExp ||
      weight.exponent > quant::kPow2MaxExp) {
    throw std::invalid_argument("synapse_product: exponent out of range");
  }
  // e in [-7, 0] -> left shift by 7 + e in [0, 7]; the product is expressed
  // in units of 2^-(m+7), so even e = -7 keeps all 8 input bits.
  const int shift = kProductFracBits + weight.exponent;
  std::int64_t product = static_cast<std::int64_t>(input_code) << shift;
  if (weight.negative) product = -product;
  return check_width(product, kProductBits, "synapse product");
}

std::int64_t adder_tree(std::span<const std::int64_t> products) {
  if (products.size() > kSynapsesPerNeuron) {
    throw std::invalid_argument("adder_tree: more than 16 products");
  }
  std::int64_t lanes[kSynapsesPerNeuron] = {};
  for (std::size_t i = 0; i < products.size(); ++i) {
    lanes[i] = check_width(products[i], kProductBits, "adder tree input");
  }
  // Four ranks: 16 -> 8 (17b) -> 4 (18b) -> 2 (19b) -> 1 (20b).
  int width = kProductBits + 1;
  for (std::size_t count = kSynapsesPerNeuron / 2; count >= 1; count /= 2) {
    for (std::size_t i = 0; i < count; ++i) {
      lanes[i] = check_width(lanes[2 * i] + lanes[2 * i + 1], width,
                             "adder tree rank");
    }
    ++width;
    if (count == 1) break;
  }
  return lanes[0];
}

AccumulatorRouting::AccumulatorRouting(int in_frac, int out_frac,
                                       std::int32_t bias_code)
    : in_frac_(in_frac), out_frac_(out_frac), bias_code_(bias_code) {
  check_width(bias_code, kInputBits, "bias code");
}

void AccumulatorRouting::accumulate(std::int64_t tile_sum) {
  // The accumulator register is provisioned wide enough that overflow is
  // impossible for any layer the compiler maps (paper: "we ensure that all
  // intermediate signals have large enough word-width"). We model it as a
  // kAccumulatorBits-wide register and assert.
  acc_ = check_width(acc_ + tile_sum, kAccumulatorBits, "accumulator");
}

std::int32_t AccumulatorRouting::route(bool apply_relu) const {
  // Align accumulator (units 2^-(m+7)) and bias (units 2^-n) on a common
  // grid, add, then realign to 2^-n with rounding + saturation.
  const int acc_frac = in_frac_ + kProductFracBits;
  const int grid = std::max(acc_frac, out_frac_);
  const std::int64_t acc_aligned =
      shift_left_checked(acc_, grid - acc_frac);
  const std::int64_t bias_aligned =
      shift_left_checked(static_cast<std::int64_t>(bias_code_),
                         grid - out_frac_);
  std::int64_t sum = acc_aligned + bias_aligned;
  if (apply_relu && sum < 0) sum = 0;
  const std::int64_t rounded = shift_round(sum, grid - out_frac_);
  return static_cast<std::int32_t>(saturate(rounded, kInputBits));
}

std::int32_t convert_code(std::int32_t code, int from_frac, int to_frac) {
  check_width(code, kInputBits, "convert input");
  std::int64_t value = code;
  if (to_frac >= from_frac) {
    value = shift_left_checked(value, to_frac - from_frac);
  } else {
    value = shift_round(value, from_frac - to_frac);
  }
  return static_cast<std::int32_t>(saturate(value, kInputBits));
}

float float_neuron(std::span<const float> inputs,
                   std::span<const float> weights, float bias) {
  if (inputs.size() != weights.size()) {
    throw std::invalid_argument("float_neuron: size mismatch");
  }
  float acc = bias;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    acc += inputs[i] * weights[i];
  }
  return acc;
}

}  // namespace mfdfp::hw
