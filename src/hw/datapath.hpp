// Bit-accurate model of the multiplier-free neuron datapath (paper Fig. 2a).
//
// One neuron processes 16 synapses per cycle:
//   * each synapse multiplies an 8-bit input code by a power-of-two weight
//     <s, e> using an arithmetic shift. Products are kept at full precision
//     on 16-bit wires: p = (-1)^s * (x << (7 + e)), in units of 2^-(m+7)
//     where m is the input fractional length (no bit of the 8-bit input is
//     lost even for e = -7);
//   * a widening adder tree sums the 16 products through ranks of
//     17 / 18 / 19 / 20-bit wires;
//   * the Accumulator & Routing block accumulates tile sums for neurons with
//     more than 16 synapses, adds the bias, and realigns the radix point
//     from the input index m to the output index n with round-half-away
//     rounding, saturating into the 8-bit output.
//
// Every wire width is asserted (see fixed_point.hpp): a violation throws.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hw/fixed_point.hpp"
#include "quant/pow2.hpp"

namespace mfdfp::hw {

inline constexpr int kInputBits = 8;        ///< activation code width
inline constexpr int kProductBits = 16;     ///< per-synapse product wire
inline constexpr int kSynapsesPerNeuron = 16;
/// Extra fractional bits a product carries relative to the input: the
/// shifter emits x << (7+e), e in [-7, 0].
inline constexpr int kProductFracBits = 7;
/// Accumulator register width (paper: "we ensure that all intermediate
/// signals have large enough word-width"). AccumulatorRouting asserts it
/// at runtime; the deploy-time analyzer (src/analysis) proves it can
/// never fire for the deployed geometry.
inline constexpr int kAccumulatorBits = 48;

/// Per-synapse shift "multiplier": returns the product on a 16-bit wire,
/// in units of 2^-(m + 7). Throws on width violation (cannot happen for
/// valid 8-bit codes and e in [-7, 0] — enforced here).
[[nodiscard]] std::int64_t synapse_product(std::int32_t input_code,
                                           quant::Pow2Weight weight);

/// Sums up to 16 products through the widening adder tree, asserting the
/// 17/18/19/20-bit rank widths of Fig. 2a. Missing lanes are zero.
[[nodiscard]] std::int64_t adder_tree(std::span<const std::int64_t> products);

/// Accumulator & Routing block state for one neuron computation.
class AccumulatorRouting {
 public:
  /// `in_frac` = m (input radix index), `out_frac` = n (output radix index),
  /// `bias_code` is the 8-bit bias in the *output* format <8, n>.
  AccumulatorRouting(int in_frac, int out_frac, std::int32_t bias_code);

  /// Adds one 16-synapse tile sum (units 2^-(m+7)).
  void accumulate(std::int64_t tile_sum);

  /// Realigns to the output radix, adds bias, rounds, saturates to 8 bits.
  /// `apply_relu` models the NL unit in its ReLU configuration.
  [[nodiscard]] std::int32_t route(bool apply_relu = false) const;

  [[nodiscard]] std::int64_t raw() const noexcept { return acc_; }

 private:
  int in_frac_;
  int out_frac_;
  std::int32_t bias_code_;
  std::int64_t acc_ = 0;
};

/// Converts an 8-bit code between two DFP fractional lengths with
/// round-half-away + saturation (used by pool/ReLU/flatten stages when the
/// layer output format differs from its input format).
[[nodiscard]] std::int32_t convert_code(std::int32_t code, int from_frac,
                                        int to_frac);

/// Reference dot product for the float baseline accelerator's neuron
/// (32-bit floating point multipliers + adder tree). Used by the
/// micro-benchmark to contrast datapath costs.
[[nodiscard]] float float_neuron(std::span<const float> inputs,
                                 std::span<const float> weights, float bias);

}  // namespace mfdfp::hw
