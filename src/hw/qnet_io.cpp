#include "hw/qnet_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mfdfp::hw {
namespace {

constexpr char kMagic[4] = {'M', 'F', 'H', 'W'};
constexpr std::uint32_t kVersion = 1;

enum class Tag : std::uint8_t {
  kConv = 1,
  kFullyConnected = 2,
  kPool = 3,
  kRelu = 4,
  kFlatten = 5,
};

class Writer {
 public:
  void bytes(const void* data, std::size_t size) {
    out_.append(static_cast<const char*>(data), size);
  }
  template <typename T>
  void put(T value) {
    bytes(&value, sizeof value);
  }
  void blob(const std::vector<std::uint8_t>& data) {
    put(static_cast<std::uint64_t>(data.size()));
    bytes(data.data(), data.size());
  }
  void blob(const std::vector<std::int8_t>& data) {
    put(static_cast<std::uint64_t>(data.size()));
    bytes(data.data(), data.size());
  }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

class Parser {
 public:
  explicit Parser(const std::string& bytes) : bytes_(bytes) {}

  void read(void* dst, std::size_t size) {
    if (pos_ + size > bytes_.size()) {
      throw std::runtime_error("qnet: truncated stream");
    }
    std::memcpy(dst, bytes_.data() + pos_, size);
    pos_ += size;
  }
  template <typename T>
  T get() {
    T value;
    read(&value, sizeof value);
    return value;
  }
  template <typename Byte>
  std::vector<Byte> blob() {
    const auto size = get<std::uint64_t>();
    if (size > bytes_.size() - pos_) {
      throw std::runtime_error("qnet: blob length exceeds stream");
    }
    std::vector<Byte> data(static_cast<std::size_t>(size));
    read(data.data(), data.size());
    return data;
  }
  [[nodiscard]] bool exhausted() const noexcept {
    return pos_ == bytes_.size();
  }

 private:
  const std::string& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string qnet_to_bytes(const QNetDesc& desc) {
  Writer w;
  w.bytes(kMagic, sizeof kMagic);
  w.put(kVersion);
  w.put(static_cast<std::uint32_t>(desc.name.size()));
  w.bytes(desc.name.data(), desc.name.size());
  w.put(static_cast<std::int32_t>(desc.input_frac));
  w.put(static_cast<std::uint64_t>(desc.layers.size()));
  for (const QLayer& layer : desc.layers) {
    if (const auto* conv = std::get_if<QConv>(&layer)) {
      w.put(static_cast<std::uint8_t>(Tag::kConv));
      w.put(static_cast<std::uint64_t>(conv->in_c));
      w.put(static_cast<std::uint64_t>(conv->out_c));
      w.put(static_cast<std::uint64_t>(conv->kernel));
      w.put(static_cast<std::uint64_t>(conv->stride));
      w.put(static_cast<std::uint64_t>(conv->pad));
      w.put(static_cast<std::int32_t>(conv->out_frac));
      w.blob(conv->packed_weights);
      w.blob(conv->bias_codes);
    } else if (const auto* fc = std::get_if<QFullyConnected>(&layer)) {
      w.put(static_cast<std::uint8_t>(Tag::kFullyConnected));
      w.put(static_cast<std::uint64_t>(fc->in_features));
      w.put(static_cast<std::uint64_t>(fc->out_features));
      w.put(static_cast<std::int32_t>(fc->out_frac));
      w.blob(fc->packed_weights);
      w.blob(fc->bias_codes);
    } else if (const auto* pool = std::get_if<QPool>(&layer)) {
      w.put(static_cast<std::uint8_t>(Tag::kPool));
      w.put(static_cast<std::uint8_t>(pool->is_max ? 1 : 0));
      w.put(static_cast<std::uint64_t>(pool->window));
      w.put(static_cast<std::uint64_t>(pool->stride));
      w.put(static_cast<std::uint64_t>(pool->pad));
      w.put(static_cast<std::int32_t>(pool->out_frac));
    } else if (const auto* relu = std::get_if<QRelu>(&layer)) {
      w.put(static_cast<std::uint8_t>(Tag::kRelu));
      w.put(static_cast<std::int32_t>(relu->out_frac));
    } else if (const auto* flat = std::get_if<QFlatten>(&layer)) {
      w.put(static_cast<std::uint8_t>(Tag::kFlatten));
      w.put(static_cast<std::int32_t>(flat->out_frac));
    }
  }
  return w.take();
}

QNetDesc qnet_from_bytes(const std::string& bytes) {
  Parser p(bytes);
  char magic[4];
  p.read(magic, sizeof magic);
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("qnet: bad magic");
  }
  if (p.get<std::uint32_t>() != kVersion) {
    throw std::runtime_error("qnet: unsupported version");
  }
  QNetDesc desc;
  const auto name_len = p.get<std::uint32_t>();
  desc.name.resize(name_len);
  p.read(desc.name.data(), name_len);
  desc.input_frac = p.get<std::int32_t>();
  const auto layer_count = p.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < layer_count; ++i) {
    const auto tag = static_cast<Tag>(p.get<std::uint8_t>());
    switch (tag) {
      case Tag::kConv: {
        QConv conv;
        conv.in_c = p.get<std::uint64_t>();
        conv.out_c = p.get<std::uint64_t>();
        conv.kernel = p.get<std::uint64_t>();
        conv.stride = p.get<std::uint64_t>();
        conv.pad = p.get<std::uint64_t>();
        conv.out_frac = p.get<std::int32_t>();
        conv.packed_weights = p.blob<std::uint8_t>();
        conv.bias_codes = p.blob<std::int8_t>();
        const std::size_t weights = conv.out_c * conv.in_c * conv.kernel *
                                    conv.kernel;
        if (conv.packed_weights.size() != (weights + 1) / 2 ||
            conv.bias_codes.size() != conv.out_c) {
          throw std::runtime_error("qnet: conv blob size mismatch");
        }
        desc.layers.emplace_back(std::move(conv));
        break;
      }
      case Tag::kFullyConnected: {
        QFullyConnected fc;
        fc.in_features = p.get<std::uint64_t>();
        fc.out_features = p.get<std::uint64_t>();
        fc.out_frac = p.get<std::int32_t>();
        fc.packed_weights = p.blob<std::uint8_t>();
        fc.bias_codes = p.blob<std::int8_t>();
        const std::size_t weights = fc.in_features * fc.out_features;
        if (fc.packed_weights.size() != (weights + 1) / 2 ||
            fc.bias_codes.size() != fc.out_features) {
          throw std::runtime_error("qnet: fc blob size mismatch");
        }
        desc.layers.emplace_back(std::move(fc));
        break;
      }
      case Tag::kPool: {
        QPool pool;
        pool.is_max = p.get<std::uint8_t>() != 0;
        pool.window = p.get<std::uint64_t>();
        pool.stride = p.get<std::uint64_t>();
        pool.pad = p.get<std::uint64_t>();
        pool.out_frac = p.get<std::int32_t>();
        desc.layers.emplace_back(pool);
        break;
      }
      case Tag::kRelu:
        desc.layers.emplace_back(QRelu{p.get<std::int32_t>()});
        break;
      case Tag::kFlatten:
        desc.layers.emplace_back(QFlatten{p.get<std::int32_t>()});
        break;
      default:
        throw std::runtime_error("qnet: unknown layer tag");
    }
  }
  if (!p.exhausted()) throw std::runtime_error("qnet: trailing bytes");
  return desc;
}

void save_qnet(const QNetDesc& desc, const std::string& path) {
  const std::string bytes = qnet_to_bytes(desc);
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) throw std::runtime_error("qnet: cannot open " + path);
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!file) throw std::runtime_error("qnet: write failed for " + path);
}

QNetDesc load_qnet(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("qnet: cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return qnet_from_bytes(buffer.str());
}

}  // namespace mfdfp::hw
