#include "hw/traffic_model.hpp"

#include <stdexcept>

namespace mfdfp::hw {
namespace {

[[nodiscard]] std::uint64_t bits_to_bytes(std::uint64_t count,
                                          std::size_t bits) {
  return (count * bits + 7) / 8;
}

}  // namespace

TrafficReport dma_traffic(const std::vector<LayerWork>& work,
                          const AcceleratorConfig& config) {
  const std::size_t act_bits = config.activation_bits();
  const std::size_t weight_bits = config.weight_bits();
  const std::uint64_t weight_buffer_bytes =
      bits_to_bytes(config.weight_buffer_entries, weight_bits) *
      config.processing_units;

  TrafficReport report;
  for (const LayerWork& lw : work) {
    LayerTraffic t;
    t.name = lw.name;
    switch (lw.kind) {
      case LayerWork::Kind::kConv: {
        // Input: taps streamed through the input buffer, one patch per
        // output pixel. On-chip halo reuse across overlapping windows is
        // ignored (upper bound); the FP-vs-MF *ratio* -- the paper's
        // claim -- is unaffected since both precisions stream identical
        // schedules.
        t.input_bytes =
            bits_to_bytes(lw.output_pixels * lw.patch, act_bits);
        // The weight working set out_channels*patch is re-streamed when it
        // exceeds the weight buffer (output tiling forces re-fetch).
        const std::uint64_t weights = lw.out_channels * lw.patch;
        const std::uint64_t weight_bytes =
            bits_to_bytes(weights, weight_bits);
        t.weight_refetches = std::max<std::uint64_t>(
            1, (weight_bytes + weight_buffer_bytes - 1) /
                   weight_buffer_bytes);
        t.weight_bytes = weight_bytes * t.weight_refetches;
        t.output_bytes =
            bits_to_bytes(lw.output_pixels * lw.out_channels, act_bits);
        break;
      }
      case LayerWork::Kind::kFullyConnected: {
        // Each FC weight is used exactly once per inference: stream once.
        t.input_bytes = bits_to_bytes(lw.patch, act_bits);
        t.weight_bytes =
            bits_to_bytes(lw.out_channels * lw.patch, weight_bits);
        t.output_bytes = bits_to_bytes(lw.out_channels, act_bits);
        break;
      }
      case LayerWork::Kind::kPool:
        t.input_bytes = bits_to_bytes(
            lw.output_pixels * lw.out_channels * lw.patch, act_bits);
        t.output_bytes =
            bits_to_bytes(lw.output_pixels * lw.out_channels, act_bits);
        break;
      case LayerWork::Kind::kElementwise:
        t.input_bytes = bits_to_bytes(lw.output_pixels * lw.out_channels,
                                      act_bits);
        t.output_bytes = t.input_bytes;
        break;
    }
    report.total_bytes += t.total_bytes();
    report.layers.push_back(std::move(t));
  }
  return report;
}

}  // namespace mfdfp::hw
