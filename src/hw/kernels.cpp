#include "hw/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace mfdfp::hw {

using quant::DfpFormat;
using tensor::Shape;

ConvGeometry conv_geometry(std::size_t in_c, std::size_t kernel,
                           std::size_t stride, std::size_t pad,
                           const Shape& in_shape, const char* who) {
  if (in_shape.rank() != 4 || in_shape.c() != in_c) {
    throw std::invalid_argument(std::string(who) + ": bad input shape");
  }
  ConvGeometry g;
  g.batch = in_shape.n();
  g.ih = in_shape.h();
  g.iw = in_shape.w();
  g.oh = (g.ih + 2 * pad - kernel) / stride + 1;
  g.ow = (g.iw + 2 * pad - kernel) / stride + 1;
  g.patch = in_c * kernel * kernel;
  return g;
}

void build_conv_gather(std::size_t in_c, std::size_t ih, std::size_t iw,
                       std::size_t kernel, std::size_t stride, std::size_t pad,
                       std::size_t oh, std::size_t ow,
                       std::vector<std::size_t>& index) {
  const std::size_t patch = in_c * kernel * kernel;
  index.resize(oh * ow * patch);
  for (std::size_t oy = 0; oy < oh; ++oy) {
    for (std::size_t ox = 0; ox < ow; ++ox) {
      std::size_t* row = index.data() + (oy * ow + ox) * patch;
      std::size_t p = 0;
      for (std::size_t c = 0; c < in_c; ++c) {
        for (std::size_t ky = 0; ky < kernel; ++ky) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * stride + ky) -
              static_cast<std::ptrdiff_t>(pad);
          for (std::size_t kx = 0; kx < kernel; ++kx, ++p) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * stride + kx) -
                static_cast<std::ptrdiff_t>(pad);
            const bool inside =
                iy >= 0 && iy < static_cast<std::ptrdiff_t>(ih) && ix >= 0 &&
                ix < static_cast<std::ptrdiff_t>(iw);
            row[p] = inside
                         ? (c * ih + static_cast<std::size_t>(iy)) * iw +
                               static_cast<std::size_t>(ix)
                         : SIZE_MAX;
          }
        }
      }
    }
  }
}

void apply_relu(CodeTensor& input, int out_frac) {
  for (std::int8_t& code : input.codes) {
    const std::int32_t rectified = std::max<std::int32_t>(0, code);
    code = static_cast<std::int8_t>(
        convert_code(rectified, input.frac, out_frac));
  }
  input.frac = out_frac;
}

void apply_flatten(CodeTensor& input, int out_frac) {
  std::size_t features = 1;
  for (std::size_t axis = 1; axis < input.shape.rank(); ++axis) {
    features *= input.shape.dim(axis);
  }
  input.shape = Shape{input.shape.dim(0), features};
  if (out_frac != input.frac) {
    for (std::int8_t& code : input.codes) {
      code = static_cast<std::int8_t>(
          convert_code(code, input.frac, out_frac));
    }
    input.frac = out_frac;
  }
}

void pool_forward(const QPool& pool, const CodeTensor& input,
                  CodeTensor& out) {
  const Shape& s = input.shape;
  if (s.rank() != 4) {
    throw std::invalid_argument("pool_forward: rank-4 required");
  }
  const std::size_t ih = s.h(), iw = s.w();
  const std::size_t oh = (ih + 2 * pool.pad - pool.window) / pool.stride + 1;
  const std::size_t ow = (iw + 2 * pool.pad - pool.window) / pool.stride + 1;

  out.shape = Shape{s.n(), s.c(), oh, ow};
  out.frac = pool.out_frac;
  out.codes.resize(out.shape.size());

  const DfpFormat out_format{kInputBits, pool.out_frac};
  const float inv_area =
      1.0f / static_cast<float>(pool.window * pool.window);
  std::size_t out_i = 0;
  for (std::size_t n = 0; n < s.n(); ++n) {
    for (std::size_t c = 0; c < s.c(); ++c) {
      const std::size_t plane = (n * s.c() + c) * ih * iw;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++out_i) {
          bool found = false;
          std::int32_t best = 0;
          std::int64_t sum = 0;
          for (std::size_t ky = 0; ky < pool.window; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * pool.stride + ky) -
                static_cast<std::ptrdiff_t>(pool.pad);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(ih)) continue;
            for (std::size_t kx = 0; kx < pool.window; ++kx) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * pool.stride + kx) -
                  static_cast<std::ptrdiff_t>(pool.pad);
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(iw)) continue;
              const std::int32_t code =
                  input.codes[plane + static_cast<std::size_t>(iy) * iw +
                              static_cast<std::size_t>(ix)];
              if (!found || code > best) best = code;
              found = true;
              sum += code;
            }
          }
          if (pool.is_max) {
            out.codes[out_i] = static_cast<std::int8_t>(
                convert_code(found ? best : 0, input.frac, pool.out_frac));
          } else {
            // Mirror the float model exactly: float mean of decoded taps
            // (exact for window^2 * 127 < 2^24), then re-encode.
            const float value =
                static_cast<float>(std::ldexp(static_cast<double>(sum),
                                              -input.frac)) *
                inv_area;
            out.codes[out_i] =
                static_cast<std::int8_t>(out_format.encode(value));
          }
        }
      }
    }
  }
}

std::int32_t route_sum(std::int64_t sum, int in_frac, int out_frac,
                       std::int32_t bias_code) {
  AccumulatorRouting acc(in_frac, out_frac, bias_code);
  acc.accumulate(sum);
  return acc.route();
}

std::int32_t fast_neuron_dot(const std::int8_t* codes,
                             const std::size_t* index, std::size_t base,
                             const std::int32_t* weights, std::size_t count,
                             int in_frac, int out_frac,
                             std::int32_t bias_code) {
  std::int64_t sum = 0;
  if (index != nullptr) {
    for (std::size_t k = 0; k < count; ++k) {
      if (index[k] == SIZE_MAX) continue;  // padded tap -> zero input
      sum += static_cast<std::int64_t>(codes[base + index[k]]) * weights[k];
    }
  } else {
    for (std::size_t k = 0; k < count; ++k) {
      sum += static_cast<std::int64_t>(codes[k]) * weights[k];
    }
  }
  return route_sum(sum, in_frac, out_frac, bias_code);
}

}  // namespace mfdfp::hw
