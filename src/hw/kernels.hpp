// Shared code-domain layer kernels: the single implementation of every
// rounding the executor and the deploy-time compiler both depend on.
//
// The repo's core invariant — AcceleratorExecutor::run_batch ==
// run() == the fake-quantized software model, bit for bit — holds because
// there is exactly one implementation of each lossy stage (ReLU refrac,
// pool reduction, the Accumulator & Routing realignment). These helpers
// used to live in executor.cpp's anonymous namespace; the compiled-plan
// executor (compile/plan_executor.cpp) now runs the very same functions, so
// a CompiledPlan is bit-identical to the uncompiled path by construction,
// not by re-implementation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hw/datapath.hpp"
#include "hw/executor.hpp"
#include "hw/qnet.hpp"

namespace mfdfp::hw {

/// Layer geometry shared by the reference, fast, and compiled conv kernels.
struct ConvGeometry {
  std::size_t batch = 0, ih = 0, iw = 0, oh = 0, ow = 0, patch = 0;
};

/// Validates `in_shape` against the conv parameters and derives the output
/// geometry. Throws std::invalid_argument (prefixed with `who`) on a rank or
/// channel mismatch.
[[nodiscard]] ConvGeometry conv_geometry(std::size_t in_c, std::size_t kernel,
                                         std::size_t stride, std::size_t pad,
                                         const tensor::Shape& in_shape,
                                         const char* who);

/// Fills `index` with the per-output-pixel patch gather table, oh*ow rows of
/// `in_c*kernel*kernel` taps each, relative to a sample's image base (one
/// table serves every sample of a batch and every output channel). SIZE_MAX
/// marks a padded tap (reads as zero input).
void build_conv_gather(std::size_t in_c, std::size_t ih, std::size_t iw,
                       std::size_t kernel, std::size_t stride, std::size_t pad,
                       std::size_t oh, std::size_t ow,
                       std::vector<std::size_t>& index);

/// In-place ReLU + refrac stage (rectify at the input radix, then
/// convert_code into `out_frac`).
void apply_relu(CodeTensor& input, int out_frac);

/// In-place flatten (+ refrac when the output format differs).
void apply_flatten(CodeTensor& input, int out_frac);

/// Pool layer forward (max: convert_code of the window max; avg: float mean
/// of the decoded taps re-encoded — mirrors the float model exactly).
/// `out`'s shape/frac are set and its codes resized reusing capacity.
void pool_forward(const QPool& pool, const CodeTensor& input, CodeTensor& out);

/// Fast-path neuron: exact integer dot product with the +/-2^(7+e)
/// multiplier table, then the same Accumulator & Routing arithmetic as the
/// reference path (one accumulate of the full sum — integer addition is
/// exact, so the result matches tile-wise accumulation bit for bit).
/// `index` non-null gathers `codes[base + index[k]]` with SIZE_MAX taps
/// reading zero; null reads `codes[k]` densely.
[[nodiscard]] std::int32_t fast_neuron_dot(const std::int8_t* codes,
                                           const std::size_t* index,
                                           std::size_t base,
                                           const std::int32_t* weights,
                                           std::size_t count, int in_frac,
                                           int out_frac,
                                           std::int32_t bias_code);

/// Routes an already-accumulated integer dot-product sum (units 2^-(m+7))
/// through the Accumulator & Routing block: add bias, realign m -> n,
/// round-half-away, saturate to 8 bits. The tail every fast/compiled conv
/// and FC kernel shares with fast_neuron_dot.
[[nodiscard]] std::int32_t route_sum(std::int64_t sum, int in_frac,
                                     int out_frac, std::int32_t bias_code);

}  // namespace mfdfp::hw
