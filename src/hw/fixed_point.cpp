#include "hw/fixed_point.hpp"

namespace mfdfp::hw {

std::int64_t shift_round(std::int64_t value, int shift) {
  if (shift < 0) throw std::invalid_argument("shift_round: negative shift");
  if (shift == 0) return value;
  if (shift >= 63) return 0;
  const std::int64_t half = std::int64_t{1} << (shift - 1);
  if (value >= 0) {
    return (value + half) >> shift;
  }
  // Round half away from zero for negatives: mirror the positive case.
  return -((-value + half) >> shift);
}

std::int64_t shift_left_checked(std::int64_t value, int shift) {
  if (shift < 0) {
    throw std::invalid_argument("shift_left_checked: negative shift");
  }
  if (shift >= 62 && value != 0) {
    throw std::overflow_error("shift_left_checked: carrier overflow");
  }
  const std::int64_t shifted = value << shift;
  if (shift > 0 && (shifted >> shift) != value) {
    throw std::overflow_error("shift_left_checked: carrier overflow");
  }
  return shifted;
}

}  // namespace mfdfp::hw
