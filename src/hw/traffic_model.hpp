// Off-chip (DMA) traffic model for the three-buffer memory subsystem.
//
// The accelerator streams inputs, weights and outputs through three
// dedicated buffers (paper Fig. 2b). Per inference, each layer must fetch
// its input feature map once, its weights at least once (re-fetched when
// the working set exceeds the weight buffer), and write its output map
// once. Entry widths follow the precision: 8-bit activations / 4-bit
// weights for MF-DFP versus 32/32 for the float baseline — which is where
// the paper's "8x less memory" (Section 6.2) shows up as DMA bytes.
//
// Main-memory *power* is excluded, as in the paper; this model quantifies
// the bandwidth pressure instead.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/cost_model.hpp"
#include "hw/cycle_model.hpp"

namespace mfdfp::hw {

struct LayerTraffic {
  std::string name;
  std::uint64_t input_bytes = 0;
  std::uint64_t weight_bytes = 0;
  std::uint64_t output_bytes = 0;
  /// How many times the weight working set is streamed (>= 1; > 1 when it
  /// does not fit the weight buffer and output tiling forces re-fetch).
  std::uint64_t weight_refetches = 1;

  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return input_bytes + weight_bytes + output_bytes;
  }
};

struct TrafficReport {
  std::vector<LayerTraffic> layers;
  std::uint64_t total_bytes = 0;

  /// Average bandwidth needed to sustain the given latency, in GB/s.
  [[nodiscard]] double required_bandwidth_gbps(double seconds) const {
    return seconds <= 0.0
               ? 0.0
               : static_cast<double>(total_bytes) / seconds / 1e9;
  }
};

/// Per-inference DMA traffic of a workload on `config`.
///
/// Geometry comes from the same LayerWork list the cycle model uses, plus
/// activation element counts derived from it: a conv layer reads
/// output_pixels * patch input taps but only out_channels * patch unique
/// weights; input maps are counted once (the input buffer tiles spatially,
/// re-reading halo rows is ignored — a second-order effect at these kernel
/// sizes).
[[nodiscard]] TrafficReport dma_traffic(const std::vector<LayerWork>& work,
                                        const AcceleratorConfig& config);

}  // namespace mfdfp::hw
