// Per-layer profiling of one deployed model member on the simulated
// accelerator: modeled cycles, DMA bytes, and datapath occupancy per layer,
// accumulated across every run_batch pass the executor serves.
//
// The per-layer *modeled* numbers come from the same hw::CycleModel /
// hw::TrafficModel tables the serving cost accounting is priced on, captured
// once at construction — so a profile's per-sample cycle sum reconciles
// bit-exactly (integer ==) with CycleReport::total_cycles, and the
// accumulated totals are exactly samples x the per-sample table
// (tests/test_layer_profile.cpp enforces both). On top of the static tables
// the profiler accumulates what actually ran: passes, samples, per-layer
// host-side wall nanoseconds of the fast kernels (where the *host* burns its
// time — distinct from where the modeled device burns cycles, which is the
// point of recording both).
//
// Occupancy is the datapath utilization the layer achieves under the
// DianNao-style schedule: useful MACs / (compute cycles x neurons x
// synapses lanes). Pipeline-drain cycles count as idle (they are), so even
// a perfectly-tiled layer sits below 1.0; pool/elementwise layers stream
// through otherwise-idle datapath slots and are reported at 0.
//
// Thread-safety: record_pass / record_layer_host_ns are called concurrently
// from every engine worker sharing the executor — all accumulators are
// relaxed atomics. snapshot() is safe concurrently with recording and
// returns a stats-grade (monotonic counters, not an atomic cut) view.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "hw/cost_model.hpp"
#include "hw/cycle_model.hpp"
#include "hw/qnet.hpp"

namespace mfdfp::hw {

/// One layer of a LayerProfile snapshot.
struct LayerProfileRow {
  std::string name;  ///< workload name ("L0:conv", "L2:maxpool", ...)
  LayerWork::Kind kind = LayerWork::Kind::kConv;

  // Static per-sample model (from CycleModel / TrafficModel).
  std::uint64_t cycles_per_sample = 0;  ///< includes pipeline drain
  std::uint64_t macs_per_sample = 0;
  std::uint64_t weight_bytes = 0;       ///< DMA, once per batch
  std::uint64_t act_bytes_per_sample = 0;  ///< DMA, input + output maps
  double occupancy = 0.0;               ///< useful MACs / datapath slots

  // Accumulated over every recorded pass.
  std::uint64_t cycles_total = 0;  ///< == samples x cycles_per_sample
  std::uint64_t host_ns_total = 0; ///< wall time of the fast kernel
};

/// Consistent view of one member's accumulated profile.
struct LayerProfile {
  std::vector<LayerProfileRow> rows;
  std::uint64_t passes = 0;   ///< run_batch calls recorded
  std::uint64_t samples = 0;  ///< samples across those passes

  /// Per-sample total == CycleReport::total_cycles for the same workload
  /// and config, bit-exactly (same integer pipeline, no recomputation).
  std::uint64_t cycles_per_sample_total = 0;
  /// == samples x cycles_per_sample_total, and == sum of rows'
  /// cycles_total.
  std::uint64_t cycles_total = 0;
  std::uint64_t host_ns_total = 0;
};

/// The accumulator AcceleratorExecutor::run_batch reports into (attached by
/// the owning backend via AcceleratorExecutor::set_profiler).
class LayerProfiler {
 public:
  /// Builds the static per-layer tables from the same workload /
  /// cycle-model / traffic-model pipeline the serving cost accounting uses.
  LayerProfiler(const QNetDesc& desc, std::size_t in_c, std::size_t in_h,
                std::size_t in_w, const AcceleratorConfig& config);

  /// One executed run_batch pass of `batch_samples` samples.
  void record_pass(std::size_t batch_samples) noexcept;

  /// Host wall time of one fast-kernel invocation for desc layer index
  /// `desc_layer` (the executor's index; flatten layers are free and
  /// ignored).
  void record_layer_host_ns(std::size_t desc_layer,
                            std::uint64_t ns) noexcept;

  /// Host wall time of one *fused* compiled-plan step covering the desc
  /// layers in `desc_layers` (source order). The time is attributed back to
  /// the source layers' rows proportionally to their modeled cycle shares
  /// (the fused kernel gives no per-stage boundary to measure), remainder
  /// to the first row; layers without a row (flatten) are skipped. A
  /// single-layer step degenerates to record_layer_host_ns.
  void record_fused_host_ns(std::span<const std::size_t> desc_layers,
                            std::uint64_t ns) noexcept;

  [[nodiscard]] LayerProfile snapshot() const;

  /// Rows in the profile (workload layers; flatten excluded).
  [[nodiscard]] std::size_t layer_count() const noexcept {
    return static_.size();
  }

 private:
  struct StaticRow {
    std::string name;
    LayerWork::Kind kind = LayerWork::Kind::kConv;
    std::uint64_t cycles = 0;
    std::uint64_t macs = 0;
    std::uint64_t weight_bytes = 0;
    std::uint64_t act_bytes = 0;
    double occupancy = 0.0;
  };

  std::vector<StaticRow> static_;
  std::uint64_t cycles_per_sample_total_ = 0;
  /// desc layer index -> row index (SIZE_MAX for free/flatten layers).
  std::vector<std::size_t> row_of_layer_;

  std::atomic<std::uint64_t> passes_{0};
  std::atomic<std::uint64_t> samples_{0};
  /// Per-row host-ns accumulators (heap array: rows are fixed after
  /// construction, atomics are not movable).
  std::unique_ptr<std::atomic<std::uint64_t>[]> host_ns_;
};

/// Renders one profile as an aligned per-layer table (cycles, share, DMA,
/// occupancy, host time), ready to print.
[[nodiscard]] std::string render_layer_profile_table(
    const LayerProfile& profile, const std::string& title);

}  // namespace mfdfp::hw
