#include "hw/cycle_model.hpp"

#include <stdexcept>

namespace mfdfp::hw {
namespace {

[[nodiscard]] std::uint64_t ceil_div(std::uint64_t a,
                                     std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

[[nodiscard]] std::size_t conv_out_dim(std::size_t in, std::size_t k,
                                       std::size_t stride, std::size_t pad) {
  return (in + 2 * pad - k) / stride + 1;
}

}  // namespace

std::vector<LayerWork> workload_from_qnet(const QNetDesc& desc,
                                          std::size_t in_c, std::size_t in_h,
                                          std::size_t in_w) {
  std::vector<LayerWork> work;
  std::size_t c = in_c, h = in_h, w = in_w;
  std::size_t index = 0;
  for (const QLayer& layer : desc.layers) {
    LayerWork lw;
    lw.name = "L" + std::to_string(index++);
    if (const auto* conv = std::get_if<QConv>(&layer)) {
      if (conv->in_c != c) {
        throw std::invalid_argument("workload_from_qnet: channel mismatch");
      }
      const std::size_t oh = conv_out_dim(h, conv->kernel, conv->stride,
                                          conv->pad);
      const std::size_t ow = conv_out_dim(w, conv->kernel, conv->stride,
                                          conv->pad);
      lw.name += ":conv";
      lw.kind = LayerWork::Kind::kConv;
      lw.output_pixels = oh * ow;
      lw.out_channels = conv->out_c;
      lw.patch = conv->in_c * conv->kernel * conv->kernel;
      c = conv->out_c;
      h = oh;
      w = ow;
    } else if (const auto* fc = std::get_if<QFullyConnected>(&layer)) {
      lw.name += ":fc";
      lw.kind = LayerWork::Kind::kFullyConnected;
      lw.output_pixels = 1;
      lw.out_channels = fc->out_features;
      lw.patch = fc->in_features;
      c = fc->out_features;
      h = w = 1;
    } else if (const auto* pool = std::get_if<QPool>(&layer)) {
      const std::size_t oh = conv_out_dim(h, pool->window, pool->stride,
                                          pool->pad);
      const std::size_t ow = conv_out_dim(w, pool->window, pool->stride,
                                          pool->pad);
      lw.name += pool->is_max ? ":maxpool" : ":avgpool";
      lw.kind = LayerWork::Kind::kPool;
      lw.output_pixels = oh * ow;
      lw.out_channels = c;
      lw.patch = pool->window * pool->window;
      h = oh;
      w = ow;
    } else if (std::holds_alternative<QRelu>(layer)) {
      lw.name += ":relu";
      lw.kind = LayerWork::Kind::kElementwise;
      lw.output_pixels = h * w;
      lw.out_channels = c;
      lw.patch = 1;
    } else {  // flatten: free (pure wiring)
      continue;
    }
    work.push_back(std::move(lw));
  }
  return work;
}

std::vector<LayerWork> paper_cifar10_workload() {
  using K = LayerWork::Kind;
  // cuda-convnet on 3x32x32: conv5/pad2 32ch -> maxpool3s2 -> conv5 32ch ->
  // avgpool3s2 -> conv5 64ch -> avgpool3s2 -> fc10. Pool output dims follow
  // Caffe's ceil-mode (32->16->15... we use the standard 32/16/8 tiling of
  // the Caffe example: pool output = ceil((in - k)/s) + 1).
  return {
      {"conv1", K::kConv, 32 * 32, 32, 3 * 25},
      {"pool1", K::kPool, 16 * 16, 32, 9},
      {"conv2", K::kConv, 16 * 16, 32, 32 * 25},
      {"pool2", K::kPool, 8 * 8, 32, 9},
      {"conv3", K::kConv, 8 * 8, 64, 32 * 25},
      {"pool3", K::kPool, 4 * 4, 64, 9},
      {"fc", K::kFullyConnected, 1, 10, 64 * 4 * 4},
  };
}

std::vector<LayerWork> paper_imagenet_workload() {
  using K = LayerWork::Kind;
  // AlexNet without grouping, LRN removed (paper Section 6.1).
  return {
      {"conv1", K::kConv, 55 * 55, 96, 3 * 121},
      {"pool1", K::kPool, 27 * 27, 96, 9},
      {"conv2", K::kConv, 27 * 27, 256, 96 * 25},
      {"pool2", K::kPool, 13 * 13, 256, 9},
      {"conv3", K::kConv, 13 * 13, 384, 256 * 9},
      {"conv4", K::kConv, 13 * 13, 384, 384 * 9},
      {"conv5", K::kConv, 13 * 13, 256, 384 * 9},
      {"pool5", K::kPool, 6 * 6, 256, 9},
      {"fc6", K::kFullyConnected, 1, 4096, 256 * 6 * 6},
      {"fc7", K::kFullyConnected, 1, 4096, 4096},
      {"fc8", K::kFullyConnected, 1, 1000, 4096},
  };
}

CycleReport count_cycles(const std::vector<LayerWork>& workload,
                         const AcceleratorConfig& config) {
  const std::uint64_t neurons = config.neurons_per_pu;
  const std::uint64_t synapses = config.synapses_per_neuron;
  if (neurons == 0 || synapses == 0) {
    throw std::invalid_argument("count_cycles: bad config");
  }
  const auto drain = static_cast<std::uint64_t>(config.pipeline_depth());

  CycleReport report;
  for (const LayerWork& lw : workload) {
    LayerCycles lc;
    lc.name = lw.name;
    lc.macs = lw.macs();
    switch (lw.kind) {
      case LayerWork::Kind::kConv:
      case LayerWork::Kind::kFullyConnected:
        lc.cycles = lw.output_pixels * ceil_div(lw.out_channels, neurons) *
                    ceil_div(lw.patch, synapses);
        break;
      case LayerWork::Kind::kPool:
        // One window tile per cycle across the neuron lanes.
        lc.cycles = lw.output_pixels * ceil_div(lw.out_channels, neurons) *
                    ceil_div(lw.patch, synapses);
        break;
      case LayerWork::Kind::kElementwise:
        // Streams through the NL units, `neurons` values per cycle.
        lc.cycles = ceil_div(lw.output_pixels * lw.out_channels, neurons);
        break;
    }
    lc.cycles += drain;
    report.total_cycles += lc.cycles;
    report.layers.push_back(std::move(lc));
  }
  return report;
}

double energy_uj(const CycleReport& cycles, const AcceleratorConfig& config) {
  const CostBreakdown cost = cost_model(config);
  // mW * s = uJ * 1e-3; convert explicitly: P[mW] * t[s] * 1e3 = uJ.
  return cost.total_power_mw() * cycles.seconds(config) * 1e3;
}

}  // namespace mfdfp::hw
