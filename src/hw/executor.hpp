// Functional (bit-accurate) execution of a QNetDesc on the accelerator.
//
// Conv and FC layers run through the shift-based neuron datapath
// (datapath.hpp) in 16-synapse tiles exactly as the NPU schedules them;
// pool/ReLU/flatten stages operate on 8-bit codes. The executor's outputs
// are bit-identical to the fake-quantized software model (quant::install_mf_dfp)
// — this invariant is enforced by integration/property tests.
#pragma once

#include "hw/datapath.hpp"
#include "hw/qnet.hpp"
#include "tensor/tensor.hpp"

namespace mfdfp::hw {

/// Activation tensor in code domain: 8-bit codes at a common radix `frac`.
struct CodeTensor {
  tensor::Shape shape;
  std::vector<std::int8_t> codes;
  int frac = 0;

  [[nodiscard]] std::size_t size() const noexcept { return codes.size(); }

  /// Decodes to real values.
  [[nodiscard]] tensor::Tensor decode() const;

  /// Encodes a float tensor with <8, frac>.
  [[nodiscard]] static CodeTensor encode(const tensor::Tensor& values,
                                         int frac);
};

class AcceleratorExecutor {
 public:
  /// Predecodes weight nibbles for fast synapse access.
  explicit AcceleratorExecutor(const QNetDesc& desc);

  /// Full pipeline: encode images at the input radix, run every layer on the
  /// integer datapath, decode the final activations (logits) to float.
  [[nodiscard]] tensor::Tensor run(const tensor::Tensor& images) const;

  /// Code-domain execution (exposed for layer-level tests).
  [[nodiscard]] CodeTensor run_codes(CodeTensor input) const;

  [[nodiscard]] const QNetDesc& desc() const noexcept { return desc_; }

 private:
  CodeTensor run_conv(const QConv& conv,
                      std::span<const quant::Pow2Weight> weights,
                      const CodeTensor& input) const;
  CodeTensor run_fc(const QFullyConnected& fc,
                    std::span<const quant::Pow2Weight> weights,
                    const CodeTensor& input) const;
  CodeTensor run_pool(const QPool& pool, const CodeTensor& input) const;

  QNetDesc desc_;
  /// Decoded weights per layer index (empty for weight-less layers).
  std::vector<std::vector<quant::Pow2Weight>> decoded_weights_;
};

/// Averaged-logit ensemble execution (one accelerator processing unit per
/// member network, outputs combined as in paper Section 4.3).
[[nodiscard]] tensor::Tensor run_ensemble(
    std::span<const AcceleratorExecutor* const> members,
    const tensor::Tensor& images);

}  // namespace mfdfp::hw
