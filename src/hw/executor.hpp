// Functional (bit-accurate) execution of a QNetDesc on the accelerator.
//
// Conv and FC layers run through the shift-based neuron datapath
// (datapath.hpp) in 16-synapse tiles exactly as the NPU schedules them;
// pool/ReLU/flatten stages operate on 8-bit codes. The executor's outputs
// are bit-identical to the fake-quantized software model (quant::install_mf_dfp)
// — this invariant is enforced by integration/property tests.
#pragma once

#include "hw/datapath.hpp"
#include "hw/qnet.hpp"
#include "tensor/tensor.hpp"

namespace mfdfp::hw {

class LayerProfiler;  // hw/layer_profile.hpp

/// Activation tensor in code domain: 8-bit codes at a common radix `frac`.
struct CodeTensor {
  tensor::Shape shape;
  std::vector<std::int8_t> codes;
  int frac = 0;

  [[nodiscard]] std::size_t size() const noexcept { return codes.size(); }

  /// Decodes to real values.
  [[nodiscard]] tensor::Tensor decode() const;

  /// Encodes a float tensor with <8, frac>.
  [[nodiscard]] static CodeTensor encode(const tensor::Tensor& values,
                                         int frac);

  /// Encodes into `out`, reusing its `codes` capacity (no allocation once
  /// the buffer has grown to the batch size).
  static void encode_into(const tensor::Tensor& values, int frac,
                          CodeTensor& out);
};

/// Reusable scratch for the batched fast path. One instance per thread:
/// activation buffers and conv gather indices are recycled across layers and
/// across run_batch calls, so steady-state serving does no per-request
/// allocation in the layer loop. Not thread-safe; workers own one each.
struct ExecScratch {
  CodeTensor input;                 ///< current activation (ping)
  CodeTensor output;                ///< next activation (pong)
  std::vector<std::size_t> index;   ///< per-pixel patch gather index table
  std::vector<std::int8_t> patch;   ///< im2col patch buffer (compiled plans)
};

class AcceleratorExecutor {
 public:
  /// Predecodes weight nibbles for fast synapse access. Takes the
  /// deployment image by value so callers can move large weight streams in.
  explicit AcceleratorExecutor(QNetDesc desc);

  /// Full pipeline: encode images at the input radix, run every layer on the
  /// integer datapath, decode the final activations (logits) to float.
  [[nodiscard]] tensor::Tensor run(const tensor::Tensor& images) const;

  /// Batched fast path for serving: encodes the whole stacked batch (N on
  /// the outer axis) once, then runs optimized integer kernels — weights
  /// predecoded to plain +/-2^(7+e) multipliers, conv patch gather indices
  /// built once per layer and shared across the batch and all output
  /// channels, activations ping-ponged through `scratch`'s recycled buffers
  /// instead of per-call allocations. Outputs are bit-identical to calling
  /// run() on each sample (enforced by test_serve.cpp); unlike run(), the
  /// fast kernels do not re-assert per-wire widths — the datapath-faithful
  /// reference path remains run()/run_codes().
  [[nodiscard]] tensor::Tensor run_batch(const tensor::Tensor& images,
                                         ExecScratch& scratch) const;

  /// Code-domain execution (exposed for layer-level tests).
  [[nodiscard]] CodeTensor run_codes(CodeTensor input) const;

  [[nodiscard]] const QNetDesc& desc() const noexcept { return desc_; }

  /// Attaches the per-layer profiling sink run_batch reports into (pass /
  /// sample counts plus per-layer host kernel time; the modeled cycle/DMA
  /// tables live in the profiler itself — see hw/layer_profile.hpp). Call
  /// before the first concurrent run_batch; null detaches. The profiler
  /// must outlive the executor's last run_batch call.
  void set_profiler(LayerProfiler* profiler) noexcept {
    profiler_ = profiler;
  }
  [[nodiscard]] const LayerProfiler* profiler() const noexcept {
    return profiler_;
  }

 private:
  /// Runs layer `i` out-of-place: reads `input`, fills `out` (shape/frac
  /// set, codes resized reusing capacity). Only conv/fc/pool use this path.
  void run_conv(const QConv& conv, std::span<const quant::Pow2Weight> weights,
                const CodeTensor& input, CodeTensor& out,
                std::vector<std::size_t>& index) const;
  void run_fc(const QFullyConnected& fc,
              std::span<const quant::Pow2Weight> weights,
              const CodeTensor& input, CodeTensor& out) const;
  void run_pool(const QPool& pool, const CodeTensor& input,
                CodeTensor& out) const;

  /// Fast-kernel variants used by run_batch (see run_batch docs).
  void run_conv_fast(const QConv& conv, std::span<const std::int32_t> weights,
                     const CodeTensor& input, CodeTensor& out,
                     std::vector<std::size_t>& index) const;
  void run_fc_fast(const QFullyConnected& fc,
                   std::span<const std::int32_t> weights,
                   const CodeTensor& input, CodeTensor& out) const;

  /// Layer loop over scratch.input, ping-ponging with scratch.output.
  /// Result is left in scratch.input.
  void run_codes_scratch(ExecScratch& scratch) const;

  QNetDesc desc_;
  /// Decoded weights per layer index (empty for weight-less layers).
  std::vector<std::vector<quant::Pow2Weight>> decoded_weights_;
  /// The same weights as plain integer multipliers +/-2^(7+e) (units
  /// 2^-(m+7), identical to synapse_product) for the batched fast kernels.
  std::vector<std::vector<std::int32_t>> fast_weights_;
  /// Profiling sink of the batched serving path (null = no profiling). The
  /// profiler's accumulators are atomic, so concurrent run_batch callers
  /// may share it.
  LayerProfiler* profiler_ = nullptr;
};

/// Averaged-logit ensemble execution (one accelerator processing unit per
/// member network, outputs combined as in paper Section 4.3).
[[nodiscard]] tensor::Tensor run_ensemble(
    std::span<const AcceleratorExecutor* const> members,
    const tensor::Tensor& images);

/// Batched ensemble fast path: every member runs through `scratch` and the
/// member logits are averaged. Bit-identical to run_ensemble().
[[nodiscard]] tensor::Tensor run_ensemble_batch(
    std::span<const AcceleratorExecutor* const> members,
    const tensor::Tensor& images, ExecScratch& scratch);

}  // namespace mfdfp::hw
