#include "hw/qnet.hpp"

#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/fully_connected.hpp"
#include "nn/pooling.hpp"

namespace mfdfp::hw {

std::size_t QNetDesc::parameter_bytes() const {
  std::size_t total = 0;
  for (const QLayer& layer : layers) {
    if (const auto* conv = std::get_if<QConv>(&layer)) {
      total += conv->packed_weights.size() + conv->bias_codes.size();
    } else if (const auto* fc = std::get_if<QFullyConnected>(&layer)) {
      total += fc->packed_weights.size() + fc->bias_codes.size();
    }
  }
  return total;
}

namespace {

std::vector<std::int8_t> encode_bias(const tensor::Tensor& bias,
                                     const quant::DfpFormat& format) {
  std::vector<std::int8_t> codes(bias.size());
  for (std::size_t i = 0; i < bias.size(); ++i) {
    codes[i] = static_cast<std::int8_t>(format.encode(bias[i]));
  }
  return codes;
}

}  // namespace

QNetDesc extract_qnet(const nn::Network& network,
                      const quant::QuantSpec& spec, std::string name) {
  if (spec.layer_output.size() != network.layer_count()) {
    throw std::invalid_argument("extract_qnet: spec arity mismatch");
  }
  QNetDesc desc;
  desc.name = std::move(name);
  desc.input_frac = spec.input.frac;

  for (std::size_t i = 0; i < network.layer_count(); ++i) {
    const nn::Layer& layer = network.layer(i);
    const quant::DfpFormat out_format = spec.layer_output[i];
    if (const auto* conv = dynamic_cast<const nn::Conv2D*>(&layer)) {
      QConv q;
      q.in_c = conv->config().in_channels;
      q.out_c = conv->config().out_channels;
      q.kernel = conv->config().kernel;
      q.stride = conv->config().stride;
      q.pad = conv->config().pad;
      q.packed_weights = quant::pack_pow2(conv->master_weights());
      q.bias_codes = encode_bias(conv->master_bias(), out_format);
      q.out_frac = out_format.frac;
      desc.layers.emplace_back(std::move(q));
    } else if (const auto* fc =
                   dynamic_cast<const nn::FullyConnected*>(&layer)) {
      QFullyConnected q;
      q.in_features = fc->config().in_features;
      q.out_features = fc->config().out_features;
      q.packed_weights = quant::pack_pow2(fc->master_weights());
      q.bias_codes = encode_bias(fc->master_bias(), out_format);
      q.out_frac = out_format.frac;
      desc.layers.emplace_back(std::move(q));
    } else if (const auto* maxpool =
                   dynamic_cast<const nn::MaxPool2D*>(&layer)) {
      desc.layers.emplace_back(QPool{true, maxpool->config().window,
                                     maxpool->config().stride,
                                     maxpool->config().pad, out_format.frac});
    } else if (const auto* avgpool =
                   dynamic_cast<const nn::AvgPool2D*>(&layer)) {
      desc.layers.emplace_back(QPool{false, avgpool->config().window,
                                     avgpool->config().stride,
                                     avgpool->config().pad, out_format.frac});
    } else if (dynamic_cast<const nn::ReLU*>(&layer) != nullptr) {
      desc.layers.emplace_back(QRelu{out_format.frac});
    } else if (dynamic_cast<const nn::Flatten*>(&layer) != nullptr) {
      desc.layers.emplace_back(QFlatten{out_format.frac});
    } else {
      throw std::invalid_argument(
          std::string("extract_qnet: unsupported layer kind '") +
          layer.kind() + "'");
    }
  }
  return desc;
}

}  // namespace mfdfp::hw
