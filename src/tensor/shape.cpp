#include "tensor/shape.hpp"

#include <stdexcept>

namespace mfdfp::tensor {

Shape::Shape(std::initializer_list<std::size_t> dims) {
  if (dims.size() > kMaxRank) {
    throw std::invalid_argument("Shape: rank " + std::to_string(dims.size()) +
                                " exceeds max rank 4");
  }
  for (std::size_t d : dims) {
    if (d == 0) throw std::invalid_argument("Shape: zero-sized dimension");
    dims_[rank_++] = d;
  }
}

std::size_t Shape::size() const noexcept {
  std::size_t total = 1;
  for (std::size_t i = 0; i < rank_; ++i) total *= dims_[i];
  return total;
}

std::size_t Shape::dim(std::size_t axis) const {
  if (axis >= rank_) {
    throw std::out_of_range("Shape: axis " + std::to_string(axis) +
                            " out of range for rank " + std::to_string(rank_));
  }
  return dims_[axis];
}

std::size_t Shape::offset(std::size_t n, std::size_t c, std::size_t h,
                          std::size_t w) const {
  if (rank_ != 4) throw std::logic_error("Shape::offset: rank-4 required");
  return ((n * dims_[1] + c) * dims_[2] + h) * dims_[3] + w;
}

std::size_t Shape::offset(std::size_t row, std::size_t col) const {
  if (rank_ != 2) throw std::logic_error("Shape::offset: rank-2 required");
  return row * dims_[1] + col;
}

bool Shape::operator==(const Shape& other) const noexcept {
  if (rank_ != other.rank_) return false;
  for (std::size_t i = 0; i < rank_; ++i)
    if (dims_[i] != other.dims_[i]) return false;
  return true;
}

std::string Shape::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < rank_; ++i) {
    if (i) out += ", ";
    out += std::to_string(dims_[i]);
  }
  out += "]";
  return out;
}

}  // namespace mfdfp::tensor
