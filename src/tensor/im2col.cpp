#include "tensor/im2col.hpp"

#include <stdexcept>

namespace mfdfp::tensor {
namespace {

void check_geometry(const ConvGeometry& g) {
  if (!g.valid()) throw std::invalid_argument("ConvGeometry: invalid");
}

}  // namespace

void im2col(const Tensor& input, std::size_t n, const ConvGeometry& g,
            Tensor& columns) {
  check_geometry(g);
  const std::size_t oh = g.out_h(), ow = g.out_w();
  const Shape want{g.patch_size(), oh * ow};
  if (columns.shape() != want) {
    throw std::invalid_argument("im2col: columns shape " +
                                columns.shape().to_string() + " != " +
                                want.to_string());
  }
  auto out = columns.data();
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.in_c; ++c) {
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        float* dst = out.data() + row * oh * ow;
        for (std::size_t y = 0; y < oh; ++y) {
          // Signed arithmetic: padded taps land at negative coordinates.
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(y * g.stride + kh) -
              static_cast<std::ptrdiff_t>(g.pad);
          for (std::size_t x = 0; x < ow; ++x) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(x * g.stride + kw) -
                static_cast<std::ptrdiff_t>(g.pad);
            const bool inside = iy >= 0 &&
                                iy < static_cast<std::ptrdiff_t>(g.in_h) &&
                                ix >= 0 &&
                                ix < static_cast<std::ptrdiff_t>(g.in_w);
            dst[y * ow + x] =
                inside ? input.at(n, c, static_cast<std::size_t>(iy),
                                  static_cast<std::size_t>(ix))
                       : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const Tensor& columns, std::size_t n, const ConvGeometry& g,
            Tensor& grad_input) {
  check_geometry(g);
  const std::size_t oh = g.out_h(), ow = g.out_w();
  const Shape want{g.patch_size(), oh * ow};
  if (columns.shape() != want) {
    throw std::invalid_argument("col2im: columns shape mismatch");
  }
  auto cols = columns.data();
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.in_c; ++c) {
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* src = cols.data() + row * oh * ow;
        for (std::size_t y = 0; y < oh; ++y) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(y * g.stride + kh) -
              static_cast<std::ptrdiff_t>(g.pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.in_h)) continue;
          for (std::size_t x = 0; x < ow; ++x) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(x * g.stride + kw) -
                static_cast<std::ptrdiff_t>(g.pad);
            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(g.in_w)) continue;
            grad_input.at(n, c, static_cast<std::size_t>(iy),
                          static_cast<std::size_t>(ix)) += src[y * ow + x];
          }
        }
      }
    }
  }
}

void matmul(const Tensor& a, const Tensor& b, Tensor& c) {
  const auto& sa = a.shape();
  const auto& sb = b.shape();
  if (sa.rank() != 2 || sb.rank() != 2 || sa.dim(1) != sb.dim(0)) {
    throw std::invalid_argument("matmul: incompatible shapes " +
                                sa.to_string() + " x " + sb.to_string());
  }
  const std::size_t m = sa.dim(0), k = sa.dim(1), n = sb.dim(1);
  if (c.shape() != Shape{m, n}) {
    throw std::invalid_argument("matmul: bad output shape");
  }
  c.zero();
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  // ikj order: unit-stride inner loop over both B and C rows.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = pb + kk * n;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void matmul_tn(const Tensor& a, const Tensor& b, Tensor& c) {
  const auto& sa = a.shape();
  const auto& sb = b.shape();
  if (sa.rank() != 2 || sb.rank() != 2 || sa.dim(0) != sb.dim(0)) {
    throw std::invalid_argument("matmul_tn: incompatible shapes");
  }
  const std::size_t k = sa.dim(0), m = sa.dim(1), n = sb.dim(1);
  if (c.shape() != Shape{m, n}) {
    throw std::invalid_argument("matmul_tn: bad output shape");
  }
  c.zero();
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float aki = arow[i];
      if (aki == 0.0f) continue;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
}

void matmul_nt(const Tensor& a, const Tensor& b, Tensor& c) {
  const auto& sa = a.shape();
  const auto& sb = b.shape();
  if (sa.rank() != 2 || sb.rank() != 2 || sa.dim(1) != sb.dim(1)) {
    throw std::invalid_argument("matmul_nt: incompatible shapes");
  }
  const std::size_t m = sa.dim(0), k = sa.dim(1), n = sb.dim(0);
  if (c.shape() != Shape{m, n}) {
    throw std::invalid_argument("matmul_nt: bad output shape");
  }
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      pc[i * n + j] = acc;
    }
  }
}

}  // namespace mfdfp::tensor
