// Tensor shape algebra.
//
// Shapes are rank<=4 and interpreted as NCHW for image tensors; lower ranks
// are right-aligned views of the same layout (e.g. rank-2 = {rows, cols}).
#pragma once

#include <array>
#include <cstddef>
#include <initializer_list>
#include <string>

namespace mfdfp::tensor {

/// Value-type shape: rank in [0,4], dims stored densely.
class Shape {
 public:
  static constexpr std::size_t kMaxRank = 4;

  Shape() = default;

  /// Constructs from a dim list, e.g. Shape{8, 3, 32, 32}. Throws
  /// std::invalid_argument on rank > 4 or zero-sized dims.
  Shape(std::initializer_list<std::size_t> dims);

  [[nodiscard]] std::size_t rank() const noexcept { return rank_; }

  /// Total element count; 1 for rank-0 (scalar).
  [[nodiscard]] std::size_t size() const noexcept;

  /// Dim accessor. Precondition: axis < rank().
  [[nodiscard]] std::size_t dim(std::size_t axis) const;
  [[nodiscard]] std::size_t operator[](std::size_t axis) const {
    return dim(axis);
  }

  // NCHW convenience accessors; valid for rank-4 shapes.
  [[nodiscard]] std::size_t n() const { return dim(0); }
  [[nodiscard]] std::size_t c() const { return dim(1); }
  [[nodiscard]] std::size_t h() const { return dim(2); }
  [[nodiscard]] std::size_t w() const { return dim(3); }

  /// Row-major linear offset of a rank-4 index. Precondition: rank()==4.
  [[nodiscard]] std::size_t offset(std::size_t n, std::size_t c,
                                   std::size_t h, std::size_t w) const;

  /// Row-major linear offset of a rank-2 index. Precondition: rank()==2.
  [[nodiscard]] std::size_t offset(std::size_t row, std::size_t col) const;

  [[nodiscard]] bool operator==(const Shape& other) const noexcept;
  [[nodiscard]] bool operator!=(const Shape& other) const noexcept {
    return !(*this == other);
  }

  /// "[8, 3, 32, 32]" for diagnostics.
  [[nodiscard]] std::string to_string() const;

 private:
  std::array<std::size_t, kMaxRank> dims_{};
  std::size_t rank_ = 0;
};

}  // namespace mfdfp::tensor
