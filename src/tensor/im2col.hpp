// im2col / col2im lowering for convolution.
//
// Convolution forward is lowered to a matrix product: the input patch matrix
// (rows = C*KH*KW, cols = OH*OW) times the kernel matrix. col2im is the exact
// adjoint, used in the backward pass to scatter patch gradients back to the
// input gradient. Zero padding and arbitrary stride are supported.
#pragma once

#include <cstddef>

#include "tensor/tensor.hpp"

namespace mfdfp::tensor {

/// Geometry of one conv/pool window application.
struct ConvGeometry {
  std::size_t in_c = 0, in_h = 0, in_w = 0;
  std::size_t kernel_h = 0, kernel_w = 0;
  std::size_t stride = 1;
  std::size_t pad = 0;

  [[nodiscard]] std::size_t out_h() const {
    return (in_h + 2 * pad - kernel_h) / stride + 1;
  }
  [[nodiscard]] std::size_t out_w() const {
    return (in_w + 2 * pad - kernel_w) / stride + 1;
  }
  /// Rows of the lowered patch matrix.
  [[nodiscard]] std::size_t patch_size() const {
    return in_c * kernel_h * kernel_w;
  }
  /// True iff the window fits at least once in each spatial dim.
  [[nodiscard]] bool valid() const {
    return in_c && kernel_h && kernel_w && stride &&
           in_h + 2 * pad >= kernel_h && in_w + 2 * pad >= kernel_w;
  }
};

/// Lowers one image (C,H,W slice at batch index `n` of `input`) to `columns`,
/// a rank-2 tensor of shape {patch_size, out_h*out_w}. Out-of-bounds (padded)
/// taps produce zeros.
void im2col(const Tensor& input, std::size_t n, const ConvGeometry& g,
            Tensor& columns);

/// Adjoint of im2col: accumulates `columns` (shape {patch_size, out_h*out_w})
/// back into the (C,H,W) slice at batch index `n` of `grad_input`.
/// grad_input is NOT zeroed here; caller zeroes once per batch.
void col2im(const Tensor& columns, std::size_t n, const ConvGeometry& g,
            Tensor& grad_input);

/// C = A * B for rank-2 tensors: A is {m,k}, B is {k,n}, C is {m,n}.
/// Plain triple loop with k-inner blocking; adequate for the network sizes
/// used in the experiments.
void matmul(const Tensor& a, const Tensor& b, Tensor& c);

/// C = A^T * B: A is {k,m}, B is {k,n}, C is {m,n}.
void matmul_tn(const Tensor& a, const Tensor& b, Tensor& c);

/// C = A * B^T: A is {m,k}, B is {n,k}, C is {m,n}.
void matmul_nt(const Tensor& a, const Tensor& b, Tensor& c);

}  // namespace mfdfp::tensor
