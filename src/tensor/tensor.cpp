#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mfdfp::tensor {

Tensor::Tensor(Shape shape) : shape_(shape), data_(shape.size(), 0.0f) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(shape), data_(std::move(values)) {
  if (data_.size() != shape_.size()) {
    throw std::invalid_argument("Tensor: value count " +
                                std::to_string(data_.size()) +
                                " != shape size " +
                                std::to_string(shape_.size()));
  }
}

void Tensor::fill(float value) noexcept {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::fill_normal(util::Rng& rng, float mean, float stddev) {
  for (float& v : data_) v = rng.normal_f(mean, stddev);
}

void Tensor::fill_uniform(util::Rng& rng, float lo, float hi) {
  for (float& v : data_) v = rng.uniform_f(lo, hi);
}

float Tensor::sum() const noexcept {
  // Kahan summation: training statistics accumulate over many small terms.
  float total = 0.0f;
  float carry = 0.0f;
  for (float v : data_) {
    const float y = v - carry;
    const float t = total + y;
    carry = (t - total) - y;
    total = t;
  }
  return total;
}

float Tensor::min() const noexcept {
  float m = data_.empty() ? 0.0f : data_[0];
  for (float v : data_) m = std::min(m, v);
  return m;
}

float Tensor::max() const noexcept {
  float m = data_.empty() ? 0.0f : data_[0];
  for (float v : data_) m = std::max(m, v);
  return m;
}

float Tensor::max_abs() const noexcept {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

float Tensor::mean() const noexcept {
  return data_.empty() ? 0.0f : sum() / static_cast<float>(data_.size());
}

std::size_t Tensor::argmax(std::size_t begin, std::size_t end) const {
  if (begin >= end || end > data_.size()) {
    throw std::out_of_range("Tensor::argmax: bad range");
  }
  std::size_t best = begin;
  for (std::size_t i = begin + 1; i < end; ++i) {
    if (data_[i] > data_[best]) best = i;
  }
  return best;
}

Tensor& Tensor::add(const Tensor& other) { return axpy(1.0f, other); }

Tensor& Tensor::axpy(float alpha, const Tensor& other) {
  if (other.size() != size()) {
    throw std::invalid_argument("Tensor::axpy: size mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
  return *this;
}

Tensor& Tensor::scale(float alpha) noexcept {
  for (float& v : data_) v *= alpha;
  return *this;
}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (new_shape.size() != size()) {
    throw std::invalid_argument("Tensor::reshaped: element count mismatch (" +
                                shape_.to_string() + " -> " +
                                new_shape.to_string() + ")");
  }
  return Tensor{new_shape, data_};
}

bool Tensor::equals(const Tensor& other) const noexcept {
  return shape_ == other.shape_ && data_ == other.data_;
}

namespace {

Shape outer_resized(const Shape& s, std::size_t count) {
  switch (s.rank()) {
    case 1:
      return Shape{count};
    case 2:
      return Shape{count, s.dim(1)};
    case 3:
      return Shape{count, s.dim(1), s.dim(2)};
    case 4:
      return Shape{count, s.dim(1), s.dim(2), s.dim(3)};
    default:
      throw std::invalid_argument("slice_outer: rank >= 1 required");
  }
}

}  // namespace

Tensor slice_outer(const Tensor& t, std::size_t begin, std::size_t end) {
  const Shape& s = t.shape();
  if (s.rank() == 0 || begin >= end || end > s.dim(0)) {
    throw std::out_of_range("slice_outer: bad range");
  }
  const std::size_t item = s.size() / s.dim(0);
  Tensor out{outer_resized(s, end - begin)};
  std::copy(t.data().data() + begin * item, t.data().data() + end * item,
            out.data().data());
  return out;
}

Tensor gather_outer(const Tensor& t, std::span<const std::size_t> indices) {
  const Shape& s = t.shape();
  if (s.rank() == 0) throw std::invalid_argument("gather_outer: rank 0");
  const std::size_t item = s.size() / s.dim(0);
  Tensor out{outer_resized(s, indices.size())};
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= s.dim(0)) {
      throw std::out_of_range("gather_outer: index out of range");
    }
    std::copy(t.data().data() + indices[i] * item,
              t.data().data() + (indices[i] + 1) * item,
              out.data().data() + i * item);
  }
  return out;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("max_abs_diff: size mismatch");
  }
  float m = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

}  // namespace mfdfp::tensor
