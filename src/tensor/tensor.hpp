// Owning dense float tensor (row-major, rank <= 4, NCHW convention).
//
// This is the numeric workhorse of the training substrate. It is a plain
// value type: copyable, movable, with contiguous storage exposed via span for
// kernels (im2col/GEMM) that want raw loops.
#pragma once

#include <span>
#include <vector>

#include "tensor/shape.hpp"
#include "util/rng.hpp"

namespace mfdfp::tensor {

class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Allocates and fills from `values`; size must match shape.size().
  Tensor(Shape shape, std::vector<float> values);

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] std::span<float> data() noexcept { return data_; }
  [[nodiscard]] std::span<const float> data() const noexcept { return data_; }

  /// Flat element access with bounds checking in debug builds.
  [[nodiscard]] float& at(std::size_t i) { return data_.at(i); }
  [[nodiscard]] float at(std::size_t i) const { return data_.at(i); }
  [[nodiscard]] float& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] float operator[](std::size_t i) const noexcept {
    return data_[i];
  }

  /// NCHW element access. Precondition: rank-4 shape.
  [[nodiscard]] float& at(std::size_t n, std::size_t c, std::size_t h,
                          std::size_t w) {
    return data_[shape_.offset(n, c, h, w)];
  }
  [[nodiscard]] float at(std::size_t n, std::size_t c, std::size_t h,
                         std::size_t w) const {
    return data_[shape_.offset(n, c, h, w)];
  }

  /// Rank-2 element access.
  [[nodiscard]] float& at2(std::size_t r, std::size_t c) {
    return data_[shape_.offset(r, c)];
  }
  [[nodiscard]] float at2(std::size_t r, std::size_t c) const {
    return data_[shape_.offset(r, c)];
  }

  // --- fills -----------------------------------------------------------
  void fill(float value) noexcept;
  void zero() noexcept { fill(0.0f); }

  /// I.i.d. normal fill.
  void fill_normal(util::Rng& rng, float mean, float stddev);

  /// I.i.d. uniform fill over [lo, hi).
  void fill_uniform(util::Rng& rng, float lo, float hi);

  // --- reductions ------------------------------------------------------
  [[nodiscard]] float sum() const noexcept;
  [[nodiscard]] float min() const noexcept;
  [[nodiscard]] float max() const noexcept;
  /// Largest absolute value; 0 for empty tensors.
  [[nodiscard]] float max_abs() const noexcept;
  [[nodiscard]] float mean() const noexcept;

  /// Index of the maximum element in [begin, end). Precondition: begin < end.
  [[nodiscard]] std::size_t argmax(std::size_t begin, std::size_t end) const;
  [[nodiscard]] std::size_t argmax() const { return argmax(0, size()); }

  // --- elementwise in-place ops ---------------------------------------
  Tensor& add(const Tensor& other);          ///< this += other
  Tensor& axpy(float alpha, const Tensor& other);  ///< this += alpha*other
  Tensor& scale(float alpha) noexcept;       ///< this *= alpha

  /// Returns a tensor with identical data but a new shape of the same size.
  [[nodiscard]] Tensor reshaped(Shape new_shape) const;

  /// Strict equality of shape and all element bit patterns.
  [[nodiscard]] bool equals(const Tensor& other) const noexcept;

 private:
  Shape shape_{};
  std::vector<float> data_;
};

/// Returns max |a[i]-b[i]|; throws on shape mismatch.
[[nodiscard]] float max_abs_diff(const Tensor& a, const Tensor& b);

/// Copies items [begin, end) along the outermost axis into a new tensor of
/// shape {end-begin, rest...}. Used for mini-batch slicing.
[[nodiscard]] Tensor slice_outer(const Tensor& t, std::size_t begin,
                                 std::size_t end);

/// Gathers the given outer-axis indices into a new tensor (batch shuffling).
[[nodiscard]] Tensor gather_outer(const Tensor& t,
                                  std::span<const std::size_t> indices);

}  // namespace mfdfp::tensor
