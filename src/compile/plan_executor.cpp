#include "compile/plan_executor.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <utility>

#include "hw/kernels.hpp"
#include "hw/layer_profile.hpp"

namespace mfdfp::compile {

namespace {

using hw::CodeTensor;
using tensor::Shape;

/// Applies the step's fused ReLU (if any) to one routed output code —
/// exactly apply_relu's arithmetic on a single element: rectify the stored
/// 8-bit code at the conv's output radix, then convert_code into the ReLU's.
inline std::int8_t finish_code(std::int32_t routed, const PlanStep& s) {
  std::int8_t code = static_cast<std::int8_t>(routed);
  if (s.fused_relu) {
    const std::int32_t rectified = std::max<std::int32_t>(0, code);
    code = static_cast<std::int8_t>(
        hw::convert_code(rectified, s.out_frac, s.relu_frac));
  }
  return code;
}

void run_conv_step(const PlanStep& s, const CodeTensor& input, CodeTensor& out,
                   std::vector<std::int8_t>& patchbuf) {
  if (input.shape.rank() != 4 || input.shape.c() != s.in_c ||
      input.shape.h() != s.in_h || input.shape.w() != s.in_w) {
    throw std::invalid_argument("run_plan: conv input shape mismatch");
  }
  const std::size_t batch = input.shape.n();
  const std::size_t pixels = s.out_h * s.out_w;
  const std::size_t patch = s.in_c * s.kernel * s.kernel;
  const std::size_t image = s.in_c * s.in_h * s.in_w;

  out.shape = Shape{batch, s.out_c, s.out_h, s.out_w};
  out.frac = s.fused_relu ? s.relu_frac : s.out_frac;
  out.codes.resize(out.shape.size());

  if (s.algo == ConvAlgo::kIm2col) {
    // Materialize each (sample, pixel) patch once into a contiguous int8
    // buffer, then run a dense branch-free dot per output channel — the
    // gather cost is amortized over out_c instead of paid per channel.
    patchbuf.resize(patch);
    const bool i32 = patch <= kI32SafePatch;
    for (std::size_t n = 0; n < batch; ++n) {
      const std::int8_t* codes = input.codes.data() + n * image;
      for (std::size_t pixel = 0; pixel < pixels; ++pixel) {
        const std::size_t* row = s.gather.data() + pixel * patch;
        if (s.no_pad) {
          for (std::size_t k = 0; k < patch; ++k) patchbuf[k] = codes[row[k]];
        } else {
          for (std::size_t k = 0; k < patch; ++k) {
            patchbuf[k] = row[k] == SIZE_MAX ? std::int8_t{0} : codes[row[k]];
          }
        }
        std::int8_t* dst = out.codes.data() + n * s.out_c * pixels + pixel;
        for (std::size_t oc = 0; oc < s.out_c; ++oc) {
          const std::int32_t* wrow = s.weights.data() + oc * patch;
          std::int64_t sum;
          if (i32) {
            std::int32_t acc = 0;
            for (std::size_t k = 0; k < patch; ++k) {
              acc += static_cast<std::int32_t>(patchbuf[k]) * wrow[k];
            }
            sum = acc;
          } else {
            std::int64_t acc = 0;
            for (std::size_t k = 0; k < patch; ++k) {
              acc += static_cast<std::int64_t>(patchbuf[k]) * wrow[k];
            }
            sum = acc;
          }
          dst[oc * pixels] = finish_code(
              hw::route_sum(sum, s.in_frac, s.out_frac, s.bias[oc]), s);
        }
      }
    }
  } else {
    // Direct: indexed gather inside the MAC loop (run_batch's shape), but
    // against the plan's prebuilt table; the no-pad specialization compiles
    // the padded-tap branch out.
    for (std::size_t n = 0; n < batch; ++n) {
      const std::int8_t* codes = input.codes.data() + n * image;
      for (std::size_t pixel = 0; pixel < pixels; ++pixel) {
        const std::size_t* row = s.gather.data() + pixel * patch;
        std::int8_t* dst = out.codes.data() + n * s.out_c * pixels + pixel;
        for (std::size_t oc = 0; oc < s.out_c; ++oc) {
          const std::int32_t* wrow = s.weights.data() + oc * patch;
          std::int64_t sum = 0;
          if (s.no_pad) {
            for (std::size_t k = 0; k < patch; ++k) {
              sum += static_cast<std::int64_t>(codes[row[k]]) * wrow[k];
            }
          } else {
            for (std::size_t k = 0; k < patch; ++k) {
              if (row[k] == SIZE_MAX) continue;  // padded tap -> zero input
              sum += static_cast<std::int64_t>(codes[row[k]]) * wrow[k];
            }
          }
          dst[oc * pixels] = finish_code(
              hw::route_sum(sum, s.in_frac, s.out_frac, s.bias[oc]), s);
        }
      }
    }
  }
}

void run_fc_step(const PlanStep& s, const CodeTensor& input, CodeTensor& out) {
  if (input.shape.rank() != 2 || input.shape.dim(1) != s.in_features) {
    throw std::invalid_argument("run_plan: fc input shape mismatch");
  }
  const std::size_t batch = input.shape.dim(0);
  out.shape = Shape{batch, s.out_features};
  out.frac = s.fused_relu ? s.relu_frac : s.out_frac;
  out.codes.resize(out.shape.size());
  const bool i32 = s.in_features <= kI32SafePatch;
  for (std::size_t n = 0; n < batch; ++n) {
    const std::int8_t* row = input.codes.data() + n * s.in_features;
    for (std::size_t o = 0; o < s.out_features; ++o) {
      const std::int32_t* wrow = s.weights.data() + o * s.in_features;
      std::int64_t sum;
      if (i32) {
        std::int32_t acc = 0;
        for (std::size_t k = 0; k < s.in_features; ++k) {
          acc += static_cast<std::int32_t>(row[k]) * wrow[k];
        }
        sum = acc;
      } else {
        std::int64_t acc = 0;
        for (std::size_t k = 0; k < s.in_features; ++k) {
          acc += static_cast<std::int64_t>(row[k]) * wrow[k];
        }
        sum = acc;
      }
      out.codes[n * s.out_features + o] = finish_code(
          hw::route_sum(sum, s.in_frac, s.out_frac, s.bias[o]), s);
    }
  }
}

}  // namespace

void run_plan_codes(const CompiledPlan& plan, hw::ExecScratch& scratch,
                    hw::LayerProfiler* profiler) {
  using clock = std::chrono::steady_clock;
  const bool profiled = profiler != nullptr;
  for (const PlanStep& s : plan.steps) {
    const clock::time_point step_start =
        profiled ? clock::now() : clock::time_point{};
    switch (s.kind) {
      case StepKind::kConv:
        run_conv_step(s, scratch.input, scratch.output, scratch.patch);
        if (s.fused_pool) {
          // Fused trailing pool reads the conv(+relu) map straight back
          // into the ping buffer — no swap, no third buffer.
          hw::pool_forward(s.pool, scratch.output, scratch.input);
        } else {
          std::swap(scratch.input, scratch.output);
        }
        break;
      case StepKind::kFullyConnected:
        run_fc_step(s, scratch.input, scratch.output);
        std::swap(scratch.input, scratch.output);
        break;
      case StepKind::kPool:
        hw::pool_forward(s.pool, scratch.input, scratch.output);
        std::swap(scratch.input, scratch.output);
        break;
      case StepKind::kRelu:
        hw::apply_relu(scratch.input, s.out_frac);
        break;
      case StepKind::kFlatten:
        hw::apply_flatten(scratch.input, s.out_frac);
        break;
    }
    if (profiled) {
      profiler->record_fused_host_ns(
          s.source_layers,
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  clock::now() - step_start)
                  .count()));
    }
  }
}

tensor::Tensor run_plan_batch(const CompiledPlan& plan,
                              const tensor::Tensor& images,
                              hw::ExecScratch& scratch,
                              hw::LayerProfiler* profiler) {
  CodeTensor::encode_into(images, plan.input_frac, scratch.input);
  run_plan_codes(plan, scratch, profiler);
  if (profiler != nullptr) profiler->record_pass(images.shape().n());
  return scratch.input.decode();
}

}  // namespace mfdfp::compile
