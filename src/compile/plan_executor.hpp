// Executes a CompiledPlan — the deploy-time-lowered twin of
// AcceleratorExecutor::run_batch, bit-identical to it (and therefore to
// run() and the fake-quantized software model) by construction: every lossy
// stage calls the shared hw/kernels.hpp implementations, and the integer
// dot products are exact under any association, so the plan's fusion,
// prebuilt gather tables, and im2col patch buffers only reorder exact
// arithmetic.
//
// Thread-safety matches run_batch: callers are concurrent as long as each
// brings its own ExecScratch; the plan itself is immutable and shared.
#pragma once

#include "compile/plan.hpp"
#include "hw/executor.hpp"
#include "tensor/tensor.hpp"

namespace mfdfp::hw {
class LayerProfiler;  // hw/layer_profile.hpp
}

namespace mfdfp::compile {

/// Largest patch for which the dense dot fits an int32 accumulator:
/// |code * weight| <= 128 * 2^7 = 2^14 per tap, so patch * 2^14 must stay
/// below 2^31. Integer addition is exact either way — the narrower
/// accumulator only exists to double the vectorization width. The
/// analyzer (src/analysis) re-proves the int32 path from the actual
/// per-channel bounds of each deployed plan.
inline constexpr std::size_t kI32SafePatch =
    static_cast<std::size_t>(2147483647) / 16384;

/// Runs the plan over scratch.input (code domain), leaving the result in
/// scratch.input. When `profiler` is non-null every step's host wall time is
/// recorded with attribution back to its source desc layers.
void run_plan_codes(const CompiledPlan& plan, hw::ExecScratch& scratch,
                    hw::LayerProfiler* profiler = nullptr);

/// Full batched pipeline: encode the stacked images ({B, C, H, W}) at the
/// plan's input radix, execute every step, decode the logits. Bit-identical
/// to AcceleratorExecutor::run_batch on the source desc (enforced by
/// tests/test_compile.cpp and bench/ablation_compile).
[[nodiscard]] tensor::Tensor run_plan_batch(const CompiledPlan& plan,
                                            const tensor::Tensor& images,
                                            hw::ExecScratch& scratch,
                                            hw::LayerProfiler* profiler =
                                                nullptr);

}  // namespace mfdfp::compile
