#include "compile/passes.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>
#include <variant>

#include "analysis/analyzer.hpp"
#include "hw/datapath.hpp"
#include "hw/kernels.hpp"
#include "quant/pow2.hpp"

namespace mfdfp::compile {

namespace {

[[noreturn]] void lower_error(std::size_t layer, const std::string& what) {
  throw std::invalid_argument("lower_qnet: L" + std::to_string(layer) + ": " +
                              what);
}

[[noreturn]] void verify_error(std::size_t step, const std::string& what) {
  throw std::runtime_error("plan verifier: step " + std::to_string(step) +
                           ": " + what);
}

/// (ih + 2*pad - k) / stride + 1, guarded against wraparound.
std::size_t out_extent(std::size_t in, std::size_t window, std::size_t stride,
                       std::size_t pad, std::size_t layer, const char* what) {
  if (stride == 0) lower_error(layer, std::string(what) + ": zero stride");
  if (in + 2 * pad < window) {
    lower_error(layer, std::string(what) + ": window exceeds padded input");
  }
  return (in + 2 * pad - window) / stride + 1;
}

/// Decodes a nibble-packed pow2 weight stream into the plain +/-2^(7+e)
/// integer multipliers the fast kernels use (identical to what
/// AcceleratorExecutor predecodes, so plan execution is bit-identical).
void decode_fast_weights(const std::vector<std::uint8_t>& packed,
                         std::size_t count, std::vector<std::int32_t>& out) {
  if (packed.size() < (count + 1) / 2) {
    throw std::invalid_argument("pass_build_tables: short weight stream");
  }
  out.resize(count);
  for (std::size_t k = 0; k < count; ++k) {
    const std::uint8_t byte = packed[k / 2];
    const std::uint8_t nibble =
        (k % 2 == 0) ? (byte & 0xF) : static_cast<std::uint8_t>(byte >> 4);
    const quant::Pow2Weight w = quant::decode_nibble(nibble);
    const std::int32_t magnitude = std::int32_t{1}
                                   << (hw::kProductFracBits + w.exponent);
    out[k] = w.negative ? -magnitude : magnitude;
  }
}

void refresh_stats(CompiledPlan& plan) {
  PlanStats st;
  st.steps = plan.steps.size();
  for (const PlanStep& s : plan.steps) {
    if (s.fused_relu) ++st.fused_relu;
    if (s.fused_pool) ++st.fused_pool;
    if (s.kind == StepKind::kConv) {
      if (s.algo == ConvAlgo::kIm2col) {
        ++st.im2col;
      } else {
        ++st.direct_conv;
      }
      if (s.no_pad) ++st.specialized;
    }
  }
  plan.stats = st;
}

}  // namespace

CompiledPlan lower_qnet(const hw::QNetDesc& desc, std::size_t in_c,
                        std::size_t in_h, std::size_t in_w) {
  CompiledPlan plan;
  plan.model = desc.name;
  plan.input_frac = desc.input_frac;
  plan.in_c = in_c;
  plan.in_h = in_h;
  plan.in_w = in_w;

  bool spatial = true;
  std::size_t c = in_c, h = in_h, w = in_w;
  std::size_t features = 0;
  int frac = desc.input_frac;

  for (std::size_t i = 0; i < desc.layers.size(); ++i) {
    const hw::QLayer& layer = desc.layers[i];
    PlanStep s;
    s.source_layers = {i};
    s.in_frac = frac;
    if (const auto* conv = std::get_if<hw::QConv>(&layer)) {
      if (!spatial || c != conv->in_c) lower_error(i, "conv input mismatch");
      s.kind = StepKind::kConv;
      s.in_c = c;
      s.in_h = h;
      s.in_w = w;
      s.out_c = conv->out_c;
      s.kernel = conv->kernel;
      s.stride = conv->stride;
      s.pad = conv->pad;
      s.out_h = out_extent(h, conv->kernel, conv->stride, conv->pad, i, "conv");
      s.out_w = out_extent(w, conv->kernel, conv->stride, conv->pad, i, "conv");
      s.out_frac = conv->out_frac;
      {
        std::ostringstream label;
        label << "conv" << conv->kernel << "x" << conv->kernel << "s"
              << conv->stride << "p" << conv->pad;
        s.label = label.str();
      }
      c = s.out_c;
      h = s.out_h;
      w = s.out_w;
      frac = s.out_frac;
    } else if (const auto* fc = std::get_if<hw::QFullyConnected>(&layer)) {
      if (spatial || features != fc->in_features) {
        lower_error(i, "fc input mismatch (missing flatten?)");
      }
      s.kind = StepKind::kFullyConnected;
      s.in_features = fc->in_features;
      s.out_features = fc->out_features;
      s.out_frac = fc->out_frac;
      s.label = "fc" + std::to_string(fc->out_features);
      features = fc->out_features;
      frac = s.out_frac;
    } else if (const auto* pool = std::get_if<hw::QPool>(&layer)) {
      if (!spatial) lower_error(i, "pool on flattened input");
      s.kind = StepKind::kPool;
      s.in_c = c;
      s.in_h = h;
      s.in_w = w;
      s.out_c = c;
      s.out_h = out_extent(h, pool->window, pool->stride, pool->pad, i, "pool");
      s.out_w = out_extent(w, pool->window, pool->stride, pool->pad, i, "pool");
      s.out_frac = pool->out_frac;
      s.pool = *pool;
      {
        std::ostringstream label;
        label << (pool->is_max ? "maxpool" : "avgpool") << pool->window << "s"
              << pool->stride;
        if (pool->pad != 0) label << "p" << pool->pad;
        s.label = label.str();
      }
      h = s.out_h;
      w = s.out_w;
      frac = s.out_frac;
    } else if (const auto* relu = std::get_if<hw::QRelu>(&layer)) {
      s.kind = StepKind::kRelu;
      if (spatial) {
        s.in_c = s.out_c = c;
        s.in_h = s.out_h = h;
        s.in_w = s.out_w = w;
      } else {
        s.in_features = s.out_features = features;
      }
      s.out_frac = relu->out_frac;
      s.label = "relu";
      frac = s.out_frac;
    } else if (const auto* flat = std::get_if<hw::QFlatten>(&layer)) {
      if (!spatial) lower_error(i, "double flatten");
      s.kind = StepKind::kFlatten;
      s.in_c = c;
      s.in_h = h;
      s.in_w = w;
      s.out_features = c * h * w;
      s.out_frac = flat->out_frac;
      s.label = "flatten";
      spatial = false;
      features = s.out_features;
      frac = s.out_frac;
    }
    plan.steps.push_back(std::move(s));
  }

  plan.out_features = spatial ? c * h * w : features;
  refresh_stats(plan);
  return plan;
}

void pass_fuse(CompiledPlan& plan) {
  std::vector<PlanStep> fused;
  fused.reserve(plan.steps.size());
  for (PlanStep& s : plan.steps) {
    if (s.kind == StepKind::kRelu && !fused.empty()) {
      PlanStep& prev = fused.back();
      if ((prev.kind == StepKind::kConv ||
           prev.kind == StepKind::kFullyConnected) &&
          !prev.fused_relu && !prev.fused_pool) {
        prev.fused_relu = true;
        prev.relu_frac = s.out_frac;
        prev.source_layers.insert(prev.source_layers.end(),
                                  s.source_layers.begin(),
                                  s.source_layers.end());
        prev.label += "+relu";
        continue;
      }
    }
    if (s.kind == StepKind::kPool && !fused.empty()) {
      PlanStep& prev = fused.back();
      // Pool folds only onto a conv that already fused its activation: a
      // pool *before* the ReLU (conv→pool→relu) must stay standalone so
      // the activation still sees the pooled map — fusion there would
      // reorder the lossy stages.
      if (prev.kind == StepKind::kConv && prev.fused_relu &&
          !prev.fused_pool) {
        prev.fused_pool = true;
        prev.pool = s.pool;
        prev.pool_oh = s.out_h;
        prev.pool_ow = s.out_w;
        prev.source_layers.insert(prev.source_layers.end(),
                                  s.source_layers.begin(),
                                  s.source_layers.end());
        prev.label += s.pool.is_max ? "+maxpool" : "+avgpool";
        continue;
      }
    }
    fused.push_back(std::move(s));
  }
  plan.steps = std::move(fused);
}

void pass_specialize(CompiledPlan& plan) {
  for (PlanStep& s : plan.steps) {
    if (s.kind != StepKind::kConv) continue;
    // SupportsGeometry: with no padding every gather tap is in-bounds, so
    // the padded-tap branch can be compiled out of the inner loop. Padded
    // (or otherwise irregular) convs keep the generic fallback.
    s.no_pad = s.pad == 0;
  }
}

ConvAlgo choose_conv_algo(std::size_t out_c, std::size_t patch,
                          ConvStrategy strategy) {
  if (strategy == ConvStrategy::kForceIm2col) return ConvAlgo::kIm2col;
  if (strategy == ConvStrategy::kForceDirect) return ConvAlgo::kDirect;
  (void)patch;
  // Host cost per output pixel, in dense-MAC units (the same pixels/patch/
  // out_c quantities LayerWork carries): direct pays out_c*patch *indexed*
  // MACs (~kIndexedCost each: the gather rides inside the MAC loop and
  // defeats vectorization); im2col pays one patch materialization
  // (~kGatherCost per tap) plus out_c*patch dense MACs. im2col wins when
  //   out_c*patch*kIndexedCost > patch*kGatherCost + out_c*patch
  // i.e. when out_c*(kIndexedCost-1) > kGatherCost — the gather must be
  // amortized over enough output channels.
  constexpr std::size_t kIndexedCost = 4;
  constexpr std::size_t kGatherCost = 24;
  return out_c * (kIndexedCost - 1) > kGatherCost ? ConvAlgo::kIm2col
                                                  : ConvAlgo::kDirect;
}

void pass_strategy(CompiledPlan& plan, ConvStrategy strategy) {
  for (PlanStep& s : plan.steps) {
    if (s.kind != StepKind::kConv) continue;
    s.algo = choose_conv_algo(s.out_c, s.in_c * s.kernel * s.kernel, strategy);
    s.label += s.algo == ConvAlgo::kIm2col ? "/im2col" : "/direct";
  }
}

void pass_build_tables(const hw::QNetDesc& desc, CompiledPlan& plan) {
  for (PlanStep& s : plan.steps) {
    if (s.kind == StepKind::kConv) {
      const auto* conv = std::get_if<hw::QConv>(&desc.layers[s.source_layers.front()]);
      if (conv == nullptr) {
        throw std::runtime_error("pass_build_tables: conv step source is not a conv layer");
      }
      const std::size_t patch = s.in_c * s.kernel * s.kernel;
      decode_fast_weights(conv->packed_weights, s.out_c * patch, s.weights);
      s.bias = conv->bias_codes;
      hw::build_conv_gather(s.in_c, s.in_h, s.in_w, s.kernel, s.stride, s.pad,
                            s.out_h, s.out_w, s.gather);
    } else if (s.kind == StepKind::kFullyConnected) {
      const auto* fc = std::get_if<hw::QFullyConnected>(
          &desc.layers[s.source_layers.front()]);
      if (fc == nullptr) {
        throw std::runtime_error("pass_build_tables: fc step source is not an fc layer");
      }
      decode_fast_weights(fc->packed_weights,
                          s.out_features * s.in_features, s.weights);
      s.bias = fc->bias_codes;
    }
  }
}

void pass_verify(const CompiledPlan& plan) {
  bool spatial = true;
  std::size_t c = plan.in_c, h = plan.in_h, w = plan.in_w;
  std::size_t features = 0;
  int frac = plan.input_frac;

  for (std::size_t i = 0; i < plan.steps.size(); ++i) {
    const PlanStep& s = plan.steps[i];
    if (s.in_frac != frac) verify_error(i, "radix chain break");
    switch (s.kind) {
      case StepKind::kConv: {
        if (!spatial || s.in_c != c || s.in_h != h || s.in_w != w) {
          verify_error(i, "conv input geometry mismatch");
        }
        if (s.stride == 0 || h + 2 * s.pad < s.kernel ||
            w + 2 * s.pad < s.kernel) {
          verify_error(i, "conv window exceeds padded input");
        }
        const std::size_t oh = (h + 2 * s.pad - s.kernel) / s.stride + 1;
        const std::size_t ow = (w + 2 * s.pad - s.kernel) / s.stride + 1;
        if (oh != s.out_h || ow != s.out_w) {
          verify_error(i, "conv output geometry mismatch");
        }
        const std::size_t patch = s.in_c * s.kernel * s.kernel;
        if (s.weights.size() != s.out_c * patch) {
          verify_error(i, "conv weight table size mismatch");
        }
        if (s.bias.size() != s.out_c) verify_error(i, "conv bias size mismatch");
        if (s.gather.size() != oh * ow * patch) {
          verify_error(i, "conv gather table size mismatch");
        }
        const std::size_t image = s.in_c * s.in_h * s.in_w;
        for (std::size_t tap : s.gather) {
          if (tap == SIZE_MAX) {
            if (s.no_pad) {
              verify_error(i, "no-pad specialization with padded taps");
            }
          } else if (tap >= image) {
            verify_error(i, "gather tap out of bounds");
          }
        }
        c = s.out_c;
        h = s.out_h;
        w = s.out_w;
        if (s.fused_pool) {
          if (!s.fused_relu) verify_error(i, "pool fused before activation");
          if (s.pool.stride == 0 || h + 2 * s.pool.pad < s.pool.window ||
              w + 2 * s.pool.pad < s.pool.window) {
            verify_error(i, "fused pool window exceeds padded input");
          }
          const std::size_t ph =
              (h + 2 * s.pool.pad - s.pool.window) / s.pool.stride + 1;
          const std::size_t pw =
              (w + 2 * s.pool.pad - s.pool.window) / s.pool.stride + 1;
          if (ph != s.pool_oh || pw != s.pool_ow) {
            verify_error(i, "fused pool output geometry mismatch");
          }
          h = ph;
          w = pw;
        }
        frac = s.result_frac();
        break;
      }
      case StepKind::kFullyConnected: {
        if (spatial || s.in_features != features) {
          verify_error(i, "fc input mismatch");
        }
        if (s.weights.size() != s.out_features * s.in_features) {
          verify_error(i, "fc weight table size mismatch");
        }
        if (s.bias.size() != s.out_features) {
          verify_error(i, "fc bias size mismatch");
        }
        if (s.fused_pool) verify_error(i, "pool fused onto fc");
        features = s.out_features;
        frac = s.result_frac();
        break;
      }
      case StepKind::kPool: {
        if (!spatial || s.in_c != c || s.in_h != h || s.in_w != w) {
          verify_error(i, "pool input geometry mismatch");
        }
        if (s.pool.stride == 0 || h + 2 * s.pool.pad < s.pool.window ||
            w + 2 * s.pool.pad < s.pool.window) {
          verify_error(i, "pool window exceeds padded input");
        }
        const std::size_t oh =
            (h + 2 * s.pool.pad - s.pool.window) / s.pool.stride + 1;
        const std::size_t ow =
            (w + 2 * s.pool.pad - s.pool.window) / s.pool.stride + 1;
        if (oh != s.out_h || ow != s.out_w || s.out_c != c) {
          verify_error(i, "pool output geometry mismatch");
        }
        if (s.pool.out_frac != s.out_frac) {
          verify_error(i, "pool radix mismatch");
        }
        h = oh;
        w = ow;
        frac = s.out_frac;
        break;
      }
      case StepKind::kRelu:
        frac = s.out_frac;
        break;
      case StepKind::kFlatten: {
        if (!spatial) verify_error(i, "flatten of flattened input");
        features = c * h * w;
        if (s.out_features != features) {
          verify_error(i, "flatten feature count mismatch");
        }
        spatial = false;
        frac = s.out_frac;
        break;
      }
    }
  }

  const std::size_t final_features = spatial ? c * h * w : features;
  if (final_features != plan.out_features) {
    throw std::runtime_error("plan verifier: output feature count mismatch");
  }
}

void PassPipeline::add(std::string name, PassFn fn) {
  passes_.push_back({std::move(name), std::move(fn)});
}

CompiledPlan PassPipeline::run(const hw::QNetDesc& desc,
                               CompiledPlan draft) const {
  for (const Pass& pass : passes_) {
    pass.fn(desc, draft);
    draft.passes_run.push_back(pass.name);
  }
  refresh_stats(draft);
  return draft;
}

PassPipeline PassPipeline::standard(const CompileOptions& options) {
  PassPipeline pipeline;
  if (options.fuse) {
    pipeline.add("fuse",
                 [](const hw::QNetDesc&, CompiledPlan& p) { pass_fuse(p); });
  }
  if (options.specialize) {
    pipeline.add("specialize", [](const hw::QNetDesc&, CompiledPlan& p) {
      pass_specialize(p);
    });
  }
  pipeline.add("strategy",
               [strategy = options.strategy](const hw::QNetDesc&,
                                             CompiledPlan& p) {
                 pass_strategy(p, strategy);
               });
  pipeline.add("tables", [](const hw::QNetDesc& d, CompiledPlan& p) {
    pass_build_tables(d, p);
  });
  pipeline.add("verify",
               [](const hw::QNetDesc&, CompiledPlan& p) { pass_verify(p); });
  if (options.analyze) {
    // After verify: the analyzer assumes structurally sound tables and
    // proves the numeric obligations on top (see analysis/analyzer.hpp).
    pipeline.add("analyze", [](const hw::QNetDesc&, CompiledPlan& p) {
      analysis::pass_analyze(p);
    });
  }
  return pipeline;
}

std::shared_ptr<const CompiledPlan> compile_qnet(const hw::QNetDesc& desc,
                                                 std::size_t in_c,
                                                 std::size_t in_h,
                                                 std::size_t in_w,
                                                 const CompileOptions& options) {
  CompiledPlan draft = lower_qnet(desc, in_c, in_h, in_w);
  draft.options = options;
  draft.content_hash = qnet_content_hash(desc);
  const PassPipeline pipeline = PassPipeline::standard(options);
  return std::make_shared<const CompiledPlan>(
      pipeline.run(desc, std::move(draft)));
}

}  // namespace mfdfp::compile
