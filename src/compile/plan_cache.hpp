// PlanCache: deploy-time cache of CompiledPlans keyed by
// (model content hash, input geometry, device class, compile options).
//
// N replicas of one deployment — and shared-PU tenants serving the same
// model — compile once and share one immutable artifact instead of N
// engine-local predecodes. The registry owns one cache per server
// (ModelRegistry fills DeployConfig.plan_cache when the caller leaves it
// null), so hot redeploys of identical content also hit.
//
// Sharing semantics (the contract tests/test_compile.cpp's redeploy-storm
// test enforces): the cache hands out shared_ptr<const CompiledPlan> and
// eviction/clear() only drop the cache's own reference. A plan pinned by an
// in-flight request of an old version keeps serving, bit-identically,
// regardless of how many newer versions were deployed or evicted behind it
// — plans are never mutated after the pipeline returns them.
//
// Thread-safety: all members are safe for concurrent callers (one mutex;
// compilation runs under it — deploy-time work, contention is not a
// concern).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "compile/passes.hpp"
#include "compile/plan.hpp"
#include "hw/qnet.hpp"
#include "util/mutex.hpp"

namespace mfdfp::compile {

struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;     ///< compilations performed
  std::uint64_t evictions = 0;  ///< entries dropped by the LRU bound
  std::size_t entries = 0;      ///< currently cached
};

class PlanCache {
 public:
  /// `max_entries` bounds the cache (least-recently-used eviction);
  /// 0 = unbounded. Evicted plans stay alive for whoever still holds them.
  explicit PlanCache(std::size_t max_entries = 0)
      : max_entries_(max_entries) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached plan for (content_hash(desc), geometry,
  /// `device_key`, `options`), compiling on miss. `device_key` names the
  /// device *class* the plan is compiled for (the serving layer passes the
  /// speed-normalized spec, so same-speed replicas share and heterogeneous
  /// placements get per-class entries).
  [[nodiscard]] std::shared_ptr<const CompiledPlan> get_or_compile(
      const hw::QNetDesc& desc, std::size_t in_c, std::size_t in_h,
      std::size_t in_w, const std::string& device_key,
      const CompileOptions& options) EXCLUDES(mutex_);

  [[nodiscard]] PlanCacheStats stats() const EXCLUDES(mutex_);

  /// Drops every cached entry (outstanding shared_ptrs keep serving).
  /// Dropped entries do not count as evictions.
  void clear() EXCLUDES(mutex_);

  [[nodiscard]] std::size_t max_entries() const noexcept {
    return max_entries_;
  }

 private:
  struct Entry {
    std::shared_ptr<const CompiledPlan> plan;
    std::uint64_t last_used = 0;
  };

  const std::size_t max_entries_;
  mutable util::Mutex mutex_;
  std::unordered_map<std::string, Entry> entries_ GUARDED_BY(mutex_);
  std::uint64_t clock_ GUARDED_BY(mutex_) = 0;
  PlanCacheStats stats_ GUARDED_BY(mutex_);
};

}  // namespace mfdfp::compile
