#include "compile/plan.hpp"

#include <sstream>
#include <variant>

namespace mfdfp::compile {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void hash_bytes(std::uint64_t& h, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
}

template <typename T>
void hash_value(std::uint64_t& h, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  hash_bytes(h, &value, sizeof(value));
}

}  // namespace

std::uint64_t qnet_content_hash(const hw::QNetDesc& desc) {
  std::uint64_t h = kFnvOffset;
  hash_value(h, desc.input_frac);
  for (const hw::QLayer& layer : desc.layers) {
    hash_value(h, layer.index());
    if (const auto* conv = std::get_if<hw::QConv>(&layer)) {
      hash_value(h, conv->in_c);
      hash_value(h, conv->out_c);
      hash_value(h, conv->kernel);
      hash_value(h, conv->stride);
      hash_value(h, conv->pad);
      hash_value(h, conv->out_frac);
      hash_bytes(h, conv->packed_weights.data(), conv->packed_weights.size());
      hash_bytes(h, conv->bias_codes.data(), conv->bias_codes.size());
    } else if (const auto* fc = std::get_if<hw::QFullyConnected>(&layer)) {
      hash_value(h, fc->in_features);
      hash_value(h, fc->out_features);
      hash_value(h, fc->out_frac);
      hash_bytes(h, fc->packed_weights.data(), fc->packed_weights.size());
      hash_bytes(h, fc->bias_codes.data(), fc->bias_codes.size());
    } else if (const auto* pool = std::get_if<hw::QPool>(&layer)) {
      hash_value(h, pool->is_max);
      hash_value(h, pool->window);
      hash_value(h, pool->stride);
      hash_value(h, pool->pad);
      hash_value(h, pool->out_frac);
    } else if (const auto* relu = std::get_if<hw::QRelu>(&layer)) {
      hash_value(h, relu->out_frac);
    } else if (const auto* flat = std::get_if<hw::QFlatten>(&layer)) {
      hash_value(h, flat->out_frac);
    }
  }
  return h;
}

std::string CompiledPlan::describe() const {
  std::ostringstream out;
  out << "plan " << model << " (" << in_c << "x" << in_h << "x" << in_w
      << " -> " << out_features << " logits, " << steps.size() << " steps, "
      << "hash " << std::hex << content_hash << std::dec << ")\n";
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const PlanStep& s = steps[i];
    out << "  [" << i << "] " << s.label << "  src={";
    for (std::size_t k = 0; k < s.source_layers.size(); ++k) {
      out << (k ? "," : "") << "L" << s.source_layers[k];
    }
    out << "}";
    if (s.kind == StepKind::kConv) {
      out << "  " << s.in_c << "x" << s.in_h << "x" << s.in_w << " -> "
          << s.out_c << "x" << s.out_h << "x" << s.out_w
          << (s.algo == ConvAlgo::kIm2col ? "  im2col" : "  direct")
          << (s.no_pad ? " no-pad" : " generic");
    } else if (s.kind == StepKind::kFullyConnected) {
      out << "  " << s.in_features << " -> " << s.out_features;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace mfdfp::compile
