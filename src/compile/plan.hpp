// CompiledPlan: the immutable deploy-time artifact a QNet lowers into.
//
// The paper's accelerator wins because every structural decision — pow2/DFP
// decode, gather layout, kernel shape — is fixed in silicon before the first
// sample arrives. The serving stack mirrors that: at deploy() time a
// PassPipeline (compile/passes.hpp) lowers the QNetDesc into an ordered list
// of PlanSteps with pre-resolved kernel variants, predecoded +/-2^(7+e)
// integer weights, prebuilt gather/im2col index tables, and fused
// conv→ReLU(→pool) steps — so the per-batch layer loop re-makes none of
// those decisions. Plans are shared immutably (shared_ptr<const CompiledPlan>
// out of compile/plan_cache.hpp): N replicas and shared-PU tenants execute
// one artifact, and an in-flight request keeps its plan alive across cache
// eviction or hot redeploy.
//
// Execution of a plan (compile/plan_executor.hpp) is bit-identical to
// AcceleratorExecutor::run_batch / run() on the source desc: every lossy
// stage goes through the shared hw/kernels.hpp implementations, and the
// integer dot products are exact under any association, so fusion and
// im2col only reorder exact arithmetic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/qnet.hpp"

namespace mfdfp::compile {

/// What a lowered step executes. Conv/FC steps may carry fused stages.
enum class StepKind : std::uint8_t {
  kConv,
  kFullyConnected,
  kPool,
  kRelu,
  kFlatten,
};

/// Per-layer conv execution strategy, chosen by the strategy pass.
enum class ConvAlgo : std::uint8_t {
  /// Indexed gather inside the MAC loop (run_batch's shape). No patch
  /// materialization; each output channel re-walks the gather table.
  kDirect,
  /// Materialize each (sample, pixel) patch once into a contiguous int8
  /// buffer, then run a dense branch-free dot per output channel — the
  /// gather is amortized over out_c.
  kIm2col,
};

/// Strategy-pass override knob (ablation: force one algo everywhere).
enum class ConvStrategy : std::uint8_t { kAuto, kForceIm2col, kForceDirect };

/// Deploy-time compilation knobs (DeployConfig.compile). Each pass can be
/// ablated independently; `bench/ablation_compile` measures every row.
struct CompileOptions {
  /// Master switch: false deploys the legacy uncompiled run_batch path.
  bool enabled = true;
  /// Fusion pass: collapse conv→ReLU(→pool) / fc→ReLU chains into one step.
  bool fuse = true;
  /// Geometry-specialization pass: select the no-padding fast kernel
  /// variant when SupportsGeometry says every gather tap is in-bounds.
  bool specialize = true;
  /// Strategy pass: im2col vs direct per conv layer (kAuto = cost model).
  ConvStrategy strategy = ConvStrategy::kAuto;
  /// Numeric static analysis pass (src/analysis): prove the accumulator /
  /// int32 fast path / radix chain safe for the deployed geometry, and
  /// reject the plan (analysis::PlanRejectedError) otherwise. On by
  /// default; off only for ablation and for tests that build plans the
  /// analyzer would (correctly) refuse.
  bool analyze = true;
};

/// One lowered, pre-resolved execution step.
struct PlanStep {
  StepKind kind = StepKind::kConv;
  /// Human-readable kernel identity, e.g. "conv5x5s1p2+relu+avgpool·im2col".
  std::string label;
  /// QNetDesc layer indices folded into this step (in execution order) —
  /// the profiler attributes a fused step's host time back to these.
  std::vector<std::size_t> source_layers;

  // --- Geometry (spatial steps; FC uses the feature fields) ---
  std::size_t in_c = 0, in_h = 0, in_w = 0;
  std::size_t out_c = 0, out_h = 0, out_w = 0;  ///< core-op output map
  std::size_t kernel = 0, stride = 1, pad = 0;
  std::size_t in_features = 0, out_features = 0;

  // --- Radix chain ---
  int in_frac = 0;   ///< m: radix of the step's input codes
  int out_frac = 0;  ///< n: radix the core op routes into

  // --- Fused stages (conv/fc steps only) ---
  bool fused_relu = false;
  int relu_frac = 0;  ///< radix the fused ReLU refracs into
  bool fused_pool = false;
  hw::QPool pool{};  ///< fused trailing pool, or the pool of a kPool step
  std::size_t pool_oh = 0, pool_ow = 0;

  // --- Strategy / specialization (conv steps) ---
  ConvAlgo algo = ConvAlgo::kDirect;
  /// SupportsGeometry result: true = every gather tap is in-bounds, the
  /// padded-tap branch is compiled out of the inner loop.
  bool no_pad = false;

  // --- Lowered payload (built by the table pass) ---
  /// Weights predecoded to plain +/-2^(7+e) integer multipliers, row-major
  /// [out_c or out_features][patch or in_features].
  std::vector<std::int32_t> weights;
  std::vector<std::int8_t> bias;  ///< bias codes, format <8, out_frac>
  /// Prebuilt per-output-pixel patch gather table (conv steps): oh*ow rows
  /// of in_c*k*k taps, relative to a sample's image base; SIZE_MAX = padded.
  std::vector<std::size_t> gather;

  /// Radix of this step's final output (after any fused stages).
  [[nodiscard]] int result_frac() const noexcept {
    if (fused_pool) return pool.out_frac;
    if (fused_relu) return relu_frac;
    return out_frac;
  }
};

/// What the passes did — one row per knob in the ablation bench.
struct PlanStats {
  std::size_t steps = 0;
  std::size_t fused_relu = 0;
  std::size_t fused_pool = 0;
  std::size_t specialized = 0;  ///< no-padding fast-variant conv steps
  std::size_t im2col = 0;
  std::size_t direct_conv = 0;
};

/// The immutable deploy-time artifact. Mutated only inside the pass
/// pipeline; everything downstream holds shared_ptr<const CompiledPlan>.
struct CompiledPlan {
  std::string model;
  int input_frac = 0;
  std::size_t in_c = 0, in_h = 0, in_w = 0;  ///< input geometry
  std::size_t out_features = 0;              ///< logits per sample
  std::vector<PlanStep> steps;
  CompileOptions options;
  /// FNV-1a over the source desc's topology + weight/bias streams (name
  /// excluded: identical models share a plan).
  std::uint64_t content_hash = 0;
  std::vector<std::string> passes_run;
  PlanStats stats;

  /// One line per step: kind, label, geometry, strategy — for logs/tests.
  [[nodiscard]] std::string describe() const;
};

/// Content identity of a deployment image: FNV-1a 64 over input_frac and
/// every layer's kind, geometry, radix, packed weights, and bias codes.
/// The model *name* is excluded so renamed-but-identical models share.
[[nodiscard]] std::uint64_t qnet_content_hash(const hw::QNetDesc& desc);

}  // namespace mfdfp::compile
