// PassPipeline: the deploy-time lowering of a QNetDesc into a CompiledPlan.
//
// Mirrors the graph-transformer/strategy-manager shape of NPU compilers: a
// `lower` stage turns the layer list into 1:1 PlanSteps with fully derived
// geometry, then named passes rewrite the step list in order:
//
//   fuse        conv→ReLU(→pool) and fc→ReLU chains collapse into one step.
//               Pool folds only onto a step that already fused its ReLU —
//               a pool *before* the activation (CIFAR-10 block 1) is not a
//               legal fusion target and stays a standalone generic step.
//   specialize  SupportsGeometry: a conv whose gather table has no padded
//               tap (pad == 0) selects the no-padding fast kernel variant;
//               everything else keeps the generic padded-tap fallback.
//   strategy    im2col vs direct per conv layer from a host-cost model over
//               the same LayerWork quantities the CycleModel prices
//               (see choose_conv_algo); overridable for ablation.
//   tables      predecode +/-2^(7+e) integer weights and bias codes, build
//               the per-pixel gather tables.
//   verify      re-derive the shape/radix chain step by step and check every
//               lowered payload against it; throws std::runtime_error on
//               any mismatch — a plan that verifies cannot index out of
//               bounds or mix radices at run time.
//
// compile_qnet() is the front door; the pipeline object is exposed so tests
// can run truncated/custom pipelines.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "compile/plan.hpp"
#include "hw/qnet.hpp"

namespace mfdfp::compile {

class PassPipeline {
 public:
  /// A pass reads the source module (the desc) and rewrites the plan.
  using PassFn = std::function<void(const hw::QNetDesc&, CompiledPlan&)>;

  /// Appends a named pass; run() executes passes in insertion order.
  void add(std::string name, PassFn fn);

  /// Runs every pass over `draft` in order, recording names in passes_run,
  /// and refreshes the plan's stats. Throws whatever a pass throws (the
  /// verifier uses std::runtime_error).
  [[nodiscard]] CompiledPlan run(const hw::QNetDesc& desc,
                                 CompiledPlan draft) const;

  [[nodiscard]] std::size_t pass_count() const noexcept {
    return passes_.size();
  }

  /// The standard deploy pipeline for `options` (ablated passes are simply
  /// not added; the verifier always is).
  [[nodiscard]] static PassPipeline standard(const CompileOptions& options);

 private:
  struct Pass {
    std::string name;
    PassFn fn;
  };
  std::vector<Pass> passes_;
};

/// Lowers `desc` 1:1 into an unoptimized CompiledPlan draft (geometry and
/// radix chain fully derived; no fusion, tables, or strategy yet). Throws
/// std::invalid_argument on a desc the geometry walk rejects.
[[nodiscard]] CompiledPlan lower_qnet(const hw::QNetDesc& desc,
                                      std::size_t in_c, std::size_t in_h,
                                      std::size_t in_w);

/// The individual passes, exposed for truncated pipelines in tests.
void pass_fuse(CompiledPlan& plan);
void pass_specialize(CompiledPlan& plan);
void pass_strategy(CompiledPlan& plan, ConvStrategy strategy);
void pass_build_tables(const hw::QNetDesc& desc, CompiledPlan& plan);
void pass_verify(const CompiledPlan& plan);

/// The strategy pass's host-cost choice for one conv step: im2col amortizes
/// one patch materialization (gather of `patch` taps) over `out_c` dense
/// branch-free dot products, direct re-walks the gather table per output
/// channel. Auto picks im2col once the amortization wins.
[[nodiscard]] ConvAlgo choose_conv_algo(std::size_t out_c, std::size_t patch,
                                        ConvStrategy strategy);

/// Full deploy-time compilation: lower + the standard pipeline for
/// `options`. The returned plan is immutable and safe to share across
/// replicas/tenants/threads.
[[nodiscard]] std::shared_ptr<const CompiledPlan> compile_qnet(
    const hw::QNetDesc& desc, std::size_t in_c, std::size_t in_h,
    std::size_t in_w, const CompileOptions& options = {});

}  // namespace mfdfp::compile
