#include "compile/plan_cache.hpp"

#include <sstream>

namespace mfdfp::compile {

namespace {

std::string cache_key(std::uint64_t content_hash, std::size_t in_c,
                      std::size_t in_h, std::size_t in_w,
                      const std::string& device_key,
                      const CompileOptions& options) {
  std::ostringstream key;
  key << std::hex << content_hash << std::dec << "|" << in_c << "x" << in_h
      << "x" << in_w << "|" << device_key << "|f" << options.fuse << "s"
      << options.specialize << "t" << static_cast<int>(options.strategy)
      << "a" << options.analyze;
  return key.str();
}

}  // namespace

std::shared_ptr<const CompiledPlan> PlanCache::get_or_compile(
    const hw::QNetDesc& desc, std::size_t in_c, std::size_t in_h,
    std::size_t in_w, const std::string& device_key,
    const CompileOptions& options) {
  const std::uint64_t content = qnet_content_hash(desc);
  const std::string key =
      cache_key(content, in_c, in_h, in_w, device_key, options);

  util::MutexLock lock(mutex_);
  if (auto it = entries_.find(key); it != entries_.end()) {
    it->second.last_used = ++clock_;
    ++stats_.hits;
    return it->second.plan;
  }

  ++stats_.misses;
  std::shared_ptr<const CompiledPlan> plan =
      compile_qnet(desc, in_c, in_h, in_w, options);
  entries_[key] = Entry{plan, ++clock_};

  while (max_entries_ != 0 && entries_.size() > max_entries_) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_used < victim->second.last_used) victim = it;
    }
    // Dropping the map's shared_ptr only releases the cache's reference:
    // backends and in-flight requests holding the plan keep serving it.
    entries_.erase(victim);
    ++stats_.evictions;
  }
  return plan;
}

PlanCacheStats PlanCache::stats() const {
  util::MutexLock lock(mutex_);
  PlanCacheStats out = stats_;
  out.entries = entries_.size();
  return out;
}

void PlanCache::clear() {
  util::MutexLock lock(mutex_);
  entries_.clear();
}

}  // namespace mfdfp::compile
