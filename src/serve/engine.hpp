// InferenceEngine: the per-model serving unit behind ModelServer.
//
// Owns one deployed model — a single QNetDesc or an ensemble of members
// (one simulated processing unit each, logits averaged as in paper Section
// 4.3) — plus the queue -> dynamic batcher -> worker pool pipeline that
// drains client requests through the batched executor fast path. Each
// executed batch is costed on the paper's hardware models: latency from
// hw::CycleModel (ensemble = max over members, batch = sequential samples)
// and DMA bytes from hw::TrafficModel (weights fetched once per batch —
// the traffic win of batching — activations per sample).
//
// Scheduling: the queue drains strict priority (kInteractive before kBatch)
// when `priority_scheduling` is on, and `admission_control` sheds kBatch
// requests at submit time when the estimated queue delay (outstanding
// requests — queued plus executing — x per-sample simulated accelerator
// cost) already exceeds the request's deadline budget — an overloaded
// engine fails cheap traffic fast instead
// of queueing work it cannot finish in time. Requests whose deadline has
// already passed at submit fail immediately with kDeadlineExceeded (counted
// as timed_out) instead of occupying a queue slot until batch formation.
//
// Clients normally reach an engine through ModelServer (server.hpp), which
// owns the name -> engine registry; the engine itself is name-agnostic
// beyond stamping responses with the model name/version it was deployed as.
//
// Thread-safety: submit() may be called from any number of client threads;
// stop() is idempotent and drains the queue before returning, so no promise
// is ever abandoned.
#pragma once

#include <array>
#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "hw/cost_model.hpp"
#include "hw/executor.hpp"
#include "serve/batcher.hpp"
#include "serve/request_queue.hpp"
#include "serve/stats.hpp"
#include "serve/worker_pool.hpp"

namespace mfdfp::serve {

/// Per-deployment configuration (one model behind the ModelServer).
struct DeployConfig {
  /// Input geometry of one sample (the engine validates every submit).
  std::size_t in_c = 3, in_h = 32, in_w = 32;

  // Batching policy.
  std::size_t max_batch = 8;
  std::int64_t max_wait_us = 2000;

  std::size_t workers = 4;
  std::size_t queue_capacity = 1024;

  /// Applied to requests submitted without an explicit deadline; 0 = none.
  std::int64_t default_deadline_us = 0;

  // Scheduling policies (see file comment).
  bool priority_scheduling = true;  ///< strict-priority queue drain
  bool admission_control = true;    ///< shed kBatch when delay > budget

  /// Engine replicas behind one name (see serve/replica_set.hpp). Each
  /// replica is a full InferenceEngine — own queue, worker pool, and
  /// simulated accelerator instance — and the ReplicaSet routes each
  /// submission to the least-loaded one.
  std::size_t num_replicas = 1;

  /// QoS quota: max outstanding kBatch requests across the *whole* replica
  /// set; excess kBatch submissions resolve kShedded at the router. 0 =
  /// unlimited. Interactive traffic is never quota-limited.
  std::size_t batch_quota = 0;

  /// When true, a worker holds each executed batch until the simulated
  /// accelerator would have finished it (batch formation + cycle-model
  /// latency), so wall-clock throughput and tails reproduce the modeled
  /// hardware's real-time behaviour instead of the host CPU's. Logits are
  /// unaffected. The engine forces `workers` to 1 in this mode — the
  /// engine models exactly one accelerator, and N pacing threads would
  /// drain N accelerators' worth of work; scale capacity with
  /// `num_replicas` instead. This is what lets bench/ablation_replicas
  /// measure replica scaling on any host core count.
  bool paced_execution = false;

  /// Identity stamped into responses; the registry fills these on deploy
  /// and the ReplicaSet fills replica_index.
  std::string model_name;
  std::uint32_t model_version = 0;
  std::uint32_t replica_index = 0;

  /// Accelerator instance used for the simulated-latency/DMA accounting.
  hw::AcceleratorConfig accel{};
};

class InferenceEngine {
 public:
  /// Deploys `members` (>= 1; > 1 = averaged-logit ensemble) and starts the
  /// worker pool. All members must share the input geometry in `config`.
  InferenceEngine(std::vector<hw::QNetDesc> members, DeployConfig config);

  /// Stops and joins the workers (drains pending requests first).
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Submits one sample ({C,H,W} or {1,C,H,W}). The future resolves when a
  /// worker completes the request's batch; rejected/shed/expired
  /// submissions resolve immediately with the matching StatusCode.
  [[nodiscard]] std::future<Response> submit(tensor::Tensor sample,
                                             SubmitOptions options = {});

  /// Closes the queue, drains in-flight work, joins the workers.
  /// Idempotent; submit() after stop() resolves kShuttingDown.
  void stop();

  [[nodiscard]] ServerStats& stats() noexcept { return stats_; }
  [[nodiscard]] const ServerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] std::size_t queue_depth(Priority priority) const {
    return queue_.size(priority);
  }
  [[nodiscard]] const DeployConfig& config() const noexcept {
    return config_;
  }

  /// Requests accepted but not yet resolved: queued plus in execution.
  /// This is what load-aware replica routing balances on — queue depth
  /// alone goes blind while a worker holds a popped batch.
  [[nodiscard]] std::size_t outstanding(Priority priority) const noexcept {
    return outstanding_[static_cast<std::size_t>(priority)].load(
        std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t outstanding_total() const noexcept {
    std::size_t total = 0;
    for (const auto& counter : outstanding_) {
      total += counter.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Outstanding requests x per-sample simulated accelerator cost: the work,
  /// in modeled microseconds, this engine has committed to but not finished.
  [[nodiscard]] double outstanding_work_us() const noexcept {
    return static_cast<double>(outstanding_total()) * sample_accel_us_;
  }
  [[nodiscard]] std::size_t member_count() const noexcept {
    return executors_.size();
  }

  /// Simulated accelerator latency of one sample, microseconds (max over
  /// ensemble members — one processing unit each).
  [[nodiscard]] double simulated_sample_us() const noexcept {
    return sample_accel_us_;
  }

  /// Simulated accelerator latency of one batch of `batch_size` samples,
  /// microseconds (cycle model; exposed for tests/benches).
  [[nodiscard]] double simulated_batch_us(std::size_t batch_size) const;

  /// Simulated DMA bytes of one batch (weights once, activations per
  /// sample).
  [[nodiscard]] double simulated_batch_dma_bytes(
      std::size_t batch_size) const;

  /// Admission-control estimate: outstanding work (queued + executing) in
  /// modeled microseconds.
  [[nodiscard]] double estimated_queue_delay_us() const {
    return outstanding_work_us();
  }

 private:
  void worker_main(std::size_t worker_index);
  void execute_batch(std::vector<Request>& batch, hw::ExecScratch& scratch);

  DeployConfig config_;
  std::vector<std::unique_ptr<hw::AcceleratorExecutor>> executors_;
  std::vector<const hw::AcceleratorExecutor*> member_ptrs_;

  // Per-sample simulated costs, precomputed from the members' workloads.
  double sample_accel_us_ = 0.0;     ///< max over members (one PU each)
  double weight_dma_bytes_ = 0.0;    ///< sum over members, once per batch
  double act_dma_bytes_ = 0.0;       ///< sum over members, per sample

  RequestQueue queue_;
  DynamicBatcher batcher_;
  WorkerPool workers_;
  ServerStats stats_;
  std::atomic<RequestId> next_id_{1};
  std::atomic<bool> stopped_{false};
  /// Accepted-but-unresolved requests per priority class (see outstanding()).
  std::array<std::atomic<std::size_t>, kPriorityClasses> outstanding_{};
};

}  // namespace mfdfp::serve
