// InferenceEngine: the per-model serving unit behind ModelServer.
//
// Owns one deployed model — a single QNetDesc or an ensemble of members
// (one simulated processing unit each, logits averaged as in paper Section
// 4.3) — plus the queue -> dynamic batcher -> worker pool pipeline that
// drains client requests through the batched executor fast path. Each
// executed batch is costed on the paper's hardware models: latency from
// hw::CycleModel (ensemble = max over members, batch = sequential samples)
// and DMA bytes from hw::TrafficModel (weights fetched once per batch —
// the traffic win of batching — activations per sample).
//
// Scheduling: the queue drains strict priority (kInteractive before kBatch)
// when `priority_scheduling` is on, and `admission_control` sheds kBatch
// requests at submit time when the estimated queue delay (queue depth x
// per-sample simulated accelerator cost) already exceeds the request's
// deadline budget — an overloaded engine fails cheap traffic fast instead
// of queueing work it cannot finish in time. Requests whose deadline has
// already passed at submit fail immediately with kDeadlineExceeded (counted
// as timed_out) instead of occupying a queue slot until batch formation.
//
// Clients normally reach an engine through ModelServer (server.hpp), which
// owns the name -> engine registry; the engine itself is name-agnostic
// beyond stamping responses with the model name/version it was deployed as.
//
// Thread-safety: submit() may be called from any number of client threads;
// stop() is idempotent and drains the queue before returning, so no promise
// is ever abandoned.
#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "hw/cost_model.hpp"
#include "hw/executor.hpp"
#include "serve/batcher.hpp"
#include "serve/request_queue.hpp"
#include "serve/stats.hpp"
#include "serve/worker_pool.hpp"

namespace mfdfp::serve {

/// Per-deployment configuration (one model behind the ModelServer).
struct DeployConfig {
  /// Input geometry of one sample (the engine validates every submit).
  std::size_t in_c = 3, in_h = 32, in_w = 32;

  // Batching policy.
  std::size_t max_batch = 8;
  std::int64_t max_wait_us = 2000;

  std::size_t workers = 4;
  std::size_t queue_capacity = 1024;

  /// Applied to requests submitted without an explicit deadline; 0 = none.
  std::int64_t default_deadline_us = 0;

  // Scheduling policies (see file comment).
  bool priority_scheduling = true;  ///< strict-priority queue drain
  bool admission_control = true;    ///< shed kBatch when delay > budget

  /// Identity stamped into responses; the registry fills these on deploy.
  std::string model_name;
  std::uint32_t model_version = 0;

  /// Accelerator instance used for the simulated-latency/DMA accounting.
  hw::AcceleratorConfig accel{};
};

class InferenceEngine {
 public:
  /// Deploys `members` (>= 1; > 1 = averaged-logit ensemble) and starts the
  /// worker pool. All members must share the input geometry in `config`.
  InferenceEngine(std::vector<hw::QNetDesc> members, DeployConfig config);

  /// Stops and joins the workers (drains pending requests first).
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Submits one sample ({C,H,W} or {1,C,H,W}). The future resolves when a
  /// worker completes the request's batch; rejected/shed/expired
  /// submissions resolve immediately with the matching StatusCode.
  [[nodiscard]] std::future<Response> submit(tensor::Tensor sample,
                                             SubmitOptions options = {});

  /// Closes the queue, drains in-flight work, joins the workers.
  /// Idempotent; submit() after stop() resolves kShuttingDown.
  void stop();

  [[nodiscard]] ServerStats& stats() noexcept { return stats_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] const DeployConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::size_t member_count() const noexcept {
    return executors_.size();
  }

  /// Simulated accelerator latency of one sample, microseconds (max over
  /// ensemble members — one processing unit each).
  [[nodiscard]] double simulated_sample_us() const noexcept {
    return sample_accel_us_;
  }

  /// Simulated accelerator latency of one batch of `batch_size` samples,
  /// microseconds (cycle model; exposed for tests/benches).
  [[nodiscard]] double simulated_batch_us(std::size_t batch_size) const;

  /// Simulated DMA bytes of one batch (weights once, activations per
  /// sample).
  [[nodiscard]] double simulated_batch_dma_bytes(
      std::size_t batch_size) const;

  /// Admission-control estimate: current queue depth x per-sample simulated
  /// accelerator cost.
  [[nodiscard]] double estimated_queue_delay_us() const {
    return static_cast<double>(queue_.size()) * sample_accel_us_;
  }

 private:
  void worker_main(std::size_t worker_index);
  void execute_batch(std::vector<Request>& batch, hw::ExecScratch& scratch);

  DeployConfig config_;
  std::vector<std::unique_ptr<hw::AcceleratorExecutor>> executors_;
  std::vector<const hw::AcceleratorExecutor*> member_ptrs_;

  // Per-sample simulated costs, precomputed from the members' workloads.
  double sample_accel_us_ = 0.0;     ///< max over members (one PU each)
  double weight_dma_bytes_ = 0.0;    ///< sum over members, once per batch
  double act_dma_bytes_ = 0.0;       ///< sum over members, per sample

  RequestQueue queue_;
  DynamicBatcher batcher_;
  WorkerPool workers_;
  ServerStats stats_;
  std::atomic<RequestId> next_id_{1};
  std::atomic<bool> stopped_{false};
};

}  // namespace mfdfp::serve
