// InferenceEngine: the per-model serving unit behind ModelServer.
//
// Owns the *scheduling* half of one deployed replica — the queue -> dynamic
// batcher -> worker pool pipeline that drains client requests — and submits
// every prepared batch to an ExecutionBackend (serve/device.hpp), which
// owns the *execution* half: the accelerator device the replica was placed
// on, what runs the batch, and what it costs. The production backend is
// SimulatedAcceleratorBackend — a single QNetDesc or an ensemble of members
// (one simulated processing unit each, logits averaged as in paper Section
// 4.3), costed on the paper's hardware models: latency from hw::CycleModel
// scaled by the device's speed_factor (ensemble = max over members, batch =
// sequential samples) and DMA bytes from hw::TrafficModel (weights fetched
// once per batch — the traffic win of batching — activations per sample).
// Tests inject stub backends through the backend constructor to exercise
// the engine against synthetic devices.
//
// Scheduling: the queue drains strict priority (kInteractive before kBatch)
// when `priority_scheduling` is on, and `admission_control` sheds kBatch
// requests at submit time when the estimated queue delay (outstanding
// requests — queued plus executing — x the *device's own* per-sample
// modeled cost) already exceeds the request's deadline budget — an
// overloaded engine fails cheap traffic fast instead of queueing work it
// cannot finish in time, and a 2x-provisioned device admits 2x deeper
// backlogs for the same budget. Requests whose deadline has already passed
// at submit fail immediately with kDeadlineExceeded (counted as timed_out)
// instead of occupying a queue slot until batch formation.
//
// Clients normally reach an engine through ModelServer (server.hpp), which
// owns the name -> engine registry; the engine itself is name-agnostic
// beyond stamping responses with the model name/version/device it was
// deployed as.
//
// Thread-safety: submit() may be called from any number of client threads;
// stop() is idempotent and drains the queue before returning, so no promise
// is ever abandoned.
#pragma once

#include <array>
#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "analysis/capacity.hpp"
#include "compile/plan.hpp"
#include "hw/cost_model.hpp"
#include "hw/executor.hpp"
#include "serve/batcher.hpp"
#include "serve/device.hpp"
#include "serve/request_queue.hpp"
#include "serve/stats.hpp"
#include "serve/worker_pool.hpp"

namespace mfdfp::compile {
class PlanCache;  // compile/plan_cache.hpp
}

namespace mfdfp::serve {

/// Per-deployment configuration (one model behind the ModelServer).
struct DeployConfig {
  /// Input geometry of one sample (the engine validates every submit).
  std::size_t in_c = 3, in_h = 32, in_w = 32;

  // Batching policy.
  std::size_t max_batch = 8;
  std::int64_t max_wait_us = 2000;

  std::size_t workers = 4;
  std::size_t queue_capacity = 1024;

  /// Applied to requests submitted without an explicit deadline; 0 = none.
  std::int64_t default_deadline_us = 0;

  // Scheduling policies (see file comment).
  bool priority_scheduling = true;  ///< strict-priority queue drain
  bool admission_control = true;    ///< shed kBatch when delay > budget

  /// Engine replicas behind one name (see serve/replica_set.hpp). Each
  /// replica is a full InferenceEngine — own queue, worker pool, and
  /// accelerator device — and the ReplicaSet routes each submission per
  /// `routing`. Ignored when `placement` is non-empty (one replica per
  /// listed device).
  std::size_t num_replicas = 1;

  /// Per-replica device placement. Empty (the default) = homogeneous:
  /// num_replicas replicas, each on a copy of `device`. Non-empty = one
  /// replica per entry, so {.speed_factor = 1}, {.speed_factor = 2} deploys
  /// two differently-provisioned accelerators behind one name. Deploy
  /// throws std::invalid_argument on any entry with speed_factor <= 0.
  std::vector<DeviceSpec> placement;

  /// How the ReplicaSet picks a replica: least normalized outstanding work
  /// (the default — a 2x device absorbs 2x traffic) or speed-blind least
  /// outstanding count (the ablation baseline; see serve/device.hpp).
  RoutingPolicy routing = RoutingPolicy::kNormalizedWork;

  /// QoS quota: max outstanding kBatch requests across the *whole* replica
  /// set; excess kBatch submissions resolve kShedded at the router. 0 =
  /// unlimited. Interactive traffic is never quota-limited.
  std::size_t batch_quota = 0;

  /// When true, a worker holds each executed batch until the simulated
  /// accelerator would have finished it (batch formation + device-scaled
  /// cycle-model latency), so wall-clock throughput and tails reproduce the
  /// modeled hardware's real-time behaviour instead of the host CPU's —
  /// including provisioning: a speed_factor 2 device paces twice as fast.
  /// Logits are unaffected. The engine forces `workers` to 1 in this mode —
  /// the engine models exactly one accelerator, and N pacing threads would
  /// drain N accelerators' worth of work; scale capacity with `placement` /
  /// `num_replicas` instead. This is what lets bench/ablation_replicas and
  /// bench/ablation_hetero measure scaling on any host core count.
  /// Backends that pace centrally (a SharedDevice holds each pass until
  /// its modeled completion; backend->paces_execution() is true) make the
  /// engine skip its own sleep either way — leave this off for shared
  /// placements and configure SharedDeviceConfig.paced instead.
  bool paced_execution = false;

  /// Identity stamped into responses; the registry fills these on deploy
  /// and the ReplicaSet fills replica_index and device.
  std::string model_name;
  std::uint32_t model_version = 0;
  std::uint32_t replica_index = 0;

  /// The device this engine executes on (per-replica; the ReplicaSet copies
  /// placement[replica_index] here). Its nonzero workers / max_batch /
  /// queue_capacity override the engine defaults above, and its
  /// speed_factor scales every modeled latency. An empty name auto-fills
  /// "dev<replica_index>".
  DeviceSpec device{};

  /// Baseline accelerator instance used for the simulated-latency/DMA
  /// accounting; `device.speed_factor` scales its effective clock.
  hw::AcceleratorConfig accel{};

  /// Deploy-time compilation knobs (src/compile): by default every member
  /// is lowered through the pass pipeline into a CompiledPlan the backend
  /// executes — bit-identical to the uncompiled path, measurably faster.
  /// .enabled = false deploys the legacy per-batch run_batch path (the
  /// ablation baseline).
  compile::CompileOptions compile{};

  /// Declared traffic contract for this model (see
  /// analysis/capacity.hpp). Default (arrival_rps == 0) = no envelope:
  /// ModelServer::deploy() skips the schedulability analysis. With one
  /// declared, deploy() statically proves the placement can meet the
  /// envelope's deadlines and rejects infeasible placements as
  /// DeployError{kInfeasibleSlo} (or logs the violated proofs when
  /// envelope.warn_only is set) before the model serves a request.
  analysis::TrafficEnvelope envelope{};

  /// Plan cache shared across deployments, replicas, and shared-PU tenants.
  /// Null = ModelServer fills in its server-wide cache on deploy (a bare
  /// InferenceEngine compiles uncached). Plans are pinned by the backends
  /// that execute them, so eviction/redeploy never invalidates in-flight
  /// work (see compile/plan_cache.hpp).
  std::shared_ptr<compile::PlanCache> plan_cache;
};

class InferenceEngine {
 public:
  /// Deploys `members` (>= 1; > 1 = averaged-logit ensemble) on a
  /// SimulatedAcceleratorBackend built from config.accel + config.device,
  /// and starts the worker pool. All members must share the input geometry
  /// in `config`.
  InferenceEngine(std::vector<hw::QNetDesc> members, DeployConfig config);

  /// Deploys onto an explicit backend (the API seam: tests inject stubs,
  /// future cross-model backends share one device between engines). Throws
  /// std::invalid_argument on a null backend.
  InferenceEngine(std::shared_ptr<const ExecutionBackend> backend,
                  DeployConfig config);

  /// Stops and joins the workers (drains pending requests first).
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Submits one sample ({C,H,W} or {1,C,H,W}). The future resolves when a
  /// worker completes the request's batch; rejected/shed/expired
  /// submissions resolve immediately with the matching StatusCode.
  [[nodiscard]] std::future<Response> submit(tensor::Tensor sample,
                                             SubmitOptions options = {});

  /// Closes the queue, drains in-flight work, joins the workers.
  /// Idempotent; submit() after stop() resolves kShuttingDown.
  void stop();

  [[nodiscard]] ServerStats& stats() noexcept { return stats_; }
  [[nodiscard]] const ServerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] std::size_t queue_depth(Priority priority) const {
    return queue_.size(priority);
  }
  [[nodiscard]] const DeployConfig& config() const noexcept {
    return config_;
  }

  /// The device this engine executes on (resolved: auto-name filled in,
  /// overrides applied). This is the authoritative identity — for injected
  /// backends whose DeviceSpec arrived unnamed, the backend keeps its raw
  /// spec while this (and every Response.device / stats row) carries the
  /// auto-filled "dev<replica_index>" name.
  [[nodiscard]] const DeviceSpec& device() const noexcept {
    return config_.device;
  }
  [[nodiscard]] const ExecutionBackend& backend() const noexcept {
    return *backend_;
  }

  /// Requests accepted but not yet resolved: queued plus in execution.
  /// queue depth alone goes blind while a worker holds a popped batch.
  [[nodiscard]] std::size_t outstanding(Priority priority) const noexcept {
    return outstanding_[static_cast<std::size_t>(priority)].load(
        std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t outstanding_total() const noexcept {
    std::size_t total = 0;
    for (const auto& counter : outstanding_) {
      total += counter.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Outstanding requests x the device's per-sample modeled cost: the work,
  /// in modeled microseconds, this engine has committed to but not
  /// finished. Because sample_us() already divides by the device's
  /// speed_factor, this is normalized load — a 2x device reports half the
  /// delay for the same backlog. Note this is the engine's *own* work only;
  /// routing and admission balance estimated_queue_delay_us(), which adds
  /// the cross-tenant backlog of a shared device.
  [[nodiscard]] double outstanding_work_us() const noexcept {
    return analysis::committed_delay_us(
        static_cast<double>(outstanding_total()), backend_->sample_us(),
        /*cross_backlog_us=*/0.0);
  }
  [[nodiscard]] std::size_t member_count() const noexcept {
    return backend_->member_count();
  }

  /// Accumulated per-layer profiles of the backend's model members, one per
  /// member (see hw/layer_profile.hpp). Empty for injected stub backends
  /// without a simulated accelerator behind them. Safe while serving.
  [[nodiscard]] std::vector<hw::LayerProfile> layer_profiles() const {
    return backend_->layer_profiles();
  }

  /// Modeled latency of one sample on this engine's device, microseconds
  /// (max over ensemble members — one processing unit each — divided by the
  /// device's speed_factor).
  [[nodiscard]] double simulated_sample_us() const noexcept {
    return backend_->sample_us();
  }

  /// Modeled latency of one batch of `batch_size` samples on this engine's
  /// device, microseconds (exposed for tests/benches).
  [[nodiscard]] double simulated_batch_us(std::size_t batch_size) const {
    return backend_->batch_us(batch_size);
  }

  /// Modeled DMA bytes of one batch (weights once, activations per sample).
  [[nodiscard]] double simulated_batch_dma_bytes(
      std::size_t batch_size) const {
    return backend_->batch_dma_bytes(batch_size);
  }

  /// Admission-control estimate: outstanding work (queued + executing) in
  /// modeled microseconds on this device — including, on a shared PU, the
  /// work *other* tenants have already committed to the device, so a model
  /// that is idle itself still sheds against a neighbour's flood instead of
  /// queueing work the contended device cannot finish in time. This is also
  /// the load normalized-work replica routing balances, and the same
  /// analysis::committed_delay_us() formula the deploy-time capacity
  /// analyzer builds its proofs from (single source of truth; see
  /// analysis/capacity.hpp).
  [[nodiscard]] double estimated_queue_delay_us() const {
    return analysis::committed_delay_us(
        static_cast<double>(outstanding_total()), backend_->sample_us(),
        backend_->cross_tenant_backlog_us());
  }

 private:
  /// Applies device overrides (workers/max_batch/queue_capacity, auto-name,
  /// paced single-worker rule) onto the raw config. Shared by both ctors so
  /// queue_/batcher_ see the resolved values.
  [[nodiscard]] static DeployConfig resolve_config(DeployConfig config);

  /// Interns this deployment's trace names (model tag, per-lane categories,
  /// queue-depth counter tracks) into the process-global obs::trace()
  /// recorder, so the serving hot path only ever passes stable pointers.
  void init_trace_identity();

  void worker_main(std::size_t worker_index);
  /// Stacks the batch, executes it through the backend (passing ExecHints —
  /// interactive when any rider is kInteractive, so preemptible shared PUs
  /// can prioritize probe sub-batches), paces if the backend doesn't, and
  /// completes every rider.
  void execute_batch(std::vector<Request>& batch, hw::ExecScratch& scratch);

  DeployConfig config_;
  /// Shared, not unique: a drained engine's stats/device stay readable
  /// through ReplicaSet snapshots after undeploy, and future shared-PU
  /// backends serve several engines at once.
  std::shared_ptr<const ExecutionBackend> backend_;

  RequestQueue queue_;
  DynamicBatcher batcher_;
  WorkerPool workers_;
  ServerStats stats_;
  std::atomic<RequestId> next_id_{1};
  std::atomic<bool> stopped_{false};
  /// Accepted-but-unresolved requests per priority class (see outstanding()).
  std::array<std::atomic<std::size_t>, kPriorityClasses> outstanding_{};

  // Interned trace identity (init_trace_identity; stable for the global
  // recorder's lifetime).
  const char* trace_model_ = nullptr;
  std::array<const char*, kPriorityClasses> trace_lane_{};
  std::array<const char*, kPriorityClasses> trace_queue_counter_{};
};

}  // namespace mfdfp::serve
