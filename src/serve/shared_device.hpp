// SharedDevice + SharedDeviceBackend: one physical PU serving many models.
//
// The paper's multiplier-free accelerator is a single cheap fixed-function
// processing unit — cheap enough that a deployment rarely justifies a
// private one per engine replica. A SharedDevice models that one physical
// PU: it owns the device-side batch queue and the single dispatch thread
// that drains it, and any number of InferenceEngines (across any number of
// deployed models) attach to it through the ordinary ExecutionBackend seam.
// `DeviceSpec::on(pu)` in a DeployConfig.placement is all it takes — the
// engine code is unchanged, exactly what the seam was designed for.
//
// Scheduling: every tenant's prepared sub-batches land in per-tenant FIFO
// lanes on the device — one lane per priority class, interactive drained
// first. Each device pass, the dispatcher coalesces pending sub-batches —
// round-robin across tenants for fairness, then grouped by model for
// execution — into one pass of up to `max_pass_samples` samples, provided
// the tenants' input geometries align; geometry-incompatible work falls
// back to serialized per-model passes. With `cobatch = false` the device
// degrades to classic time-sliced serialization (one sub-batch per pass,
// strict round-robin over tenants) — the ablation baseline of
// bench/ablation_shared_pu.
//
// Preemption + continuous batching (`preempt_granularity_us > 0`): instead
// of executing a pass as one non-preemptible unit, the dispatcher splits it
// into same-tenant *chunks* whose modeled cost is at most the granularity
// (never below one sample), and between chunks it
//   - admits late-arriving geometry-compatible sub-batches into the
//     in-flight pass ("joins": the weight reload is already paid, so a
//     joiner rides the current pass instead of waiting out a coalesce
//     window — continuous batching), and
//   - suspends the pass when an interactive probe is pending that *cannot*
//     join (geometry mismatch, pass at capacity, or joins disabled): the
//     probe gets its own pass immediately, then the suspended pass resumes.
// Worst-case interactive blocking shrinks from one maximal pass to one
// maximal chunk plus a reload — the tightened term
// `analysis::analyze_capacity` proves and `bench/ablation_shared_pu`
// enforces. Chunking slices sub-batch tensors on sample boundaries and runs
// them through the same bit-accurate executors, so it can never change any
// logit — only when a sub-batch completes. With the default granularity 0
// passes stay monolithic (the pre-preemption behaviour, bit-for-bit).
//
// Cost model: a pass pays
//   - `pass_overhead_us` once (pipeline fill/drain + dispatch), plus
//   - a weight-reload penalty each time the pass switches the PU to a model
//     whose weights are not resident (the incoming model's weight working
//     set over `dma_gbps`, or the fixed `model_switch_us` override), plus
//   - each sub-batch's compute (its tenant's cycle-model latency on this
//     device, exactly as a dedicated SimulatedAcceleratorBackend prices it).
// A chunk boundary never splits a reload: each chunk covers one tenant and
// pays at most one reload, entering it. A suspended pass whose tenant was
// evicted by the preempting probe pays the reload again on resume — that
// cost is real on the modeled hardware and is priced by the analyzer's
// preemption overhead term. Weights stay resident across passes until
// another model evicts them, so co-batching's throughput win — amortizing
// reloads and per-pass overhead over more samples — is the same
// statistical-multiplexing effect a real shared accelerator sees. Logits
// are computed by each tenant's own bit-accurate executors regardless of
// pass composition, so co-batching can never change *what* a batch
// computes, only *when* it completes.
//
// Pacing: with `paced = true` (default) the dispatch thread itself holds
// each pass (each chunk, when preemptible) until the modeled completion
// time before resolving the tenants' execute() calls — the device is the
// single pacing authority, so N tenant engines can never pace N devices'
// worth of work out of one PU. Tenant engines must leave
// DeployConfig.paced_execution off; their backend->paces_execution() tells
// them so.
//
// Thread-safety: attach() and every accessor may be called from any thread;
// execute() blocks the calling engine worker until its sub-batch retires.
// All shared state is guarded by one device mutex; sub-batch tensors are
// borrowed from the (blocked) caller for the duration of the call, never
// retained. The chunk loop only touches its pass between chunks *under the
// device mutex*, so joiners admitted by the dispatcher itself are the only
// writers of an in-flight pass.
//
// Lifetime: create() returns a shared_ptr; every attached backend holds one,
// and engines hold their backend — so the device (and its dispatch thread)
// outlives every tenant. The destructor therefore only runs once no tenant
// can submit: it closes the queue and joins an idle dispatcher. Detaching a
// tenant (undeploy / redeploy) is just draining its engine: its in-flight
// sub-batches retire in order, other tenants' lanes are untouched, and its
// accounting rows stay readable in the device snapshot.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/device.hpp"
#include "serve/request.hpp"
#include "util/mutex.hpp"
#include "util/stopwatch.hpp"

namespace mfdfp::serve {

struct DeployConfig;  // serve/engine.hpp
class SharedDeviceBackend;

/// One chunk boundary of a preemptible pass, as reported to the
/// SharedDeviceConfig::chunk_hook test seam right after the chunk retired
/// (outside the device mutex, before the next chunk is planned). Lets the
/// deterministic scheduler harness (tests/serve_test_util.hpp) park the
/// dispatcher at exact chunk boundaries and script joins/preemptions.
struct SharedDeviceChunkEvent {
  std::uint64_t pass = 0;   ///< pass sequence number, 1-based
  std::uint64_t chunk = 0;  ///< chunk index within its pass, 0-based
  std::string model;        ///< model the chunk executed
  std::size_t chunk_samples = 0;      ///< samples this chunk executed
  std::size_t remaining_samples = 0;  ///< planned samples still unexecuted
  bool interactive_pass = false;  ///< pass was formed to serve a preemption
  bool preempting = false;  ///< the pass suspends for a probe after this chunk
};

/// Provisioning of one shared PU (see file comment for the cost model).
struct SharedDeviceConfig {
  /// Max samples coalesced into one device pass. Bounds how long a pass —
  /// and therefore any tenant's wait for the *next* pass — can run, which
  /// is what keeps interactive latency bounded under cross-model
  /// interference.
  std::size_t max_pass_samples = 32;

  /// Coalesce compatible sub-batches from different models into one pass
  /// (true) vs time-sliced serialization — one sub-batch per pass, strict
  /// round-robin over tenants (false; the ablation baseline).
  bool cobatch = true;

  /// How long the dispatcher may hold pass formation waiting for more
  /// sub-batches once at least one is pending, microseconds. At a pass
  /// boundary every rider's engine worker wakes at once and resubmits
  /// within microseconds; without a window the dispatcher would race them
  /// and form a degenerate one-sub-batch pass. The window ends as soon as
  /// a full pass is pending *or* a ~100us slice passes with no new
  /// arrivals (the refill burst is over), so deployments whose engines
  /// cannot fill max_pass_samples pay at most one quiet slice, not the
  /// whole window. Keep it well under a full pass's modeled cost — it is
  /// host-side formation latency. Ignored when cobatch is off (time
  /// slicing serves one sub-batch per pass regardless). With
  /// preempt_granularity_us > 0 a pending interactive sub-batch cuts the
  /// window short — probes never wait on pass formation, and late batch
  /// work joins in-flight passes instead of needing the window.
  std::int64_t coalesce_window_us = 500;

  /// Hold each pass until its modeled completion time before resolving the
  /// tenants' execute() calls, so wall-clock behaviour tracks the device's
  /// cycle model (the shared-device analogue of
  /// DeployConfig.paced_execution — central, one pacing thread per PU).
  /// Preemptible passes pace chunk by chunk, so a suspension takes effect
  /// at the modeled chunk boundary, not after a whole modeled pass.
  bool paced = true;

  /// Modeled DMA bandwidth for weight reloads when the PU switches models,
  /// GB/s. A model's switch penalty is its weight working set over this
  /// bandwidth.
  double dma_gbps = 8.0;

  /// Fixed per-model switch penalty override, microseconds; > 0 replaces
  /// the dma_gbps-derived reload time (benches pin it for determinism).
  double model_switch_us = 0.0;

  /// Fixed per-pass overhead (pipeline fill/drain + dispatch), us.
  double pass_overhead_us = 0.0;

  /// Preemption granularity, microseconds. > 0 makes passes preemptible:
  /// each is executed as same-tenant chunks of at most this much modeled
  /// compute (never less than one sample), and between chunks the
  /// dispatcher admits joiners and serves pending interactive probes that
  /// cannot join (see file comment). 0 (default) keeps passes monolithic —
  /// the strictly pre-preemption behaviour.
  double preempt_granularity_us = 0.0;

  /// Let geometry-compatible sub-batches arriving mid-pass join the pass
  /// at the next chunk boundary until max_pass_samples is reached
  /// (continuous batching). Effective only with cobatch and
  /// preempt_granularity_us > 0.
  bool join_inflight = true;

  /// Test seam: the microsecond clock the dispatcher paces against; null =
  /// util::Stopwatch::now_us (the host monotonic clock). Lets the
  /// deterministic scheduler harness replay paced schedules in virtual
  /// time. Must be monotone; called without the device mutex only.
  std::function<std::int64_t()> now_us;

  /// Test seam: how the dispatcher sleeps while pacing; null =
  /// std::this_thread::sleep_for. A virtual-time harness advances its
  /// clock here instead of blocking.
  std::function<void(std::int64_t)> sleep_us;

  /// Test seam: called (without the device mutex) after every chunk of a
  /// preemptible pass retires. Never called when preempt_granularity_us is
  /// 0. The hook may block — the deterministic harness uses that to hold
  /// the dispatcher at a chunk boundary — but must not deadlock against
  /// device shutdown (release it before the last tenant detaches).
  std::function<void(const SharedDeviceChunkEvent&)> chunk_hook;
};

/// Per-tenant view of a shared device's accounting, one row per attached
/// engine (tenant rows are append-only; a detached tenant's row freezes).
struct SharedTenantRow {
  std::string tenant;         ///< "model@version/r<replica>"
  std::string model;          ///< model name alone
  std::uint64_t sub_batches = 0;  ///< executed sub-batches of this tenant
  std::uint64_t samples = 0;      ///< samples served for this tenant
  double busy_us = 0.0;       ///< modeled device time attributed to tenant
  double pending_us = 0.0;    ///< queued + executing modeled work right now
  std::uint64_t queued_jobs = 0;  ///< sub-batches waiting in the device
                                  ///< lanes (excludes engine-side queues)
};

/// Consistent view of one shared device (SharedDevice::snapshot()).
struct SharedDeviceSnapshot {
  std::string device;
  double speed_factor = 1.0;
  std::uint64_t passes = 0;           ///< device passes executed
  std::uint64_t cobatched_passes = 0; ///< passes mixing >= 2 models
  std::uint64_t model_switches = 0;   ///< weight reloads paid
  std::uint64_t chunks = 0;       ///< execution chunks (== passes when
                                  ///< preemption is off)
  std::uint64_t preemptions = 0;  ///< passes suspended for a probe
  std::uint64_t joined_jobs = 0;  ///< sub-batches that joined in-flight
                                  ///< passes (continuous batching)
  std::uint64_t joined_passes = 0;  ///< passes at least one job joined
  double busy_us = 0.0;               ///< total modeled busy time
  double switch_us = 0.0;             ///< busy time spent reloading weights
  double wall_seconds = 0.0;          ///< observation window
  double utilization = 0.0;           ///< busy / wall, [0, 1] when paced
  std::vector<SharedTenantRow> tenants;
};

class SharedDevice : public std::enable_shared_from_this<SharedDevice> {
 public:
  /// Creates one physical PU with the given identity/provisioning and
  /// starts its dispatch thread. `spec.shared` must be empty (a shared
  /// device cannot itself be placed on another shared device) and
  /// `spec.speed_factor` must be > 0; throws std::invalid_argument
  /// otherwise. An empty name becomes "shared-pu".
  [[nodiscard]] static std::shared_ptr<SharedDevice> create(
      DeviceSpec spec = {}, SharedDeviceConfig config = {});

  /// Joins the dispatch thread. Runs only after every tenant backend (and
  /// thus every engine) released its handle, so the queue is empty.
  ~SharedDevice();

  SharedDevice(const SharedDevice&) = delete;
  SharedDevice& operator=(const SharedDevice&) = delete;

  /// Attaches one tenant engine: builds the bit-accurate executors for
  /// `members` priced on this device's spec, registers a tenant lane, and
  /// returns the ExecutionBackend the engine submits through. Called by
  /// ReplicaSet for every replica whose placement entry carries this
  /// device's handle; `config` supplies geometry and identity
  /// (model_name/version/replica_index), `resolved` the merged DeviceSpec
  /// the backend reports (PU name + speed, tenant scheduling overrides).
  /// Throws std::invalid_argument on an empty member list.
  [[nodiscard]] std::shared_ptr<const SharedDeviceBackend> attach(
      std::vector<hw::QNetDesc> members, const DeployConfig& config,
      DeviceSpec resolved);

  /// Binds the engine-side outstanding-work provider of the tenant behind
  /// `backend` (returned by attach()). When bound, the device prices that
  /// tenant's share of the aggregate backlog as the provider's value — the
  /// engine's full committed work, queued *and* executing — instead of only
  /// the sub-batches already sitting in the device lane, so a neighbour's
  /// deep engine queue is visible to other tenants' admission control and
  /// routing. The provider is called under the device mutex from any
  /// thread; it must be lock-free on its side, and it must never be (or
  /// become) the last owner of anything whose destructor re-enters this
  /// device — a weak_ptr-locking provider must be unbound (pass nullptr)
  /// *before* the last engine reference can drop, or the provider's
  /// temporary shared_ptr could run ~InferenceEngine ->
  /// ~SharedDeviceBackend -> release_tenant under the already-held device
  /// mutex. ReplicaSet::stop() performs exactly that unbind; unbinding
  /// serializes on the device mutex against in-flight provider calls.
  void bind_tenant_load(const SharedDeviceBackend& backend,
                        std::function<double()> outstanding_us)
      EXCLUDES(mutex_);

  [[nodiscard]] const DeviceSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const SharedDeviceConfig& config() const noexcept {
    return config_;
  }

  /// Engines ever attached (detached tenants still count — their
  /// accounting rows persist).
  [[nodiscard]] std::size_t tenant_count() const EXCLUDES(mutex_);

  /// Modeled microseconds of queued + executing work across all tenants.
  [[nodiscard]] double backlog_us() const EXCLUDES(mutex_);

  /// Consistent accounting snapshot (see SharedDeviceSnapshot).
  [[nodiscard]] SharedDeviceSnapshot snapshot() const EXCLUDES(mutex_);

  /// The snapshot rendered as device + per-tenant tables, ready to print.
  [[nodiscard]] std::string stats_table(const std::string& title) const;

 private:
  friend class SharedDeviceBackend;

  struct Tenant;

  /// One engine sub-batch waiting for (or riding in) a device pass. Lives
  /// on the blocked execute() caller's stack; the device only keeps a
  /// pointer while the job is queued or executing, and never touches it
  /// again once `done` is set under the mutex.
  struct Job {
    Tenant* owner = nullptr;
    const tensor::Tensor* stacked = nullptr;  ///< borrowed from the caller
    std::size_t samples = 0;
    bool interactive = false;  ///< carried an interactive rider (ExecHints)
    double est_cost_us = 0.0;  ///< backlog contribution until retired
    BatchResult result;
    bool done = false;
    // Chunked-execution accounting (preemptible passes only): a job can
    // execute across several chunks, so its exact attribution accumulates
    // here until it retires.
    std::size_t executed = 0;   ///< samples executed so far
    double exec_us = 0.0;       ///< accumulated modeled compute
    double extra_us = 0.0;      ///< reloads + pass overhead it carried
    double extra_dma_bytes = 0.0;  ///< weight bytes for reloads it carried
  };

  /// One attached engine: its executors, switch pricing, lanes, accounting.
  /// Heap-allocated and never destroyed before the device, so Tenant*
  /// stays valid across concurrent attach() reallocation of tenants_;
  /// everything but the accounting/lane fields is immutable after attach.
  /// When the tenant's backend is destroyed (undeploy/redeploy), `sim` —
  /// the heavy part: executors and predecoded weights — is released and
  /// the row freezes; churning redeploys on a long-lived PU must not
  /// accumulate dead models' working sets.
  struct Tenant {
    std::string label;
    std::string model;
    /// Interned model tag for trace events (stable; set at attach).
    const char* trace_model = nullptr;
    std::unique_ptr<SimulatedAcceleratorBackend> sim;  ///< null once detached
    std::size_t in_c = 0, in_h = 0, in_w = 0;
    double switch_us = 0.0;  ///< weight-reload penalty for this model
    /// One FIFO lane per priority class, interactive drained first —
    /// indexed by Priority (guarded by mutex_). The interactive lane is
    /// what the dispatcher re-checks between chunks of a preemptible pass.
    std::deque<Job*> lanes[kPriorityClasses];
    /// Engine-side committed work, bound by bind_tenant_load(); when unset
    /// the device falls back to the lane's own pending_us.
    std::function<double()> load_provider;
    // Accounting (guarded by mutex_).
    std::uint64_t sub_batches = 0;
    std::uint64_t samples = 0;
    double busy_us = 0.0;
    double pending_us = 0.0;
  };

  /// One planned device pass, handed between the dispatch loop's phases:
  /// the jobs popped from the lanes, their contiguous same-tenant groups
  /// (each paying at most one weight reload), and the cost totals the
  /// execute/retire phases fill in. Planned and retired under mutex_;
  /// executed without it (the jobs already left the lanes, so no
  /// concurrent submitter can reach them). This is the monolithic
  /// (preempt_granularity_us == 0) execution unit.
  struct PassPlan {
    struct Group {
      std::size_t begin = 0, end = 0;  ///< [begin, end) into `jobs`
      Tenant* tenant = nullptr;
      std::size_t samples = 0;
      bool switched = false;  ///< pays this tenant's weight reload
    };
    std::vector<Job*> jobs;
    std::vector<Group> groups;
    std::size_t samples = 0;
    double switch_total_us = 0.0;
    /// Filled by execute_pass: modeled pass cost and wall start time.
    double cost_us = 0.0;
    std::int64_t start_us = 0;
  };

  /// One live preemptible pass (preempt_granularity_us > 0): jobs in
  /// execution order with a cursor; retired jobs fall off in front of the
  /// cursor, joiners are inserted behind it. Owned by the dispatch thread;
  /// mutated only under mutex_ between chunks.
  struct ActivePass {
    std::vector<Job*> jobs;
    std::size_t next_job = 0;     ///< first not-fully-executed job
    std::size_t next_sample = 0;  ///< executed samples within jobs[next_job]
    std::size_t planned_samples = 0;  ///< total samples of all jobs, ever
    std::size_t done_samples = 0;
    std::size_t in_c = 0, in_h = 0, in_w = 0;  ///< pass geometry (lead's)
    std::uint64_t seq = 0;     ///< pass sequence number, 1-based
    std::uint64_t chunks = 0;  ///< chunks executed so far
    std::size_t joined = 0;    ///< jobs admitted after the pass started
    double cost_us = 0.0;
    double switch_total_us = 0.0;
    std::int64_t start_us = 0;
    bool interactive = false;  ///< formed by a preemption, for probes only
    bool overhead_paid = false;  ///< pass_overhead_us charged yet?
    /// Distinct model names seen (co-batch accounting; small by
    /// construction — a pass rarely mixes more than a few models).
    std::vector<std::string> models;
  };

  /// One planned chunk of an ActivePass: a contiguous same-tenant sample
  /// range starting at the pass cursor, plus the reload it pays entering
  /// it. `end_*` is the cursor after the chunk (end_sample > 0 means
  /// jobs[end_job] is split mid-sub-batch).
  struct Chunk {
    Tenant* tenant = nullptr;
    std::size_t end_job = 0;
    std::size_t end_sample = 0;
    std::size_t samples = 0;
    double switch_us = 0.0;    ///< reload paid entering this chunk
    double overhead_us = 0.0;  ///< pass overhead (first chunk only)
    /// Filled by execute_chunk: modeled cost and wall start time.
    double cost_us = 0.0;
    std::int64_t start_us = 0;
  };

  SharedDevice(DeviceSpec spec, SharedDeviceConfig config);

  /// The microsecond clock / sleep the dispatcher paces with — the
  /// config's test seams when set, the host monotonic clock otherwise.
  [[nodiscard]] std::int64_t now_device_us() const;
  void sleep_device_us(std::int64_t duration_us) const;

  /// Enqueues `job` into its tenant's lane for `job.interactive` and
  /// blocks until it retires (the execute() implementation of
  /// SharedDeviceBackend).
  void submit_and_wait(Job& job) EXCLUDES(mutex_);

  /// Called by ~SharedDeviceBackend: frees the tenant's executors and load
  /// provider (its engine has drained, so the lanes are empty) while
  /// keeping the accounting row readable in snapshots.
  void release_tenant(Tenant* tenant) EXCLUDES(mutex_);

  /// Aggregate pending work minus `tenant`'s own contribution.
  [[nodiscard]] double backlog_excluding_us(const Tenant* tenant) const
      EXCLUDES(mutex_);

  /// The dispatch thread's loop. Each iteration is MutexLock scopes around
  /// lock-free execution phases: {wait for work, plan} under mutex_,
  /// execute/pace unlocked, {retire} under mutex_ — every locked phase is
  /// a REQUIRES-annotated helper, so the whole loop stays inside the
  /// static analysis (no opt-out). With preemption enabled the
  /// plan/execute/retire cycle runs per *chunk* (run_pass_chunked).
  void dispatch_main() EXCLUDES(mutex_);

  /// Samples currently queued across all active tenant lanes.
  [[nodiscard]] std::size_t pending_samples_locked() const REQUIRES(mutex_);

  /// Any interactive sub-batch queued on an active tenant?
  [[nodiscard]] bool interactive_pending_locked() const REQUIRES(mutex_);

  /// Blocks until work is pending (or stop), then holds pass formation for
  /// the coalesce window so just-woken engine workers can refill the lanes
  /// (see SharedDeviceConfig::coalesce_window_us). On preemptible devices
  /// a pending interactive sub-batch cuts the window short.
  void wait_for_work_locked() REQUIRES(mutex_);

  /// Pops the next pass (next_pass_locked) and plans its execution:
  /// contiguous same-tenant groups, each paying one weight reload iff its
  /// model is not the resident one; updates resident_. Monolithic path.
  [[nodiscard]] PassPlan plan_pass_locked() REQUIRES(mutex_);

  /// Executes a planned monolithic pass through the tenants' bit-accurate
  /// executors, records trace spans, and (when paced) holds it until its
  /// modeled completion. Touches no lane/accounting state — runs unlocked.
  void execute_pass(PassPlan& plan, hw::ExecScratch& scratch,
                    bool& thread_labeled) EXCLUDES(mutex_);

  /// Retires an executed monolithic pass: bumps the device counters and
  /// attributes the pass cost exactly across its sub-batches, marking each
  /// job done.
  void retire_pass_locked(PassPlan& plan) REQUIRES(mutex_);

  /// Pops the next pass from the tenant lanes: strict round-robin one
  /// sub-batch per pass when cobatch is off; otherwise round-robin across
  /// geometry-compatible tenants up to max_pass_samples, returned grouped
  /// by tenant so weight reloads are paid once per model per pass. With
  /// `interactive_only` only interactive lanes are drawn from (preemption
  /// passes serve probes exclusively).
  [[nodiscard]] std::vector<Job*> next_pass_locked(bool interactive_only)
      REQUIRES(mutex_);

  // ---- Preemptible (chunked) execution, preempt_granularity_us > 0 ----

  /// Plans a new preemptible pass: pops jobs (next_pass_locked), fixes the
  /// pass geometry to the lead tenant's, assigns the sequence number.
  /// Returns an empty-jobs pass when no (matching) work is pending.
  [[nodiscard]] ActivePass start_pass_locked(bool interactive_only)
      REQUIRES(mutex_);

  /// Admits pending geometry-compatible sub-batches into the in-flight
  /// pass up to max_pass_samples (continuous batching): batch joiners are
  /// inserted next to their tenant's unexecuted jobs (grouping minimizes
  /// reloads) or appended; interactive joiners are inserted at the
  /// earliest unexecuted position so they ride the very next chunks.
  void admit_joiners_locked(ActivePass& pass) REQUIRES(mutex_);

  /// Plans the next chunk: a same-tenant sample range from the pass cursor
  /// whose modeled compute is at most preempt_granularity_us (at least one
  /// sample), the reload iff the tenant is not resident (updates
  /// resident_), and the pass overhead on the first chunk.
  [[nodiscard]] Chunk plan_chunk_locked(ActivePass& pass) REQUIRES(mutex_);

  /// Executes a planned chunk through the tenant's bit-accurate executors
  /// (slicing sub-batches on sample boundaries when the chunk splits one),
  /// records the chunk trace span, and (when paced) holds it until its
  /// modeled completion. Touches no lane/accounting state — runs unlocked.
  void execute_chunk(ActivePass& pass, Chunk& chunk, hw::ExecScratch& scratch,
                     bool& thread_labeled) EXCLUDES(mutex_);

  /// Retires an executed chunk: advances the pass cursor, bumps device and
  /// chunk counters, attributes the chunk's reload/overhead to its lead
  /// job, and retires every job the cursor passed (exact accounting —
  /// see retire_job_locked).
  void retire_chunk_locked(ActivePass& pass, Chunk& chunk) REQUIRES(mutex_);

  /// Marks one fully-executed job done and attributes its exact cost:
  /// its own accumulated compute plus the reloads/overhead it carried, so
  /// per-tenant busy sums to device busy across preemption boundaries.
  void retire_job_locked(Job& job) REQUIRES(mutex_);

  /// Bumps pass-level counters once a preemptible pass fully retires and
  /// records its pu_pass span / cobatched_pass instant.
  void finish_pass_locked(ActivePass& pass) REQUIRES(mutex_);

  /// True when an interactive sub-batch is pending that could not join
  /// `pass` at the next chunk boundary (geometry mismatch, pass at
  /// capacity, or joining disabled) — the suspend-this-pass trigger.
  [[nodiscard]] bool should_preempt_locked(const ActivePass& pass) const
      REQUIRES(mutex_);

  /// Runs one preemptible pass to completion: per chunk, {admit joiners,
  /// plan chunk} under mutex_, execute unlocked, {retire} under mutex_;
  /// between chunks, suspends for interactive-only passes when
  /// should_preempt_locked fires. `depth` bounds the suspension nesting:
  /// interactive passes (depth 1) never suspend.
  void run_pass_chunked(ActivePass pass, hw::ExecScratch& scratch,
                        bool& thread_labeled, int depth) EXCLUDES(mutex_);

  DeviceSpec spec_;
  SharedDeviceConfig config_;

  mutable util::Mutex mutex_;
  util::CondVar work_ready_;    ///< dispatcher waits for jobs
  util::CondVar pass_retired_;  ///< execute() callers wait for done
  std::vector<std::unique_ptr<Tenant>> tenants_ GUARDED_BY(mutex_);
  /// Attached-and-not-released tenants — what the dispatcher and the
  /// backlog/admission paths iterate. Released tenants stay in tenants_
  /// (their rows and Tenant* stability outlive them) but leave this list,
  /// so redeploy churn cannot grow the per-submit scan without bound.
  std::vector<Tenant*> active_ GUARDED_BY(mutex_);
  /// Round-robin cursor over active_.
  std::size_t next_tenant_ GUARDED_BY(mutex_) = 0;
  /// Tenant whose weights are resident in the PU's weight buffer; null
  /// before the first pass. Tenants share residency only with themselves —
  /// conservative for two replicas of one model, and a redeployed version
  /// legitimately reloads.
  const Tenant* resident_ GUARDED_BY(mutex_) = nullptr;
  bool stop_ GUARDED_BY(mutex_) = false;

  // Accounting.
  std::uint64_t passes_ GUARDED_BY(mutex_) = 0;
  std::uint64_t cobatched_passes_ GUARDED_BY(mutex_) = 0;
  std::uint64_t model_switches_ GUARDED_BY(mutex_) = 0;
  std::uint64_t chunks_ GUARDED_BY(mutex_) = 0;
  std::uint64_t preemptions_ GUARDED_BY(mutex_) = 0;
  std::uint64_t joined_jobs_ GUARDED_BY(mutex_) = 0;
  std::uint64_t joined_passes_ GUARDED_BY(mutex_) = 0;
  std::uint64_t pass_seq_ GUARDED_BY(mutex_) = 0;
  double busy_us_ GUARDED_BY(mutex_) = 0.0;
  double switch_busy_us_ GUARDED_BY(mutex_) = 0.0;
  /// Started at construction, only ever read — needs no guard.
  util::Stopwatch window_;

  std::thread dispatcher_;
};

/// The per-tenant ExecutionBackend facade a SharedDevice hands each engine:
/// execute() forwards the prepared batch into the device queue and blocks
/// until the dispatch thread retires its sub-batch (paced to the modeled
/// device when SharedDeviceConfig.paced). Cost accessors report the
/// tenant's own per-sample cost on the shared PU; cross_tenant_backlog_us()
/// reports the other tenants' queued work so engine admission and
/// ReplicaSet routing price the device's aggregate load.
///
/// Thread-safety: as ExecutionBackend requires — all methods safe from any
/// number of engine worker / submit threads. Lifetime: holds the
/// SharedDevice alive; destroyed only after its engine drained, so no
/// execute() can be in flight.
class SharedDeviceBackend final : public ExecutionBackend {
 public:
  SharedDeviceBackend(std::shared_ptr<SharedDevice> device,
                      SharedDevice::Tenant* tenant, DeviceSpec resolved);

  /// Releases the tenant's device-side executors (see
  /// SharedDevice::release_tenant). Runs only after the owning engine
  /// drained, so no execute() is in flight and the lanes are empty.
  ~SharedDeviceBackend() override;

  SharedDeviceBackend(const SharedDeviceBackend&) = delete;
  SharedDeviceBackend& operator=(const SharedDeviceBackend&) = delete;

  [[nodiscard]] BatchResult execute(const tensor::Tensor& stacked,
                                    hw::ExecScratch& scratch) const override;
  /// The hinted overload the engine calls: `hints.interactive` routes the
  /// sub-batch into the tenant's interactive lane, which preemptible
  /// passes re-check between chunks.
  [[nodiscard]] BatchResult execute(const tensor::Tensor& stacked,
                                    hw::ExecScratch& scratch,
                                    const ExecHints& hints) const override;
  [[nodiscard]] const DeviceSpec& device() const noexcept override {
    return resolved_;
  }
  [[nodiscard]] double sample_us() const noexcept override;
  [[nodiscard]] double batch_us(std::size_t batch_size) const override;
  [[nodiscard]] double batch_dma_bytes(std::size_t batch_size) const override;
  [[nodiscard]] std::size_t member_count() const noexcept override;
  [[nodiscard]] bool paces_execution() const noexcept override {
    return device_->config().paced;
  }
  [[nodiscard]] double cross_tenant_backlog_us() const noexcept override;
  /// This tenant's weight-reload penalty on the shared PU, microseconds
  /// (priced once at attach; the blocking term the deploy-time capacity
  /// analyzer and ReplicaSet::capacity_facts() build bounds from).
  [[nodiscard]] double switch_us() const noexcept {
    return tenant_->switch_us;
  }
  /// Forwards to SharedDevice::bind_tenant_load for this tenant.
  void bind_load_provider(
      std::function<double()> outstanding_us) const override;
  /// This tenant's member profiles on the shared PU (empty after the
  /// tenant's executors were released — i.e. never while the owning engine
  /// is alive).
  [[nodiscard]] std::vector<hw::LayerProfile> layer_profiles() const override;

  [[nodiscard]] const std::shared_ptr<SharedDevice>& shared_device()
      const noexcept {
    return device_;
  }

 private:
  friend class SharedDevice;  // bind_tenant_load resolves tenant_

  std::shared_ptr<SharedDevice> device_;
  /// Stable pointer into device_->tenants_ (Tenants live as long as the
  /// device; immutable fields are read lock-free by the cost accessors).
  SharedDevice::Tenant* tenant_;
  DeviceSpec resolved_;
};

}  // namespace mfdfp::serve
