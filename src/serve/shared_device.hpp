// SharedDevice + SharedDeviceBackend: one physical PU serving many models.
//
// The paper's multiplier-free accelerator is a single cheap fixed-function
// processing unit — cheap enough that a deployment rarely justifies a
// private one per engine replica. A SharedDevice models that one physical
// PU: it owns the device-side batch queue and the single dispatch thread
// that drains it, and any number of InferenceEngines (across any number of
// deployed models) attach to it through the ordinary ExecutionBackend seam.
// `DeviceSpec::on(pu)` in a DeployConfig.placement is all it takes — the
// engine code is unchanged, exactly what the seam was designed for.
//
// Scheduling: every tenant's prepared sub-batches land in a per-tenant FIFO
// lane on the device. Each device pass, the dispatcher coalesces pending
// sub-batches — round-robin across tenants for fairness, then grouped by
// model for execution — into one pass of up to `max_pass_samples` samples,
// provided the tenants' input geometries align; geometry-incompatible work
// falls back to serialized per-model passes. With `cobatch = false` the
// device degrades to classic time-sliced serialization (one sub-batch per
// pass, strict round-robin over tenants) — the ablation baseline of
// bench/ablation_shared_pu.
//
// Cost model: a pass pays
//   - `pass_overhead_us` once (pipeline fill/drain + dispatch), plus
//   - a weight-reload penalty each time the pass switches the PU to a model
//     whose weights are not resident (the incoming model's weight working
//     set over `dma_gbps`, or the fixed `model_switch_us` override), plus
//   - each sub-batch's compute (its tenant's cycle-model latency on this
//     device, exactly as a dedicated SimulatedAcceleratorBackend prices it).
// Weights stay resident across passes until another model evicts them, so
// co-batching's throughput win — amortizing reloads and per-pass overhead
// over more samples — is the same statistical-multiplexing effect a real
// shared accelerator sees. Logits are computed by each tenant's own
// bit-accurate executors regardless of pass composition, so co-batching can
// never change *what* a batch computes, only *when* it completes.
//
// Pacing: with `paced = true` (default) the dispatch thread itself holds
// each pass until the modeled completion time before resolving the tenants'
// execute() calls — the device is the single pacing authority, so N tenant
// engines can never pace N devices' worth of work out of one PU. Tenant
// engines must leave DeployConfig.paced_execution off; their
// backend->paces_execution() tells them so.
//
// Thread-safety: attach() and every accessor may be called from any thread;
// execute() blocks the calling engine worker until its sub-batch's pass
// retires. All shared state is guarded by one device mutex; sub-batch
// tensors are borrowed from the (blocked) caller for the duration of the
// call, never retained.
//
// Lifetime: create() returns a shared_ptr; every attached backend holds one,
// and engines hold their backend — so the device (and its dispatch thread)
// outlives every tenant. The destructor therefore only runs once no tenant
// can submit: it closes the queue and joins an idle dispatcher. Detaching a
// tenant (undeploy / redeploy) is just draining its engine: its in-flight
// sub-batches retire in order, other tenants' lanes are untouched, and its
// accounting rows stay readable in the device snapshot.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/device.hpp"
#include "util/mutex.hpp"
#include "util/stopwatch.hpp"

namespace mfdfp::serve {

struct DeployConfig;  // serve/engine.hpp
class SharedDeviceBackend;

/// Provisioning of one shared PU (see file comment for the cost model).
struct SharedDeviceConfig {
  /// Max samples coalesced into one device pass. Bounds how long a pass —
  /// and therefore any tenant's wait for the *next* pass — can run, which
  /// is what keeps interactive latency bounded under cross-model
  /// interference.
  std::size_t max_pass_samples = 32;

  /// Coalesce compatible sub-batches from different models into one pass
  /// (true) vs time-sliced serialization — one sub-batch per pass, strict
  /// round-robin over tenants (false; the ablation baseline).
  bool cobatch = true;

  /// How long the dispatcher may hold pass formation waiting for more
  /// sub-batches once at least one is pending, microseconds. At a pass
  /// boundary every rider's engine worker wakes at once and resubmits
  /// within microseconds; without a window the dispatcher would race them
  /// and form a degenerate one-sub-batch pass. The window ends as soon as
  /// a full pass is pending *or* a ~100us slice passes with no new
  /// arrivals (the refill burst is over), so deployments whose engines
  /// cannot fill max_pass_samples pay at most one quiet slice, not the
  /// whole window. Keep it well under a full pass's modeled cost — it is
  /// host-side formation latency. Ignored when cobatch is off (time
  /// slicing serves one sub-batch per pass regardless).
  std::int64_t coalesce_window_us = 500;

  /// Hold each pass until its modeled completion time before resolving the
  /// tenants' execute() calls, so wall-clock behaviour tracks the device's
  /// cycle model (the shared-device analogue of
  /// DeployConfig.paced_execution — central, one pacing thread per PU).
  bool paced = true;

  /// Modeled DMA bandwidth for weight reloads when the PU switches models,
  /// GB/s. A model's switch penalty is its weight working set over this
  /// bandwidth.
  double dma_gbps = 8.0;

  /// Fixed per-model switch penalty override, microseconds; > 0 replaces
  /// the dma_gbps-derived reload time (benches pin it for determinism).
  double model_switch_us = 0.0;

  /// Fixed per-pass overhead (pipeline fill/drain + dispatch), us.
  double pass_overhead_us = 0.0;
};

/// Per-tenant view of a shared device's accounting, one row per attached
/// engine (tenant rows are append-only; a detached tenant's row freezes).
struct SharedTenantRow {
  std::string tenant;         ///< "model@version/r<replica>"
  std::string model;          ///< model name alone
  std::uint64_t sub_batches = 0;  ///< executed sub-batches of this tenant
  std::uint64_t samples = 0;      ///< samples served for this tenant
  double busy_us = 0.0;       ///< modeled device time attributed to tenant
  double pending_us = 0.0;    ///< queued + executing modeled work right now
};

/// Consistent view of one shared device (SharedDevice::snapshot()).
struct SharedDeviceSnapshot {
  std::string device;
  double speed_factor = 1.0;
  std::uint64_t passes = 0;           ///< device passes executed
  std::uint64_t cobatched_passes = 0; ///< passes mixing >= 2 models
  std::uint64_t model_switches = 0;   ///< weight reloads paid
  double busy_us = 0.0;               ///< total modeled busy time
  double switch_us = 0.0;             ///< busy time spent reloading weights
  double wall_seconds = 0.0;          ///< observation window
  double utilization = 0.0;           ///< busy / wall, [0, 1] when paced
  std::vector<SharedTenantRow> tenants;
};

class SharedDevice : public std::enable_shared_from_this<SharedDevice> {
 public:
  /// Creates one physical PU with the given identity/provisioning and
  /// starts its dispatch thread. `spec.shared` must be empty (a shared
  /// device cannot itself be placed on another shared device) and
  /// `spec.speed_factor` must be > 0; throws std::invalid_argument
  /// otherwise. An empty name becomes "shared-pu".
  [[nodiscard]] static std::shared_ptr<SharedDevice> create(
      DeviceSpec spec = {}, SharedDeviceConfig config = {});

  /// Joins the dispatch thread. Runs only after every tenant backend (and
  /// thus every engine) released its handle, so the queue is empty.
  ~SharedDevice();

  SharedDevice(const SharedDevice&) = delete;
  SharedDevice& operator=(const SharedDevice&) = delete;

  /// Attaches one tenant engine: builds the bit-accurate executors for
  /// `members` priced on this device's spec, registers a tenant lane, and
  /// returns the ExecutionBackend the engine submits through. Called by
  /// ReplicaSet for every replica whose placement entry carries this
  /// device's handle; `config` supplies geometry and identity
  /// (model_name/version/replica_index), `resolved` the merged DeviceSpec
  /// the backend reports (PU name + speed, tenant scheduling overrides).
  /// Throws std::invalid_argument on an empty member list.
  [[nodiscard]] std::shared_ptr<const SharedDeviceBackend> attach(
      std::vector<hw::QNetDesc> members, const DeployConfig& config,
      DeviceSpec resolved);

  /// Binds the engine-side outstanding-work provider of the tenant behind
  /// `backend` (returned by attach()). When bound, the device prices that
  /// tenant's share of the aggregate backlog as the provider's value — the
  /// engine's full committed work, queued *and* executing — instead of only
  /// the sub-batches already sitting in the device lane, so a neighbour's
  /// deep engine queue is visible to other tenants' admission control and
  /// routing. The provider is called under the device mutex from any
  /// thread; it must be lock-free on its side, and it must never be (or
  /// become) the last owner of anything whose destructor re-enters this
  /// device — a weak_ptr-locking provider must be unbound (pass nullptr)
  /// *before* the last engine reference can drop, or the provider's
  /// temporary shared_ptr could run ~InferenceEngine ->
  /// ~SharedDeviceBackend -> release_tenant under the already-held device
  /// mutex. ReplicaSet::stop() performs exactly that unbind; unbinding
  /// serializes on the device mutex against in-flight provider calls.
  void bind_tenant_load(const SharedDeviceBackend& backend,
                        std::function<double()> outstanding_us)
      EXCLUDES(mutex_);

  [[nodiscard]] const DeviceSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const SharedDeviceConfig& config() const noexcept {
    return config_;
  }

  /// Engines ever attached (detached tenants still count — their
  /// accounting rows persist).
  [[nodiscard]] std::size_t tenant_count() const EXCLUDES(mutex_);

  /// Modeled microseconds of queued + executing work across all tenants.
  [[nodiscard]] double backlog_us() const EXCLUDES(mutex_);

  /// Consistent accounting snapshot (see SharedDeviceSnapshot).
  [[nodiscard]] SharedDeviceSnapshot snapshot() const EXCLUDES(mutex_);

  /// The snapshot rendered as device + per-tenant tables, ready to print.
  [[nodiscard]] std::string stats_table(const std::string& title) const;

 private:
  friend class SharedDeviceBackend;

  struct Tenant;

  /// One engine sub-batch waiting for (or riding in) a device pass. Lives
  /// on the blocked execute() caller's stack; the device only keeps a
  /// pointer while the job is queued or executing.
  struct Job {
    Tenant* owner = nullptr;
    const tensor::Tensor* stacked = nullptr;  ///< borrowed from the caller
    std::size_t samples = 0;
    double est_cost_us = 0.0;  ///< backlog contribution until retired
    BatchResult result;
    bool done = false;
  };

  /// One attached engine: its executors, switch pricing, lane, accounting.
  /// Heap-allocated and never destroyed before the device, so Tenant*
  /// stays valid across concurrent attach() reallocation of tenants_;
  /// everything but the accounting/lane fields is immutable after attach.
  /// When the tenant's backend is destroyed (undeploy/redeploy), `sim` —
  /// the heavy part: executors and predecoded weights — is released and
  /// the row freezes; churning redeploys on a long-lived PU must not
  /// accumulate dead models' working sets.
  struct Tenant {
    std::string label;
    std::string model;
    /// Interned model tag for trace events (stable; set at attach).
    const char* trace_model = nullptr;
    std::unique_ptr<SimulatedAcceleratorBackend> sim;  ///< null once detached
    std::size_t in_c = 0, in_h = 0, in_w = 0;
    double switch_us = 0.0;  ///< weight-reload penalty for this model
    std::deque<Job*> lane;   ///< guarded by mutex_
    /// Engine-side committed work, bound by bind_tenant_load(); when unset
    /// the device falls back to the lane's own pending_us.
    std::function<double()> load_provider;
    // Accounting (guarded by mutex_).
    std::uint64_t sub_batches = 0;
    std::uint64_t samples = 0;
    double busy_us = 0.0;
    double pending_us = 0.0;
  };

  /// One planned device pass, handed between the dispatch loop's phases:
  /// the jobs popped from the lanes, their contiguous same-tenant groups
  /// (each paying at most one weight reload), and the cost totals the
  /// execute/retire phases fill in. Planned and retired under mutex_;
  /// executed without it (the jobs already left the lanes, so no
  /// concurrent submitter can reach them).
  struct PassPlan {
    struct Group {
      std::size_t begin = 0, end = 0;  ///< [begin, end) into `jobs`
      Tenant* tenant = nullptr;
      std::size_t samples = 0;
      bool switched = false;  ///< pays this tenant's weight reload
    };
    std::vector<Job*> jobs;
    std::vector<Group> groups;
    std::size_t samples = 0;
    double switch_total_us = 0.0;
    /// Filled by execute_pass: modeled pass cost and wall start time.
    double cost_us = 0.0;
    std::int64_t start_us = 0;
  };

  SharedDevice(DeviceSpec spec, SharedDeviceConfig config);

  /// Enqueues `job` into its tenant lane and blocks until its pass retires
  /// (the execute() implementation of SharedDeviceBackend).
  void submit_and_wait(Job& job) EXCLUDES(mutex_);

  /// Called by ~SharedDeviceBackend: frees the tenant's executors and load
  /// provider (its engine has drained, so the lane is empty) while keeping
  /// the accounting row readable in snapshots.
  void release_tenant(Tenant* tenant) EXCLUDES(mutex_);

  /// Aggregate pending work minus `tenant`'s own contribution.
  [[nodiscard]] double backlog_excluding_us(const Tenant* tenant) const
      EXCLUDES(mutex_);

  /// The dispatch thread's loop. Each iteration is two MutexLock scopes
  /// around a lock-free execution phase: {wait for work, plan a pass}
  /// under mutex_, execute/pace it unlocked, {retire it} under mutex_ —
  /// every locked phase is a REQUIRES-annotated helper, so the whole loop
  /// stays inside the static analysis (no opt-out).
  void dispatch_main() EXCLUDES(mutex_);

  /// Samples currently queued across all active tenant lanes.
  [[nodiscard]] std::size_t pending_samples_locked() const REQUIRES(mutex_);

  /// Blocks until work is pending (or stop), then holds pass formation for
  /// the coalesce window so just-woken engine workers can refill the lanes
  /// (see SharedDeviceConfig::coalesce_window_us).
  void wait_for_work_locked() REQUIRES(mutex_);

  /// Pops the next pass (next_pass_locked) and plans its execution:
  /// contiguous same-tenant groups, each paying one weight reload iff its
  /// model is not the resident one; updates resident_.
  [[nodiscard]] PassPlan plan_pass_locked() REQUIRES(mutex_);

  /// Executes a planned pass through the tenants' bit-accurate executors,
  /// records trace spans, and (when paced) holds it until its modeled
  /// completion. Touches no lane/accounting state — runs unlocked.
  void execute_pass(PassPlan& plan, hw::ExecScratch& scratch,
                    bool& thread_labeled) EXCLUDES(mutex_);

  /// Retires an executed pass: bumps the device counters and attributes
  /// the pass cost exactly across its sub-batches, marking each job done.
  void retire_pass_locked(PassPlan& plan) REQUIRES(mutex_);

  /// Pops the next pass from the tenant lanes: strict round-robin one
  /// sub-batch per pass when cobatch is off; otherwise round-robin across
  /// geometry-compatible tenants up to max_pass_samples, returned grouped
  /// by tenant so weight reloads are paid once per model per pass.
  [[nodiscard]] std::vector<Job*> next_pass_locked() REQUIRES(mutex_);

  DeviceSpec spec_;
  SharedDeviceConfig config_;

  mutable util::Mutex mutex_;
  util::CondVar work_ready_;    ///< dispatcher waits for jobs
  util::CondVar pass_retired_;  ///< execute() callers wait for done
  std::vector<std::unique_ptr<Tenant>> tenants_ GUARDED_BY(mutex_);
  /// Attached-and-not-released tenants — what the dispatcher and the
  /// backlog/admission paths iterate. Released tenants stay in tenants_
  /// (their rows and Tenant* stability outlive them) but leave this list,
  /// so redeploy churn cannot grow the per-submit scan without bound.
  std::vector<Tenant*> active_ GUARDED_BY(mutex_);
  /// Round-robin cursor over active_.
  std::size_t next_tenant_ GUARDED_BY(mutex_) = 0;
  /// Tenant whose weights are resident in the PU's weight buffer; null
  /// before the first pass. Tenants share residency only with themselves —
  /// conservative for two replicas of one model, and a redeployed version
  /// legitimately reloads.
  const Tenant* resident_ GUARDED_BY(mutex_) = nullptr;
  bool stop_ GUARDED_BY(mutex_) = false;

  // Accounting.
  std::uint64_t passes_ GUARDED_BY(mutex_) = 0;
  std::uint64_t cobatched_passes_ GUARDED_BY(mutex_) = 0;
  std::uint64_t model_switches_ GUARDED_BY(mutex_) = 0;
  double busy_us_ GUARDED_BY(mutex_) = 0.0;
  double switch_busy_us_ GUARDED_BY(mutex_) = 0.0;
  /// Started at construction, only ever read — needs no guard.
  util::Stopwatch window_;

  std::thread dispatcher_;
};

/// The per-tenant ExecutionBackend facade a SharedDevice hands each engine:
/// execute() forwards the prepared batch into the device queue and blocks
/// until the dispatch thread retires its pass (paced to the modeled device
/// when SharedDeviceConfig.paced). Cost accessors report the tenant's own
/// per-sample cost on the shared PU; cross_tenant_backlog_us() reports the
/// other tenants' queued work so engine admission and ReplicaSet routing
/// price the device's aggregate load.
///
/// Thread-safety: as ExecutionBackend requires — all methods safe from any
/// number of engine worker / submit threads. Lifetime: holds the
/// SharedDevice alive; destroyed only after its engine drained, so no
/// execute() can be in flight.
class SharedDeviceBackend final : public ExecutionBackend {
 public:
  SharedDeviceBackend(std::shared_ptr<SharedDevice> device,
                      SharedDevice::Tenant* tenant, DeviceSpec resolved);

  /// Releases the tenant's device-side executors (see
  /// SharedDevice::release_tenant). Runs only after the owning engine
  /// drained, so no execute() is in flight and the lane is empty.
  ~SharedDeviceBackend() override;

  SharedDeviceBackend(const SharedDeviceBackend&) = delete;
  SharedDeviceBackend& operator=(const SharedDeviceBackend&) = delete;

  [[nodiscard]] BatchResult execute(const tensor::Tensor& stacked,
                                    hw::ExecScratch& scratch) const override;
  [[nodiscard]] const DeviceSpec& device() const noexcept override {
    return resolved_;
  }
  [[nodiscard]] double sample_us() const noexcept override;
  [[nodiscard]] double batch_us(std::size_t batch_size) const override;
  [[nodiscard]] double batch_dma_bytes(std::size_t batch_size) const override;
  [[nodiscard]] std::size_t member_count() const noexcept override;
  [[nodiscard]] bool paces_execution() const noexcept override {
    return device_->config().paced;
  }
  [[nodiscard]] double cross_tenant_backlog_us() const noexcept override;
  /// This tenant's weight-reload penalty on the shared PU, microseconds
  /// (priced once at attach; the blocking term the deploy-time capacity
  /// analyzer and ReplicaSet::capacity_facts() build bounds from).
  [[nodiscard]] double switch_us() const noexcept {
    return tenant_->switch_us;
  }
  /// Forwards to SharedDevice::bind_tenant_load for this tenant.
  void bind_load_provider(
      std::function<double()> outstanding_us) const override;
  /// This tenant's member profiles on the shared PU (empty after the
  /// tenant's executors were released — i.e. never while the owning engine
  /// is alive).
  [[nodiscard]] std::vector<hw::LayerProfile> layer_profiles() const override;

  [[nodiscard]] const std::shared_ptr<SharedDevice>& shared_device()
      const noexcept {
    return device_;
  }

 private:
  friend class SharedDevice;  // bind_tenant_load resolves tenant_

  std::shared_ptr<SharedDevice> device_;
  /// Stable pointer into device_->tenants_ (Tenants live as long as the
  /// device; immutable fields are read lock-free by the cost accessors).
  SharedDevice::Tenant* tenant_;
  DeviceSpec resolved_;
};

}  // namespace mfdfp::serve
