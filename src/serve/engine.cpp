#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "hw/cycle_model.hpp"
#include "hw/traffic_model.hpp"
#include "util/stopwatch.hpp"

namespace mfdfp::serve {

using tensor::Shape;
using tensor::Tensor;

InferenceEngine::InferenceEngine(std::vector<hw::QNetDesc> members,
                                 DeployConfig config)
    : config_(std::move(config)),
      queue_(config_.queue_capacity, config_.priority_scheduling),
      batcher_(queue_,
               BatcherConfig{config_.max_batch, config_.max_wait_us}) {
  if (members.empty()) {
    throw std::invalid_argument("InferenceEngine: no model members");
  }
  if (config_.workers == 0) config_.workers = 1;
  // One pacing thread per modeled accelerator: concurrent pacing workers
  // would each sleep out the same cycle-model budget and overstate paced
  // throughput by the worker count (see DeployConfig::paced_execution).
  if (config_.paced_execution) config_.workers = 1;

  executors_.reserve(members.size());
  for (hw::QNetDesc& desc : members) {
    // Precompute this member's simulated per-inference cost. Ensemble
    // members run on parallel processing units, so batch latency is the max
    // over members while DMA is their sum.
    const std::vector<hw::LayerWork> work = hw::workload_from_qnet(
        desc, config_.in_c, config_.in_h, config_.in_w);
    const hw::CycleReport cycles = hw::count_cycles(work, config_.accel);
    sample_accel_us_ =
        std::max(sample_accel_us_, cycles.microseconds(config_.accel));
    const hw::TrafficReport traffic = hw::dma_traffic(work, config_.accel);
    for (const hw::LayerTraffic& layer : traffic.layers) {
      weight_dma_bytes_ += static_cast<double>(layer.weight_bytes);
      act_dma_bytes_ +=
          static_cast<double>(layer.input_bytes + layer.output_bytes);
    }

    executors_.push_back(
        std::make_unique<hw::AcceleratorExecutor>(std::move(desc)));
  }
  member_ptrs_.reserve(executors_.size());
  for (const auto& executor : executors_) {
    member_ptrs_.push_back(executor.get());
  }

  workers_.start(config_.workers,
                 [this](std::size_t index) { worker_main(index); });
}

InferenceEngine::~InferenceEngine() { stop(); }

std::future<Response> InferenceEngine::submit(Tensor sample,
                                              SubmitOptions options) {
  Request request;
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  request.input = std::move(sample);
  request.priority = options.priority;
  request.enqueue_us = util::Stopwatch::now_us();
  if (options.deadline_us < 0) {
    request.deadline_us =
        config_.default_deadline_us > 0
            ? request.enqueue_us + config_.default_deadline_us
            : 0;
  } else {
    request.deadline_us = options.deadline_us;
  }
  std::future<Response> future = request.promise.get_future();

  // Exact-dimension check: a permuted layout with the right element count
  // would be served as scrambled data, not rejected.
  const Shape& shape = request.input.shape();
  const std::size_t axis0 = shape.rank() == 4 ? 1 : 0;
  const bool shape_ok =
      (shape.rank() == 3 || (shape.rank() == 4 && shape.dim(0) == 1)) &&
      shape.dim(axis0) == config_.in_c &&
      shape.dim(axis0 + 1) == config_.in_h &&
      shape.dim(axis0 + 2) == config_.in_w;
  if (!shape_ok) {
    stats_.record_rejected();
    fail_request(request, StatusCode::kInvalidInput,
                 "bad input shape " + shape.to_string());
    return future;
  }
  if (stopped_.load(std::memory_order_acquire)) {
    stats_.record_rejected();
    fail_request(request, StatusCode::kShuttingDown, "engine stopped");
    return future;
  }

  // A deadline that has already passed fails here — counting as timed_out,
  // not rejected — instead of occupying a queue slot until batch formation.
  if (request.deadline_us != 0 && request.enqueue_us >= request.deadline_us) {
    stats_.record_timeout();
    fail_request(request, StatusCode::kDeadlineExceeded,
                 "expired at submit");
    return future;
  }

  const std::size_t depth = queue_.size();

  // Admission control: refuse kBatch work whose estimated queue delay
  // (outstanding requests x per-sample simulated accelerator cost) already
  // blows the deadline budget. Interactive traffic is never shed, and
  // deadline-less batch traffic has an infinite budget.
  if (config_.admission_control && request.priority == Priority::kBatch &&
      request.deadline_us != 0) {
    const double est_delay_us = outstanding_work_us();
    const double budget_us =
        static_cast<double>(request.deadline_us - request.enqueue_us);
    if (est_delay_us > budget_us) {
      stats_.record_shedded();
      fail_request(request, StatusCode::kShedded,
                   "estimated queue delay exceeds deadline budget");
      return future;
    }
  }

  stats_.record_queue_depth(depth);
  const std::size_t lane = static_cast<std::size_t>(request.priority);
  // Counted before the push: a worker that pops the request must never see
  // the counter at zero while it holds live work.
  outstanding_[lane].fetch_add(1, std::memory_order_relaxed);
  if (!queue_.push(std::move(request))) {
    outstanding_[lane].fetch_sub(1, std::memory_order_relaxed);
    // push() left the request intact on failure, promise included.
    stats_.record_rejected();
    if (queue_.closed()) {
      fail_request(request, StatusCode::kShuttingDown, "engine stopped");
    } else {
      fail_request(request, StatusCode::kQueueFull, "queue at capacity");
    }
  }
  return future;
}

void InferenceEngine::stop() {
  stopped_.store(true, std::memory_order_release);
  queue_.close();
  workers_.join();
}

double InferenceEngine::simulated_batch_us(std::size_t batch_size) const {
  // Each processing unit streams its member's samples back to back.
  return static_cast<double>(batch_size) * sample_accel_us_;
}

double InferenceEngine::simulated_batch_dma_bytes(
    std::size_t batch_size) const {
  // Weights cross the DMA once per batch (they stay resident in the weight
  // buffer across samples); activations stream per sample.
  return weight_dma_bytes_ +
         static_cast<double>(batch_size) * act_dma_bytes_;
}

void InferenceEngine::worker_main(std::size_t /*worker_index*/) {
  hw::ExecScratch scratch;
  std::vector<Request> batch, expired;
  while (batcher_.next_batch(batch, expired)) {
    for (const Request& request : expired) {
      stats_.record_timeout();
      outstanding_[static_cast<std::size_t>(request.priority)].fetch_sub(
          1, std::memory_order_relaxed);
    }
    if (!batch.empty()) execute_batch(batch, scratch);
  }
}

void InferenceEngine::execute_batch(std::vector<Request>& batch,
                                    hw::ExecScratch& scratch) {
  const std::int64_t formed_us = util::Stopwatch::now_us();
  const std::size_t batch_size = batch.size();

  // Stack samples along the outer axis (the executor's native layout).
  Tensor stacked{
      Shape{batch_size, config_.in_c, config_.in_h, config_.in_w}};
  const std::size_t sample_size =
      config_.in_c * config_.in_h * config_.in_w;
  for (std::size_t i = 0; i < batch_size; ++i) {
    std::memcpy(stacked.data().data() + i * sample_size,
                batch[i].input.data().data(), sample_size * sizeof(float));
  }

  Tensor logits =
      member_ptrs_.size() == 1
          ? member_ptrs_.front()->run_batch(stacked, scratch)
          : hw::run_ensemble_batch(member_ptrs_, stacked, scratch);

  const double sim_us = simulated_batch_us(batch_size);
  const double sim_dma = simulated_batch_dma_bytes(batch_size);
  if (config_.paced_execution) {
    // Hold the batch until the simulated accelerator would have finished it,
    // so wall-clock behaviour (throughput, tails, replica scaling) tracks
    // the cycle model instead of the host CPU.
    const std::int64_t target_us =
        formed_us + static_cast<std::int64_t>(sim_us);
    const std::int64_t now = util::Stopwatch::now_us();
    if (target_us > now) {
      std::this_thread::sleep_for(std::chrono::microseconds(target_us - now));
    }
  }
  const std::int64_t done_us = util::Stopwatch::now_us();
  const std::size_t classes = logits.shape().dim(1);

  // Record the batch before fulfilling any promise: a client that has seen
  // every future resolve must also see the batch in a stats snapshot.
  stats_.record_batch(batch_size, sim_us, sim_dma);
  for (std::size_t i = 0; i < batch_size; ++i) {
    Response response;
    response.status = StatusCode::kOk;
    response.logits = tensor::slice_outer(logits, i, i + 1);
    response.predicted_class = static_cast<int>(
        logits.argmax(i * classes, (i + 1) * classes) - i * classes);
    response.model = config_.model_name;
    response.model_version = config_.model_version;
    response.replica = config_.replica_index;
    response.priority = batch[i].priority;
    response.queue_wait_us = formed_us - batch[i].enqueue_us;
    response.service_us = done_us - formed_us;
    response.e2e_us = done_us - batch[i].enqueue_us;
    response.batch_size = batch_size;
    response.sim_accel_us = sim_us;
    response.sim_dma_bytes = sim_dma / static_cast<double>(batch_size);
    stats_.record_response(response.e2e_us, response.queue_wait_us,
                           batch[i].priority);
    batch[i].promise.set_value(std::move(response));
    outstanding_[static_cast<std::size_t>(batch[i].priority)].fetch_sub(
        1, std::memory_order_relaxed);
  }
}

}  // namespace mfdfp::serve
