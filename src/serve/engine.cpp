#include "serve/engine.hpp"

#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/trace.hpp"
#include "util/stopwatch.hpp"

namespace mfdfp::serve {

using tensor::Shape;
using tensor::Tensor;

namespace {

/// For backend-injection deployments the backend's own DeviceSpec is the
/// source of truth — copy it over config.device so resolve_config applies
/// that device's scheduling overrides. Null backends pass through and fail
/// in the constructor body.
DeployConfig adopt_backend_device(DeployConfig config,
                                  const ExecutionBackend* backend) {
  if (backend != nullptr) config.device = backend->device();
  return config;
}

}  // namespace

DeployConfig InferenceEngine::resolve_config(DeployConfig config) {
  DeviceSpec& device = config.device;
  if (!device.valid()) {
    throw std::invalid_argument("InferenceEngine: device \"" + device.name +
                                "\" has speed_factor <= 0");
  }
  if (device.name.empty()) {
    device.name = "dev" + std::to_string(config.replica_index);
  }
  // Nonzero device fields override the engine defaults (per-device
  // provisioning: a fatter device may run more drain threads and admit
  // bigger batches).
  if (device.workers != 0) config.workers = device.workers;
  if (device.max_batch != 0) config.max_batch = device.max_batch;
  if (device.queue_capacity != 0) {
    config.queue_capacity = device.queue_capacity;
  }

  // Reject nonsensical configs with a typed code instead of silently
  // "fixing" them: a zero-worker engine never drains its queue, a
  // zero-capacity queue rejects every request at the door, and negative
  // time budgets would wrap the deadline arithmetic. Validated *after* the
  // device overrides so a bad override is caught too.
  const auto reject = [](const std::string& what) {
    throw DeployError(StatusCode::kInvalidConfig,
                      "InferenceEngine: invalid deploy config: " + what);
  };
  if (config.in_c == 0 || config.in_h == 0 || config.in_w == 0) {
    reject("input geometry has a zero dimension");
  }
  if (config.workers == 0) reject("zero workers");
  if (config.max_batch == 0) reject("zero max_batch");
  if (config.queue_capacity == 0) reject("zero-capacity queue");
  if (config.max_wait_us < 0) reject("negative max_wait_us");
  if (config.default_deadline_us < 0) reject("negative default_deadline_us");

  // One pacing thread per modeled accelerator: concurrent pacing workers
  // would each sleep out the same cycle-model budget and overstate paced
  // throughput by the worker count (see DeployConfig::paced_execution).
  if (config.paced_execution) config.workers = 1;
  return config;
}

InferenceEngine::InferenceEngine(std::vector<hw::QNetDesc> members,
                                 DeployConfig config)
    : config_(resolve_config(std::move(config))),
      backend_(std::make_shared<SimulatedAcceleratorBackend>(
          std::move(members), config_.accel, config_.device, config_.in_c,
          config_.in_h, config_.in_w, config_.compile, config_.plan_cache)),
      queue_(config_.queue_capacity, config_.priority_scheduling),
      batcher_(queue_,
               BatcherConfig{config_.max_batch, config_.max_wait_us}) {
  init_trace_identity();
  workers_.start(config_.workers,
                 [this](std::size_t index) { worker_main(index); });
}

InferenceEngine::InferenceEngine(
    std::shared_ptr<const ExecutionBackend> backend, DeployConfig config)
    : config_(resolve_config(
          adopt_backend_device(std::move(config), backend.get()))),
      backend_(std::move(backend)),
      queue_(config_.queue_capacity, config_.priority_scheduling),
      batcher_(queue_,
               BatcherConfig{config_.max_batch, config_.max_wait_us}) {
  if (!backend_) {
    throw std::invalid_argument("InferenceEngine: null execution backend");
  }
  if (backend_->member_count() == 0) {
    throw std::invalid_argument("InferenceEngine: backend has no members");
  }
  init_trace_identity();
  workers_.start(config_.workers,
                 [this](std::size_t index) { worker_main(index); });
}

void InferenceEngine::init_trace_identity() {
  obs::TraceRecorder& rec = obs::trace();
  const std::string model =
      config_.model_name.empty() ? std::string("model") : config_.model_name;
  trace_model_ = rec.intern(model);
  for (std::size_t lane = 0; lane < kPriorityClasses; ++lane) {
    const char* lane_name = priority_name(static_cast<Priority>(lane));
    trace_lane_[lane] = rec.intern(lane_name);
    trace_queue_counter_[lane] = rec.intern(model + "/" + config_.device.name +
                                            "/queue_depth/" + lane_name);
  }
}

InferenceEngine::~InferenceEngine() { stop(); }

std::future<Response> InferenceEngine::submit(Tensor sample,
                                              SubmitOptions options) {
  Request request;
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  request.input = std::move(sample);
  request.priority = options.priority;
  request.enqueue_us = util::Stopwatch::now_us();
  if (options.deadline_us < 0) {
    request.deadline_us =
        config_.default_deadline_us > 0
            ? request.enqueue_us + config_.default_deadline_us
            : 0;
  } else {
    request.deadline_us = options.deadline_us;
  }
  std::future<Response> future = request.promise.get_future();

  // Exact-dimension check: a permuted layout with the right element count
  // would be served as scrambled data, not rejected.
  const Shape& shape = request.input.shape();
  const std::size_t axis0 = shape.rank() == 4 ? 1 : 0;
  const bool shape_ok =
      (shape.rank() == 3 || (shape.rank() == 4 && shape.dim(0) == 1)) &&
      shape.dim(axis0) == config_.in_c &&
      shape.dim(axis0 + 1) == config_.in_h &&
      shape.dim(axis0 + 2) == config_.in_w;
  if (!shape_ok) {
    stats_.record_rejected();
    fail_request(request, StatusCode::kInvalidInput,
                 "bad input shape " + shape.to_string());
    return future;
  }
  if (stopped_.load(std::memory_order_acquire)) {
    stats_.record_rejected();
    fail_request(request, StatusCode::kShuttingDown, "engine stopped");
    return future;
  }

  // A deadline that has already passed fails here — counting as timed_out,
  // not rejected — instead of occupying a queue slot until batch formation.
  if (request.deadline_us != 0 && request.enqueue_us >= request.deadline_us) {
    stats_.record_timeout();
    obs::trace().record_instant("expired_at_submit", "admission",
                                request.enqueue_us, request.id, nullptr, 0,
                                trace_model_);
    fail_request(request, StatusCode::kDeadlineExceeded,
                 "expired at submit");
    return future;
  }

  const std::size_t depth = queue_.size();

  // Admission control: refuse kBatch work whose estimated queue delay
  // (outstanding requests x the device's per-sample modeled cost, plus any
  // cross-tenant backlog on a shared device) already blows the deadline
  // budget. Interactive traffic is never shed, and deadline-less batch
  // traffic has an infinite budget.
  if (config_.admission_control && request.priority == Priority::kBatch &&
      request.deadline_us != 0) {
    const double est_delay_us = estimated_queue_delay_us();
    const double budget_us =
        static_cast<double>(request.deadline_us - request.enqueue_us);
    if (est_delay_us > budget_us) {
      stats_.record_shedded();
      obs::trace().record_instant("shed", "admission", request.enqueue_us,
                                  request.id, "est_delay_us",
                                  static_cast<std::int64_t>(est_delay_us),
                                  trace_model_);
      fail_request(request, StatusCode::kShedded,
                   "estimated queue delay exceeds deadline budget");
      return future;
    }
  }

  stats_.record_queue_depth(depth);
  const std::size_t lane = static_cast<std::size_t>(request.priority);
  // Counted before the push: a worker that pops the request must never see
  // the counter at zero while it holds live work.
  outstanding_[lane].fetch_add(1, std::memory_order_relaxed);
  if (!queue_.push(std::move(request))) {
    outstanding_[lane].fetch_sub(1, std::memory_order_relaxed);
    // push() left the request intact on failure, promise included.
    stats_.record_rejected();
    obs::trace().record_instant("reject_queue_full", "admission",
                                request.enqueue_us, request.id, nullptr, 0,
                                trace_model_);
    if (queue_.closed()) {
      fail_request(request, StatusCode::kShuttingDown, "engine stopped");
    } else {
      fail_request(request, StatusCode::kQueueFull, "queue at capacity");
    }
    return future;
  }
  // Admitted: sample the lane's queue-depth counter track. size(lane) takes
  // the queue lock, so only pay it while tracing is on.
  obs::TraceRecorder& rec = obs::trace();
  if (rec.enabled()) {
    rec.record_counter(
        trace_queue_counter_[lane], util::Stopwatch::now_us(),
        static_cast<std::int64_t>(
            queue_.size(static_cast<Priority>(lane))));
  }
  return future;
}

void InferenceEngine::stop() {
  stopped_.store(true, std::memory_order_release);
  queue_.close();
  workers_.join();
}

void InferenceEngine::worker_main(std::size_t worker_index) {
  hw::ExecScratch scratch;
  std::vector<Request> batch, expired;
  bool thread_labeled = false;
  while (batcher_.next_batch(batch, expired)) {
    obs::TraceRecorder& rec = obs::trace();
    if (!thread_labeled && rec.enabled()) {
      // Lazy: label this worker's trace track the first time tracing is on.
      rec.set_thread_label(rec.intern(
          std::string(trace_model_) + "/" + config_.device.name + "/w" +
          std::to_string(worker_index)));
      thread_labeled = true;
    }
    for (const Request& request : expired) {
      stats_.record_timeout();
      rec.record_instant("expired_in_queue", "admission",
                         util::Stopwatch::now_us(), request.id, nullptr, 0,
                         trace_model_);
      outstanding_[static_cast<std::size_t>(request.priority)].fetch_sub(
          1, std::memory_order_relaxed);
    }
    if (!batch.empty()) execute_batch(batch, scratch);
  }
}

void InferenceEngine::execute_batch(std::vector<Request>& batch,
                                    hw::ExecScratch& scratch) {
  const std::int64_t formed_us = util::Stopwatch::now_us();
  const std::size_t batch_size = batch.size();

  // Stack samples along the outer axis (the executor's native layout).
  Tensor stacked{
      Shape{batch_size, config_.in_c, config_.in_h, config_.in_w}};
  const std::size_t sample_size =
      config_.in_c * config_.in_h * config_.in_w;
  for (std::size_t i = 0; i < batch_size; ++i) {
    std::memcpy(stacked.data().data() + i * sample_size,
                batch[i].input.data().data(), sample_size * sizeof(float));
  }

  // The backend owns execution and costing: logits plus the device-scaled
  // modeled latency / DMA of this batch. The hint tells a multiplexing
  // backend whether any rider is interactive (probes preempt / skip
  // coalescing on a preemptible shared PU); it never changes the logits.
  ExecHints hints;
  for (const Request& request : batch) {
    if (request.priority == Priority::kInteractive) {
      hints.interactive = true;
      break;
    }
  }
  BatchResult result = backend_->execute(stacked, scratch, hints);
  const Tensor& logits = result.logits;
  const double sim_us = result.sim_accel_us;
  const double sim_dma = result.sim_dma_bytes;
  const std::int64_t executed_us = util::Stopwatch::now_us();
  if (config_.paced_execution && !backend_->paces_execution()) {
    // Hold the batch until this device would have finished it, so
    // wall-clock behaviour (throughput, tails, replica scaling) tracks the
    // device-scaled cycle model instead of the host CPU.
    const std::int64_t target_us =
        formed_us + static_cast<std::int64_t>(sim_us);
    const std::int64_t now = util::Stopwatch::now_us();
    if (target_us > now) {
      std::this_thread::sleep_for(std::chrono::microseconds(target_us - now));
    }
  }
  const std::int64_t done_us = util::Stopwatch::now_us();

  obs::TraceRecorder& rec = obs::trace();
  if (rec.enabled()) {
    // Each rider's queue wait as its own span (categorized by lane), then
    // the batch's device pass and any pacing hold on this worker's track.
    for (const Request& request : batch) {
      rec.record_span("queue_wait",
                      trace_lane_[static_cast<std::size_t>(request.priority)],
                      request.enqueue_us, formed_us - request.enqueue_us,
                      request.id, nullptr, 0, trace_model_);
    }
    rec.record_span("device_pass", "serve", formed_us,
                    executed_us - formed_us, batch.front().id, "samples",
                    static_cast<std::int64_t>(batch_size), trace_model_);
    if (done_us > executed_us) {
      rec.record_span("pace", "serve", executed_us, done_us - executed_us, 0,
                      nullptr, 0, trace_model_);
    }
  }
  const std::size_t classes = logits.shape().dim(1);

  // Record the batch before fulfilling any promise: a client that has seen
  // every future resolve must also see the batch in a stats snapshot.
  stats_.record_batch(batch_size, sim_us, sim_dma);
  for (std::size_t i = 0; i < batch_size; ++i) {
    Response response;
    response.status = StatusCode::kOk;
    response.logits = tensor::slice_outer(logits, i, i + 1);
    response.predicted_class = static_cast<int>(
        logits.argmax(i * classes, (i + 1) * classes) - i * classes);
    response.model = config_.model_name;
    response.model_version = config_.model_version;
    response.replica = config_.replica_index;
    response.device = config_.device.name;
    response.priority = batch[i].priority;
    response.queue_wait_us = formed_us - batch[i].enqueue_us;
    response.service_us = done_us - formed_us;
    response.e2e_us = done_us - batch[i].enqueue_us;
    response.batch_size = batch_size;
    response.sim_accel_us = sim_us;
    response.sim_dma_bytes = sim_dma / static_cast<double>(batch_size);
    stats_.record_response(response.e2e_us, response.queue_wait_us,
                           batch[i].priority);
    batch[i].promise.set_value(std::move(response));
    outstanding_[static_cast<std::size_t>(batch[i].priority)].fetch_sub(
        1, std::memory_order_relaxed);
  }
}

}  // namespace mfdfp::serve
