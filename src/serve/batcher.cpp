#include "serve/batcher.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/stopwatch.hpp"

namespace mfdfp::serve {

DynamicBatcher::DynamicBatcher(RequestQueue& queue, BatcherConfig config)
    : queue_(queue), config_(config) {
  if (config_.max_batch == 0) {
    throw std::invalid_argument("DynamicBatcher: max_batch must be >= 1");
  }
  config_.max_wait_us = std::max<std::int64_t>(0, config_.max_wait_us);
}

bool DynamicBatcher::next_batch(std::vector<Request>& batch,
                                std::vector<Request>& expired) {
  batch.clear();
  expired.clear();

  Request first;
  if (!queue_.pop(first)) return false;

  // Close the batch max_wait_us after the oldest member arrived. If the
  // request already aged past that in the queue (heavy backlog), the
  // deadline is in the past and coalescing is a single non-blocking sweep.
  const std::int64_t close_at = first.enqueue_us + config_.max_wait_us;
  batch.push_back(std::move(first));
  if (config_.max_batch > 1) {
    queue_.wait_for_items(config_.max_batch - 1, close_at);
    queue_.try_pop_n(batch, config_.max_batch - 1);
  }

  // Fail requests that expired while queued; keep the live ones in order.
  const std::int64_t now = util::Stopwatch::now_us();
  auto alive_end = std::stable_partition(
      batch.begin(), batch.end(), [now](const Request& r) {
        return r.deadline_us == 0 || now <= r.deadline_us;
      });
  for (auto it = alive_end; it != batch.end(); ++it) {
    fail_request(*it, StatusCode::kDeadlineExceeded,
                 "expired while queued");
    expired.push_back(std::move(*it));
  }
  batch.erase(alive_end, batch.end());
  return true;
}

}  // namespace mfdfp::serve
