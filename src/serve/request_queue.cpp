#include "serve/request_queue.hpp"

#include <chrono>

#include "util/stopwatch.hpp"

namespace mfdfp::serve {

bool RequestQueue::push(Request&& request) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(request));
  }
  // notify_all, not notify_one: pop() and wait_for_items() waiters share the
  // condition variable, and waking only a coalescing waiter would leave an
  // idle pop() waiter asleep until that waiter's deadline.
  ready_.notify_all();
  return true;
}

bool RequestQueue::pop(Request& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
  if (items_.empty()) return false;  // closed and drained
  out = std::move(items_.front());
  items_.pop_front();
  return true;
}

std::size_t RequestQueue::try_pop_n(std::vector<Request>& out, std::size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t popped = 0;
  while (popped < n && !items_.empty()) {
    out.push_back(std::move(items_.front()));
    items_.pop_front();
    ++popped;
  }
  return popped;
}

void RequestQueue::wait_for_items(std::size_t n, std::int64_t deadline_us) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (closed_ || items_.size() >= n) return;
    const std::int64_t now = util::Stopwatch::now_us();
    if (now >= deadline_us) return;
    ready_.wait_for(lock, std::chrono::microseconds(deadline_us - now));
  }
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return items_.size();
}

}  // namespace mfdfp::serve
