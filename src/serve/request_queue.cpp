#include "serve/request_queue.hpp"

#include <chrono>

#include "util/stopwatch.hpp"

namespace mfdfp::serve {

bool RequestQueue::push(Request&& request) {
  {
    util::MutexLock lock(mutex_);
    const std::size_t limit = request.priority == Priority::kBatch
                                  ? capacity_ - interactive_reserve()
                                  : capacity_;
    if (closed_ || total_locked() >= limit) return false;
    lanes_[lane_of(request.priority)].push_back(std::move(request));
  }
  // notify_all, not notify_one: pop() and wait_for_items() waiters share the
  // condition variable, and waking only a coalescing waiter would leave an
  // idle pop() waiter asleep until that waiter's deadline.
  ready_.notify_all();
  return true;
}

bool RequestQueue::pop(Request& out) {
  util::MutexLock lock(mutex_);
  ready_.wait(mutex_, [this]() REQUIRES(mutex_) {
    return closed_ || total_locked() > 0;
  });
  for (auto& lane : lanes_) {
    if (lane.empty()) continue;
    out = std::move(lane.front());
    lane.pop_front();
    return true;
  }
  return false;  // closed and drained
}

std::size_t RequestQueue::try_pop_n(std::vector<Request>& out, std::size_t n) {
  util::MutexLock lock(mutex_);
  std::size_t popped = 0;
  for (auto& lane : lanes_) {
    while (popped < n && !lane.empty()) {
      out.push_back(std::move(lane.front()));
      lane.pop_front();
      ++popped;
    }
  }
  return popped;
}

void RequestQueue::wait_for_items(std::size_t n, std::int64_t deadline_us) {
  util::MutexLock lock(mutex_);
  for (;;) {
    if (closed_ || total_locked() >= n) return;
    const std::int64_t now = util::Stopwatch::now_us();
    if (now >= deadline_us) return;
    ready_.wait_for(mutex_, std::chrono::microseconds(deadline_us - now));
  }
}

void RequestQueue::close() {
  {
    util::MutexLock lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

bool RequestQueue::closed() const {
  util::MutexLock lock(mutex_);
  return closed_;
}

std::size_t RequestQueue::size() const {
  util::MutexLock lock(mutex_);
  return total_locked();
}

std::size_t RequestQueue::size(Priority priority) const {
  util::MutexLock lock(mutex_);
  return lanes_[lane_of(priority)].size();
}

}  // namespace mfdfp::serve
