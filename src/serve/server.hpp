// ModelServer: the serving front door.
//
// Composes the ModelRegistry (named, versioned deployments, each an isolated
// InferenceEngine with its own queue and worker pool) with the Router
// (name-based dispatch). One process hosts many models concurrently:
//
//   ModelServer server;
//   server.deploy("cnn", {qnet}, config);            // single network
//   server.deploy("ens", member_qnets, config);      // averaged ensemble
//   auto future = server.submit("ens", sample,
//       {.priority = Priority::kInteractive, .deadline_us = deadline});
//   Response r = future.get();                       // r.status, r.logits
//
// Every submission resolves with a typed StatusCode (status.hpp): routing
// misses are kModelNotFound, overload sheds kBatch traffic as kShedded,
// missed deadlines are kDeadlineExceeded, and shutdown() flips the server
// into kShuttingDown while draining every deployed engine — no promise is
// ever abandoned. deploy() on an existing name is a hot redeploy: the new
// version serves new traffic while in-flight requests drain against the old
// one.
#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/registry.hpp"
#include "serve/router.hpp"

namespace mfdfp::serve {

class ModelServer {
 public:
  ModelServer() : router_(registry_) {}
  ~ModelServer() { shutdown(); }

  ModelServer(const ModelServer&) = delete;
  ModelServer& operator=(const ModelServer&) = delete;

  /// Deploys (or hot-redeploys) a model. Throws std::invalid_argument on an
  /// empty name/member list and std::logic_error after shutdown().
  ModelHandle deploy(const std::string& name,
                     std::vector<hw::QNetDesc> members,
                     DeployConfig config = {});

  /// Undeploys `name`, draining its in-flight requests. False if unknown.
  bool undeploy(const std::string& name);

  /// Routes one sample to the named model (see Router / InferenceEngine).
  [[nodiscard]] std::future<Response> submit(const std::string& model,
                                             tensor::Tensor sample,
                                             SubmitOptions options = {});

  /// Drains and undeploys every model; subsequent submits resolve
  /// kShuttingDown and deploys throw. Idempotent.
  void shutdown();

  [[nodiscard]] std::vector<ModelHandle> models() const {
    return registry_.models();
  }
  [[nodiscard]] std::size_t model_count() const { return registry_.size(); }

  /// Per-model stats snapshot (empty snapshot for unknown names).
  [[nodiscard]] StatsSnapshot stats(const std::string& model) const;
  /// Per-model stats tables, ready to print ("" for unknown names).
  [[nodiscard]] std::string stats_table(const std::string& model) const;

  /// Direct engine access for tests/benches (stats().clear(), queue depth,
  /// simulated costs); nullptr for unknown names.
  [[nodiscard]] std::shared_ptr<InferenceEngine> engine(
      const std::string& model) const {
    return registry_.find(model);
  }

  [[nodiscard]] ModelRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] Router& router() noexcept { return router_; }

 private:
  ModelRegistry registry_;
  Router router_;
  /// Serializes deploy() against shutdown(): a deploy must not publish a
  /// live engine after shutdown() cleared the registry. submit() stays
  /// lock-free on this mutex (the atomic flag is enough there — a submit
  /// racing shutdown lands on a draining engine, which still resolves).
  std::mutex lifecycle_mutex_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace mfdfp::serve
