// ModelServer: the serving front door.
//
// Composes the ModelRegistry (named, versioned deployments, each a
// ReplicaSet of isolated InferenceEngines with their own queues and worker
// pools) with the Router (name-based dispatch onto the least-loaded
// replica). One process hosts many models concurrently, each optionally
// sharded across replicas:
//
//   ModelServer server;
//   server.deploy("cnn", {qnet}, config);            // single network
//   server.deploy("ens", member_qnets, config);      // averaged ensemble
//   config.num_replicas = 4;                         // shard across 4 engines
//   server.deploy("hot", {qnet}, config);
//   config.placement = {{.name = "npu0"},            // heterogeneous devices
//                       {.name = "npu1", .speed_factor = 2.0}};
//   server.deploy("het", {qnet}, config);            // 1x + 2x behind one name
//   auto future = server.submit("hot", sample,
//       {.priority = Priority::kInteractive, .deadline_us = deadline});
//   Response r = future.get();                       // r.status, r.logits
//
// Every submission resolves with a typed StatusCode (status.hpp): routing
// misses are kModelNotFound, overload sheds kBatch traffic as kShedded
// (per-replica admission control and the set-wide batch_quota), missed
// deadlines are kDeadlineExceeded, and shutdown() flips the server into
// kShuttingDown while draining every replica of every deployed model — no
// promise is ever abandoned. deploy() on an existing name is a hot
// redeploy: the new version serves new traffic while in-flight requests
// drain against every replica of the old one.
//
// Lifecycle is fully serialized: deploy(), undeploy(), and shutdown() all
// hold lifecycle_mutex_, so none of them can interleave (an undeploy cannot
// race a redeploy of the same name half-way, a deploy cannot publish after
// shutdown cleared the registry). submit() stays lock-free on that mutex:
// the registry shared_ptr pins the target set for the whole submit path,
// and the shutdown flag — set before the registry clears, checked by the
// router on a lookup miss — makes a submit racing shutdown resolve
// kShuttingDown deterministically instead of a spurious kModelNotFound.
#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "serve/registry.hpp"
#include "serve/router.hpp"
#include "util/mutex.hpp"

namespace mfdfp::serve {

class ModelServer {
 public:
  ModelServer() : router_(registry_, &shutdown_) {}
  ~ModelServer() { shutdown(); }

  ModelServer(const ModelServer&) = delete;
  ModelServer& operator=(const ModelServer&) = delete;

  /// Deploys (or hot-redeploys) a model as config.num_replicas engine
  /// replicas. Throws std::invalid_argument on an empty name/member list
  /// and std::logic_error after shutdown().
  ///
  /// When any deployed model (the candidate included) declares a
  /// TrafficEnvelope, the deploy-time capacity analyzer
  /// (analysis/capacity.hpp) first proves the combined placement can meet
  /// every declared deadline — candidate and co-resident models are
  /// analyzed together, so a new tenant that would break a neighbour's
  /// proven SLO on a shared PU is refused too. Infeasible placements throw
  /// DeployError{kInfeasibleSlo} before serving a single request, unless
  /// the candidate's envelope sets warn_only (the violated proofs are
  /// logged and stay visible through capacity_report()).
  ModelHandle deploy(const std::string& name,
                     std::vector<hw::QNetDesc> members,
                     DeployConfig config = {}) EXCLUDES(lifecycle_mutex_);

  /// Undeploys `name`, draining every replica's in-flight requests. False
  /// if unknown (including after shutdown, which already undeployed all).
  bool undeploy(const std::string& name) EXCLUDES(lifecycle_mutex_);

  /// Routes one sample to the named model's least-loaded replica (see
  /// Router / ReplicaSet / InferenceEngine).
  [[nodiscard]] std::future<Response> submit(const std::string& model,
                                             tensor::Tensor sample,
                                             SubmitOptions options = {});

  /// Drains and undeploys every model; subsequent submits resolve
  /// kShuttingDown and deploys throw. Idempotent.
  void shutdown() EXCLUDES(lifecycle_mutex_);

  [[nodiscard]] std::vector<ModelHandle> models() const {
    return registry_.models();
  }
  [[nodiscard]] std::size_t model_count() const { return registry_.size(); }

  /// Per-model stats snapshot, aggregated across the model's replicas
  /// (empty snapshot for unknown names).
  [[nodiscard]] StatsSnapshot stats(const std::string& model) const;

  /// The capacity analyzer's findings over everything deployed right now
  /// — the same proofs deploy() gates on, re-derived from the live
  /// registry (examples/serving_demo prints this table beside the
  /// measured stats). Empty findings when no model declares an envelope.
  [[nodiscard]] analysis::CapacityReport capacity_report() const;

  /// The whole server's metrics in Prometheus text exposition format: one
  /// scrape-ready dump covering every deployed model — request outcome
  /// counters, throughput/utilization/latency-summary series, live
  /// per-lane queue-depth and outstanding gauges, per-device rows, and
  /// (deduplicated across models) shared-PU pass/co-batch/switch series.
  /// Metric names are documented in docs/observability.md. Safe to call
  /// concurrently with serving; each call takes fresh snapshots.
  [[nodiscard]] std::string export_metrics() const;
  /// Per-model stats tables — aggregated, plus a per-replica breakdown for
  /// multi-replica deployments — ready to print ("" for unknown names).
  [[nodiscard]] std::string stats_table(const std::string& model) const;

  /// The model's replica set, for tests/benches (per-replica engines,
  /// quota counters, aggregated snapshots); nullptr for unknown names.
  [[nodiscard]] std::shared_ptr<ReplicaSet> replica_set(
      const std::string& model) const {
    return registry_.find(model);
  }

  /// The server-wide compiled-plan cache every deployment without its own
  /// cache shares (hit/miss/eviction stats; see compile/plan_cache.hpp).
  [[nodiscard]] const std::shared_ptr<compile::PlanCache>& plan_cache()
      const noexcept {
    return registry_.plan_cache();
  }

  /// Direct engine access for tests/benches: the model's *first* replica
  /// (its only one for single-replica deployments); nullptr for unknown
  /// names. Multi-replica callers should go through replica_set().
  [[nodiscard]] std::shared_ptr<InferenceEngine> engine(
      const std::string& model) const {
    const std::shared_ptr<ReplicaSet> set = registry_.find(model);
    return set ? set->replica(0) : nullptr;
  }

  [[nodiscard]] ModelRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] Router& router() noexcept { return router_; }

 private:
  ModelRegistry registry_;
  Router router_;
  /// Serializes deploy() / undeploy() / shutdown() against each other (see
  /// file comment). submit() never takes it. Guards no fields directly —
  /// the registry has its own lock; this one orders whole operations.
  util::Mutex lifecycle_mutex_;
  /// Set (before the registry clears) by shutdown(); read by submit()'s
  /// fast path and by the router on lookup misses.
  std::atomic<bool> shutdown_{false};
};

}  // namespace mfdfp::serve
