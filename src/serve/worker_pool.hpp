// Fixed-size pool of drain threads.
//
// Deliberately minimal: the pool owns thread lifetime only. Each thread runs
// the supplied loop function once (the function itself loops until its batch
// source reports closed-and-drained), so shutdown is: close the source, then
// join() — no stop flags to poll, no way to deadlock on a half-closed queue.
//
// join() is safe to call from multiple threads at once: InferenceEngine::stop
// is reachable concurrently from the destructor, ReplicaSet::stop, and test
// harnesses, so the thread vector is guarded and a late joiner blocks until
// the thread that claimed the vector has finished joining — nobody returns
// from join() while a pool thread is still running.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.hpp"

namespace mfdfp::serve {

class WorkerPool {
 public:
  WorkerPool() = default;
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;
  ~WorkerPool() { join(); }

  /// Spawns `count` threads, each running `body(worker_index)` to
  /// completion. Must not be called while threads are still running or
  /// being joined.
  void start(std::size_t count, std::function<void(std::size_t)> body)
      EXCLUDES(mutex_);

  /// Joins all threads; idempotent and safe to race with itself — every
  /// caller returns only after all pool threads have exited.
  void join() EXCLUDES(mutex_);

  [[nodiscard]] std::size_t size() const EXCLUDES(mutex_);

 private:
  mutable util::Mutex mutex_;
  util::CondVar joined_;
  std::vector<std::thread> threads_ GUARDED_BY(mutex_);
  /// Number of join() calls currently joining a claimed thread vector
  /// outside the lock (0 or 1 in practice).
  std::size_t joiners_ GUARDED_BY(mutex_) = 0;
};

}  // namespace mfdfp::serve
