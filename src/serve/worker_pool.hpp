// Fixed-size pool of drain threads.
//
// Deliberately minimal: the pool owns thread lifetime only. Each thread runs
// the supplied loop function once (the function itself loops until its batch
// source reports closed-and-drained), so shutdown is: close the source, then
// join() — no stop flags to poll, no way to deadlock on a half-closed queue.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace mfdfp::serve {

class WorkerPool {
 public:
  WorkerPool() = default;
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;
  ~WorkerPool() { join(); }

  /// Spawns `count` threads, each running `body(worker_index)` to
  /// completion. Must not be called while threads are still running.
  void start(std::size_t count, std::function<void(std::size_t)> body);

  /// Joins all threads; idempotent.
  void join();

  [[nodiscard]] std::size_t size() const noexcept { return threads_.size(); }

 private:
  std::vector<std::thread> threads_;
};

}  // namespace mfdfp::serve
