// ReplicaSet: one model name sharded across N InferenceEngine replicas,
// each placed on its own (possibly differently-provisioned) accelerator
// device.
//
// The registry maps each deployed name to one ReplicaSet rather than one
// engine. Every replica is a full InferenceEngine — its own queue, worker
// pool, and accelerator device — built from the same members and
// DeployConfig. Placement comes from DeployConfig.placement: one DeviceSpec
// per replica (name, speed_factor scaling the cycle model, per-device
// worker/batch/queue overrides), so one name can front a heterogeneous mix
// like {1x, 1x, 4x}. A placement entry whose DeviceSpec::shared names a
// SharedDevice attaches that replica as a *tenant* of the shared PU
// (serve/shared_device.hpp) instead of provisioning a private accelerator —
// several deployments naming the same handle contend for, and co-batch on,
// one device's cycles. An empty placement keeps the historical homogeneous
// behaviour: num_replicas copies of config.device. A single-replica set
// (the default) behaves exactly like the pre-replica registry.
//
// Routing is load-aware per DeployConfig.routing. The default,
// kNormalizedWork, sends each submission to the replica with the least
// *normalized* outstanding work: accepted-but-unresolved requests x that
// device's per-sample modeled cost — which already divides by the device's
// speed_factor, so a 2x-provisioned replica reports half the delay for the
// same backlog and absorbs 2x the traffic. (Queued *and* executing work
// counts, so a replica whose worker holds a popped batch is not mistaken
// for idle.) kOutstandingCount is the speed-blind ablation baseline: least
// raw request count, which on heterogeneous placements queues as much
// behind a 1x device as behind a 4x one — bench/ablation_hetero shows what
// that costs in interactive p99. Ties — the common case on an idle set —
// fall back to round-robin so traffic spreads instead of piling onto
// replica 0.
//
// QoS quota: DeployConfig.batch_quota caps outstanding kBatch requests
// across the *whole* set. Quota-refused submissions resolve kShedded before
// touching any replica queue, and the shed is recorded on the replica that
// would have received the request so aggregated stats count it. Interactive
// traffic is never quota-limited. Per-replica admission control (deadline
// budget vs estimated delay on that replica's device) still applies
// underneath.
//
// stop() drains every replica — each queue closes and its in-flight work
// resolves — before returning, which is what hot-redeploy/undeploy/shutdown
// rely on: no promise of any replica is ever abandoned.
#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "serve/engine.hpp"

namespace mfdfp::serve {

class ReplicaSet {
 public:
  /// Builds one engine per placement entry (or config.num_replicas engines
  /// on config.device when the placement is empty; >= 1 either way). Each
  /// engine gets a copy of `members`, the config with its replica_index and
  /// DeviceSpec stamped, and its own worker pool, started here. Throws
  /// std::invalid_argument when any placement entry has speed_factor <= 0.
  ReplicaSet(std::vector<hw::QNetDesc> members, DeployConfig config);

  ~ReplicaSet() { stop(); }

  ReplicaSet(const ReplicaSet&) = delete;
  ReplicaSet& operator=(const ReplicaSet&) = delete;

  /// Routes one sample per the configured RoutingPolicy (see file comment).
  /// Enforces the set-wide kBatch quota before dispatch.
  [[nodiscard]] std::future<Response> submit(tensor::Tensor sample,
                                             SubmitOptions options = {});

  /// Stops and drains every replica. Idempotent.
  void stop();

  [[nodiscard]] std::size_t replica_count() const noexcept {
    return replicas_.size();
  }
  [[nodiscard]] const std::shared_ptr<InferenceEngine>& replica(
      std::size_t index) const {
    return replicas_[index];
  }
  [[nodiscard]] const DeployConfig& config() const noexcept {
    return config_;
  }

  /// The device replica `index` executes on (resolved: auto-names filled).
  [[nodiscard]] const DeviceSpec& device(std::size_t index) const {
    return replicas_[index]->device();
  }

  /// Sum of the replicas' speed factors — the set's aggregate provisioning
  /// in units of one baseline device ({1x, 2x} -> 3.0). Paced aggregate
  /// throughput should approach total_speed() x one 1x replica's rate,
  /// which is what bench/ablation_hetero enforces.
  [[nodiscard]] double total_speed() const noexcept;

  /// Outstanding kBatch requests across the whole set (the quantity the
  /// batch_quota caps).
  [[nodiscard]] std::size_t outstanding_batch() const noexcept;

  /// Queued requests summed over replicas.
  [[nodiscard]] std::size_t queue_depth() const;

  /// Queued requests of one priority lane, summed over replicas (live
  /// gauge; the source of mfdfp_queue_depth and the stats tables' "now"
  /// rows).
  [[nodiscard]] std::size_t queue_depth(Priority priority) const;

  /// Accepted-but-unresolved requests of one priority lane — queued plus
  /// executing — summed over replicas (live gauge).
  [[nodiscard]] std::size_t outstanding(Priority priority) const noexcept;

  /// Delay a new submission would see: the *minimum* estimated queue delay
  /// over replicas (each priced on its own device), since routing sends it
  /// to the least-loaded one.
  [[nodiscard]] double estimated_queue_delay_us() const;

  /// The static facts the deploy-time capacity analyzer consumes
  /// (analysis/capacity.hpp): this set's envelope/QoS knobs plus one
  /// ReplicaFacts per replica, priced from the *live* engines — sample_us
  /// is each backend's own speed-scaled cost (identical to what
  /// estimated_queue_delay_us() admission prices with), shared-PU facts
  /// come from the attached SharedDevice's config, and the weight-reload
  /// term is the tenant's actual attach-time switch cost. Safe while
  /// serving.
  [[nodiscard]] analysis::ModelFacts capacity_facts() const;

  /// kBatch submissions refused by the set-wide quota (also counted as
  /// shedded in the receiving replica's ServerStats).
  [[nodiscard]] std::uint64_t quota_shed_count() const noexcept {
    return quota_shed_.load(std::memory_order_relaxed);
  }

  /// Exact cross-replica aggregation of every replica's ServerStats
  /// (histograms merge bucket-by-bucket; see ServerStats::aggregate), with
  /// one DeviceUtilizationRow per replica attached (StatsSnapshot.devices).
  [[nodiscard]] StatsSnapshot aggregated_snapshot() const;

  /// One snapshot per replica, in replica-index order.
  [[nodiscard]] std::vector<StatsSnapshot> replica_snapshots() const;

  /// The aggregated ServerStats tables — including the per-device
  /// utilization table — plus a per-replica breakdown table (one row per
  /// replica, with its device and speed), ready to print.
  [[nodiscard]] std::string stats_table(const std::string& title) const;

 private:
  /// Index of the replica routing picks (policy-dependent load metric);
  /// ties round-robin.
  [[nodiscard]] std::size_t pick_replica();

  DeployConfig config_;
  std::vector<std::shared_ptr<InferenceEngine>> replicas_;
  std::atomic<std::uint64_t> round_robin_{0};
  std::atomic<std::uint64_t> quota_shed_{0};
};

}  // namespace mfdfp::serve
