// ReplicaSet: one model name sharded across N InferenceEngine replicas.
//
// The registry maps each deployed name to one ReplicaSet rather than one
// engine. Every replica is a full InferenceEngine — its own queue, worker
// pool, and simulated accelerator instance — built from the same members
// and DeployConfig, so the set models N copies of the paper's accelerator
// serving one model. A single-replica set (num_replicas = 1, the default)
// behaves exactly like the pre-replica registry.
//
// Routing is load-aware: each submission goes to the replica with the least
// outstanding work (accepted-but-unresolved requests x per-sample simulated
// accelerator cost — queued *and* executing, so a replica whose worker holds
// a popped batch is not mistaken for idle). Ties — the common case on an
// idle set, where every load is zero — fall back to round-robin so traffic
// spreads instead of piling onto replica 0.
//
// QoS quota: DeployConfig.batch_quota caps outstanding kBatch requests
// across the *whole* set. Quota-refused submissions resolve kShedded before
// touching any replica queue, and the shed is recorded on the replica that
// would have received the request so aggregated stats count it. Interactive
// traffic is never quota-limited. Per-replica admission control (deadline
// budget vs estimated delay) still applies underneath.
//
// stop() drains every replica — each queue closes and its in-flight work
// resolves — before returning, which is what hot-redeploy/undeploy/shutdown
// rely on: no promise of any replica is ever abandoned.
#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "serve/engine.hpp"

namespace mfdfp::serve {

class ReplicaSet {
 public:
  /// Builds config.num_replicas engines (>= 1; each gets a copy of
  /// `members` and the config with its replica_index stamped) and starts
  /// all their worker pools.
  ReplicaSet(std::vector<hw::QNetDesc> members, DeployConfig config);

  ~ReplicaSet() { stop(); }

  ReplicaSet(const ReplicaSet&) = delete;
  ReplicaSet& operator=(const ReplicaSet&) = delete;

  /// Routes one sample to the least-loaded replica (see file comment).
  /// Enforces the set-wide kBatch quota before dispatch.
  [[nodiscard]] std::future<Response> submit(tensor::Tensor sample,
                                             SubmitOptions options = {});

  /// Stops and drains every replica. Idempotent.
  void stop();

  [[nodiscard]] std::size_t replica_count() const noexcept {
    return replicas_.size();
  }
  [[nodiscard]] const std::shared_ptr<InferenceEngine>& replica(
      std::size_t index) const {
    return replicas_[index];
  }
  [[nodiscard]] const DeployConfig& config() const noexcept {
    return config_;
  }

  /// Outstanding kBatch requests across the whole set (the quantity the
  /// batch_quota caps).
  [[nodiscard]] std::size_t outstanding_batch() const noexcept;

  /// Queued requests summed over replicas.
  [[nodiscard]] std::size_t queue_depth() const;

  /// Delay a new submission would see: the *minimum* estimated queue delay
  /// over replicas, since routing sends it to the least-loaded one.
  [[nodiscard]] double estimated_queue_delay_us() const;

  /// kBatch submissions refused by the set-wide quota (also counted as
  /// shedded in the receiving replica's ServerStats).
  [[nodiscard]] std::uint64_t quota_shed_count() const noexcept {
    return quota_shed_.load(std::memory_order_relaxed);
  }

  /// Exact cross-replica aggregation of every replica's ServerStats
  /// (histograms merge bucket-by-bucket; see ServerStats::aggregate).
  [[nodiscard]] StatsSnapshot aggregated_snapshot() const;

  /// One snapshot per replica, in replica-index order.
  [[nodiscard]] std::vector<StatsSnapshot> replica_snapshots() const;

  /// The aggregated ServerStats tables plus a per-replica breakdown table
  /// (one row per replica), ready to print.
  [[nodiscard]] std::string stats_table(const std::string& title) const;

 private:
  /// Index of the replica with the least outstanding work; ties round-robin.
  [[nodiscard]] std::size_t pick_replica();

  DeployConfig config_;
  std::vector<std::shared_ptr<InferenceEngine>> replicas_;
  std::atomic<std::uint64_t> round_robin_{0};
  std::atomic<std::uint64_t> quota_shed_{0};
};

}  // namespace mfdfp::serve
