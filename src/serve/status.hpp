// Typed status taxonomy of the serving layer.
//
// Every request submitted to the serving front door resolves with exactly one
// StatusCode; the old `bool ok + std::string error` contract is gone. The
// taxonomy distinguishes *why* a request failed, because the caller's correct
// reaction differs per code:
//
//   code                | meaning                                | caller reaction
//   --------------------+----------------------------------------+---------------------------
//   kOk                 | served; logits valid                   | consume result
//   kQueueFull          | bounded queue at capacity at submit    | back off / retry later
//   kDeadlineExceeded   | deadline passed (at submit or queued)  | drop; raise deadline
//   kInvalidInput       | sample shape != deployed geometry      | fix the request (no retry)
//   kModelNotFound      | no model deployed under that name      | fix routing (no retry)
//   kShuttingDown       | engine/server stopped or stopping      | fail over to another node
//   kShedded            | admission control refused kBatch work  | retry after backlog drains
//                       | (estimated queue delay > deadline      |
//                       |  budget)                               |
//
// Accounting: kDeadlineExceeded counts as `timed_out`, kShedded as `shedded`,
// and kQueueFull / kInvalidInput / kShuttingDown as `rejected` in
// ServerStats — so a load test can separate overload behaviour (sheds,
// timeouts) from client errors (rejections).
//
// `Response` carries `StatusCode status` plus a human-readable `detail`
// string for diagnostics only — dispatching on `detail` text is a bug;
// dispatch on the code.
#pragma once

#include <stdexcept>
#include <string>

namespace mfdfp::serve {

enum class StatusCode {
  kOk = 0,
  kQueueFull,
  kDeadlineExceeded,
  kInvalidInput,
  kModelNotFound,
  kShuttingDown,
  kShedded,
  /// deploy() refused a nonsensical DeployConfig (zero workers, negative
  /// deadline, zero-capacity queue, ...) before building anything.
  kInvalidConfig,
  /// deploy() refused a model whose compiled plan failed the numeric
  /// static analyzer (src/analysis): possible accumulator overflow or an
  /// inconsistent DFP radix chain for the deployed geometry.
  kUnsafePlan,
  /// deploy() refused a placement whose declared TrafficEnvelope fails a
  /// schedulability proof obligation (src/analysis/capacity.hpp): the
  /// placement cannot meet its deadlines, so it never serves a request.
  kInfeasibleSlo,
};

/// True when `code` means the request was served and the logits are valid.
[[nodiscard]] constexpr bool ok(StatusCode code) noexcept {
  return code == StatusCode::kOk;
}

/// Stable lower_snake_case name, for logs, tables, and JSON.
[[nodiscard]] constexpr const char* status_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk:               return "ok";
    case StatusCode::kQueueFull:        return "queue_full";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kInvalidInput:     return "invalid_input";
    case StatusCode::kModelNotFound:    return "model_not_found";
    case StatusCode::kShuttingDown:     return "shutting_down";
    case StatusCode::kShedded:          return "shedded";
    case StatusCode::kInvalidConfig:    return "invalid_config";
    case StatusCode::kUnsafePlan:       return "unsafe_plan";
    case StatusCode::kInfeasibleSlo:    return "infeasible_slo";
  }
  return "unknown";
}

/// Compatibility helper for code migrating off the pre-ModelServer
/// `bool ok + std::string error` contract: the message the old API would
/// have carried for each failure code. New code should not call this.
[[nodiscard]] constexpr const char* legacy_error_message(
    StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk:               return "";
    case StatusCode::kQueueFull:        return "queue full";
    case StatusCode::kDeadlineExceeded: return "deadline exceeded";
    case StatusCode::kInvalidInput:     return "bad input shape";
    case StatusCode::kModelNotFound:    return "model not found";
    case StatusCode::kShuttingDown:     return "engine stopped";
    case StatusCode::kShedded:          return "shedded by admission control";
    case StatusCode::kInvalidConfig:    return "invalid deploy config";
    case StatusCode::kUnsafePlan:       return "plan rejected by analyzer";
    case StatusCode::kInfeasibleSlo:    return "placement fails its SLO";
  }
  return "unknown error";
}

/// Typed deploy-time rejection: carries the StatusCode explaining *why*
/// deploy() refused (kInvalidConfig for nonsensical DeployConfigs,
/// kUnsafePlan when the numeric analyzer rejected the compiled plan,
/// kInfeasibleSlo when the capacity analyzer proved the placement cannot
/// meet its declared TrafficEnvelope).
/// Derives from std::invalid_argument so callers of the pre-typed API
/// keep catching what they always caught; new code dispatches on code().
class DeployError : public std::invalid_argument {
 public:
  DeployError(StatusCode code, const std::string& what)
      : std::invalid_argument(what), code_(code) {}

  [[nodiscard]] StatusCode code() const noexcept { return code_; }

 private:
  StatusCode code_;
};

}  // namespace mfdfp::serve
