// Aggregate serving metrics: latency percentiles (overall and per priority
// class), throughput, queue depth, batch-size mix, request outcomes by
// StatusCode family, and the simulated accelerator cost of the served
// traffic.
//
// One shared set of util::LatencyHistogram instances behind a single mutex:
// workers record once per batch (and per response within it), so the lock
// is nowhere near the per-synapse hot path and sharding per worker isn't
// worth the merge complexity at these rates. snapshot() freezes a
// consistent view; aggregate() merges the collectors of a ReplicaSet's
// engines into one exact cross-replica snapshot (histogram buckets add, so
// aggregated percentiles are as accurate as per-replica ones); to_table()
// renders the core::report-style tables the benches and the serving demo
// print.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.hpp"
#include "util/latency_histogram.hpp"
#include "util/mutex.hpp"
#include "util/stopwatch.hpp"

namespace mfdfp::serve {

/// Per-device utilization of one replica set: one row per *physical*
/// accelerator device. ServerStats itself is device-agnostic (it counts one
/// engine's traffic); ReplicaSet::aggregated_snapshot attaches these rows
/// because only the set knows which DeviceSpec each replica executes on.
/// When several of the set's engines share one physical PU
/// (DeviceSpec::shared), their rows are merged into a single row for that
/// device — N tenants must never render as N devices, or the device table
/// reads a PU as up to N x 100% utilized.
struct DeviceUtilizationRow {
  std::string device;            ///< DeviceSpec name ("dev0", "npu-fast", ...)
  std::string model;             ///< model name served on this device row
  double speed_factor = 1.0;     ///< provisioning relative to the baseline
  /// Replica index within the set; for a merged shared-device row, the
  /// lowest index of the replicas placed on it.
  std::uint32_t replica = 0;
  /// Engines merged into this row (1 for a dedicated device; >= 1 replicas
  /// of *this* set for a shared one).
  std::uint32_t merged_replicas = 1;
  /// True when the device is a shared PU (other models' tenants — not part
  /// of this snapshot — may be contending for the same cycles; see
  /// SharedDevice::snapshot for the cross-model view).
  bool shared = false;
  std::uint64_t completed = 0;   ///< requests this device served for the set
  double sim_accel_busy_us = 0.0;       ///< device-scaled modeled busy time
  double sim_accel_utilization = 0.0;   ///< busy / wall, [0, 1]
  double throughput_rps = 0.0;          ///< completed / wall window
};

struct StatsSnapshot {
  // Request outcomes (see status.hpp for the code -> counter mapping).
  std::uint64_t completed = 0;
  std::uint64_t timed_out = 0;  ///< kDeadlineExceeded (at submit or queued)
  std::uint64_t rejected = 0;   ///< kQueueFull / kInvalidInput / kShuttingDown
  std::uint64_t shedded = 0;    ///< kShedded (admission control, kBatch only)

  // Wall-clock latency percentiles, microseconds.
  std::int64_t e2e_p50_us = 0, e2e_p95_us = 0, e2e_p99_us = 0,
               e2e_max_us = 0;
  std::int64_t queue_p50_us = 0, queue_p99_us = 0;
  double e2e_mean_us = 0.0;

  // Per-priority-class completions and e2e tails.
  std::array<std::uint64_t, kPriorityClasses> completed_by_class{};
  std::array<std::int64_t, kPriorityClasses> e2e_p50_us_by_class{};
  std::array<std::int64_t, kPriorityClasses> e2e_p99_us_by_class{};

  // Batching.
  std::uint64_t batches = 0;
  double mean_batch_size = 0.0;
  /// count per batch size, index 0 unused (sizes are 1-based).
  std::vector<std::uint64_t> batch_size_histogram;

  // Queue depth observed at submit time.
  std::int64_t depth_p50 = 0, depth_p99 = 0, depth_max = 0;

  // Throughput over the observation window (construction/clear -> snapshot).
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;

  // Simulated accelerator accounting (cycle/traffic models), whole window.
  double sim_accel_busy_us = 0.0;
  double sim_dma_bytes = 0.0;
  /// Fraction of the wall window the simulated accelerator was busy.
  double sim_accel_utilization = 0.0;

  /// Per-device rows (filled by ReplicaSet::aggregated_snapshot; empty on
  /// plain engine snapshots). render_stats_tables prints them as a
  /// "devices" table when present.
  std::vector<DeviceUtilizationRow> devices;

  // Live per-priority-lane gauges sampled at snapshot time (unlike every
  // field above, these are *now* values, not window aggregates). Filled by
  // ReplicaSet::aggregated_snapshot — `live_gauges` stays false on plain
  // ServerStats snapshots, where nobody sampled the queues — and rendered
  // in the stats tables / exported as mfdfp_queue_depth /
  // mfdfp_outstanding_requests gauges.
  bool live_gauges = false;
  std::array<std::size_t, kPriorityClasses> queue_depth_now{};
  std::array<std::size_t, kPriorityClasses> outstanding_now{};
};

class ServerStats {
 public:
  ServerStats() : window_() {}

  /// One completed request of the given priority class.
  void record_response(std::int64_t e2e_us, std::int64_t queue_wait_us,
                       Priority priority) EXCLUDES(mutex_);
  /// One request that missed its deadline (at submit or while queued).
  void record_timeout() EXCLUDES(mutex_);
  /// One request refused at submit time (bad input, queue full, stopped).
  void record_rejected() EXCLUDES(mutex_);
  /// One kBatch request shed by admission control.
  void record_shedded() EXCLUDES(mutex_);
  /// Queue depth seen by a submitter (recorded before its own push).
  void record_queue_depth(std::size_t depth) EXCLUDES(mutex_);
  /// One executed batch with its simulated hardware cost.
  void record_batch(std::size_t batch_size, double sim_accel_us,
                    double sim_dma_bytes) EXCLUDES(mutex_);

  /// Consistent snapshot with derived rates over the current window. Rates
  /// (throughput, utilization) report 0 when the window is shorter than
  /// ~1 us — a snapshot taken immediately after clear() must not divide by
  /// a denormal wall time and emit inf/NaN.
  [[nodiscard]] StatsSnapshot snapshot() const EXCLUDES(mutex_);

  /// Scalar totals of one collector, captured under its lock during
  /// aggregate() — what a per-device utilization row needs, without a
  /// second lock round or a redundant percentile extraction per part.
  struct PartTotals {
    std::uint64_t completed = 0;
    double sim_accel_busy_us = 0.0;
    double wall_seconds = 0.0;
    double throughput_rps = 0.0;         ///< 0 for degenerate windows
    double sim_accel_utilization = 0.0;  ///< 0 for degenerate windows
  };

  /// Exact aggregation across independent collectors (the replicas of one
  /// ReplicaSet): histograms merge bucket-by-bucket (so aggregated
  /// percentiles carry the same ~1.6% error as per-replica ones, not a
  /// percentile-of-percentiles guess), counters sum, and the observation
  /// window is the longest of the parts (replicas of one set start
  /// together, so their windows coincide). Each part is locked in turn;
  /// the result is a stats-grade view, not an atomic cross-part cut.
  /// Null entries are skipped. When `per_part` is non-null it is filled
  /// with one PartTotals per input entry (index-aligned with `parts`;
  /// zeroed rows for null entries), read in the *same* locked pass as the
  /// merge — so per-part rows always sum to the aggregate's totals.
  [[nodiscard]] static StatsSnapshot aggregate(
      const std::vector<const ServerStats*>& parts,
      std::vector<PartTotals>* per_part = nullptr);

  /// Renders snapshot() as aligned tables (latency / batching / simulated
  /// hardware), ready to print.
  [[nodiscard]] std::string to_table(const std::string& title) const;

  /// Clears all counters and restarts the observation window.
  void clear() EXCLUDES(mutex_);

 private:
  /// Derives a snapshot from the current members over an explicit wall
  /// window. Holds for aggregate()'s exclusively-owned scratch instance
  /// too — it locks the scratch mutex anyway (uncontended) to keep the
  /// lock discipline uniform and analyzable.
  [[nodiscard]] StatsSnapshot snapshot_with_window(double wall_seconds) const
      REQUIRES(mutex_);

  mutable util::Mutex mutex_;
  util::Stopwatch window_ GUARDED_BY(mutex_);
  util::LatencyHistogram e2e_us_ GUARDED_BY(mutex_);
  std::array<util::LatencyHistogram, kPriorityClasses> e2e_us_by_class_
      GUARDED_BY(mutex_);
  util::LatencyHistogram queue_wait_us_ GUARDED_BY(mutex_);
  util::LatencyHistogram queue_depth_ GUARDED_BY(mutex_);
  std::vector<std::uint64_t> batch_sizes_ GUARDED_BY(mutex_);
  std::uint64_t completed_ GUARDED_BY(mutex_) = 0;
  std::array<std::uint64_t, kPriorityClasses> completed_by_class_
      GUARDED_BY(mutex_){};
  std::uint64_t timed_out_ GUARDED_BY(mutex_) = 0;
  std::uint64_t rejected_ GUARDED_BY(mutex_) = 0;
  std::uint64_t shedded_ GUARDED_BY(mutex_) = 0;
  std::uint64_t batches_ GUARDED_BY(mutex_) = 0;
  std::uint64_t batched_requests_ GUARDED_BY(mutex_) = 0;
  double sim_accel_busy_us_ GUARDED_BY(mutex_) = 0.0;
  double sim_dma_bytes_ GUARDED_BY(mutex_) = 0.0;
};

/// Renders one snapshot as the aligned latency / batching / simulated
/// hardware tables ServerStats::to_table prints — shared with ReplicaSet,
/// whose aggregated snapshot has no ServerStats instance behind it.
[[nodiscard]] std::string render_stats_tables(const StatsSnapshot& snapshot,
                                              const std::string& title);

}  // namespace mfdfp::serve
