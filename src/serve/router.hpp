// Router: name-based dispatch of submissions onto registry engines.
//
// The router is deliberately thin: it resolves the model name against the
// ModelRegistry and forwards the sample with its SubmitOptions to that
// model's engine, which applies the scheduling policies (strict priority
// drain, admission control, deadline handling). Unknown names resolve
// immediately with kModelNotFound — and the router counts them, since no
// per-model ServerStats exists to attribute the miss to.
//
// A lookup racing an undeploy is safe: the shared_ptr handed out by the
// registry keeps the (draining) engine alive until its futures resolve.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <string>

#include "serve/registry.hpp"

namespace mfdfp::serve {

class Router {
 public:
  explicit Router(ModelRegistry& registry) : registry_(registry) {}

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Routes one sample to the named model. Resolves kModelNotFound when no
  /// such deployment exists; otherwise behaves as that engine's submit().
  [[nodiscard]] std::future<Response> submit(const std::string& model,
                                             tensor::Tensor sample,
                                             SubmitOptions options = {});

  /// Estimated queue delay of the named model (admission-control estimate),
  /// microseconds; 0 for unknown names.
  [[nodiscard]] double estimated_queue_delay_us(
      const std::string& model) const;

  /// Submissions that named a model with no deployment.
  [[nodiscard]] std::uint64_t not_found_count() const noexcept {
    return not_found_.load(std::memory_order_relaxed);
  }

 private:
  ModelRegistry& registry_;
  std::atomic<std::uint64_t> not_found_{0};
};

}  // namespace mfdfp::serve
