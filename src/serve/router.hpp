// Router: name-based dispatch of submissions onto registry replica sets.
//
// The router resolves the model name against the ModelRegistry and forwards
// the sample with its SubmitOptions to that model's ReplicaSet, which picks
// the least-loaded replica per the deployment's RoutingPolicy (normalized
// outstanding work by default, so differently-provisioned devices absorb
// proportional traffic — and replicas placed on a *shared* PU report every
// tenant's backlog, so a replica co-located with a busy neighbour model is
// never mistaken for idle) and applies the set-wide QoS quota; the chosen
// engine then applies the per-replica scheduling policies (strict priority
// drain, admission control priced on its own device's aggregate load,
// deadline handling). Unknown names resolve immediately with
// kModelNotFound — and the router counts them, since no per-model
// ServerStats exists to attribute the miss to.
//
// A lookup racing an undeploy is safe: the shared_ptr handed out by the
// registry pins the (draining) set for the whole submit path, so its
// engines stay alive until their futures resolve. A lookup racing
// shutdown() is *deterministic*: the server binds its shutdown flag here,
// the flag is set before the registry is cleared, and a find() that misses
// because the clear won checks the flag — so a submit concurrent with
// shutdown resolves kShuttingDown, never a spurious kModelNotFound for a
// model that was deployed moments ago.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <string>

#include "serve/registry.hpp"

namespace mfdfp::serve {

class Router {
 public:
  /// `shutting_down` (optional, borrowed) is the owning server's shutdown
  /// flag; see file comment. The flag must outlive the router.
  explicit Router(ModelRegistry& registry,
                  const std::atomic<bool>* shutting_down = nullptr)
      : registry_(registry), shutting_down_(shutting_down) {}

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Routes one sample to the named model's replica set. Resolves
  /// kModelNotFound when no such deployment exists (kShuttingDown instead
  /// when the bound shutdown flag is set); otherwise behaves as that set's
  /// submit().
  [[nodiscard]] std::future<Response> submit(const std::string& model,
                                             tensor::Tensor sample,
                                             SubmitOptions options = {});

  /// Estimated queue delay a new submission to the named model would see
  /// (minimum over its replicas), microseconds; 0 for unknown names.
  [[nodiscard]] double estimated_queue_delay_us(
      const std::string& model) const;

  /// Submissions that named a model with no deployment.
  [[nodiscard]] std::uint64_t not_found_count() const noexcept {
    return not_found_.load(std::memory_order_relaxed);
  }

 private:
  ModelRegistry& registry_;
  const std::atomic<bool>* shutting_down_;
  std::atomic<std::uint64_t> not_found_{0};
};

}  // namespace mfdfp::serve
