#include "serve/shared_device.hpp"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/trace.hpp"
#include "serve/engine.hpp"
#include "util/table.hpp"

namespace mfdfp::serve {

namespace {
/// Windows shorter than this report zero utilization instead of dividing by
/// a near-zero wall time (same guard as ServerStats).
constexpr double kMinWindowSeconds = 1e-6;

constexpr std::size_t kInteractiveLane =
    static_cast<std::size_t>(Priority::kInteractive);
constexpr std::size_t kBatchLane = static_cast<std::size_t>(Priority::kBatch);
}  // namespace

SharedDevice::SharedDevice(DeviceSpec spec, SharedDeviceConfig config)
    : spec_(std::move(spec)), config_(std::move(config)) {
  if (config_.max_pass_samples == 0) config_.max_pass_samples = 1;
  if (config_.preempt_granularity_us < 0.0) config_.preempt_granularity_us = 0;
  dispatcher_ = std::thread([this] { dispatch_main(); });
}

std::shared_ptr<SharedDevice> SharedDevice::create(DeviceSpec spec,
                                                   SharedDeviceConfig config) {
  if (spec.shared != nullptr) {
    throw std::invalid_argument(
        "SharedDevice: spec.shared must be empty (a shared device cannot "
        "itself be placed on another shared device)");
  }
  if (spec.speed_factor <= 0.0) {
    throw std::invalid_argument("SharedDevice: speed_factor <= 0");
  }
  if (spec.name.empty()) spec.name = "shared-pu";
  // No make_shared: the constructor is private, and only attach() needs
  // shared_from_this(), which create() guarantees is well-formed.
  return std::shared_ptr<SharedDevice>(
      new SharedDevice(std::move(spec), std::move(config)));
}

SharedDevice::~SharedDevice() {
  // Runs only after every tenant backend (and thus every engine worker that
  // could block in execute()) released its handle, so all lanes are empty
  // and the dispatcher is parked in work_ready_.
  {
    util::MutexLock lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  dispatcher_.join();
}

std::int64_t SharedDevice::now_device_us() const {
  return config_.now_us ? config_.now_us() : util::Stopwatch::now_us();
}

void SharedDevice::sleep_device_us(std::int64_t duration_us) const {
  if (duration_us <= 0) return;
  if (config_.sleep_us) {
    config_.sleep_us(duration_us);
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(duration_us));
  }
}

std::shared_ptr<const SharedDeviceBackend> SharedDevice::attach(
    std::vector<hw::QNetDesc> members, const DeployConfig& config,
    DeviceSpec resolved) {
  // The tenant's executors and per-sample pricing are exactly a dedicated
  // simulated backend on this PU's provisioning; the shared device adds the
  // queue, pass scheduling, and switch costs on top.
  auto tenant = std::make_unique<Tenant>();
  tenant->sim = std::make_unique<SimulatedAcceleratorBackend>(
      std::move(members), config.accel, spec_, config.in_c, config.in_h,
      config.in_w, config.compile, config.plan_cache);
  tenant->in_c = config.in_c;
  tenant->in_h = config.in_h;
  tenant->in_w = config.in_w;
  tenant->model = config.model_name.empty() ? "model" : config.model_name;
  tenant->trace_model = obs::trace().intern(tenant->model);
  tenant->label = tenant->model + "@" +
                  std::to_string(config.model_version) + "/r" +
                  std::to_string(config.replica_index);
  if (config_.model_switch_us > 0.0) {
    tenant->switch_us = config_.model_switch_us;
  } else {
    // Weight working set over the modeled DMA bandwidth. batch_dma_bytes(0)
    // is the weights-only term (activations scale with the sample count).
    const double bytes_per_us = std::max(config_.dma_gbps, 1e-9) * 1e3;
    tenant->switch_us = tenant->sim->batch_dma_bytes(0) / bytes_per_us;
  }

  Tenant* raw = tenant.get();
  {
    util::MutexLock lock(mutex_);
    tenants_.push_back(std::move(tenant));
    active_.push_back(raw);
  }
  return std::make_shared<SharedDeviceBackend>(shared_from_this(), raw,
                                               std::move(resolved));
}

std::size_t SharedDevice::tenant_count() const {
  util::MutexLock lock(mutex_);
  return tenants_.size();
}

double SharedDevice::backlog_us() const {
  return backlog_excluding_us(nullptr);
}

double SharedDevice::backlog_excluding_us(const Tenant* excluded) const {
  util::MutexLock lock(mutex_);
  double total = 0.0;
  for (const Tenant* tenant : active_) {
    if (tenant == excluded) continue;
    total += tenant->load_provider ? tenant->load_provider()
                                   : tenant->pending_us;
  }
  return total;
}

void SharedDevice::bind_tenant_load(const SharedDeviceBackend& backend,
                                    std::function<double()> outstanding_us) {
  util::MutexLock lock(mutex_);
  backend.tenant_->load_provider = std::move(outstanding_us);
}

void SharedDevice::release_tenant(Tenant* tenant) {
  util::MutexLock lock(mutex_);
  // The owning engine drained before its backend died, so nothing of this
  // tenant is queued or executing; drop the executors and predecoded
  // weights so redeploy churn cannot accumulate dead models' working
  // sets. The accounting row (label, counters) stays for snapshots, and
  // switch_us stays valid in case resident_ still points here.
  tenant->lanes[kInteractiveLane].clear();
  tenant->lanes[kBatchLane].clear();
  tenant->load_provider = nullptr;
  tenant->pending_us = 0.0;
  tenant->sim.reset();
  active_.erase(std::remove(active_.begin(), active_.end(), tenant),
                active_.end());
}

void SharedDevice::submit_and_wait(Job& job) {
  util::MutexLock lock(mutex_);
  if (stop_) {
    // Unreachable by construction: the destructor (the only stop_ writer)
    // cannot run while a backend — and therefore an engine worker calling
    // execute() — still holds the device. Fail loudly rather than hang.
    throw std::logic_error("SharedDevice: submit after destruction began");
  }
  // Conservative backlog estimate: compute plus a potential weight reload.
  job.est_cost_us = job.owner->sim->batch_us(job.samples) +
                    job.owner->switch_us;
  job.owner->pending_us += job.est_cost_us;
  job.owner->lanes[job.interactive ? kInteractiveLane : kBatchLane]
      .push_back(&job);
  work_ready_.notify_one();
  pass_retired_.wait(mutex_, [this, &job]() REQUIRES(mutex_) {
    return job.done;
  });
}

std::vector<SharedDevice::Job*> SharedDevice::next_pass_locked(
    bool interactive_only) {
  std::vector<Job*> pass;
  const std::size_t count = active_.size();
  if (count == 0) return pass;

  // Round-robin scan for the lead tenant, starting at the fairness cursor.
  // Within a tenant the interactive lane drains strictly first.
  std::size_t lead = count;
  for (std::size_t step = 0; step < count; ++step) {
    const std::size_t index = (next_tenant_ + step) % count;
    const Tenant& tenant = *active_[index];
    if (!tenant.lanes[kInteractiveLane].empty() ||
        (!interactive_only && !tenant.lanes[kBatchLane].empty())) {
      lead = index;
      break;
    }
  }
  if (lead == count) return pass;
  next_tenant_ = (lead + 1) % count;

  Tenant& lead_tenant = *active_[lead];
  {
    std::deque<Job*>& lane = !lead_tenant.lanes[kInteractiveLane].empty()
                                 ? lead_tenant.lanes[kInteractiveLane]
                                 : lead_tenant.lanes[kBatchLane];
    pass.push_back(lane.front());
    lane.pop_front();
  }
  if (!config_.cobatch) return pass;  // time-sliced: one sub-batch per pass

  // Coalesce more sub-batches, one per tenant per round-robin sweep so no
  // tenant monopolizes the pass, as long as geometries align and the
  // sample cap holds. Tenants whose shapes don't align simply wait for
  // their own (serialized per-model) pass on a later round.
  std::size_t total = pass.front()->samples;
  bool progressed = true;
  while (progressed && total < config_.max_pass_samples) {
    progressed = false;
    for (std::size_t step = 0;
         step < count && total < config_.max_pass_samples; ++step) {
      Tenant& tenant = *active_[(lead + step) % count];
      if (tenant.in_c != lead_tenant.in_c ||
          tenant.in_h != lead_tenant.in_h ||
          tenant.in_w != lead_tenant.in_w) {
        continue;
      }
      std::deque<Job*>* lane = nullptr;
      if (!tenant.lanes[kInteractiveLane].empty()) {
        lane = &tenant.lanes[kInteractiveLane];
      } else if (!interactive_only && !tenant.lanes[kBatchLane].empty()) {
        lane = &tenant.lanes[kBatchLane];
      }
      if (lane == nullptr) continue;
      Job* job = lane->front();
      if (total + job->samples > config_.max_pass_samples) continue;
      lane->pop_front();
      pass.push_back(job);
      total += job->samples;
      progressed = true;
    }
  }

  // Interactive sub-batches lead the pass — on a chunked device they ride
  // the first chunks instead of waiting out every batch tenant's run —
  // then group by tenant so each model's weights are loaded at most once
  // per contiguous run (stable: preserves per-tenant FIFO order).
  std::stable_sort(pass.begin(), pass.end(), [](const Job* a, const Job* b) {
    if (a->interactive != b->interactive) return a->interactive;
    return a->owner < b->owner;
  });
  return pass;
}

std::size_t SharedDevice::pending_samples_locked() const {
  std::size_t samples = 0;
  for (const Tenant* tenant : active_) {
    for (const std::deque<Job*>& lane : tenant->lanes) {
      for (const Job* job : lane) samples += job->samples;
    }
  }
  return samples;
}

bool SharedDevice::interactive_pending_locked() const {
  for (const Tenant* tenant : active_) {
    if (!tenant->lanes[kInteractiveLane].empty()) return true;
  }
  return false;
}

void SharedDevice::wait_for_work_locked() {
  work_ready_.wait(mutex_, [this]() REQUIRES(mutex_) {
    return stop_ || pending_samples_locked() > 0;
  });
  if (!config_.cobatch || config_.coalesce_window_us <= 0 || stop_) return;
  // On a preemptible device probes never wait on pass formation: a pending
  // interactive sub-batch cuts the coalesce window, and late batch work
  // can join the in-flight pass instead of needing the window. This is the
  // implementation guarantee that lets the capacity analyzer drop the
  // window term from the interactive bound of chunked placements.
  const bool probes_cut = config_.preempt_granularity_us > 0.0;
  if (probes_cut && interactive_pending_locked()) return;
  // Give just-woken engine workers a bounded beat to refill the lanes,
  // so passes form full instead of racing the resubmission (see
  // SharedDeviceConfig::coalesce_window_us). The window ends early
  // both when a full pass is pending and when a whole slice elapses
  // with no new arrivals — resubmission after a pass retires takes
  // microseconds, so one quiet slice means the refill burst is over
  // and waiting longer would only stall deployments whose engines
  // cannot fill max_pass_samples at all.
  const auto slice = std::chrono::microseconds(
      std::min<std::int64_t>(config_.coalesce_window_us, 100));
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(config_.coalesce_window_us);
  std::size_t seen = pending_samples_locked();
  while (!stop_ && seen < config_.max_pass_samples &&
         std::chrono::steady_clock::now() < deadline) {
    const bool timed_out =
        work_ready_.wait_for(mutex_, slice) == std::cv_status::timeout;
    if (probes_cut && interactive_pending_locked()) return;
    const std::size_t now_pending = pending_samples_locked();
    if (timed_out && now_pending == seen) break;  // refill went quiet
    seen = now_pending;
  }
}

SharedDevice::PassPlan SharedDevice::plan_pass_locked() {
  // Plan the pass while still holding the lock: contiguous same-tenant
  // ranges ("groups"), each paying one weight reload iff its model is
  // not the resident one. Jobs already left the lanes, so concurrent
  // submitters cannot perturb the plan.
  PassPlan plan;
  plan.jobs = next_pass_locked(/*interactive_only=*/false);
  for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
    plan.samples += plan.jobs[i]->samples;
    if (plan.groups.empty() ||
        plan.groups.back().tenant != plan.jobs[i]->owner) {
      PassPlan::Group group;
      group.begin = i;
      group.tenant = plan.jobs[i]->owner;
      group.switched = resident_ != plan.jobs[i]->owner;
      if (group.switched) plan.switch_total_us += group.tenant->switch_us;
      resident_ = plan.jobs[i]->owner;
      plan.groups.push_back(group);
    }
    plan.groups.back().end = i + 1;
    plan.groups.back().samples += plan.jobs[i]->samples;
  }
  return plan;
}

void SharedDevice::execute_pass(PassPlan& plan, hw::ExecScratch& scratch,
                                bool& thread_labeled) {
  obs::TraceRecorder& rec = obs::trace();
  const bool tracing = rec.enabled();
  if (tracing && !thread_labeled) {
    // Lazy: name this PU's dispatcher track the first time tracing is on.
    rec.set_thread_label(rec.intern("pu/" + spec_.name));
    thread_labeled = true;
  }

  plan.start_us = now_device_us();
  // Execute every sub-batch through its own tenant's bit-accurate
  // executors, group by group — pass composition can never change the
  // logits.
  double compute_total_us = 0.0;
  for (const PassPlan::Group& group : plan.groups) {
    const std::int64_t group_start = now_device_us();
    if (tracing && group.switched) {
      rec.record_instant("weight_reload", "pu", group_start, 0,
                         "switch_us",
                         static_cast<std::int64_t>(group.tenant->switch_us),
                         group.tenant->trace_model);
    }
    for (std::size_t i = group.begin; i < group.end; ++i) {
      Job* job = plan.jobs[i];
      job->result = job->owner->sim->execute(*job->stacked, scratch);
      compute_total_us += job->result.sim_accel_us;
    }
    if (tracing) {
      // One span per model riding this pass: co-batch membership is
      // visible as adjacent tenant_group spans under one pu_pass.
      rec.record_span("tenant_group", "pu", group_start,
                      now_device_us() - group_start, 0, "samples",
                      static_cast<std::int64_t>(group.samples),
                      group.tenant->trace_model);
    }
  }
  plan.cost_us =
      config_.pass_overhead_us + plan.switch_total_us + compute_total_us;

  if (config_.paced) {
    // The device is the single pacing authority: hold the whole pass
    // until the modeled PU would have finished it.
    const std::int64_t target_us =
        plan.start_us + static_cast<std::int64_t>(plan.cost_us);
    sleep_device_us(target_us - now_device_us());
  }

  if (tracing) {
    rec.record_span("pu_pass", "pu", plan.start_us,
                    now_device_us() - plan.start_us, 0, "samples",
                    static_cast<std::int64_t>(plan.samples));
  }
}

void SharedDevice::retire_pass_locked(PassPlan& plan) {
  std::size_t distinct_models = 0;
  for (std::size_t g = 0; g < plan.groups.size(); ++g) {
    if (g == 0 ||
        plan.groups[g].tenant->model != plan.groups[g - 1].tenant->model) {
      ++distinct_models;
    }
  }
  obs::TraceRecorder& rec = obs::trace();
  if (rec.enabled() && distinct_models > 1) {
    rec.record_instant("cobatched_pass", "pu", plan.start_us, 0, "models",
                       static_cast<std::int64_t>(distinct_models));
  }
  ++passes_;
  ++chunks_;  // a monolithic pass is one chunk; chunks == passes here
  if (distinct_models > 1) ++cobatched_passes_;
  for (const PassPlan::Group& group : plan.groups) {
    model_switches_ += group.switched;
  }
  busy_us_ += plan.cost_us;
  switch_busy_us_ += plan.switch_total_us;

  // Retire the pass: attribute its cost exactly across the sub-batches
  // (compute is each job's own; overhead splits by pass samples; each
  // group's reload splits by that group's samples), so the tenants' busy
  // times sum to the device's and a shared PU can never read > 100%
  // utilized from its tenants' rows.
  for (const PassPlan::Group& group : plan.groups) {
    for (std::size_t i = group.begin; i < group.end; ++i) {
      Job* job = plan.jobs[i];
      Tenant& tenant = *job->owner;
      const double sample_share =
          plan.samples == 0 ? 0.0
                            : static_cast<double>(job->samples) /
                                  static_cast<double>(plan.samples);
      const double group_share =
          group.samples == 0 ? 0.0
                             : static_cast<double>(job->samples) /
                                   static_cast<double>(group.samples);
      const double attributed_us =
          job->result.sim_accel_us +
          config_.pass_overhead_us * sample_share +
          (group.switched ? tenant.switch_us * group_share : 0.0);
      // DMA: activations always stream; weights only crossed the bus if
      // this group actually reloaded them (resident otherwise).
      const double weight_bytes = tenant.sim->batch_dma_bytes(0);
      const double act_bytes =
          tenant.sim->batch_dma_bytes(job->samples) - weight_bytes;
      job->result.sim_accel_us = attributed_us;
      job->result.sim_dma_bytes =
          act_bytes + (group.switched ? weight_bytes * group_share : 0.0);

      tenant.sub_batches += 1;
      tenant.samples += job->samples;
      tenant.busy_us += attributed_us;
      tenant.pending_us = std::max(0.0, tenant.pending_us - job->est_cost_us);
      job->done = true;
    }
  }
}

// ---- Preemptible (chunked) execution ----------------------------------------

SharedDevice::ActivePass SharedDevice::start_pass_locked(
    bool interactive_only) {
  ActivePass pass;
  pass.jobs = next_pass_locked(interactive_only);
  if (pass.jobs.empty()) return pass;
  const Tenant& lead = *pass.jobs.front()->owner;
  pass.in_c = lead.in_c;
  pass.in_h = lead.in_h;
  pass.in_w = lead.in_w;
  for (const Job* job : pass.jobs) pass.planned_samples += job->samples;
  pass.seq = ++pass_seq_;
  pass.interactive = interactive_only;
  return pass;
}

void SharedDevice::admit_joiners_locked(ActivePass& pass) {
  if (!config_.cobatch || !config_.join_inflight) return;
  const std::size_t count = active_.size();
  if (count == 0) return;
  // Earliest position a joiner can take: right behind the cursor, but
  // never inside the partially-executed sub-batch sitting on it.
  std::size_t probe_at = pass.next_job + (pass.next_sample > 0 ? 1 : 0);
  bool progressed = true;
  while (progressed && pass.planned_samples < config_.max_pass_samples) {
    progressed = false;
    for (std::size_t step = 0;
         step < count && pass.planned_samples < config_.max_pass_samples;
         ++step) {
      Tenant& tenant = *active_[(next_tenant_ + step) % count];
      if (tenant.in_c != pass.in_c || tenant.in_h != pass.in_h ||
          tenant.in_w != pass.in_w) {
        continue;
      }
      std::deque<Job*>* lane = nullptr;
      if (!tenant.lanes[kInteractiveLane].empty()) {
        lane = &tenant.lanes[kInteractiveLane];
      } else if (!pass.interactive && !tenant.lanes[kBatchLane].empty()) {
        // A preemption pass serves probes exclusively: batch work waits for
        // the suspended pass to resume rather than jumping its line.
        lane = &tenant.lanes[kBatchLane];
      }
      if (lane == nullptr) continue;
      Job* job = lane->front();
      if (pass.planned_samples + job->samples > config_.max_pass_samples) {
        continue;
      }
      lane->pop_front();
      if (job->interactive) {
        // Probes ride the very next chunks.
        pass.jobs.insert(
            pass.jobs.begin() + static_cast<std::ptrdiff_t>(probe_at), job);
        ++probe_at;
      } else {
        // Keep batch joiners grouped behind their tenant's last unexecuted
        // sub-batch so chunk boundaries pay the fewest reloads; tenants
        // not in the pass yet append at the tail.
        std::size_t at = pass.jobs.size();
        for (std::size_t i = pass.jobs.size(); i > probe_at;) {
          --i;
          if (pass.jobs[i]->owner == &tenant) {
            at = i + 1;
            break;
          }
        }
        pass.jobs.insert(pass.jobs.begin() + static_cast<std::ptrdiff_t>(at),
                         job);
      }
      pass.planned_samples += job->samples;
      ++pass.joined;
      ++joined_jobs_;
      obs::TraceRecorder& rec = obs::trace();
      if (rec.enabled()) {
        rec.record_instant("join", "pu", now_device_us(), 0, "samples",
                           static_cast<std::int64_t>(job->samples),
                           tenant.trace_model);
      }
      progressed = true;
    }
  }
}

SharedDevice::Chunk SharedDevice::plan_chunk_locked(ActivePass& pass) {
  Chunk chunk;
  Tenant* tenant = pass.jobs[pass.next_job]->owner;
  chunk.tenant = tenant;
  if (resident_ != tenant) {
    chunk.switch_us = tenant->switch_us;
    resident_ = tenant;
  }
  if (!pass.overhead_paid) {
    chunk.overhead_us = config_.pass_overhead_us;
    pass.overhead_paid = true;
  }
  // Fill the chunk with whole samples of this tenant until the modeled
  // compute budget is spent (always at least one sample, so a granularity
  // below one sample degrades to per-sample chunks, never to zero
  // progress) or the tenant's contiguous run ends — a chunk never mixes
  // tenants, so it pays at most the one reload above.
  const double per_sample_us = tenant->sim->sample_us();
  const double budget_us = config_.preempt_granularity_us;
  double used_us = 0.0;
  std::size_t j = pass.next_job;
  std::size_t s = pass.next_sample;
  while (j < pass.jobs.size() && pass.jobs[j]->owner == tenant) {
    const std::size_t limit = pass.jobs[j]->samples;
    while (s < limit) {
      if (chunk.samples > 0 && used_us + per_sample_us > budget_us) {
        chunk.end_job = j;
        chunk.end_sample = s;
        return chunk;
      }
      used_us += per_sample_us;
      ++chunk.samples;
      ++s;
    }
    ++j;
    s = 0;
  }
  chunk.end_job = j;
  chunk.end_sample = 0;
  return chunk;
}

void SharedDevice::execute_chunk(ActivePass& pass, Chunk& chunk,
                                 hw::ExecScratch& scratch,
                                 bool& thread_labeled) {
  obs::TraceRecorder& rec = obs::trace();
  const bool tracing = rec.enabled();
  if (tracing && !thread_labeled) {
    rec.set_thread_label(rec.intern("pu/" + spec_.name));
    thread_labeled = true;
  }

  chunk.start_us = now_device_us();
  if (pass.chunks == 0) pass.start_us = chunk.start_us;
  if (tracing && chunk.switch_us > 0.0) {
    rec.record_instant("weight_reload", "pu", chunk.start_us, 0, "switch_us",
                       static_cast<std::int64_t>(chunk.switch_us),
                       chunk.tenant->trace_model);
  }

  // Execute the chunk's sample range through the tenant's bit-accurate
  // executors. Sub-batches fully inside the chunk take the ordinary
  // whole-tensor path; a sub-batch split by the chunk boundary executes as
  // sample slices — per-sample identical arithmetic, so the staged logits
  // are bit-identical to an unsplit execution.
  double compute_us = 0.0;
  for (std::size_t j = pass.next_job;
       j < chunk.end_job || (j == chunk.end_job && chunk.end_sample > 0);
       ++j) {
    Job* job = pass.jobs[j];
    const std::size_t s0 = j == pass.next_job ? pass.next_sample : 0;
    const std::size_t s1 = j < chunk.end_job ? job->samples : chunk.end_sample;
    if (s0 == 0 && s1 == job->samples) {
      job->result = job->owner->sim->execute(*job->stacked, scratch);
      job->exec_us += job->result.sim_accel_us;
      compute_us += job->result.sim_accel_us;
    } else {
      const tensor::Tensor part = tensor::slice_outer(*job->stacked, s0, s1);
      const BatchResult result = job->owner->sim->execute(part, scratch);
      const std::size_t classes = result.logits.shape().dim(1);
      if (job->result.logits.size() == 0) {
        job->result.logits =
            tensor::Tensor{tensor::Shape{job->samples, classes}};
      }
      std::copy(result.logits.data().begin(), result.logits.data().end(),
                job->result.logits.data().begin() +
                    static_cast<std::ptrdiff_t>(s0 * classes));
      job->exec_us += result.sim_accel_us;
      compute_us += result.sim_accel_us;
    }
    job->executed += s1 - s0;
  }

  chunk.cost_us = chunk.overhead_us + chunk.switch_us + compute_us;

  if (config_.paced) {
    // Pace per chunk, so a suspension takes effect at the modeled chunk
    // boundary instead of after a whole modeled pass.
    const std::int64_t target_us =
        chunk.start_us + static_cast<std::int64_t>(chunk.cost_us);
    sleep_device_us(target_us - now_device_us());
  }

  if (tracing) {
    rec.record_span("chunk", "pu", chunk.start_us,
                    now_device_us() - chunk.start_us, 0, "samples",
                    static_cast<std::int64_t>(chunk.samples),
                    chunk.tenant->trace_model);
  }
}

void SharedDevice::retire_chunk_locked(ActivePass& pass, Chunk& chunk) {
  ++chunks_;
  ++pass.chunks;
  if (chunk.switch_us > 0.0) ++model_switches_;
  busy_us_ += chunk.cost_us;
  switch_busy_us_ += chunk.switch_us;
  pass.cost_us += chunk.cost_us;
  pass.switch_total_us += chunk.switch_us;
  pass.done_samples += chunk.samples;

  bool seen_model = false;
  for (const std::string& model : pass.models) {
    if (model == chunk.tenant->model) {
      seen_model = true;
      break;
    }
  }
  if (!seen_model) pass.models.push_back(chunk.tenant->model);

  // The chunk's reload + overhead ride its lead sub-batch whole (not
  // split): reloads only ever happen at tenant boundaries, so the
  // per-tenant totals match what the monolithic attribution would have
  // produced, and the device/tenant busy sums stay exactly equal.
  Job* lead = pass.jobs[pass.next_job];
  lead->extra_us += chunk.switch_us + chunk.overhead_us;
  if (chunk.switch_us > 0.0) {
    lead->extra_dma_bytes += chunk.tenant->sim->batch_dma_bytes(0);
  }

  // Retire every sub-batch the cursor passed: its blocked submitter wakes
  // as soon as the dispatcher drops the mutex and notifies — continuous
  // batching's service point, mid-pass instead of end-of-pass.
  for (std::size_t j = pass.next_job; j < chunk.end_job; ++j) {
    retire_job_locked(*pass.jobs[j]);
  }
  pass.next_job = chunk.end_job;
  pass.next_sample = chunk.end_sample;
}

void SharedDevice::retire_job_locked(Job& job) {
  Tenant& tenant = *job.owner;
  const double attributed_us = job.exec_us + job.extra_us;
  // DMA: activations always stream; weight bytes accumulated only for the
  // reloads this job actually led (extra_dma_bytes).
  const double weight_bytes = tenant.sim->batch_dma_bytes(0);
  const double act_bytes =
      tenant.sim->batch_dma_bytes(job.samples) - weight_bytes;
  job.result.sim_accel_us = attributed_us;
  job.result.sim_dma_bytes = act_bytes + job.extra_dma_bytes;

  tenant.sub_batches += 1;
  tenant.samples += job.samples;
  tenant.busy_us += attributed_us;
  tenant.pending_us = std::max(0.0, tenant.pending_us - job.est_cost_us);
  job.done = true;
}

void SharedDevice::finish_pass_locked(ActivePass& pass) {
  ++passes_;
  if (pass.models.size() > 1) ++cobatched_passes_;
  if (pass.joined > 0) ++joined_passes_;
  obs::TraceRecorder& rec = obs::trace();
  if (rec.enabled()) {
    if (pass.models.size() > 1) {
      rec.record_instant("cobatched_pass", "pu", pass.start_us, 0, "models",
                         static_cast<std::int64_t>(pass.models.size()));
    }
    // The pass's wall span — includes any suspensions it absorbed.
    rec.record_span("pu_pass", "pu", pass.start_us,
                    now_device_us() - pass.start_us, 0, "samples",
                    static_cast<std::int64_t>(pass.done_samples));
  }
}

bool SharedDevice::should_preempt_locked(const ActivePass& pass) const {
  for (const Tenant* tenant : active_) {
    for (const Job* job : tenant->lanes[kInteractiveLane]) {
      const bool joinable =
          config_.cobatch && config_.join_inflight &&
          tenant->in_c == pass.in_c && tenant->in_h == pass.in_h &&
          tenant->in_w == pass.in_w &&
          pass.planned_samples + job->samples <= config_.max_pass_samples;
      if (!joinable) return true;
    }
  }
  return false;
}

void SharedDevice::run_pass_chunked(ActivePass pass, hw::ExecScratch& scratch,
                                    bool& thread_labeled, int depth) {
  obs::TraceRecorder& rec = obs::trace();
  for (;;) {
    Chunk chunk;
    {
      util::MutexLock lock(mutex_);
      admit_joiners_locked(pass);
      chunk = plan_chunk_locked(pass);
    }
    execute_chunk(pass, chunk, scratch, thread_labeled);

    bool finished = false;
    bool preempt = false;
    SharedDeviceChunkEvent event;
    {
      util::MutexLock lock(mutex_);
      retire_chunk_locked(pass, chunk);
      finished = pass.next_job == pass.jobs.size();
      if (finished) {
        finish_pass_locked(pass);
      } else if (depth == 0) {
        // Only outermost passes suspend: a preemption pass is already the
        // most urgent work the device has, so nesting stays depth <= 1.
        preempt = should_preempt_locked(pass);
        if (preempt) {
          ++preemptions_;
          if (rec.enabled()) {
            rec.record_instant(
                "preempt", "pu", now_device_us(), 0, "remaining_samples",
                static_cast<std::int64_t>(pass.planned_samples -
                                          pass.done_samples),
                chunk.tenant->trace_model);
          }
        }
      }
      event.pass = pass.seq;
      event.chunk = pass.chunks - 1;
      event.model = chunk.tenant->model;
      event.chunk_samples = chunk.samples;
      event.remaining_samples = pass.planned_samples - pass.done_samples;
      event.interactive_pass = pass.interactive;
      event.preempting = preempt;
    }
    pass_retired_.notify_all();
    if (config_.chunk_hook) config_.chunk_hook(event);
    if (finished) return;
    if (preempt) {
      // Serve every pending probe pass now (several geometry classes need
      // several passes); the suspended pass resumes right after.
      for (;;) {
        ActivePass probe;
        {
          util::MutexLock lock(mutex_);
          probe = start_pass_locked(/*interactive_only=*/true);
        }
        if (probe.jobs.empty()) break;
        run_pass_chunked(std::move(probe), scratch, thread_labeled,
                         depth + 1);
      }
    }
  }
}

void SharedDevice::dispatch_main() {
  hw::ExecScratch scratch;
  bool thread_labeled = false;
  const bool chunked = config_.preempt_granularity_us > 0.0;
  for (;;) {
    if (chunked) {
      ActivePass pass;
      {
        util::MutexLock lock(mutex_);
        wait_for_work_locked();
        pass = start_pass_locked(/*interactive_only=*/false);
        if (pass.jobs.empty()) {
          if (stop_) return;
          continue;
        }
      }
      run_pass_chunked(std::move(pass), scratch, thread_labeled, 0);
      continue;
    }
    PassPlan plan;
    {
      util::MutexLock lock(mutex_);
      wait_for_work_locked();
      plan = plan_pass_locked();
      if (plan.jobs.empty()) {
        if (stop_) return;
        continue;
      }
    }
    execute_pass(plan, scratch, thread_labeled);
    {
      util::MutexLock lock(mutex_);
      retire_pass_locked(plan);
    }
    pass_retired_.notify_all();
  }
}

SharedDeviceSnapshot SharedDevice::snapshot() const {
  util::MutexLock lock(mutex_);
  SharedDeviceSnapshot s;
  s.device = spec_.name;
  s.speed_factor = spec_.speed_factor;
  s.passes = passes_;
  s.cobatched_passes = cobatched_passes_;
  s.model_switches = model_switches_;
  s.chunks = chunks_;
  s.preemptions = preemptions_;
  s.joined_jobs = joined_jobs_;
  s.joined_passes = joined_passes_;
  s.busy_us = busy_us_;
  s.switch_us = switch_busy_us_;
  s.wall_seconds = window_.seconds();
  s.utilization = s.wall_seconds >= kMinWindowSeconds
                      ? busy_us_ / (s.wall_seconds * 1e6)
                      : 0.0;
  s.tenants.reserve(tenants_.size());
  for (const auto& tenant : tenants_) {
    SharedTenantRow row;
    row.tenant = tenant->label;
    row.model = tenant->model;
    row.sub_batches = tenant->sub_batches;
    row.samples = tenant->samples;
    row.busy_us = tenant->busy_us;
    // Same source as backlog_us(): the engine-side provider when bound
    // (queued + executing), lane-only pending otherwise — the tenant table
    // must agree with what admission control is shedding against.
    row.pending_us = tenant->load_provider ? tenant->load_provider()
                                           : tenant->pending_us;
    // Device-lane truth, unlike pending_us which may reflect the engine's
    // wider queue: sub-batches sitting in this tenant's lanes right now.
    row.queued_jobs = tenant->lanes[kInteractiveLane].size() +
                      tenant->lanes[kBatchLane].size();
    s.tenants.push_back(std::move(row));
  }
  return s;
}

std::string SharedDevice::stats_table(const std::string& title) const {
  const SharedDeviceSnapshot s = snapshot();
  util::TablePrinter device(title + " — shared device " + s.device);
  device.set_header({"metric", "value"});
  device.add_row({"speed", util::fmt_fixed(s.speed_factor, 2) + "x"});
  device.add_row({"passes", std::to_string(s.passes)});
  device.add_row({"co-batched passes", std::to_string(s.cobatched_passes)});
  device.add_row({"model switches", std::to_string(s.model_switches)});
  device.add_row({"chunks", std::to_string(s.chunks)});
  device.add_row({"preemptions", std::to_string(s.preemptions)});
  device.add_row({"joined sub-batches", std::to_string(s.joined_jobs)});
  device.add_row({"busy (us)", util::fmt_fixed(s.busy_us, 1)});
  device.add_row({"switch busy (us)", util::fmt_fixed(s.switch_us, 1)});
  device.add_row({"utilization (%)", util::fmt_percent(s.utilization, 2)});

  util::TablePrinter tenants(title + " — tenants on " + s.device);
  tenants.set_header({"tenant", "model", "sub-batches", "samples",
                      "busy (us)", "busy share (%)"});
  for (const SharedTenantRow& row : s.tenants) {
    const double share = s.busy_us > 0.0 ? row.busy_us / s.busy_us : 0.0;
    tenants.add_row({row.tenant, row.model, std::to_string(row.sub_batches),
                     std::to_string(row.samples),
                     util::fmt_fixed(row.busy_us, 1),
                     util::fmt_percent(share, 2)});
  }
  return device.to_string() + "\n" + tenants.to_string();
}

// ---- SharedDeviceBackend ----------------------------------------------------

SharedDeviceBackend::SharedDeviceBackend(std::shared_ptr<SharedDevice> device,
                                         SharedDevice::Tenant* tenant,
                                         DeviceSpec resolved)
    : device_(std::move(device)), tenant_(tenant),
      resolved_(std::move(resolved)) {}

SharedDeviceBackend::~SharedDeviceBackend() {
  device_->release_tenant(tenant_);
}

BatchResult SharedDeviceBackend::execute(const tensor::Tensor& stacked,
                                         hw::ExecScratch& scratch) const {
  return execute(stacked, scratch, ExecHints{});
}

BatchResult SharedDeviceBackend::execute(const tensor::Tensor& stacked,
                                         hw::ExecScratch& /*scratch*/,
                                         const ExecHints& hints) const {
  // The dispatch thread executes with its own scratch; the caller's is
  // unused (the caller stays blocked here until its sub-batch retires).
  SharedDevice::Job job;
  job.owner = tenant_;
  job.stacked = &stacked;
  job.samples = stacked.shape().n();
  job.interactive = hints.interactive;
  device_->submit_and_wait(job);
  return std::move(job.result);
}

double SharedDeviceBackend::sample_us() const noexcept {
  return tenant_->sim->sample_us();
}

double SharedDeviceBackend::batch_us(std::size_t batch_size) const {
  return tenant_->sim->batch_us(batch_size);
}

double SharedDeviceBackend::batch_dma_bytes(std::size_t batch_size) const {
  return tenant_->sim->batch_dma_bytes(batch_size);
}

std::size_t SharedDeviceBackend::member_count() const noexcept {
  return tenant_->sim->member_count();
}

double SharedDeviceBackend::cross_tenant_backlog_us() const noexcept {
  return device_->backlog_excluding_us(tenant_);
}

void SharedDeviceBackend::bind_load_provider(
    std::function<double()> outstanding_us) const {
  device_->bind_tenant_load(*this, std::move(outstanding_us));
}

std::vector<hw::LayerProfile> SharedDeviceBackend::layer_profiles() const {
  // tenant_->sim is released only by ~SharedDeviceBackend, so it is alive
  // for the lifetime of every caller holding this backend.
  return tenant_->sim ? tenant_->sim->layer_profiles()
                      : std::vector<hw::LayerProfile>{};
}

}  // namespace mfdfp::serve
