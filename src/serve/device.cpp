#include "serve/device.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "compile/passes.hpp"
#include "compile/plan_cache.hpp"
#include "compile/plan_executor.hpp"
#include "hw/cycle_model.hpp"
#include "hw/traffic_model.hpp"

namespace mfdfp::serve {

SimulatedAcceleratorBackend::SimulatedAcceleratorBackend(
    std::vector<hw::QNetDesc> members, hw::AcceleratorConfig accel,
    DeviceSpec device, std::size_t in_c, std::size_t in_h, std::size_t in_w,
    const compile::CompileOptions& compile,
    const std::shared_ptr<compile::PlanCache>& plan_cache)
    : device_(std::move(device)), accel_(accel) {
  if (members.empty()) {
    throw std::invalid_argument(
        "SimulatedAcceleratorBackend: no model members");
  }
  if (!device_.valid()) {
    throw std::invalid_argument(
        "SimulatedAcceleratorBackend: device \"" + device_.name +
        "\" has speed_factor <= 0");
  }

  // Device *class* key for plan sharing: the plan's content depends only on
  // what the compiler can see of the device, so same-speed replicas (dev0,
  // dev1, ...) share one artifact while heterogeneous placements get
  // per-class entries.
  std::string device_key;
  if (compile.enabled) {
    std::ostringstream key;
    key << "sf=" << device_.speed_factor;
    device_key = key.str();
  }

  executors_.reserve(members.size());
  for (hw::QNetDesc& desc : members) {
    if (compile.enabled) {
      plans_.push_back(plan_cache != nullptr
                           ? plan_cache->get_or_compile(desc, in_c, in_h, in_w,
                                                        device_key, compile)
                           : compile::compile_qnet(desc, in_c, in_h, in_w,
                                                   compile));
    }
    // Precompute this member's modeled per-inference cost. Ensemble members
    // run on parallel processing units, so batch latency is the max over
    // members while DMA is their sum.
    const std::vector<hw::LayerWork> work =
        hw::workload_from_qnet(desc, in_c, in_h, in_w);
    const hw::CycleReport cycles = hw::count_cycles(work, accel_);
    sample_us_ = std::max(
        sample_us_, cycles.microseconds(accel_, device_.speed_factor));
    const hw::TrafficReport traffic = hw::dma_traffic(work, accel_);
    for (const hw::LayerTraffic& layer : traffic.layers) {
      weight_dma_bytes_ += static_cast<double>(layer.weight_bytes);
      act_dma_bytes_ +=
          static_cast<double>(layer.input_bytes + layer.output_bytes);
    }

    // The profiler snapshots the member's cycle/traffic tables, so build it
    // before the descriptor moves into the executor.
    profilers_.push_back(std::make_unique<hw::LayerProfiler>(
        desc, in_c, in_h, in_w, accel_));
    executors_.push_back(
        std::make_unique<hw::AcceleratorExecutor>(std::move(desc)));
    executors_.back()->set_profiler(profilers_.back().get());
  }
  member_ptrs_.reserve(executors_.size());
  for (const auto& executor : executors_) {
    member_ptrs_.push_back(executor.get());
  }
}

std::vector<hw::LayerProfile> SimulatedAcceleratorBackend::layer_profiles()
    const {
  std::vector<hw::LayerProfile> profiles;
  profiles.reserve(profilers_.size());
  for (const auto& profiler : profilers_) {
    profiles.push_back(profiler->snapshot());
  }
  return profiles;
}

BatchResult SimulatedAcceleratorBackend::execute(
    const tensor::Tensor& stacked, hw::ExecScratch& scratch) const {
  const std::size_t batch_size = stacked.shape().n();
  BatchResult result;
  if (!plans_.empty()) {
    // Compiled path: every member executes its deploy-time plan —
    // bit-identical to the run_batch path below (the plan only reorders
    // exact integer arithmetic), with fused-step host time attributed back
    // to source layers in the same profilers. Member logits averaged
    // exactly as hw::run_ensemble_batch does.
    result.logits = compile::run_plan_batch(*plans_.front(), stacked, scratch,
                                            profilers_.front().get());
    for (std::size_t m = 1; m < plans_.size(); ++m) {
      result.logits.add(compile::run_plan_batch(*plans_[m], stacked, scratch,
                                                profilers_[m].get()));
    }
    if (plans_.size() > 1) {
      result.logits.scale(1.0f / static_cast<float>(plans_.size()));
    }
  } else {
    result.logits =
        member_ptrs_.size() == 1
            ? member_ptrs_.front()->run_batch(stacked, scratch)
            : hw::run_ensemble_batch(member_ptrs_, stacked, scratch);
  }
  result.sim_accel_us = batch_us(batch_size);
  result.sim_dma_bytes = batch_dma_bytes(batch_size);
  return result;
}

double SimulatedAcceleratorBackend::batch_us(std::size_t batch_size) const {
  // Each processing unit streams its member's samples back to back;
  // sample_us_ already carries the device's speed_factor.
  return static_cast<double>(batch_size) * sample_us_;
}

double SimulatedAcceleratorBackend::batch_dma_bytes(
    std::size_t batch_size) const {
  // Weights cross the DMA once per batch (they stay resident in the weight
  // buffer across samples); activations stream per sample.
  return weight_dma_bytes_ + static_cast<double>(batch_size) * act_dma_bytes_;
}

}  // namespace mfdfp::serve
