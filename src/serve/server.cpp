#include "serve/server.hpp"

#include <stdexcept>
#include <utility>

namespace mfdfp::serve {

ModelHandle ModelServer::deploy(const std::string& name,
                                std::vector<hw::QNetDesc> members,
                                DeployConfig config) {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (shutdown_.load(std::memory_order_acquire)) {
    throw std::logic_error("ModelServer: deploy after shutdown");
  }
  return registry_.deploy(name, std::move(members), std::move(config));
}

bool ModelServer::undeploy(const std::string& name) {
  return registry_.undeploy(name);
}

std::future<Response> ModelServer::submit(const std::string& model,
                                          tensor::Tensor sample,
                                          SubmitOptions options) {
  if (shutdown_.load(std::memory_order_acquire)) {
    return ready_failure(StatusCode::kShuttingDown, "server shut down",
                         options.priority);
  }
  return router_.submit(model, std::move(sample), options);
}

void ModelServer::shutdown() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  shutdown_.store(true, std::memory_order_release);
  registry_.clear();
}

StatsSnapshot ModelServer::stats(const std::string& model) const {
  const std::shared_ptr<InferenceEngine> engine = registry_.find(model);
  return engine ? engine->stats().snapshot() : StatsSnapshot{};
}

std::string ModelServer::stats_table(const std::string& model) const {
  const std::shared_ptr<InferenceEngine> engine = registry_.find(model);
  return engine ? engine->stats().to_table(model) : std::string{};
}

}  // namespace mfdfp::serve
