#include "serve/server.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "analysis/analyzer.hpp"
#include "analysis/capacity.hpp"
#include "obs/metrics.hpp"
#include "serve/shared_device.hpp"
#include "util/logging.hpp"

namespace mfdfp::serve {

ModelHandle ModelServer::deploy(const std::string& name,
                                std::vector<hw::QNetDesc> members,
                                DeployConfig config) {
  util::MutexLock lock(lifecycle_mutex_);
  if (shutdown_.load(std::memory_order_acquire)) {
    throw std::logic_error("ModelServer: deploy after shutdown");
  }
  // Facts of every *other* deployed model, snapshotted under the lifecycle
  // lock (no deploy/undeploy can interleave): a candidate sharing a PU
  // with them must be proven against their blocking and vice versa. A
  // same-name entry is excluded — the candidate supersedes it, so proving
  // the new placement against the version it replaces would be analyzing a
  // world that never serves.
  std::vector<analysis::ModelFacts> coresident;
  for (const ModelHandle& handle : registry_.models()) {
    if (handle.name == name) continue;
    const std::shared_ptr<ReplicaSet> set = registry_.find(handle.name);
    if (set) coresident.push_back(set->capacity_facts());
  }
  const auto validate = [&coresident, &name](const ReplicaSet& candidate) {
    std::vector<analysis::ModelFacts> facts = coresident;
    facts.push_back(candidate.capacity_facts());
    const analysis::CapacityReport report = analysis::analyze_capacity(facts);
    if (report.feasible()) return;
    if (candidate.config().envelope.warn_only) {
      util::log_warn("deploy(" + name + "): " + report.summary());
      return;
    }
    throw DeployError(StatusCode::kInfeasibleSlo, report.summary());
  };
  try {
    return registry_.deploy(name, std::move(members), std::move(config),
                            validate);
  } catch (const analysis::PlanRejectedError& error) {
    // Surface analyzer rejections (thrown inside plan compilation, deep in
    // backend construction) as the typed deploy-time status.
    throw DeployError(StatusCode::kUnsafePlan, error.what());
  }
}

bool ModelServer::undeploy(const std::string& name) {
  // Same lock as deploy()/shutdown(): an undeploy cannot interleave with a
  // concurrent deploy or shutdown of the same name — it observes either the
  // world before the other operation or the world after it, never a
  // half-swapped entry.
  util::MutexLock lock(lifecycle_mutex_);
  return registry_.undeploy(name);
}

std::future<Response> ModelServer::submit(const std::string& model,
                                          tensor::Tensor sample,
                                          SubmitOptions options) {
  // Fast path only; the router re-detects shutdown on a registry miss (the
  // flag is stored before the registry clears), so a submit racing
  // shutdown() still resolves kShuttingDown deterministically.
  if (shutdown_.load(std::memory_order_acquire)) {
    return ready_failure(StatusCode::kShuttingDown, "server shut down",
                         options.priority);
  }
  return router_.submit(model, std::move(sample), options);
}

void ModelServer::shutdown() {
  util::MutexLock lock(lifecycle_mutex_);
  // Flag first, clear second: a submit whose lookup misses because the
  // clear won is ordered (registry mutex) after the clear, and therefore
  // after this store — it reads the flag as true and reports kShuttingDown.
  shutdown_.store(true, std::memory_order_release);
  registry_.clear();
}

analysis::CapacityReport ModelServer::capacity_report() const {
  std::vector<analysis::ModelFacts> facts;
  for (const ModelHandle& handle : registry_.models()) {
    const std::shared_ptr<ReplicaSet> set = registry_.find(handle.name);
    if (set) facts.push_back(set->capacity_facts());
  }
  return analysis::analyze_capacity(facts);
}

StatsSnapshot ModelServer::stats(const std::string& model) const {
  const std::shared_ptr<ReplicaSet> set = registry_.find(model);
  return set ? set->aggregated_snapshot() : StatsSnapshot{};
}

std::string ModelServer::stats_table(const std::string& model) const {
  const std::shared_ptr<ReplicaSet> set = registry_.find(model);
  return set ? set->stats_table(model) : std::string{};
}

std::string ModelServer::export_metrics() const {
  using obs::MetricLabels;
  using obs::MetricType;
  obs::MetricsRegistry registry;

  auto completed = registry.family("mfdfp_requests_completed_total",
                                   "Requests completed OK", MetricType::kCounter);
  auto timed_out = registry.family("mfdfp_requests_timed_out_total",
                                   "Requests that missed their deadline",
                                   MetricType::kCounter);
  auto rejected = registry.family(
      "mfdfp_requests_rejected_total",
      "Requests refused at submit (bad input, queue full, shutdown)",
      MetricType::kCounter);
  auto shedded = registry.family(
      "mfdfp_requests_shedded_total",
      "kBatch requests shed by admission control or the batch quota",
      MetricType::kCounter);
  auto shed_ratio = registry.family(
      "mfdfp_shed_ratio", "Shedded over all resolved requests, this window",
      MetricType::kGauge);
  auto throughput = registry.family("mfdfp_throughput_rps",
                                    "Completed requests per second",
                                    MetricType::kGauge);
  auto batches = registry.family("mfdfp_batches_total", "Executed batches",
                                 MetricType::kCounter);
  auto mean_batch = registry.family("mfdfp_mean_batch_size",
                                    "Mean executed batch size",
                                    MetricType::kGauge);
  auto e2e = registry.family(
      "mfdfp_e2e_latency_us",
      "End-to-end request latency, microseconds (wall clock)",
      MetricType::kSummary);
  auto queue_wait = registry.family("mfdfp_queue_wait_us",
                                    "Queue wait before batch formation, "
                                    "microseconds",
                                    MetricType::kSummary);
  auto queue_depth = registry.family(
      "mfdfp_queue_depth", "Requests queued right now, per priority lane",
      MetricType::kGauge);
  auto outstanding = registry.family(
      "mfdfp_outstanding_requests",
      "Requests accepted but unresolved (queued + executing), per lane",
      MetricType::kGauge);
  auto dma_bytes = registry.family("mfdfp_sim_dma_bytes_total",
                                   "Modeled DMA traffic, bytes",
                                   MetricType::kCounter);
  auto device_util = registry.family(
      "mfdfp_device_utilization",
      "Modeled accelerator busy fraction per device row",
      MetricType::kGauge);
  auto device_busy = registry.family("mfdfp_device_busy_us_total",
                                     "Modeled accelerator busy time per "
                                     "device row, microseconds",
                                     MetricType::kCounter);
  auto device_completed = registry.family(
      "mfdfp_device_completed_total",
      "Requests served per device row", MetricType::kCounter);
  auto pu_passes = registry.family("mfdfp_pu_passes_total",
                                   "Shared-PU device passes executed",
                                   MetricType::kCounter);
  auto pu_cobatched = registry.family(
      "mfdfp_pu_cobatched_passes_total",
      "Shared-PU passes that mixed two or more models",
      MetricType::kCounter);
  auto pu_cobatch_ratio = registry.family(
      "mfdfp_pu_cobatch_ratio", "Co-batched over all shared-PU passes",
      MetricType::kGauge);
  auto pu_switches = registry.family("mfdfp_pu_model_switches_total",
                                     "Shared-PU weight reloads paid",
                                     MetricType::kCounter);
  auto pu_busy = registry.family("mfdfp_pu_busy_us_total",
                                 "Shared-PU modeled busy time, microseconds",
                                 MetricType::kCounter);
  auto pu_util = registry.family("mfdfp_pu_utilization",
                                 "Shared-PU busy over wall fraction",
                                 MetricType::kGauge);

  // One shared PU may sit behind several models; emit its series once.
  std::vector<const SharedDevice*> seen_pus;

  for (const ModelHandle& handle : registry_.models()) {
    const std::shared_ptr<ReplicaSet> set = registry_.find(handle.name);
    if (!set) continue;  // undeployed between models() and find()
    const StatsSnapshot s = set->aggregated_snapshot();
    const MetricLabels model{{"model", handle.name}};

    completed.add(model, static_cast<double>(s.completed));
    timed_out.add(model, static_cast<double>(s.timed_out));
    rejected.add(model, static_cast<double>(s.rejected));
    shedded.add(model, static_cast<double>(s.shedded));
    const std::uint64_t resolved =
        s.completed + s.timed_out + s.rejected + s.shedded;
    shed_ratio.add(model, resolved == 0
                              ? 0.0
                              : static_cast<double>(s.shedded) /
                                    static_cast<double>(resolved));
    throughput.add(model, s.throughput_rps);
    batches.add(model, static_cast<double>(s.batches));
    mean_batch.add(model, s.mean_batch_size);
    dma_bytes.add(model, s.sim_dma_bytes);

    e2e.add_quantile(model, 0.5, static_cast<double>(s.e2e_p50_us))
        .add_quantile(model, 0.95, static_cast<double>(s.e2e_p95_us))
        .add_quantile(model, 0.99, static_cast<double>(s.e2e_p99_us))
        .add_summary_totals(model, s.completed,
                            s.e2e_mean_us * static_cast<double>(s.completed));
    queue_wait
        .add_quantile(model, 0.5, static_cast<double>(s.queue_p50_us))
        .add_quantile(model, 0.99, static_cast<double>(s.queue_p99_us));

    for (std::size_t cls = 0; cls < kPriorityClasses; ++cls) {
      const Priority lane = static_cast<Priority>(cls);
      MetricLabels labels = model;
      labels.emplace_back("lane", priority_name(lane));
      queue_depth.add(labels, static_cast<double>(s.queue_depth_now[cls]));
      outstanding.add(std::move(labels),
                      static_cast<double>(s.outstanding_now[cls]));
    }

    for (const DeviceUtilizationRow& row : s.devices) {
      MetricLabels labels = model;
      labels.emplace_back("device", row.device);
      device_util.add(labels, row.sim_accel_utilization);
      device_busy.add(labels, row.sim_accel_busy_us);
      device_completed.add(std::move(labels),
                           static_cast<double>(row.completed));
    }

    for (std::size_t index = 0; index < set->replica_count(); ++index) {
      const std::shared_ptr<SharedDevice>& pu = set->device(index).shared;
      if (pu == nullptr ||
          std::find(seen_pus.begin(), seen_pus.end(), pu.get()) !=
              seen_pus.end()) {
        continue;
      }
      seen_pus.push_back(pu.get());
      const SharedDeviceSnapshot d = pu->snapshot();
      const MetricLabels labels{{"device", d.device}};
      pu_passes.add(labels, static_cast<double>(d.passes));
      pu_cobatched.add(labels, static_cast<double>(d.cobatched_passes));
      pu_cobatch_ratio.add(labels,
                           d.passes == 0
                               ? 0.0
                               : static_cast<double>(d.cobatched_passes) /
                                     static_cast<double>(d.passes));
      pu_switches.add(labels, static_cast<double>(d.model_switches));
      pu_busy.add(labels, d.busy_us);
      pu_util.add(labels, d.utilization);
    }
  }
  return registry.render();
}

}  // namespace mfdfp::serve
