#include "serve/server.hpp"

#include <stdexcept>
#include <utility>

namespace mfdfp::serve {

ModelHandle ModelServer::deploy(const std::string& name,
                                std::vector<hw::QNetDesc> members,
                                DeployConfig config) {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (shutdown_.load(std::memory_order_acquire)) {
    throw std::logic_error("ModelServer: deploy after shutdown");
  }
  return registry_.deploy(name, std::move(members), std::move(config));
}

bool ModelServer::undeploy(const std::string& name) {
  // Same lock as deploy()/shutdown(): an undeploy cannot interleave with a
  // concurrent deploy or shutdown of the same name — it observes either the
  // world before the other operation or the world after it, never a
  // half-swapped entry.
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  return registry_.undeploy(name);
}

std::future<Response> ModelServer::submit(const std::string& model,
                                          tensor::Tensor sample,
                                          SubmitOptions options) {
  // Fast path only; the router re-detects shutdown on a registry miss (the
  // flag is stored before the registry clears), so a submit racing
  // shutdown() still resolves kShuttingDown deterministically.
  if (shutdown_.load(std::memory_order_acquire)) {
    return ready_failure(StatusCode::kShuttingDown, "server shut down",
                         options.priority);
  }
  return router_.submit(model, std::move(sample), options);
}

void ModelServer::shutdown() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  // Flag first, clear second: a submit whose lookup misses because the
  // clear won is ordered (registry mutex) after the clear, and therefore
  // after this store — it reads the flag as true and reports kShuttingDown.
  shutdown_.store(true, std::memory_order_release);
  registry_.clear();
}

StatsSnapshot ModelServer::stats(const std::string& model) const {
  const std::shared_ptr<ReplicaSet> set = registry_.find(model);
  return set ? set->aggregated_snapshot() : StatsSnapshot{};
}

std::string ModelServer::stats_table(const std::string& model) const {
  const std::shared_ptr<ReplicaSet> set = registry_.find(model);
  return set ? set->stats_table(model) : std::string{};
}

}  // namespace mfdfp::serve
