// Dynamic batcher: coalesces queued requests into executor-sized batches.
//
// Policy (the standard serving trade-off): a batch closes as soon as
// `max_batch` requests are pending, or `max_wait_us` after the *oldest*
// request in the batch was enqueued — so batching adds at most `max_wait_us`
// to any request's latency, and under load batches fill instantly and the
// wait never triggers. Requests whose deadline already expired when the
// batch forms are failed immediately instead of wasting accelerator time.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/request_queue.hpp"

namespace mfdfp::serve {

struct BatcherConfig {
  std::size_t max_batch = 8;
  std::int64_t max_wait_us = 2000;
};

class DynamicBatcher {
 public:
  DynamicBatcher(RequestQueue& queue, BatcherConfig config);

  /// Blocks for the next batch. Returns false when the queue is closed and
  /// drained (worker should exit). On true, `batch` holds up to max_batch
  /// requests in FIFO order (possibly zero, if every candidate expired), and
  /// `expired` holds any requests that missed their deadline while queued
  /// (already failed — the caller only gets them for stats accounting).
  [[nodiscard]] bool next_batch(std::vector<Request>& batch,
                                std::vector<Request>& expired);

  [[nodiscard]] const BatcherConfig& config() const noexcept {
    return config_;
  }

 private:
  RequestQueue& queue_;
  BatcherConfig config_;
};

}  // namespace mfdfp::serve
