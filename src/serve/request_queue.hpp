// Thread-safe bounded queue of pending inference requests with strict
// priority lanes.
//
// Producers (client threads) push; consumers (the dynamic batcher, on behalf
// of worker threads) pop under a single mutex. In priority-aware mode
// (the default) the queue keeps one FIFO lane per Priority class and always
// drains kInteractive before kBatch — strict priority, no aging — while
// order *within* a lane stays FIFO, which is the fairness property
// test_serve.cpp checks. With `priority_aware = false` every request lands
// in a single global FIFO regardless of its priority class (the ablation
// baseline). Capacity is shared across lanes, except that in priority-aware
// mode 1/8 of it (minimum one slot, for capacities >= 2) is reserved for
// kInteractive: a deadline-less kBatch flood that admission control cannot
// shed would otherwise fill the queue and starve interactive traffic with
// kQueueFull at the door — the exact overload regime priority classes exist
// for.
//
// The queue supports the two waits batching needs: "block until at least one
// request or closed" and "block until >= n requests or a deadline or
// closed".
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "serve/request.hpp"
#include "util/mutex.hpp"

namespace mfdfp::serve {

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity = 1024,
                        bool priority_aware = true)
      : capacity_(capacity), priority_aware_(priority_aware) {}

  /// Enqueues a request into its priority lane. Returns false (leaving
  /// `request` untouched, promise included) when the queue is closed or
  /// full for that class — kBatch cannot use the interactive-reserved
  /// headroom — so the caller owns the rejection response.
  [[nodiscard]] bool push(Request&& request) EXCLUDES(mutex_);

  /// Blocks until a request is available (pops the highest-priority one into
  /// `out`, returns true) or the queue is closed *and* drained (returns
  /// false).
  [[nodiscard]] bool pop(Request& out) EXCLUDES(mutex_);

  /// Pops up to `n` requests without blocking, appending to `out` in strict
  /// priority order (all pending kInteractive before any kBatch). Returns
  /// how many were popped.
  std::size_t try_pop_n(std::vector<Request>& out, std::size_t n)
      EXCLUDES(mutex_);

  /// Blocks until the queue holds >= `n` requests, `deadline_us` (absolute,
  /// util::Stopwatch::now_us clock) passes, or the queue is closed.
  void wait_for_items(std::size_t n, std::int64_t deadline_us)
      EXCLUDES(mutex_);

  /// Closes the queue: subsequent pushes fail, waiters wake, pop() drains
  /// what is left and then returns false.
  void close() EXCLUDES(mutex_);

  [[nodiscard]] bool closed() const EXCLUDES(mutex_);
  [[nodiscard]] std::size_t size() const EXCLUDES(mutex_);
  /// Pending requests in one priority lane (always lane 0 when not
  /// priority-aware).
  [[nodiscard]] std::size_t size(Priority priority) const EXCLUDES(mutex_);
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Slots only kInteractive may occupy: 1/8 of capacity, but never less
  /// than one slot for capacities >= 2. Without the floor, capacities below
  /// 8 rounded the reserve to 0 and a kBatch flood could occupy every slot —
  /// the degenerate case the reserve exists to prevent. (0 when not
  /// priority-aware, or for capacities < 2 where reserving would leave
  /// kBatch no slot at all.)
  [[nodiscard]] std::size_t interactive_reserve() const noexcept {
    if (!priority_aware_ || capacity_ < 2) return 0;
    const std::size_t eighth = capacity_ / 8;
    return eighth == 0 ? 1 : eighth;
  }
  [[nodiscard]] bool priority_aware() const noexcept {
    return priority_aware_;
  }

 private:
  [[nodiscard]] std::size_t lane_of(Priority priority) const noexcept {
    return priority_aware_ ? static_cast<std::size_t>(priority) : 0;
  }
  [[nodiscard]] std::size_t total_locked() const noexcept REQUIRES(mutex_) {
    std::size_t total = 0;
    for (const auto& lane : lanes_) total += lane.size();
    return total;
  }

  mutable util::Mutex mutex_;
  util::CondVar ready_;
  std::array<std::deque<Request>, kPriorityClasses> lanes_ GUARDED_BY(mutex_);
  std::size_t capacity_;
  bool priority_aware_;
  bool closed_ GUARDED_BY(mutex_) = false;
};

}  // namespace mfdfp::serve
