// Thread-safe bounded FIFO of pending inference requests.
//
// Producers (client threads) push; consumers (the dynamic batcher, on behalf
// of worker threads) pop under a single mutex, so dequeue order is global
// FIFO — the fairness property test_serve.cpp checks. The queue supports the
// two waits batching needs: "block until at least one request or closed" and
// "block until >= n requests or a deadline or closed".
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "serve/request.hpp"

namespace mfdfp::serve {

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity = 1024) : capacity_(capacity) {}

  /// Enqueues a request. Returns false (leaving `request` untouched) when
  /// the queue is closed or full — the caller owns the rejection response.
  [[nodiscard]] bool push(Request&& request);

  /// Blocks until a request is available (pops into `out`, returns true) or
  /// the queue is closed *and* drained (returns false).
  [[nodiscard]] bool pop(Request& out);

  /// Pops up to `n` requests without blocking, appending to `out`.
  /// Returns how many were popped.
  std::size_t try_pop_n(std::vector<Request>& out, std::size_t n);

  /// Blocks until the queue holds >= `n` requests, `deadline_us` (absolute,
  /// util::Stopwatch::now_us clock) passes, or the queue is closed.
  void wait_for_items(std::size_t n, std::int64_t deadline_us);

  /// Closes the queue: subsequent pushes fail, waiters wake, pop() drains
  /// what is left and then returns false.
  void close();

  [[nodiscard]] bool closed() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<Request> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace mfdfp::serve
