#include "serve/worker_pool.hpp"

#include <stdexcept>
#include <utility>

namespace mfdfp::serve {

void WorkerPool::start(std::size_t count, std::function<void(std::size_t)> body) {
  if (!threads_.empty()) {
    throw std::logic_error("WorkerPool: already started");
  }
  threads_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    threads_.emplace_back(body, i);
  }
}

void WorkerPool::join() {
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
}

}  // namespace mfdfp::serve
