#include "serve/worker_pool.hpp"

#include <stdexcept>
#include <utility>

namespace mfdfp::serve {

void WorkerPool::start(std::size_t count,
                       std::function<void(std::size_t)> body) {
  util::MutexLock lock(mutex_);
  if (!threads_.empty() || joiners_ != 0) {
    throw std::logic_error("WorkerPool: already started");
  }
  threads_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    threads_.emplace_back(body, i);
  }
}

void WorkerPool::join() {
  // Claim the thread vector under the lock, join outside it (a join can
  // block indefinitely; holding the mutex across it would stall size() and
  // concurrent joiners). Callers that find the vector already claimed wait
  // until the claimant finishes, so join()'s postcondition — no pool thread
  // still running — holds for every caller, not just the one doing the work.
  std::vector<std::thread> claimed;
  {
    util::MutexLock lock(mutex_);
    if (threads_.empty()) {
      joined_.wait(mutex_, [this]() REQUIRES(mutex_) { return joiners_ == 0; });
      return;
    }
    claimed.swap(threads_);
    ++joiners_;
  }
  for (std::thread& thread : claimed) {
    if (thread.joinable()) thread.join();
  }
  {
    util::MutexLock lock(mutex_);
    --joiners_;
  }
  joined_.notify_all();
}

std::size_t WorkerPool::size() const {
  util::MutexLock lock(mutex_);
  return threads_.size();
}

}  // namespace mfdfp::serve
