#include "serve/router.hpp"

#include <utility>

namespace mfdfp::serve {

std::future<Response> Router::submit(const std::string& model,
                                     tensor::Tensor sample,
                                     SubmitOptions options) {
  const std::shared_ptr<InferenceEngine> engine = registry_.find(model);
  if (!engine) {
    not_found_.fetch_add(1, std::memory_order_relaxed);
    return ready_failure(StatusCode::kModelNotFound,
                         "no model deployed as \"" + model + "\"",
                         options.priority);
  }
  return engine->submit(std::move(sample), options);
}

double Router::estimated_queue_delay_us(const std::string& model) const {
  const std::shared_ptr<InferenceEngine> engine = registry_.find(model);
  return engine ? engine->estimated_queue_delay_us() : 0.0;
}

}  // namespace mfdfp::serve
