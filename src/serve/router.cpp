#include "serve/router.hpp"

#include <utility>

namespace mfdfp::serve {

std::future<Response> Router::submit(const std::string& model,
                                     tensor::Tensor sample,
                                     SubmitOptions options) {
  // The shared_ptr pins the set (and so its engines) for the whole submit
  // path: a concurrent undeploy/shutdown drains, it cannot free under us.
  const std::shared_ptr<ReplicaSet> replicas = registry_.find(model);
  if (!replicas) {
    // The registry mutex orders this miss after a concurrent clear(), and
    // the server stores its shutdown flag before clearing — so if the flag
    // reads false here, the model genuinely was not deployed.
    if (shutting_down_ != nullptr &&
        shutting_down_->load(std::memory_order_acquire)) {
      return ready_failure(StatusCode::kShuttingDown, "server shut down",
                           options.priority);
    }
    not_found_.fetch_add(1, std::memory_order_relaxed);
    return ready_failure(StatusCode::kModelNotFound,
                         "no model deployed as \"" + model + "\"",
                         options.priority);
  }
  return replicas->submit(std::move(sample), options);
}

double Router::estimated_queue_delay_us(const std::string& model) const {
  const std::shared_ptr<ReplicaSet> replicas = registry_.find(model);
  return replicas ? replicas->estimated_queue_delay_us() : 0.0;
}

}  // namespace mfdfp::serve
