#include "serve/stats.hpp"

#include <algorithm>
#include <sstream>

#include "util/table.hpp"

namespace mfdfp::serve {

namespace {
/// Windows shorter than this are reported with zero rates instead of
/// dividing by a near-zero wall time (inf/NaN guard).
constexpr double kMinWindowSeconds = 1e-6;
}  // namespace

void ServerStats::record_response(std::int64_t e2e_us,
                                  std::int64_t queue_wait_us,
                                  Priority priority) {
  util::MutexLock lock(mutex_);
  e2e_us_.record(e2e_us);
  e2e_us_by_class_[static_cast<std::size_t>(priority)].record(e2e_us);
  queue_wait_us_.record(queue_wait_us);
  ++completed_;
  ++completed_by_class_[static_cast<std::size_t>(priority)];
}

void ServerStats::record_timeout() {
  util::MutexLock lock(mutex_);
  ++timed_out_;
}

void ServerStats::record_rejected() {
  util::MutexLock lock(mutex_);
  ++rejected_;
}

void ServerStats::record_shedded() {
  util::MutexLock lock(mutex_);
  ++shedded_;
}

void ServerStats::record_queue_depth(std::size_t depth) {
  util::MutexLock lock(mutex_);
  queue_depth_.record(static_cast<std::int64_t>(depth));
}

void ServerStats::record_batch(std::size_t batch_size, double sim_accel_us,
                               double sim_dma_bytes) {
  util::MutexLock lock(mutex_);
  if (batch_size >= batch_sizes_.size()) {
    batch_sizes_.resize(batch_size + 1, 0);
  }
  ++batch_sizes_[batch_size];
  ++batches_;
  batched_requests_ += batch_size;
  sim_accel_busy_us_ += sim_accel_us;
  sim_dma_bytes_ += sim_dma_bytes;
}

StatsSnapshot ServerStats::snapshot() const {
  util::MutexLock lock(mutex_);
  return snapshot_with_window(window_.seconds());
}

StatsSnapshot ServerStats::aggregate(
    const std::vector<const ServerStats*>& parts,
    std::vector<PartTotals>* per_part) {
  // Merge every part into a scratch instance, one part-lock at a time. The
  // scratch is owned exclusively, but its (uncontended) lock is taken
  // anyway so the merge follows the same checkable lock discipline as
  // every other member access. total.mutex_ is a local the parts can never
  // hold, so the nesting cannot deadlock.
  ServerStats total;
  util::MutexLock total_lock(total.mutex_);
  double wall_seconds = 0.0;
  if (per_part != nullptr) {
    per_part->assign(parts.size(), PartTotals{});
  }
  for (std::size_t index = 0; index < parts.size(); ++index) {
    const ServerStats* part = parts[index];
    if (part == nullptr) continue;
    util::MutexLock lock(part->mutex_);
    if (per_part != nullptr) {
      PartTotals& row = (*per_part)[index];
      row.completed = part->completed_;
      row.sim_accel_busy_us = part->sim_accel_busy_us_;
      row.wall_seconds = part->window_.seconds();
      if (row.wall_seconds >= kMinWindowSeconds) {
        row.throughput_rps =
            static_cast<double>(row.completed) / row.wall_seconds;
        row.sim_accel_utilization =
            row.sim_accel_busy_us / (row.wall_seconds * 1e6);
      }
    }
    total.e2e_us_.merge(part->e2e_us_);
    for (std::size_t cls = 0; cls < kPriorityClasses; ++cls) {
      total.e2e_us_by_class_[cls].merge(part->e2e_us_by_class_[cls]);
      total.completed_by_class_[cls] += part->completed_by_class_[cls];
    }
    total.queue_wait_us_.merge(part->queue_wait_us_);
    total.queue_depth_.merge(part->queue_depth_);
    if (part->batch_sizes_.size() > total.batch_sizes_.size()) {
      total.batch_sizes_.resize(part->batch_sizes_.size(), 0);
    }
    for (std::size_t size = 0; size < part->batch_sizes_.size(); ++size) {
      total.batch_sizes_[size] += part->batch_sizes_[size];
    }
    total.completed_ += part->completed_;
    total.timed_out_ += part->timed_out_;
    total.rejected_ += part->rejected_;
    total.shedded_ += part->shedded_;
    total.batches_ += part->batches_;
    total.batched_requests_ += part->batched_requests_;
    total.sim_accel_busy_us_ += part->sim_accel_busy_us_;
    total.sim_dma_bytes_ += part->sim_dma_bytes_;
    wall_seconds = std::max(wall_seconds, part->window_.seconds());
  }
  return total.snapshot_with_window(wall_seconds);
}

StatsSnapshot ServerStats::snapshot_with_window(double wall_seconds) const {
  StatsSnapshot s;
  s.completed = completed_;
  s.timed_out = timed_out_;
  s.rejected = rejected_;
  s.shedded = shedded_;

  s.e2e_p50_us = e2e_us_.p50();
  s.e2e_p95_us = e2e_us_.p95();
  s.e2e_p99_us = e2e_us_.p99();
  s.e2e_max_us = e2e_us_.max();
  s.e2e_mean_us = e2e_us_.mean();
  s.queue_p50_us = queue_wait_us_.p50();
  s.queue_p99_us = queue_wait_us_.p99();

  for (std::size_t cls = 0; cls < kPriorityClasses; ++cls) {
    s.completed_by_class[cls] = completed_by_class_[cls];
    s.e2e_p50_us_by_class[cls] = e2e_us_by_class_[cls].p50();
    s.e2e_p99_us_by_class[cls] = e2e_us_by_class_[cls].p99();
  }

  s.batches = batches_;
  s.mean_batch_size =
      batches_ == 0 ? 0.0
                    : static_cast<double>(batched_requests_) /
                          static_cast<double>(batches_);
  s.batch_size_histogram = batch_sizes_;

  s.depth_p50 = queue_depth_.p50();
  s.depth_p99 = queue_depth_.p99();
  s.depth_max = queue_depth_.max();

  s.wall_seconds = wall_seconds;
  const bool window_valid = s.wall_seconds >= kMinWindowSeconds;
  s.throughput_rps =
      window_valid ? static_cast<double>(completed_) / s.wall_seconds : 0.0;

  s.sim_accel_busy_us = sim_accel_busy_us_;
  s.sim_dma_bytes = sim_dma_bytes_;
  s.sim_accel_utilization =
      window_valid ? sim_accel_busy_us_ / (s.wall_seconds * 1e6) : 0.0;
  return s;
}

std::string ServerStats::to_table(const std::string& title) const {
  return render_stats_tables(snapshot(), title);
}

std::string render_stats_tables(const StatsSnapshot& s,
                                const std::string& title) {
  std::ostringstream out;

  util::TablePrinter latency(title + " — latency & throughput");
  latency.set_header({"metric", "value"});
  latency.add_row({"completed", std::to_string(s.completed)});
  latency.add_row({"timed out", std::to_string(s.timed_out)});
  latency.add_row({"rejected", std::to_string(s.rejected)});
  latency.add_row({"shedded", std::to_string(s.shedded)});
  latency.add_row({"throughput (req/s)", util::fmt_fixed(s.throughput_rps, 1)});
  latency.add_row({"e2e p50 (us)", std::to_string(s.e2e_p50_us)});
  latency.add_row({"e2e p95 (us)", std::to_string(s.e2e_p95_us)});
  latency.add_row({"e2e p99 (us)", std::to_string(s.e2e_p99_us)});
  latency.add_row({"e2e max (us)", std::to_string(s.e2e_max_us)});
  for (std::size_t cls = 0; cls < kPriorityClasses; ++cls) {
    if (s.completed_by_class[cls] == 0) continue;
    const char* name = priority_name(static_cast<Priority>(cls));
    latency.add_row({std::string(name) + " p50/p99 (us)",
                     std::to_string(s.e2e_p50_us_by_class[cls]) + "/" +
                         std::to_string(s.e2e_p99_us_by_class[cls])});
  }
  latency.add_row({"queue wait p50 (us)", std::to_string(s.queue_p50_us)});
  latency.add_row({"queue wait p99 (us)", std::to_string(s.queue_p99_us)});
  latency.add_row({"queue depth p50/p99/max",
                   std::to_string(s.depth_p50) + "/" +
                       std::to_string(s.depth_p99) + "/" +
                       std::to_string(s.depth_max)});
  if (s.live_gauges) {
    for (std::size_t cls = 0; cls < kPriorityClasses; ++cls) {
      const char* name = priority_name(static_cast<Priority>(cls));
      latency.add_row({std::string(name) + " queued/outstanding now",
                       std::to_string(s.queue_depth_now[cls]) + "/" +
                           std::to_string(s.outstanding_now[cls])});
    }
  }
  out << latency.to_string() << "\n";

  util::TablePrinter batching(title + " — batching");
  batching.set_header({"batch size", "batches"});
  for (std::size_t size = 1; size < s.batch_size_histogram.size(); ++size) {
    if (s.batch_size_histogram[size] == 0) continue;
    batching.add_row({std::to_string(size),
                      std::to_string(s.batch_size_histogram[size])});
  }
  batching.add_row({"mean", util::fmt_fixed(s.mean_batch_size, 2)});
  out << batching.to_string() << "\n";

  util::TablePrinter hardware(title + " — simulated accelerator");
  hardware.set_header({"metric", "value"});
  hardware.add_row(
      {"busy time (us)", util::fmt_fixed(s.sim_accel_busy_us, 1)});
  hardware.add_row({"utilization (%)",
                    util::fmt_percent(s.sim_accel_utilization, 2)});
  hardware.add_row(
      {"DMA traffic (MB)", util::fmt_fixed(s.sim_dma_bytes / 1e6, 3)});
  out << hardware.to_string();

  if (!s.devices.empty()) {
    util::TablePrinter devices(title + " — devices");
    devices.set_header({"device", "model", "replicas", "speed", "completed",
                        "req/s", "busy (us)", "util (%)"});
    for (const DeviceUtilizationRow& row : s.devices) {
      // Merged shared-PU rows list the replica span, not one index.
      const std::string replicas =
          row.merged_replicas > 1
              ? std::to_string(row.merged_replicas) + " (shared)"
              : (row.shared ? std::to_string(row.replica) + " (shared)"
                            : std::to_string(row.replica));
      devices.add_row({row.device, row.model, replicas,
                       util::fmt_fixed(row.speed_factor, 2) + "x",
                       std::to_string(row.completed),
                       util::fmt_fixed(row.throughput_rps, 1),
                       util::fmt_fixed(row.sim_accel_busy_us, 1),
                       util::fmt_percent(row.sim_accel_utilization, 2)});
    }
    out << "\n" << devices.to_string();
  }
  return out.str();
}

void ServerStats::clear() {
  util::MutexLock lock(mutex_);
  e2e_us_.clear();
  for (auto& histogram : e2e_us_by_class_) histogram.clear();
  queue_wait_us_.clear();
  queue_depth_.clear();
  batch_sizes_.clear();
  completed_ = timed_out_ = rejected_ = shedded_ = 0;
  completed_by_class_.fill(0);
  batches_ = batched_requests_ = 0;
  sim_accel_busy_us_ = 0.0;
  sim_dma_bytes_ = 0.0;
  window_.reset();
}

}  // namespace mfdfp::serve
