#include "serve/registry.hpp"

#include <stdexcept>
#include <utility>

namespace mfdfp::serve {

ModelHandle ModelRegistry::deploy(
    const std::string& name, std::vector<hw::QNetDesc> members,
    DeployConfig config,
    const std::function<void(const ReplicaSet&)>& validate) {
  if (name.empty()) {
    throw std::invalid_argument("ModelRegistry: empty model name");
  }

  // Reserve the version first so concurrent redeploys of one name get
  // distinct versions even though replica sets are built outside the lock.
  std::uint32_t version = 0;
  {
    util::MutexLock lock(mutex_);
    version = ++last_version_[name];
  }

  config.model_name = name;
  config.model_version = version;
  // Server-wide plan sharing: unless the caller brought their own cache,
  // every replica/tenant of this deployment — and any other deployment of
  // identical content — compiles once per (content, device class).
  if (config.plan_cache == nullptr) config.plan_cache = plan_cache_;
  // Built outside the lock: on redeploy the old set keeps serving while
  // every replacement replica constructs (weight predecode, worker spawn).
  auto replicas =
      std::make_shared<ReplicaSet>(std::move(members), std::move(config));

  // Deploy-time validation on the built-but-unpublished candidate, still
  // outside the lock: a throw here unwinds the candidate set (its workers
  // drain and its shared-PU tenants release in ~ReplicaSet) while the old
  // entry — if any — keeps serving as if this deploy never happened.
  if (validate) validate(*replicas);

  std::shared_ptr<ReplicaSet> replaced;
  {
    util::MutexLock lock(mutex_);
    Entry& entry = entries_[name];
    // A concurrent deploy may have published a newer version already; only
    // swap in if this deployment is the newest.
    if (entry.replicas && entry.version > version) {
      replaced = std::move(replicas);
    } else {
      replaced = std::exchange(entry.replicas, std::move(replicas));
      entry.version = version;
    }
  }
  if (replaced) replaced->stop();  // drain in-flight work of the loser
  return ModelHandle{name, version};
}

bool ModelRegistry::undeploy(const std::string& name) {
  std::shared_ptr<ReplicaSet> removed;
  {
    util::MutexLock lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end()) return false;
    removed = std::move(it->second.replicas);
    entries_.erase(it);
  }
  removed->stop();  // drain: every queued request resolves before we return
  return true;
}

std::shared_ptr<ReplicaSet> ModelRegistry::find(
    const std::string& name) const {
  util::MutexLock lock(mutex_);
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.replicas;
}

std::vector<ModelHandle> ModelRegistry::models() const {
  util::MutexLock lock(mutex_);
  std::vector<ModelHandle> handles;
  handles.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    handles.push_back(ModelHandle{name, entry.version});
  }
  return handles;
}

std::size_t ModelRegistry::size() const {
  util::MutexLock lock(mutex_);
  return entries_.size();
}

void ModelRegistry::clear() {
  std::vector<std::shared_ptr<ReplicaSet>> removed;
  {
    util::MutexLock lock(mutex_);
    removed.reserve(entries_.size());
    for (auto& [name, entry] : entries_) {
      removed.push_back(std::move(entry.replicas));
    }
    entries_.clear();
  }
  for (auto& replicas : removed) replicas->stop();
}

}  // namespace mfdfp::serve
