#include "serve/registry.hpp"

#include <stdexcept>
#include <utility>

namespace mfdfp::serve {

ModelHandle ModelRegistry::deploy(const std::string& name,
                                  std::vector<hw::QNetDesc> members,
                                  DeployConfig config) {
  if (name.empty()) {
    throw std::invalid_argument("ModelRegistry: empty model name");
  }

  // Reserve the version first so concurrent redeploys of one name get
  // distinct versions even though engines are built outside the lock.
  std::uint32_t version = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    version = ++last_version_[name];
  }

  config.model_name = name;
  config.model_version = version;
  // Built outside the lock: on redeploy the old engine keeps serving while
  // the replacement constructs (weight predecode, worker spawn).
  auto engine = std::make_shared<InferenceEngine>(std::move(members),
                                                  std::move(config));

  std::shared_ptr<InferenceEngine> replaced;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Entry& entry = entries_[name];
    // A concurrent deploy may have published a newer version already; only
    // swap in if this deployment is the newest.
    if (entry.engine && entry.version > version) {
      replaced = std::move(engine);
    } else {
      replaced = std::exchange(entry.engine, std::move(engine));
      entry.version = version;
    }
  }
  if (replaced) replaced->stop();  // drain in-flight work of the loser
  return ModelHandle{name, version};
}

bool ModelRegistry::undeploy(const std::string& name) {
  std::shared_ptr<InferenceEngine> removed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    if (it == entries_.end()) return false;
    removed = std::move(it->second.engine);
    entries_.erase(it);
  }
  removed->stop();  // drain: every queued request resolves before we return
  return true;
}

std::shared_ptr<InferenceEngine> ModelRegistry::find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.engine;
}

std::vector<ModelHandle> ModelRegistry::models() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ModelHandle> handles;
  handles.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    handles.push_back(ModelHandle{name, entry.version});
  }
  return handles;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void ModelRegistry::clear() {
  std::vector<std::shared_ptr<InferenceEngine>> removed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    removed.reserve(entries_.size());
    for (auto& [name, entry] : entries_) {
      removed.push_back(std::move(entry.engine));
    }
    entries_.clear();
  }
  for (auto& engine : removed) engine->stop();
}

}  // namespace mfdfp::serve
