// Request/response types of the serving layer.
//
// A request carries one input sample (one image, {C,H,W} or {1,C,H,W}) plus
// its priority class, arrival timestamp and optional absolute deadline; the
// response carries a typed StatusCode (status.hpp), the logits, and the
// per-request accounting the stats collector aggregates: wall-clock
// queue/service/e2e times and the *simulated* accelerator cost of the batch
// the request rode in (cycle-model latency, traffic-model DMA bytes). Wall
// times measure the host serving stack; simulated times are what the paper's
// accelerator would take — keeping both lets the benches separate scheduling
// overhead from modeled hardware speed.
#pragma once

#include <cstdint>
#include <future>
#include <string>

#include "serve/status.hpp"
#include "tensor/tensor.hpp"

namespace mfdfp::serve {

using RequestId = std::uint64_t;

/// Scheduling class of a request. Strict priority: the queue always drains
/// kInteractive before kBatch, and admission control only ever sheds kBatch.
enum class Priority : std::uint8_t {
  kInteractive = 0,  ///< latency-sensitive; never shed
  kBatch = 1,        ///< throughput traffic; shed under overload
};

inline constexpr std::size_t kPriorityClasses = 2;

[[nodiscard]] constexpr const char* priority_name(Priority priority) noexcept {
  return priority == Priority::kInteractive ? "interactive" : "batch";
}

/// Per-submit options of the ModelServer / engine front door.
struct SubmitOptions {
  Priority priority = Priority::kInteractive;
  /// Absolute deadline on the util::Stopwatch::now_us clock.
  /// -1 = use the model's configured default; 0 = no deadline.
  std::int64_t deadline_us = -1;
};

struct Response {
  StatusCode status = StatusCode::kInvalidInput;
  std::string detail;     ///< human-readable failure context (logs only)
  tensor::Tensor logits;  ///< {1, classes}; empty unless status == kOk
  int predicted_class = -1;

  // Which deployment served the request (empty/0 on pre-dispatch failures).
  std::string model;
  std::uint32_t model_version = 0;
  /// Index of the replica that executed the request within its ReplicaSet
  /// (0 for single-replica deployments; meaningful only when status == kOk).
  std::uint32_t replica = 0;
  /// Name of the accelerator device that executed the request (the
  /// replica's DeviceSpec; empty on pre-dispatch failures).
  std::string device;
  Priority priority = Priority::kInteractive;

  // Wall-clock accounting (microseconds, host monotonic clock).
  std::int64_t queue_wait_us = 0;  ///< enqueue -> batch formation
  std::int64_t service_us = 0;     ///< batch formation -> completion
  std::int64_t e2e_us = 0;         ///< enqueue -> completion

  // Batch context.
  std::size_t batch_size = 0;  ///< how many requests shared the batch

  // Simulated-hardware accounting (note the differing attribution:
  // sim_accel_us is the whole batch's latency — every rider experienced all
  // of it — while DMA bytes are divided across the batch's requests so
  // summing responses never double-counts traffic).
  double sim_accel_us = 0.0;   ///< cycle-model latency of the whole batch
  double sim_dma_bytes = 0.0;  ///< traffic-model bytes, this request's share
};

struct Request {
  RequestId id = 0;
  tensor::Tensor input;
  Priority priority = Priority::kInteractive;
  std::int64_t enqueue_us = 0;   ///< util::Stopwatch::now_us() at submit
  std::int64_t deadline_us = 0;  ///< absolute, same clock; 0 = no deadline
  std::promise<Response> promise;
};

/// Fails a request with a ready response carrying `code`.
inline void fail_request(Request& request, StatusCode code,
                         std::string detail = "") {
  Response response;
  response.status = code;
  response.detail = std::move(detail);
  response.priority = request.priority;
  request.promise.set_value(std::move(response));
}

/// An already-resolved failure future, for rejections that never reach a
/// queue (model not found, server shut down, ...). Stamps the submitter's
/// priority so failure accounting by class stays correct pre-dispatch.
[[nodiscard]] inline std::future<Response> ready_failure(
    StatusCode code, std::string detail = "",
    Priority priority = Priority::kInteractive) {
  std::promise<Response> promise;
  Response response;
  response.status = code;
  response.detail = std::move(detail);
  response.priority = priority;
  promise.set_value(std::move(response));
  return promise.get_future();
}

}  // namespace mfdfp::serve
