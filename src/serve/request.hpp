// Request/response types of the serving layer.
//
// A request carries one input sample (one image, {C,H,W} or {1,C,H,W}) plus
// its arrival timestamp and optional absolute deadline; the response carries
// the logits plus the per-request accounting the stats collector aggregates:
// wall-clock queue/service/e2e times and the *simulated* accelerator cost of
// the batch the request rode in (cycle-model latency, traffic-model DMA
// bytes). Wall times measure the host serving stack; simulated times are
// what the paper's accelerator would take — keeping both lets the benches
// separate scheduling overhead from modeled hardware speed.
#pragma once

#include <cstdint>
#include <future>
#include <string>

#include "tensor/tensor.hpp"

namespace mfdfp::serve {

using RequestId = std::uint64_t;

struct Response {
  bool ok = false;
  std::string error;      ///< set when !ok ("deadline exceeded", ...)
  tensor::Tensor logits;  ///< {1, classes}; empty when !ok
  int predicted_class = -1;

  // Wall-clock accounting (microseconds, host monotonic clock).
  std::int64_t queue_wait_us = 0;  ///< enqueue -> batch formation
  std::int64_t service_us = 0;     ///< batch formation -> completion
  std::int64_t e2e_us = 0;         ///< enqueue -> completion

  // Batch context.
  std::size_t batch_size = 0;  ///< how many requests shared the batch

  // Simulated-hardware accounting for the whole batch this request rode in.
  double sim_accel_us = 0.0;   ///< cycle-model latency of the batch
  double sim_dma_bytes = 0.0;  ///< traffic-model bytes attributed per request
};

struct Request {
  RequestId id = 0;
  tensor::Tensor input;
  std::int64_t enqueue_us = 0;   ///< util::Stopwatch::now_us() at submit
  std::int64_t deadline_us = 0;  ///< absolute, same clock; 0 = no deadline
  std::promise<Response> promise;
};

/// Fails a request with a ready error response.
inline void fail_request(Request& request, std::string error) {
  Response response;
  response.ok = false;
  response.error = std::move(error);
  request.promise.set_value(std::move(response));
}

}  // namespace mfdfp::serve
