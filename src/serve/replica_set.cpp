#include "serve/replica_set.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

#include "util/table.hpp"

namespace mfdfp::serve {

ReplicaSet::ReplicaSet(std::vector<hw::QNetDesc> members,
                       DeployConfig config)
    : config_(std::move(config)) {
  // Placement wins over num_replicas: one replica per listed device.
  // Validate every entry before building anything — a half-constructed set
  // whose later device is invalid would have started worker pools already.
  if (!config_.placement.empty()) {
    config_.num_replicas = config_.placement.size();
    for (std::size_t index = 0; index < config_.placement.size(); ++index) {
      if (!config_.placement[index].valid()) {
        throw std::invalid_argument(
            "ReplicaSet: placement[" + std::to_string(index) +
            "] has speed_factor <= 0");
      }
    }
  } else if (!config_.device.valid()) {
    throw std::invalid_argument(
        "ReplicaSet: config.device has speed_factor <= 0");
  }
  if (config_.num_replicas == 0) config_.num_replicas = 1;

  replicas_.reserve(config_.num_replicas);
  for (std::size_t index = 0; index < config_.num_replicas; ++index) {
    DeployConfig replica_config = config_;
    replica_config.replica_index = static_cast<std::uint32_t>(index);
    if (!config_.placement.empty()) {
      replica_config.device = config_.placement[index];
    }
    // Each engine holds only its own device; the set-level list stays in
    // config_.placement.
    replica_config.placement.clear();
    // The last replica can move the members; the others copy.
    std::vector<hw::QNetDesc> replica_members =
        index + 1 == config_.num_replicas ? std::move(members) : members;
    replicas_.push_back(std::make_shared<InferenceEngine>(
        std::move(replica_members), std::move(replica_config)));
  }
}

std::size_t ReplicaSet::pick_replica() {
  // Least-loaded replica under the configured policy. kNormalizedWork
  // compares outstanding work in modeled microseconds on each replica's own
  // device — per-sample cost already divides by the device's speed_factor,
  // so a 2x replica reports half the delay for the same backlog and
  // naturally absorbs 2x the traffic. kOutstandingCount compares raw
  // request counts (speed-blind; the ablation baseline). The tied minimum
  // is collected in the same pass that finds it: loads shift under
  // concurrent submits, and re-reading them for the tie-break could leave
  // it with no candidates.
  const bool normalized =
      config_.routing == RoutingPolicy::kNormalizedWork;
  double best = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> tied;
  tied.reserve(replicas_.size());
  for (std::size_t index = 0; index < replicas_.size(); ++index) {
    const double load =
        normalized
            ? replicas_[index]->outstanding_work_us()
            : static_cast<double>(replicas_[index]->outstanding_total());
    if (load < best) {
      best = load;
      tied.assign(1, index);
    } else if (load == best) {
      tied.push_back(index);
    }
  }
  // Round-robin across the tied minimum so an idle set spreads traffic
  // instead of piling onto the first replica.
  if (tied.size() == 1) return tied.front();
  return tied[round_robin_.fetch_add(1, std::memory_order_relaxed) %
              tied.size()];
}

std::future<Response> ReplicaSet::submit(tensor::Tensor sample,
                                         SubmitOptions options) {
  const std::size_t index = pick_replica();
  const std::shared_ptr<InferenceEngine>& target = replicas_[index];

  // Set-wide QoS quota: kBatch admission is capped across all replicas, so
  // a batch flood cannot occupy N queues just because the model is
  // replicated. Checked against the pre-submit total — concurrent
  // submitters may overshoot by their count, which is stats-grade
  // enforcement, not a hard resource bound (each replica queue stays
  // bounded regardless).
  if (config_.batch_quota > 0 && options.priority == Priority::kBatch &&
      outstanding_batch() >= config_.batch_quota) {
    quota_shed_.fetch_add(1, std::memory_order_relaxed);
    target->stats().record_shedded();
    return ready_failure(StatusCode::kShedded,
                         "batch quota exhausted across replica set",
                         options.priority);
  }
  return target->submit(std::move(sample), options);
}

void ReplicaSet::stop() {
  for (const auto& replica : replicas_) replica->stop();
}

double ReplicaSet::total_speed() const noexcept {
  double total = 0.0;
  for (const auto& replica : replicas_) {
    total += replica->device().speed_factor;
  }
  return total;
}

std::size_t ReplicaSet::outstanding_batch() const noexcept {
  std::size_t total = 0;
  for (const auto& replica : replicas_) {
    total += replica->outstanding(Priority::kBatch);
  }
  return total;
}

std::size_t ReplicaSet::queue_depth() const {
  std::size_t total = 0;
  for (const auto& replica : replicas_) total += replica->queue_depth();
  return total;
}

double ReplicaSet::estimated_queue_delay_us() const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& replica : replicas_) {
    best = std::min(best, replica->estimated_queue_delay_us());
  }
  return replicas_.empty() ? 0.0 : best;
}

StatsSnapshot ReplicaSet::aggregated_snapshot() const {
  std::vector<const ServerStats*> parts;
  parts.reserve(replicas_.size());
  for (const auto& replica : replicas_) parts.push_back(&replica->stats());
  // Per-part totals come out of the same locked pass as the merge, so the
  // device rows always sum to the aggregate's counters — and no replica is
  // snapshotted (percentiles and all) a second time just for four scalars.
  std::vector<ServerStats::PartTotals> totals;
  StatsSnapshot total = ServerStats::aggregate(parts, &totals);

  // Attach one utilization row per replica device — only the set knows
  // which DeviceSpec each replica executes on.
  total.devices.reserve(replicas_.size());
  for (std::size_t index = 0; index < replicas_.size(); ++index) {
    DeviceUtilizationRow row;
    row.device = replicas_[index]->device().name;
    row.speed_factor = replicas_[index]->device().speed_factor;
    row.replica = static_cast<std::uint32_t>(index);
    row.completed = totals[index].completed;
    row.sim_accel_busy_us = totals[index].sim_accel_busy_us;
    row.sim_accel_utilization = totals[index].sim_accel_utilization;
    row.throughput_rps = totals[index].throughput_rps;
    total.devices.push_back(std::move(row));
  }
  return total;
}

std::vector<StatsSnapshot> ReplicaSet::replica_snapshots() const {
  std::vector<StatsSnapshot> snapshots;
  snapshots.reserve(replicas_.size());
  for (const auto& replica : replicas_) {
    snapshots.push_back(replica->stats().snapshot());
  }
  return snapshots;
}

std::string ReplicaSet::stats_table(const std::string& title) const {
  std::string out = render_stats_tables(aggregated_snapshot(), title);
  if (replicas_.size() < 2) return out;

  util::TablePrinter per_replica(title + " — per replica");
  per_replica.set_header({"replica", "device", "speed", "completed",
                          "timed out", "shedded", "e2e p50 (us)",
                          "e2e p99 (us)", "sim busy (us)"});
  const std::vector<StatsSnapshot> snapshots = replica_snapshots();
  for (std::size_t index = 0; index < snapshots.size(); ++index) {
    const StatsSnapshot& s = snapshots[index];
    const DeviceSpec& device = replicas_[index]->device();
    per_replica.add_row({std::to_string(index), device.name,
                         util::fmt_fixed(device.speed_factor, 2) + "x",
                         std::to_string(s.completed),
                         std::to_string(s.timed_out),
                         std::to_string(s.shedded),
                         std::to_string(s.e2e_p50_us),
                         std::to_string(s.e2e_p99_us),
                         util::fmt_fixed(s.sim_accel_busy_us, 1)});
  }
  out += "\n";
  out += per_replica.to_string();
  return out;
}

}  // namespace mfdfp::serve
