#include "serve/replica_set.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "serve/shared_device.hpp"
#include "util/table.hpp"

namespace mfdfp::serve {

namespace {

/// The DeviceSpec a tenant engine on a shared PU resolves to: the PU's
/// identity and provisioning (its name and speed are authoritative), the
/// placement entry's scheduling overrides (workers / max_batch /
/// queue_capacity), and the handle itself so stats can find the device.
DeviceSpec merge_shared_spec(const DeviceSpec& entry,
                             const SharedDevice& device) {
  DeviceSpec merged = device.spec();  // PU identity + its default overrides
  if (entry.workers != 0) merged.workers = entry.workers;
  if (entry.max_batch != 0) merged.max_batch = entry.max_batch;
  if (entry.queue_capacity != 0) merged.queue_capacity = entry.queue_capacity;
  merged.shared = entry.shared;
  return merged;
}

}  // namespace

ReplicaSet::ReplicaSet(std::vector<hw::QNetDesc> members,
                       DeployConfig config)
    : config_(std::move(config)) {
  // Placement wins over num_replicas: one replica per listed device.
  // Validate every entry before building anything — a half-constructed set
  // whose later device is invalid would have started worker pools already.
  if (!config_.placement.empty()) {
    config_.num_replicas = config_.placement.size();
    for (std::size_t index = 0; index < config_.placement.size(); ++index) {
      if (!config_.placement[index].valid()) {
        throw std::invalid_argument(
            "ReplicaSet: placement[" + std::to_string(index) +
            "] has speed_factor <= 0 and no shared device");
      }
    }
  } else if (!config_.device.valid()) {
    throw std::invalid_argument(
        "ReplicaSet: config.device has speed_factor <= 0");
  }
  if (config_.num_replicas == 0) config_.num_replicas = 1;

  replicas_.reserve(config_.num_replicas);
  for (std::size_t index = 0; index < config_.num_replicas; ++index) {
    DeployConfig replica_config = config_;
    replica_config.replica_index = static_cast<std::uint32_t>(index);
    if (!config_.placement.empty()) {
      replica_config.device = config_.placement[index];
    }
    // Each engine holds only its own device; the set-level list stays in
    // config_.placement.
    replica_config.placement.clear();
    // The last replica can move the members; the others copy.
    std::vector<hw::QNetDesc> replica_members =
        index + 1 == config_.num_replicas ? std::move(members) : members;
    if (replica_config.device.shared != nullptr) {
      // Shared PU: attach a tenant backend to the named device instead of
      // provisioning a private simulated accelerator. The engine is built
      // through the ordinary backend-injection seam — no engine changes.
      const std::shared_ptr<SharedDevice> device =
          replica_config.device.shared;
      replica_config.device =
          merge_shared_spec(replica_config.device, *device);
      std::shared_ptr<const SharedDeviceBackend> backend = device->attach(
          std::move(replica_members), replica_config,
          replica_config.device);
      replicas_.push_back(std::make_shared<InferenceEngine>(
          std::move(backend), std::move(replica_config)));
    } else {
      replicas_.push_back(std::make_shared<InferenceEngine>(
          std::move(replica_members), std::move(replica_config)));
    }
  }

  // Make each tenant's full engine-side backlog (queued + executing)
  // visible to its device, so the other tenants' admission control and
  // routing price a shared PU's true aggregate outstanding work (no-op
  // for dedicated backends). weak_ptr: the device outlives the engine,
  // and a drained tenant prices as 0. Bound only now, after every replica
  // constructed: a throw mid-construction unwinds engines whose providers
  // were never bound, and stop() unbinds before the last engine reference
  // can drop (see ExecutionBackend::bind_load_provider) — so no provider
  // can ever outlive, or destroy, its engine.
  for (const auto& replica : replicas_) {
    replica->backend().bind_load_provider(
        [weak = std::weak_ptr<InferenceEngine>(replica)] {
          const std::shared_ptr<InferenceEngine> engine = weak.lock();
          return engine ? engine->outstanding_work_us() : 0.0;
        });
  }
}

std::size_t ReplicaSet::pick_replica() {
  // Least-loaded replica under the configured policy. kNormalizedWork
  // compares estimated queue delay in modeled microseconds on each
  // replica's own device — per-sample cost already divides by the device's
  // speed_factor, so a 2x replica reports half the delay for the same
  // backlog and naturally absorbs 2x the traffic, and on a *shared* device
  // the estimate counts every tenant's outstanding work, so a replica
  // co-located with a busy neighbour stops looking idle. kOutstandingCount
  // compares raw request counts (speed- and tenant-blind; the ablation
  // baseline). The tied minimum is collected in the same pass that finds
  // it: loads shift under concurrent submits, and re-reading them for the
  // tie-break could leave it with no candidates.
  const bool normalized =
      config_.routing == RoutingPolicy::kNormalizedWork;
  double best = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> tied;
  tied.reserve(replicas_.size());
  for (std::size_t index = 0; index < replicas_.size(); ++index) {
    const double load =
        normalized
            ? replicas_[index]->estimated_queue_delay_us()
            : static_cast<double>(replicas_[index]->outstanding_total());
    if (load < best) {
      best = load;
      tied.assign(1, index);
    } else if (load == best) {
      tied.push_back(index);
    }
  }
  // Round-robin across the tied minimum so an idle set spreads traffic
  // instead of piling onto the first replica.
  if (tied.size() == 1) return tied.front();
  return tied[round_robin_.fetch_add(1, std::memory_order_relaxed) %
              tied.size()];
}

std::future<Response> ReplicaSet::submit(tensor::Tensor sample,
                                         SubmitOptions options) {
  const std::size_t index = pick_replica();
  const std::shared_ptr<InferenceEngine>& target = replicas_[index];

  // Set-wide QoS quota: kBatch admission is capped across all replicas, so
  // a batch flood cannot occupy N queues just because the model is
  // replicated. Checked against the pre-submit total — concurrent
  // submitters may overshoot by their count, which is stats-grade
  // enforcement, not a hard resource bound (each replica queue stays
  // bounded regardless).
  if (config_.batch_quota > 0 && options.priority == Priority::kBatch &&
      outstanding_batch() >= config_.batch_quota) {
    quota_shed_.fetch_add(1, std::memory_order_relaxed);
    target->stats().record_shedded();
    return ready_failure(StatusCode::kShedded,
                         "batch quota exhausted across replica set",
                         options.priority);
  }
  return target->submit(std::move(sample), options);
}

void ReplicaSet::stop() {
  for (const auto& replica : replicas_) replica->stop();
  // Unbind load providers before any engine reference can be dropped: a
  // provider's weak_ptr::lock on another thread — running under a shared
  // device's mutex — must never become the *last* owner of an engine,
  // because ~InferenceEngine would then re-enter that mutex through
  // ~SharedDeviceBackend -> release_tenant and self-deadlock. Unbinding
  // serializes on the same mutex, so any provider call already in flight
  // (and its temporary shared_ptr) completes before the unbind returns,
  // and none can start afterwards. The engines are drained at this point,
  // so pricing their load as the lane's own pending work is also simply
  // correct. No-op for dedicated backends.
  for (const auto& replica : replicas_) {
    replica->backend().bind_load_provider(nullptr);
  }
}

double ReplicaSet::total_speed() const noexcept {
  // Each *physical* device counts once: two replicas attached to one shared
  // PU add one PU's worth of provisioning, not two.
  double total = 0.0;
  std::vector<const SharedDevice*> counted;
  for (const auto& replica : replicas_) {
    const DeviceSpec& device = replica->device();
    if (device.shared != nullptr) {
      if (std::find(counted.begin(), counted.end(), device.shared.get()) !=
          counted.end()) {
        continue;
      }
      counted.push_back(device.shared.get());
    }
    total += device.speed_factor;
  }
  return total;
}

std::size_t ReplicaSet::outstanding_batch() const noexcept {
  std::size_t total = 0;
  for (const auto& replica : replicas_) {
    total += replica->outstanding(Priority::kBatch);
  }
  return total;
}

std::size_t ReplicaSet::queue_depth() const {
  std::size_t total = 0;
  for (const auto& replica : replicas_) total += replica->queue_depth();
  return total;
}

std::size_t ReplicaSet::queue_depth(Priority priority) const {
  std::size_t total = 0;
  for (const auto& replica : replicas_) {
    total += replica->queue_depth(priority);
  }
  return total;
}

std::size_t ReplicaSet::outstanding(Priority priority) const noexcept {
  std::size_t total = 0;
  for (const auto& replica : replicas_) {
    total += replica->outstanding(priority);
  }
  return total;
}

double ReplicaSet::estimated_queue_delay_us() const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& replica : replicas_) {
    best = std::min(best, replica->estimated_queue_delay_us());
  }
  return replicas_.empty() ? 0.0 : best;
}

analysis::ModelFacts ReplicaSet::capacity_facts() const {
  analysis::ModelFacts facts;
  facts.model = config_.model_name.empty() ? "model" : config_.model_name;
  facts.envelope = config_.envelope;
  facts.admission_control = config_.admission_control;
  facts.batch_quota = config_.batch_quota;
  facts.replicas.reserve(replicas_.size());
  for (std::size_t index = 0; index < replicas_.size(); ++index) {
    const InferenceEngine& engine = *replicas_[index];
    const DeviceSpec& device = engine.device();
    const DeployConfig& resolved = engine.config();
    analysis::ReplicaFacts r;
    r.device = device.name;
    r.shared = device.shared != nullptr;
    r.speed_factor = device.speed_factor;
    // The same per-sample price admission and routing use — the analyzer's
    // single-source-of-truth contract (see analysis/capacity.hpp).
    r.sample_us = engine.simulated_sample_us();
    r.max_batch = resolved.max_batch;
    r.max_wait_us = resolved.max_wait_us;
    r.queue_capacity = resolved.queue_capacity;
    if (device.shared != nullptr) {
      // All replicas of all models naming this PU contend for one device:
      // key by the PU so the analyzer groups them.
      r.device_key = device.name;
      const SharedDeviceConfig& pu = device.shared->config();
      r.max_pass_samples = pu.max_pass_samples;
      r.cobatch = pu.cobatch;
      r.coalesce_window_us = pu.coalesce_window_us;
      r.pass_overhead_us = pu.pass_overhead_us;
      r.preempt_granularity_us = pu.preempt_granularity_us;
      if (const auto* backend = dynamic_cast<const SharedDeviceBackend*>(
              &engine.backend())) {
        r.switch_us = backend->switch_us();
      }
    } else {
      // A dedicated device is private hardware: two models' "dev0" are
      // distinct, so the key carries the deployment identity.
      r.device_key =
          facts.model + "/" + device.name + "#r" + std::to_string(index);
    }
    facts.replicas.push_back(std::move(r));
  }
  return facts;
}

StatsSnapshot ReplicaSet::aggregated_snapshot() const {
  std::vector<const ServerStats*> parts;
  parts.reserve(replicas_.size());
  for (const auto& replica : replicas_) parts.push_back(&replica->stats());
  // Per-part totals come out of the same locked pass as the merge, so the
  // device rows always sum to the aggregate's counters — and no replica is
  // snapshotted (percentiles and all) a second time just for four scalars.
  std::vector<ServerStats::PartTotals> totals;
  StatsSnapshot total = ServerStats::aggregate(parts, &totals);

  // Live per-lane gauges: what is queued / outstanding right now, as
  // opposed to the window aggregates above.
  total.live_gauges = true;
  for (std::size_t cls = 0; cls < kPriorityClasses; ++cls) {
    const Priority lane = static_cast<Priority>(cls);
    total.queue_depth_now[cls] = queue_depth(lane);
    total.outstanding_now[cls] = outstanding(lane);
  }

  // Attach one utilization row per *physical* device — only the set knows
  // which DeviceSpec each replica executes on. Replicas placed on the same
  // shared PU (identical DeviceSpec::shared handle) merge into one row:
  // their busy times and completions add, and the merged utilization is the
  // device's, so one PU can never render as N devices at up to N x 100%.
  total.devices.reserve(replicas_.size());
  // Physical identity of each emitted row: the SharedDevice handle for
  // shared rows (merge key), null for dedicated ones (never merged).
  std::vector<const SharedDevice*> row_identity;
  row_identity.reserve(replicas_.size());
  for (std::size_t index = 0; index < replicas_.size(); ++index) {
    const DeviceSpec& device = replicas_[index]->device();
    DeviceUtilizationRow row;
    row.device = device.name;
    row.model = config_.model_name;
    row.speed_factor = device.speed_factor;
    row.replica = static_cast<std::uint32_t>(index);
    row.shared = device.shared != nullptr;
    row.completed = totals[index].completed;
    row.sim_accel_busy_us = totals[index].sim_accel_busy_us;
    row.sim_accel_utilization = totals[index].sim_accel_utilization;
    row.throughput_rps = totals[index].throughput_rps;

    // Merge into the existing row of the same physical shared device.
    bool absorbed = false;
    if (row.shared) {
      for (std::size_t prior = 0; prior < total.devices.size(); ++prior) {
        if (row_identity[prior] == device.shared.get()) {
          DeviceUtilizationRow& target = total.devices[prior];
          target.merged_replicas += 1;
          target.completed += row.completed;
          target.sim_accel_busy_us += row.sim_accel_busy_us;
          target.sim_accel_utilization += row.sim_accel_utilization;
          target.throughput_rps += row.throughput_rps;
          absorbed = true;
          break;
        }
      }
    }
    if (!absorbed) {
      row_identity.push_back(row.shared ? device.shared.get() : nullptr);
      total.devices.push_back(std::move(row));
    }
  }
  return total;
}

std::vector<StatsSnapshot> ReplicaSet::replica_snapshots() const {
  std::vector<StatsSnapshot> snapshots;
  snapshots.reserve(replicas_.size());
  for (const auto& replica : replicas_) {
    snapshots.push_back(replica->stats().snapshot());
  }
  return snapshots;
}

std::string ReplicaSet::stats_table(const std::string& title) const {
  std::string out = render_stats_tables(aggregated_snapshot(), title);
  if (replicas_.size() < 2) return out;

  util::TablePrinter per_replica(title + " — per replica");
  per_replica.set_header({"replica", "device", "speed", "completed",
                          "timed out", "shedded", "e2e p50 (us)",
                          "e2e p99 (us)", "sim busy (us)"});
  const std::vector<StatsSnapshot> snapshots = replica_snapshots();
  for (std::size_t index = 0; index < snapshots.size(); ++index) {
    const StatsSnapshot& s = snapshots[index];
    const DeviceSpec& device = replicas_[index]->device();
    per_replica.add_row({std::to_string(index), device.name,
                         util::fmt_fixed(device.speed_factor, 2) + "x",
                         std::to_string(s.completed),
                         std::to_string(s.timed_out),
                         std::to_string(s.shedded),
                         std::to_string(s.e2e_p50_us),
                         std::to_string(s.e2e_p99_us),
                         util::fmt_fixed(s.sim_accel_busy_us, 1)});
  }
  out += "\n";
  out += per_replica.to_string();
  return out;
}

}  // namespace mfdfp::serve
