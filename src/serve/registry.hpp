// ModelRegistry: named, versioned catalogue of deployed models.
//
// Each deploy(name, members, config) builds a fresh ReplicaSet — one
// isolated InferenceEngine per config.placement device (or
// config.num_replicas homogeneous ones), each with its own queue + worker
// pool, so models and their replicas all run concurrently — and
// publishes it under `name`; deploying an existing name is a hot redeploy:
// the new set is built and swapped in while the old one keeps serving, then
// *every replica* of the old set is drained (each in-flight request
// resolves with the old version stamped) and the set is destroyed once the
// last client reference drops. Versions increase monotonically per name and
// survive undeploy, so a redeployed model never reuses a version number.
//
// Lookup hands out shared_ptr<ReplicaSet>: a submit racing an undeploy
// either misses the entry (kModelNotFound) or holds a reference that keeps
// the whole set alive until its future resolves — undeploy drains, it never
// abandons promises.
//
// Deployments placed on a SharedDevice (DeviceSpec::shared in
// config.placement) are *tenants* of that PU, not owners: undeploying or
// hot-redeploying one model drains only that model's engines — its
// in-flight sub-batches retire on the device in order — while the other
// tenants' lanes keep serving uninterrupted, and the device itself outlives
// the registry entry through the tenants' backend handles.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "compile/plan_cache.hpp"
#include "serve/replica_set.hpp"
#include "util/mutex.hpp"

namespace mfdfp::serve {

/// Identity of one deployment, returned by deploy().
struct ModelHandle {
  std::string name;
  std::uint32_t version = 0;
};

class ModelRegistry {
 public:
  ModelRegistry() = default;
  ~ModelRegistry() { clear(); }

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Deploys (or hot-redeploys) `members` under `name` as a ReplicaSet of
  /// `config.num_replicas` engines. `config.model_name` and
  /// `config.model_version` are overwritten with the registry identity.
  /// Throws std::invalid_argument for an empty name or member list. On
  /// redeploy, every replica of the replaced set is drained before this
  /// returns.
  ///
  /// `validate`, when set, runs on the fully built candidate set outside
  /// every registry lock and *before* it is published — ModelServer hooks
  /// its capacity analysis here. A throw unwinds the candidate (workers
  /// drain, shared-PU tenants release) while any existing version keeps
  /// serving untouched; the reserved version number is burned either way,
  /// so versions stay monotonic across rejected deploys.
  ModelHandle deploy(
      const std::string& name, std::vector<hw::QNetDesc> members,
      DeployConfig config,
      const std::function<void(const ReplicaSet&)>& validate = {})
      EXCLUDES(mutex_);

  /// Removes `name` and drains every replica of its set (all in-flight
  /// requests resolve). Returns false when no such model is deployed.
  bool undeploy(const std::string& name) EXCLUDES(mutex_);

  /// The replica set serving `name`, or nullptr. The shared_ptr keeps a
  /// drained set's stats readable even after undeploy.
  [[nodiscard]] std::shared_ptr<ReplicaSet> find(const std::string& name) const
      EXCLUDES(mutex_);

  /// Handles of every deployed model, unordered.
  [[nodiscard]] std::vector<ModelHandle> models() const EXCLUDES(mutex_);

  [[nodiscard]] std::size_t size() const EXCLUDES(mutex_);

  /// Undeploys everything (drains every replica of every set).
  void clear() EXCLUDES(mutex_);

  /// The registry-wide compiled-plan cache (compile/plan_cache.hpp):
  /// deploy() hands it to every deployment whose config left plan_cache
  /// null, so replicas, shared-PU tenants, and hot redeploys of identical
  /// content all share one compiled artifact per (content, device class).
  [[nodiscard]] const std::shared_ptr<compile::PlanCache>& plan_cache()
      const noexcept {
    return plan_cache_;
  }

 private:
  struct Entry {
    std::shared_ptr<ReplicaSet> replicas;
    std::uint32_t version = 0;
  };

  mutable util::Mutex mutex_;
  std::unordered_map<std::string, Entry> entries_ GUARDED_BY(mutex_);
  /// Set once at construction, handed out by reference afterwards — the
  /// pointer itself is immutable, so it needs no guard (the cache has its
  /// own internal lock).
  std::shared_ptr<compile::PlanCache> plan_cache_ =
      std::make_shared<compile::PlanCache>();
  /// Last version handed out per name; survives undeploy so redeploys keep
  /// incrementing.
  std::unordered_map<std::string, std::uint32_t> last_version_
      GUARDED_BY(mutex_);
};

}  // namespace mfdfp::serve
