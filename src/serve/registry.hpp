// ModelRegistry: named, versioned catalogue of deployed models.
//
// Each deploy(name, members, config) builds a fresh InferenceEngine (its own
// queue + worker pool, so models are isolated and run concurrently) and
// publishes it under `name`; deploying an existing name is a hot redeploy —
// the new engine is built and swapped in while the old one keeps serving,
// then the old engine is drained (every in-flight request resolves with the
// old version stamped) and destroyed once the last client reference drops.
// Versions increase monotonically per name and survive undeploy, so a
// redeployed model never reuses a version number.
//
// Lookup hands out shared_ptr<InferenceEngine>: a submit racing an undeploy
// either misses the entry (kModelNotFound) or holds a reference that keeps
// the engine alive until its future resolves — undeploy drains, it never
// abandons promises.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/engine.hpp"

namespace mfdfp::serve {

/// Identity of one deployment, returned by deploy().
struct ModelHandle {
  std::string name;
  std::uint32_t version = 0;
};

class ModelRegistry {
 public:
  ModelRegistry() = default;
  ~ModelRegistry() { clear(); }

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Deploys (or hot-redeploys) `members` under `name`. `config.model_name`
  /// and `config.model_version` are overwritten with the registry identity.
  /// Throws std::invalid_argument for an empty name or member list. On
  /// redeploy, the replaced engine is drained before this returns.
  ModelHandle deploy(const std::string& name,
                     std::vector<hw::QNetDesc> members, DeployConfig config);

  /// Removes `name` and drains its engine (all in-flight requests resolve).
  /// Returns false when no such model is deployed.
  bool undeploy(const std::string& name);

  /// The engine serving `name`, or nullptr. The shared_ptr keeps a drained
  /// engine's stats readable even after undeploy.
  [[nodiscard]] std::shared_ptr<InferenceEngine> find(
      const std::string& name) const;

  /// Handles of every deployed model, unordered.
  [[nodiscard]] std::vector<ModelHandle> models() const;

  [[nodiscard]] std::size_t size() const;

  /// Undeploys everything (drains each engine).
  void clear();

 private:
  struct Entry {
    std::shared_ptr<InferenceEngine> engine;
    std::uint32_t version = 0;
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  /// Last version handed out per name; survives undeploy so redeploys keep
  /// incrementing.
  std::unordered_map<std::string, std::uint32_t> last_version_;
};

}  // namespace mfdfp::serve
