// DeviceSpec + ExecutionBackend: the engine <-> accelerator boundary.
//
// The serving stack treats the accelerator as a first-class, separately
// provisioned artifact — the paper's codesign premise — instead of an
// implicit per-engine default. A DeviceSpec names one device instance and
// carries its provisioning: a `speed_factor` that scales the cycle model's
// effective clock (a 2x device finishes every batch in half the modeled
// time), plus optional per-device overrides of the engine's worker count,
// batch limit, and queue capacity. DeployConfig.placement lists one
// DeviceSpec per replica, so one model name can front differently
// provisioned accelerators ("heterogeneous replicas"); an empty placement
// keeps the historical homogeneous behaviour.
//
// ExecutionBackend is the seam the InferenceEngine submits prepared batches
// through. The engine owns admission, queueing, batching, pacing, and
// stats; the backend owns *what executes the batch and what it costs*:
// execute() returns the logits plus the device-scaled simulated latency and
// DMA bytes of the batch, and the cost accessors (sample_us / batch_us /
// batch_dma_bytes) feed admission control, paced execution, and
// load-normalized routing. SimulatedAcceleratorBackend — the only
// production implementation — wraps the bit-accurate AcceleratorExecutor
// members plus the hw::CycleModel / hw::TrafficModel accounting; tests
// inject stub backends to exercise the engine against synthetic devices,
// and a future shared-PU cross-model backend plugs in here without touching
// the engine.
//
// Thread-safety contract (binding on every implementation):
//   - execute() is called concurrently from every worker thread of every
//     engine deployed on the backend (each caller with its own ExecScratch);
//     implementations must be const-safe under that, like
//     AcceleratorExecutor::run_batch is. execute() may block (a shared
//     device serializes tenants' passes), but must eventually return for
//     every call — the engine's drain-on-stop guarantee depends on it.
//   - The cost accessors (sample_us / batch_us / batch_dma_bytes) and
//     cross_tenant_backlog_us() are called concurrently with execute() from
//     submit paths (admission control) and from the ReplicaSet router; they
//     must be safe without external locking.
//
// Lifetime contract: engines hold the backend by shared_ptr<const ...>, so
// a backend outlives every engine deployed on it and stays readable (stats,
// costs) after the last engine drains. A backend must not retain pointers
// into an execute() caller's arguments beyond the call. DeviceSpec::shared
// (when set) keeps the underlying SharedDevice alive for as long as any
// config, engine, or backend still references the placement entry.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "compile/plan.hpp"
#include "hw/cost_model.hpp"
#include "hw/executor.hpp"
#include "hw/layer_profile.hpp"
#include "tensor/tensor.hpp"

namespace mfdfp::compile {
class PlanCache;  // compile/plan_cache.hpp
}

namespace mfdfp::serve {

class SharedDevice;  // serve/shared_device.hpp: one PU shared by N engines

/// How a ReplicaSet picks the replica for a submission.
enum class RoutingPolicy : std::uint8_t {
  /// Least *normalized* outstanding work: outstanding requests x per-sample
  /// modeled cost on that replica's device (i.e. work units / device speed).
  /// A 2x-provisioned replica reports half the delay per queued request, so
  /// it absorbs 2x the traffic. The default.
  kNormalizedWork = 0,
  /// Speed-blind: least outstanding request *count*, ignoring device
  /// provisioning. The ablation baseline — on heterogeneous placements it
  /// queues as much behind a 1x device as behind a 4x one.
  kOutstandingCount = 1,
};

[[nodiscard]] constexpr const char* routing_policy_name(
    RoutingPolicy policy) noexcept {
  return policy == RoutingPolicy::kNormalizedWork ? "normalized_work"
                                                  : "outstanding_count";
}

/// One named, capability-carrying accelerator instance.
struct DeviceSpec {
  /// Display/routing identity ("npu0", "edge-a", ...). Empty = auto-named
  /// "dev<replica_index>" at deploy time.
  std::string name;

  /// Provisioning relative to the baseline AcceleratorConfig clock: the
  /// modeled clock is clock_hz * speed_factor, so every cycle-model latency
  /// divides by it. Must be > 0 (deploy rejects other values).
  double speed_factor = 1.0;

  /// Per-device overrides of the engine defaults; 0 = inherit the
  /// DeployConfig value. `workers` is still forced to 1 under
  /// paced_execution (one pacing thread per modeled accelerator).
  std::size_t workers = 0;
  std::size_t max_batch = 0;
  std::size_t queue_capacity = 0;

  /// Non-null = this placement entry names a *shared* physical PU
  /// (serve/shared_device.hpp) instead of provisioning a private one:
  /// every deployment whose placement carries the same handle attaches a
  /// tenant backend to that one device, contending for — and co-batching
  /// on — its cycles. `name` and `speed_factor` above are ignored in favour
  /// of the shared device's own spec; the scheduling overrides (workers /
  /// max_batch / queue_capacity) still apply to the tenant engine. The
  /// shared_ptr keeps the device alive as long as any config or engine
  /// references it.
  std::shared_ptr<SharedDevice> shared;

  [[nodiscard]] bool valid() const noexcept {
    return shared != nullptr || speed_factor > 0.0;
  }

  /// Placement entry for a shared PU: `DeviceSpec::on(pu)` in a
  /// DeployConfig.placement co-locates this deployment with every other
  /// deployment placed on `pu`.
  [[nodiscard]] static DeviceSpec on(std::shared_ptr<SharedDevice> device) {
    DeviceSpec spec;
    spec.shared = std::move(device);
    return spec;
  }
};

/// One executed batch, as the backend reports it to the engine.
struct BatchResult {
  tensor::Tensor logits;       ///< {B, classes}
  double sim_accel_us = 0.0;   ///< device-scaled modeled latency of the batch
  double sim_dma_bytes = 0.0;  ///< modeled DMA bytes of the batch
};

/// Scheduling hints the engine passes down with a batch. Hints never change
/// what the batch computes — logits are bit-identical with any hint values —
/// only how a backend that multiplexes callers may order it.
struct ExecHints {
  /// True when any request in the batch is Priority::kInteractive: a
  /// preemptible shared PU routes the sub-batch through its interactive
  /// lane (probes can suspend an in-flight batch pass between chunks and
  /// jump its coalesce window). Dedicated backends ignore it.
  bool interactive = false;
};

/// The engine-side view of one accelerator device (see file comment).
class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  /// Executes one stacked batch ({B, C, H, W}, the executor's native
  /// layout) and returns logits plus the batch's modeled cost on this
  /// device. Called concurrently from all worker threads, each with its own
  /// scratch.
  [[nodiscard]] virtual BatchResult execute(const tensor::Tensor& stacked,
                                            hw::ExecScratch& scratch) const = 0;

  /// Hinted overload: same contract as execute() above, plus scheduling
  /// hints (see ExecHints). The engine always calls this form; the default
  /// drops the hints and forwards, so backends that don't multiplex callers
  /// implement only the 2-argument overload.
  [[nodiscard]] virtual BatchResult execute(const tensor::Tensor& stacked,
                                            hw::ExecScratch& scratch,
                                            const ExecHints& /*hints*/) const {
    return execute(stacked, scratch);
  }

  /// The device this backend executes on.
  [[nodiscard]] virtual const DeviceSpec& device() const noexcept = 0;

  /// Device-scaled modeled latency of one sample, microseconds. This is the
  /// unit of normalized routing and of the engine's admission-control delay
  /// estimate.
  [[nodiscard]] virtual double sample_us() const noexcept = 0;

  /// Device-scaled modeled latency of a batch of `batch_size` samples.
  [[nodiscard]] virtual double batch_us(std::size_t batch_size) const = 0;

  /// Modeled DMA bytes of a batch (weights once, activations per sample).
  [[nodiscard]] virtual double batch_dma_bytes(std::size_t batch_size) const = 0;

  /// Model members executing on this device (>= 1; > 1 = ensemble).
  [[nodiscard]] virtual std::size_t member_count() const noexcept = 0;

  /// True when the backend itself paces execution to the device's modeled
  /// rate — execute() only returns once the device would have finished the
  /// batch, as SharedDeviceBackend does. The engine must then not add its
  /// own paced_execution sleep on top (it would double-pace every batch).
  /// Dedicated backends return false: the engine worker paces.
  [[nodiscard]] virtual bool paces_execution() const noexcept {
    return false;
  }

  /// Modeled microseconds of work *other* engines have committed to this
  /// backend's device but not finished — the cross-tenant backlog of a
  /// shared PU. The engine adds this to its own outstanding work when
  /// estimating queue delay, so admission control and normalized-work
  /// routing price the device's true aggregate load, not just one tenant's
  /// slice. Dedicated (single-engine) backends return 0.
  [[nodiscard]] virtual double cross_tenant_backlog_us() const noexcept {
    return 0.0;
  }

  /// Binds (or, with null, unbinds) this engine's outstanding-work
  /// provider for backends that aggregate load across engines. A shared
  /// device calls the provider — from any thread, under its own lock — to
  /// price this tenant's committed work (queued + executing) into the
  /// other tenants' cross_tenant_backlog_us(); see
  /// SharedDevice::bind_tenant_load for the full provider contract,
  /// including the rule that a weak_ptr-locking provider must be unbound
  /// *before* the last engine reference can drop (ReplicaSet::stop does
  /// this). Default: no-op — a dedicated backend serves one engine whose
  /// own counters already tell the whole story.
  virtual void bind_load_provider(
      std::function<double()> /*outstanding_us*/) const {}

  /// Accumulated per-layer profiles of this backend's model members, one
  /// LayerProfile per member in member order (see hw/layer_profile.hpp).
  /// Safe concurrently with execute(). Backends without a simulated
  /// accelerator behind them (test stubs) return an empty vector.
  [[nodiscard]] virtual std::vector<hw::LayerProfile> layer_profiles() const {
    return {};
  }
};

/// Production backend: the paper's simulated accelerator. Owns the
/// bit-accurate executor members (one simulated processing unit each,
/// logits averaged for ensembles) and prices every batch on hw::CycleModel
/// (latency, scaled by the device's speed_factor — ensemble latency is the
/// max over members, batch latency is sequential samples) and
/// hw::TrafficModel (DMA bytes: weights fetched once per batch, activations
/// per sample; *not* speed-scaled — speed provisions compute, and the
/// paper's DMA is double-buffered behind it).
class SimulatedAcceleratorBackend final : public ExecutionBackend {
 public:
  /// `members` must be non-empty and share the {in_c, in_h, in_w} input
  /// geometry. Throws std::invalid_argument on an empty member list or an
  /// invalid device (speed_factor <= 0).
  ///
  /// `compile` controls deploy-time compilation (the default lowers every
  /// member into a CompiledPlan executed by execute(); .enabled = false
  /// keeps the legacy per-batch run_batch path — the ablation baseline).
  /// A non-null `plan_cache` shares plans across backends: replicas and
  /// shared-PU tenants deploying identical content on the same device
  /// class reuse one artifact. The backend pins its plans by shared_ptr,
  /// so cache eviction or a hot redeploy never invalidates a deployed
  /// backend (see compile/plan_cache.hpp).
  SimulatedAcceleratorBackend(
      std::vector<hw::QNetDesc> members, hw::AcceleratorConfig accel,
      DeviceSpec device, std::size_t in_c, std::size_t in_h, std::size_t in_w,
      const compile::CompileOptions& compile = {},
      const std::shared_ptr<compile::PlanCache>& plan_cache = nullptr);

  [[nodiscard]] BatchResult execute(const tensor::Tensor& stacked,
                                    hw::ExecScratch& scratch) const override;
  [[nodiscard]] const DeviceSpec& device() const noexcept override {
    return device_;
  }
  [[nodiscard]] double sample_us() const noexcept override {
    return sample_us_;
  }
  [[nodiscard]] double batch_us(std::size_t batch_size) const override;
  [[nodiscard]] double batch_dma_bytes(std::size_t batch_size) const override;
  [[nodiscard]] std::size_t member_count() const noexcept override {
    return executors_.size();
  }
  [[nodiscard]] std::vector<hw::LayerProfile> layer_profiles() const override;

  [[nodiscard]] const hw::AcceleratorConfig& accel() const noexcept {
    return accel_;
  }

  /// True when execute() runs compiled plans (compilation enabled at
  /// construction).
  [[nodiscard]] bool compiled() const noexcept { return !plans_.empty(); }

  /// The compiled plan of member `member` (null when uncompiled).
  [[nodiscard]] std::shared_ptr<const compile::CompiledPlan> plan(
      std::size_t member = 0) const {
    return member < plans_.size() ? plans_[member] : nullptr;
  }

 private:
  DeviceSpec device_;
  hw::AcceleratorConfig accel_;
  std::vector<std::unique_ptr<hw::AcceleratorExecutor>> executors_;
  std::vector<const hw::AcceleratorExecutor*> member_ptrs_;
  /// Deploy-time compiled plans, one per member (empty = uncompiled legacy
  /// path). shared_ptr pins each plan across cache eviction / redeploy.
  std::vector<std::shared_ptr<const compile::CompiledPlan>> plans_;
  /// One profiling sink per member, attached to the matching executor; the
  /// executors report passes into them from every worker thread.
  std::vector<std::unique_ptr<hw::LayerProfiler>> profilers_;

  // Per-sample modeled costs, precomputed from the members' workloads.
  double sample_us_ = 0.0;         ///< max over members, / speed_factor
  double weight_dma_bytes_ = 0.0;  ///< sum over members, once per batch
  double act_dma_bytes_ = 0.0;     ///< sum over members, per sample
};

}  // namespace mfdfp::serve
