// DeviceSpec + ExecutionBackend: the engine <-> accelerator boundary.
//
// The serving stack treats the accelerator as a first-class, separately
// provisioned artifact — the paper's codesign premise — instead of an
// implicit per-engine default. A DeviceSpec names one device instance and
// carries its provisioning: a `speed_factor` that scales the cycle model's
// effective clock (a 2x device finishes every batch in half the modeled
// time), plus optional per-device overrides of the engine's worker count,
// batch limit, and queue capacity. DeployConfig.placement lists one
// DeviceSpec per replica, so one model name can front differently
// provisioned accelerators ("heterogeneous replicas"); an empty placement
// keeps the historical homogeneous behaviour.
//
// ExecutionBackend is the seam the InferenceEngine submits prepared batches
// through. The engine owns admission, queueing, batching, pacing, and
// stats; the backend owns *what executes the batch and what it costs*:
// execute() returns the logits plus the device-scaled simulated latency and
// DMA bytes of the batch, and the cost accessors (sample_us / batch_us /
// batch_dma_bytes) feed admission control, paced execution, and
// load-normalized routing. SimulatedAcceleratorBackend — the only
// production implementation — wraps the bit-accurate AcceleratorExecutor
// members plus the hw::CycleModel / hw::TrafficModel accounting; tests
// inject stub backends to exercise the engine against synthetic devices,
// and a future shared-PU cross-model backend plugs in here without touching
// the engine.
//
// Thread-safety: execute() is called concurrently from every worker thread
// of the engine (each with its own ExecScratch); implementations must be
// const-safe under that, like AcceleratorExecutor::run_batch is.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/cost_model.hpp"
#include "hw/executor.hpp"
#include "tensor/tensor.hpp"

namespace mfdfp::serve {

/// How a ReplicaSet picks the replica for a submission.
enum class RoutingPolicy : std::uint8_t {
  /// Least *normalized* outstanding work: outstanding requests x per-sample
  /// modeled cost on that replica's device (i.e. work units / device speed).
  /// A 2x-provisioned replica reports half the delay per queued request, so
  /// it absorbs 2x the traffic. The default.
  kNormalizedWork = 0,
  /// Speed-blind: least outstanding request *count*, ignoring device
  /// provisioning. The ablation baseline — on heterogeneous placements it
  /// queues as much behind a 1x device as behind a 4x one.
  kOutstandingCount = 1,
};

[[nodiscard]] constexpr const char* routing_policy_name(
    RoutingPolicy policy) noexcept {
  return policy == RoutingPolicy::kNormalizedWork ? "normalized_work"
                                                  : "outstanding_count";
}

/// One named, capability-carrying accelerator instance.
struct DeviceSpec {
  /// Display/routing identity ("npu0", "edge-a", ...). Empty = auto-named
  /// "dev<replica_index>" at deploy time.
  std::string name;

  /// Provisioning relative to the baseline AcceleratorConfig clock: the
  /// modeled clock is clock_hz * speed_factor, so every cycle-model latency
  /// divides by it. Must be > 0 (deploy rejects other values).
  double speed_factor = 1.0;

  /// Per-device overrides of the engine defaults; 0 = inherit the
  /// DeployConfig value. `workers` is still forced to 1 under
  /// paced_execution (one pacing thread per modeled accelerator).
  std::size_t workers = 0;
  std::size_t max_batch = 0;
  std::size_t queue_capacity = 0;

  [[nodiscard]] bool valid() const noexcept { return speed_factor > 0.0; }
};

/// One executed batch, as the backend reports it to the engine.
struct BatchResult {
  tensor::Tensor logits;       ///< {B, classes}
  double sim_accel_us = 0.0;   ///< device-scaled modeled latency of the batch
  double sim_dma_bytes = 0.0;  ///< modeled DMA bytes of the batch
};

/// The engine-side view of one accelerator device (see file comment).
class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  /// Executes one stacked batch ({B, C, H, W}, the executor's native
  /// layout) and returns logits plus the batch's modeled cost on this
  /// device. Called concurrently from all worker threads, each with its own
  /// scratch.
  [[nodiscard]] virtual BatchResult execute(const tensor::Tensor& stacked,
                                            hw::ExecScratch& scratch) const = 0;

  /// The device this backend executes on.
  [[nodiscard]] virtual const DeviceSpec& device() const noexcept = 0;

  /// Device-scaled modeled latency of one sample, microseconds. This is the
  /// unit of normalized routing and of the engine's admission-control delay
  /// estimate.
  [[nodiscard]] virtual double sample_us() const noexcept = 0;

  /// Device-scaled modeled latency of a batch of `batch_size` samples.
  [[nodiscard]] virtual double batch_us(std::size_t batch_size) const = 0;

  /// Modeled DMA bytes of a batch (weights once, activations per sample).
  [[nodiscard]] virtual double batch_dma_bytes(std::size_t batch_size) const = 0;

  /// Model members executing on this device (>= 1; > 1 = ensemble).
  [[nodiscard]] virtual std::size_t member_count() const noexcept = 0;
};

/// Production backend: the paper's simulated accelerator. Owns the
/// bit-accurate executor members (one simulated processing unit each,
/// logits averaged for ensembles) and prices every batch on hw::CycleModel
/// (latency, scaled by the device's speed_factor — ensemble latency is the
/// max over members, batch latency is sequential samples) and
/// hw::TrafficModel (DMA bytes: weights fetched once per batch, activations
/// per sample; *not* speed-scaled — speed provisions compute, and the
/// paper's DMA is double-buffered behind it).
class SimulatedAcceleratorBackend final : public ExecutionBackend {
 public:
  /// `members` must be non-empty and share the {in_c, in_h, in_w} input
  /// geometry. Throws std::invalid_argument on an empty member list or an
  /// invalid device (speed_factor <= 0).
  SimulatedAcceleratorBackend(std::vector<hw::QNetDesc> members,
                              hw::AcceleratorConfig accel, DeviceSpec device,
                              std::size_t in_c, std::size_t in_h,
                              std::size_t in_w);

  [[nodiscard]] BatchResult execute(const tensor::Tensor& stacked,
                                    hw::ExecScratch& scratch) const override;
  [[nodiscard]] const DeviceSpec& device() const noexcept override {
    return device_;
  }
  [[nodiscard]] double sample_us() const noexcept override {
    return sample_us_;
  }
  [[nodiscard]] double batch_us(std::size_t batch_size) const override;
  [[nodiscard]] double batch_dma_bytes(std::size_t batch_size) const override;
  [[nodiscard]] std::size_t member_count() const noexcept override {
    return executors_.size();
  }

  [[nodiscard]] const hw::AcceleratorConfig& accel() const noexcept {
    return accel_;
  }

 private:
  DeviceSpec device_;
  hw::AcceleratorConfig accel_;
  std::vector<std::unique_ptr<hw::AcceleratorExecutor>> executors_;
  std::vector<const hw::AcceleratorExecutor*> member_ptrs_;

  // Per-sample modeled costs, precomputed from the members' workloads.
  double sample_us_ = 0.0;         ///< max over members, / speed_factor
  double weight_dma_bytes_ = 0.0;  ///< sum over members, once per batch
  double act_dma_bytes_ = 0.0;     ///< sum over members, per sample
};

}  // namespace mfdfp::serve
