#include "core/converter.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/metrics.hpp"
#include "nn/trainer.hpp"
#include "util/logging.hpp"

namespace mfdfp::core {

tensor::Tensor compute_logits(nn::Network& network,
                              const tensor::Tensor& images,
                              std::size_t batch_size) {
  const std::size_t total = images.shape().dim(0);
  tensor::Tensor first =
      network.forward(tensor::slice_outer(images, 0, 1), nn::Mode::kEval);
  const std::size_t classes = first.shape().dim(1);
  tensor::Tensor logits{tensor::Shape{total, classes}};
  for (std::size_t begin = 0; begin < total; begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, total);
    const tensor::Tensor batch = tensor::slice_outer(images, begin, end);
    const tensor::Tensor out = network.forward(batch, nn::Mode::kEval);
    std::copy(out.data().begin(), out.data().end(),
              logits.data().data() + begin * classes);
  }
  return logits;
}

ConversionResult MfDfpConverter::convert(const nn::Network& float_net,
                                         const data::Dataset& train,
                                         const data::Dataset& val) const {
  return run(float_net, train, val, /*with_phase2=*/true);
}

ConversionResult MfDfpConverter::convert_labels_only(
    const nn::Network& float_net, const data::Dataset& train,
    const data::Dataset& val) const {
  return run(float_net, train, val, /*with_phase2=*/false);
}

ConversionResult MfDfpConverter::run(const nn::Network& float_net,
                                     const data::Dataset& train,
                                     const data::Dataset& val,
                                     bool with_phase2) const {
  train.validate();
  val.validate();
  if (config_.phase1_epochs == 0 && config_.phase2_epochs == 0) {
    throw std::invalid_argument("MfDfpConverter: zero epochs");
  }

  // Teacher: read-only float copy. Evaluate its reference error and
  // precompute training-set logits (Algorithm 1 input `t_logits`).
  nn::Network teacher = float_net.clone();
  teacher.clear_transforms();

  ConversionResult result;
  result.curves.float_error = static_cast<float>(
      1.0 - nn::evaluate(teacher, val.images, val.labels).top1);

  // Student: clone, derive formats from float ranges, install fake quant
  // (Algorithm 1 line 2: Quantize_8bit(FLnet)).
  result.network = float_net.clone();
  result.network.clear_transforms();
  const std::size_t calib =
      std::min(config_.calibration_count, train.size());
  const tensor::Tensor calibration =
      tensor::slice_outer(train.images, 0, std::max<std::size_t>(calib, 1));
  result.spec = quant::analyze_ranges(result.network, calibration,
                                      config_.activation_bits);
  quant::QuantizerOptions qopt;
  qopt.rounding = config_.rounding;
  qopt.seed = config_.seed;
  quant::install_mf_dfp(result.network, result.spec, qopt);

  // The accelerator receives 8-bit inputs; quantize once up front.
  const tensor::Tensor train_images =
      quant::quantize_input(result.spec, train.images);
  const tensor::Tensor val_images =
      quant::quantize_input(result.spec, val.images);
  const tensor::Tensor teacher_logits =
      with_phase2 ? compute_logits(teacher, train.images)
                  : tensor::Tensor{};

  util::Rng rng{config_.seed};

  // ------------------------------------------------ Phase 1: hard labels
  const std::size_t phase1_epochs =
      with_phase2 ? config_.phase1_epochs
                  : config_.phase1_epochs + config_.phase2_epochs;
  if (phase1_epochs > 0) {
    nn::SgdOptimizer optimizer({config_.phase1_learning_rate,
                                config_.momentum, config_.weight_decay});
    nn::PlateauSchedule schedule({10.0f, config_.lr_patience,
                                  config_.min_learning_rate, 1e-4f});
    nn::TrainConfig tc;
    tc.batch_size = config_.batch_size;
    tc.max_epochs = phase1_epochs;
    tc.on_epoch = [&](std::size_t epoch, float loss, float error) {
      if (config_.verbose) {
        util::logf() << "phase1 epoch " << epoch << " loss " << loss
                     << " val-err " << error;
      }
      result.curves.phase1_error.push_back(error);
      return !schedule.observe(error, optimizer);
    };
    nn::train(result.network, train_images, train.labels, val_images,
              val.labels, nn::hard_label_loss(), optimizer, tc, rng);
  }

  // ------------------------------------------- Phase 2: student-teacher
  if (with_phase2 && config_.phase2_epochs > 0) {
    // Note (paper Section 6.2): Phase 2 branches from the *final* Phase-1
    // point, which is near- but not necessarily at the best epoch — the
    // paper reports this non-optimal branch point helps.
    nn::SgdOptimizer optimizer({config_.phase2_learning_rate,
                                config_.momentum, config_.weight_decay});
    nn::PlateauSchedule schedule({10.0f, config_.lr_patience,
                                  config_.min_learning_rate, 1e-4f});
    const float tau = config_.tau;
    const float beta = config_.beta;
    const bool approx = config_.approximate_distill_gradient;
    const std::size_t classes = teacher_logits.shape().dim(1);
    nn::LossFn loss_fn = [&, tau, beta, approx, classes](
                             const tensor::Tensor& logits,
                             std::span<const int> labels,
                             std::span<const std::size_t> batch_indices) {
      tensor::Tensor teacher_batch{
          tensor::Shape{batch_indices.size(), classes}};
      for (std::size_t i = 0; i < batch_indices.size(); ++i) {
        const float* src =
            teacher_logits.data().data() + batch_indices[i] * classes;
        std::copy(src, src + classes,
                  teacher_batch.data().data() + i * classes);
      }
      return approx ? nn::distillation_loss_approx(logits, teacher_batch,
                                                   labels, tau, beta)
                    : nn::distillation_loss(logits, teacher_batch, labels,
                                            tau, beta);
    };

    nn::TrainConfig tc;
    tc.batch_size = config_.batch_size;
    tc.max_epochs = config_.phase2_epochs;
    tc.on_epoch = [&](std::size_t epoch, float loss, float error) {
      if (config_.verbose) {
        util::logf() << "phase2 epoch " << epoch << " loss " << loss
                     << " val-err " << error;
      }
      result.curves.phase2_error.push_back(error);
      return !schedule.observe(error, optimizer);
    };
    nn::train(result.network, train_images, train.labels, val_images,
              val.labels, loss_fn, optimizer, tc, rng);
  }

  result.final_error = static_cast<float>(
      1.0 - nn::evaluate(result.network, val_images, val.labels).top1);
  return result;
}

}  // namespace mfdfp::core
