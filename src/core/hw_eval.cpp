#include "core/hw_eval.hpp"

#include <memory>
#include <stdexcept>
#include <vector>

#include "compile/passes.hpp"
#include "compile/plan_executor.hpp"
#include "hw/executor.hpp"

namespace mfdfp::core {

nn::EvalResult evaluate_qnets_compiled(
    std::span<const hw::QNetDesc> members, const tensor::Tensor& images,
    std::span<const int> labels, std::size_t batch_size,
    const compile::CompileOptions& options) {
  if (members.empty()) {
    throw std::invalid_argument("evaluate_qnets_compiled: no members");
  }
  if (images.shape().rank() != 4) {
    throw std::invalid_argument(
        "evaluate_qnets_compiled: images must be (N, C, H, W)");
  }
  const std::size_t in_c = images.shape().dim(1);
  const std::size_t in_h = images.shape().dim(2);
  const std::size_t in_w = images.shape().dim(3);

  std::vector<std::shared_ptr<const compile::CompiledPlan>> plans;
  plans.reserve(members.size());
  for (const hw::QNetDesc& member : members) {
    plans.push_back(compile::compile_qnet(member, in_c, in_h, in_w, options));
  }

  hw::ExecScratch scratch;
  return nn::evaluate_logits(
      [&](const tensor::Tensor& batch) {
        tensor::Tensor sum =
            compile::run_plan_batch(*plans.front(), batch, scratch);
        for (std::size_t m = 1; m < plans.size(); ++m) {
          sum.add(compile::run_plan_batch(*plans[m], batch, scratch));
        }
        if (plans.size() > 1) {
          sum.scale(1.0f / static_cast<float>(plans.size()));
        }
        return sum;
      },
      images, labels, batch_size);
}

}  // namespace mfdfp::core
