// Human-readable conversion report: what a downstream user sees after
// running Algorithm 1 — accuracy deltas, per-layer formats, memory, and the
// hardware metrics of deploying the result.
#pragma once

#include <string>

#include "core/converter.hpp"
#include "hw/cost_model.hpp"

namespace mfdfp::core {

struct ReportOptions {
  /// Input geometry for the latency/energy section (channels, h, w).
  std::size_t in_c = 3, in_h = 32, in_w = 32;
  /// Include the per-layer format table.
  bool per_layer_formats = true;
  /// Include hardware latency/energy (needs a hardware-mappable network).
  bool hardware_metrics = true;
};

/// Renders a multi-line summary of a conversion result.
[[nodiscard]] std::string conversion_report(const ConversionResult& result,
                                            const ReportOptions& options);

}  // namespace mfdfp::core
