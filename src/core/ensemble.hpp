// Ensemble of MF-DFP networks — Phase 3 of Algorithm 1 (paper Section 4.3).
//
// M networks of the same architecture are independently trained in float,
// each converted to MF-DFP, and deployed side by side (the accelerator gains
// one processing unit per member). Inference averages the members' logit
// vectors and takes the argmax.
#pragma once

#include <functional>

#include "core/converter.hpp"
#include "hw/qnet.hpp"

namespace mfdfp::core {

struct EnsembleConfig {
  std::size_t member_count = 2;
  ConverterConfig converter;
};

struct EnsembleResult {
  std::vector<ConversionResult> members;

  /// Pointers to the member networks, for nn::evaluate_ensemble.
  [[nodiscard]] std::vector<nn::Network*> member_networks();
};

/// Produces one trained float network per member index; members must differ
/// (different init seeds and/or shuffling) for the ensemble to help.
using FloatNetFactory = std::function<nn::Network(std::size_t member_index)>;

class EnsembleBuilder {
 public:
  explicit EnsembleBuilder(EnsembleConfig config)
      : config_(std::move(config)) {}

  /// Runs Algorithm 1 once per member ("repeat Phase 1 and 2 with different
  /// input FLnet").
  [[nodiscard]] EnsembleResult build(const FloatNetFactory& factory,
                                     const data::Dataset& train,
                                     const data::Dataset& val) const;

  [[nodiscard]] const EnsembleConfig& config() const noexcept {
    return config_;
  }

 private:
  EnsembleConfig config_;
};

/// Evaluates an ensemble on (images, labels) through the compiled batched
/// hardware path (core/hw_eval.hpp) — bit-identical to the fake-quantized
/// float members on inputs quantized with their shared input format.
[[nodiscard]] nn::EvalResult evaluate_mfdfp_ensemble(
    EnsembleResult& ensemble, const tensor::Tensor& images,
    std::span<const int> labels);

/// Extracts one deployment image per member (named "<name>/0", "<name>/1",
/// ...) — the model list a serve::InferenceEngine deploys for engine-side
/// averaged-logit ensemble inference.
[[nodiscard]] std::vector<hw::QNetDesc> extract_member_qnets(
    const EnsembleResult& ensemble, const std::string& name = "ensemble");

}  // namespace mfdfp::core
