#include "core/report.hpp"

#include <sstream>

#include "hw/cycle_model.hpp"
#include "hw/qnet.hpp"
#include "hw/traffic_model.hpp"
#include "quant/memory.hpp"
#include "util/table.hpp"

namespace mfdfp::core {

std::string conversion_report(const ConversionResult& result,
                              const ReportOptions& options) {
  std::ostringstream out;
  out << "MF-DFP conversion report\n";
  out << "  float val error:   "
      << util::fmt_percent(result.curves.float_error) << " %\n";
  out << "  mf-dfp val error:  " << util::fmt_percent(result.final_error)
      << " % (gap "
      << util::fmt_fixed(
             100.0 * (result.final_error - result.curves.float_error), 2)
      << " pts)\n";
  out << "  fine-tuning:       " << result.curves.phase1_error.size()
      << " phase-1 epochs, " << result.curves.phase2_error.size()
      << " phase-2 epochs\n";

  // Memory. The networks are identical in architecture, so the report is
  // computed from the converted network's masters.
  const quant::MemoryReport memory =
      quant::memory_report(result.network);
  out << "  parameters:        " << memory.weight_count << " weights, "
      << memory.bias_count << " biases; "
      << util::fmt_fixed(memory.float_mb(), 4) << " MB float -> "
      << util::fmt_fixed(memory.mfdfp_mb(), 4) << " MB packed (x"
      << util::fmt_fixed(memory.compression(), 2) << ")\n";

  if (options.per_layer_formats) {
    out << "  input format:      " << result.spec.input.to_string() << "\n";
    for (std::size_t i = 0; i < result.spec.layer_output.size(); ++i) {
      out << "    layer " << i << " ("
          << result.network.layer(i).kind()
          << "): " << result.spec.layer_output[i].to_string();
      if (i < result.spec.layer_max_abs.size()) {
        out << "  |max| = "
            << util::fmt_fixed(result.spec.layer_max_abs[i], 3);
      }
      out << "\n";
    }
  }

  if (options.hardware_metrics) {
    try {
      const hw::QNetDesc qnet =
          hw::extract_qnet(result.network, result.spec, "report");
      const auto work = hw::workload_from_qnet(qnet, options.in_c,
                                               options.in_h, options.in_w);
      const hw::AcceleratorConfig mf = hw::mfdfp_config(1);
      const hw::AcceleratorConfig fp = hw::float_baseline_config();
      const hw::CycleReport mf_cycles = hw::count_cycles(work, mf);
      const hw::CycleReport fp_cycles = hw::count_cycles(work, fp);
      const double e_mf = hw::energy_uj(mf_cycles, mf);
      const double e_fp = hw::energy_uj(fp_cycles, fp);
      const hw::TrafficReport traffic = hw::dma_traffic(work, mf);
      out << "  deployment:        " << qnet.parameter_bytes()
          << " bytes image; " << mf_cycles.total_cycles << " cycles = "
          << util::fmt_fixed(mf_cycles.microseconds(mf), 2) << " us; "
          << util::fmt_fixed(e_mf, 2) << " uJ ("
          << util::fmt_percent(hw::saving(e_fp, e_mf))
          << " % energy saved vs float); DMA "
          << util::fmt_fixed(
                 static_cast<double>(traffic.total_bytes) / 1024.0, 1)
          << " KB/inference\n";
    } catch (const std::invalid_argument& error) {
      out << "  deployment:        not hardware-mappable (" << error.what()
          << ")\n";
    }
  }
  return out.str();
}

}  // namespace mfdfp::core
