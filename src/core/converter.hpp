// MF-DFP conversion pipeline — Algorithm 1 of the paper.
//
// Input: a trained floating-point network ("FLnet") plus its training data.
// Phase 1: quantize (power-of-two weights, 8-bit DFP activations) and
//   fine-tune with hard labels, keeping float shadow weights that accumulate
//   small gradients (Courbariaux et al.); forward always runs quantized.
// Phase 2: continue fine-tuning with the student-teacher loss
//   L = H(Y, P_S) + beta * H(P_T, P_S) at temperature tau, the teacher being
//   the original float network (its training-set logits are precomputed, as
//   the `t_logits` input of Algorithm 1).
// Output: the quantized network, its QuantSpec, and the per-epoch error
// curves that reproduce Figure 3.
#pragma once

#include "core/float_training.hpp"
#include "data/dataset.hpp"
#include "nn/network.hpp"
#include "quant/quantizer.hpp"

namespace mfdfp::core {

struct ConverterConfig {
  int activation_bits = 8;
  quant::Rounding rounding = quant::Rounding::kDeterministic;
  /// Use the paper's Eq. 2 large-tau approximate gradient instead of the
  /// exact distillation gradient (ablation).
  bool approximate_distill_gradient = false;

  // Phase 1 (hard labels).
  std::size_t phase1_epochs = 8;
  float phase1_learning_rate = 5e-3f;

  // Phase 2 (student-teacher). Paper: tau = 20, beta = 0.2, lr0 = 1e-3,
  // lr /= 10 on plateau, stop below 1e-7.
  std::size_t phase2_epochs = 6;
  float phase2_learning_rate = 1e-3f;
  float tau = 20.0f;
  float beta = 0.2f;
  float min_learning_rate = 1e-7f;
  int lr_patience = 2;

  float momentum = 0.9f;
  float weight_decay = 0.0f;
  std::size_t batch_size = 32;
  /// Calibration images for range analysis are taken from the head of the
  /// training set.
  std::size_t calibration_count = 128;
  std::uint64_t seed = 7;
  bool verbose = false;
};

/// Error curves underlying Figure 3.
struct ConversionCurves {
  std::vector<float> phase1_error;  ///< val top-1 error per Phase-1 epoch
  std::vector<float> phase2_error;  ///< val top-1 error per Phase-2 epoch
  float float_error = 0.0f;         ///< teacher (float) val top-1 error
};

struct ConversionResult {
  nn::Network network;  ///< quantized MF-DFP network, transforms installed
  quant::QuantSpec spec;
  ConversionCurves curves;
  /// Final validation top-1 error of the MF-DFP network.
  float final_error = 1.0f;
};

class MfDfpConverter {
 public:
  explicit MfDfpConverter(ConverterConfig config)
      : config_(std::move(config)) {}

  /// Runs Phases 1-2 on a copy of `float_net`. `float_net` itself is only
  /// used read-only (as the teacher). Inputs are quantized to the derived
  /// input format before training/eval, as the accelerator's DMA would
  /// deliver them.
  [[nodiscard]] ConversionResult convert(const nn::Network& float_net,
                                         const data::Dataset& train,
                                         const data::Dataset& val) const;

  /// Phase-1-only variant (for the Figure 3 "data labels only" curve): runs
  /// phase1_epochs + phase2_epochs epochs of hard-label fine-tuning.
  [[nodiscard]] ConversionResult convert_labels_only(
      const nn::Network& float_net, const data::Dataset& train,
      const data::Dataset& val) const;

  [[nodiscard]] const ConverterConfig& config() const noexcept {
    return config_;
  }

 private:
  ConversionResult run(const nn::Network& float_net,
                       const data::Dataset& train, const data::Dataset& val,
                       bool with_phase2) const;

  ConverterConfig config_;
};

/// Precomputes the teacher's logits over a dataset (Algorithm 1's t_logits).
[[nodiscard]] tensor::Tensor compute_logits(nn::Network& network,
                                            const tensor::Tensor& images,
                                            std::size_t batch_size = 64);

}  // namespace mfdfp::core
