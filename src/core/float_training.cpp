#include "core/float_training.hpp"

#include "util/logging.hpp"

namespace mfdfp::core {

FloatTrainResult train_float_network(nn::Network& network,
                                     const data::Dataset& train,
                                     const data::Dataset& val,
                                     const FloatTrainConfig& config) {
  train.validate();
  val.validate();

  nn::SgdOptimizer optimizer({config.learning_rate, config.momentum,
                              config.weight_decay});
  nn::PlateauSchedule schedule(
      {config.lr_factor, config.lr_patience, config.min_lr, 1e-4f});

  nn::TrainConfig train_config;
  train_config.batch_size = config.batch_size;
  train_config.max_epochs = config.max_epochs;
  train_config.on_epoch = [&](std::size_t epoch, float loss, float error) {
    if (config.verbose) {
      util::logf() << "float epoch " << epoch << " loss " << loss
                   << " val-err " << error << " lr "
                   << optimizer.learning_rate();
    }
    return !schedule.observe(error, optimizer);
  };

  util::Rng rng{config.seed};
  FloatTrainResult result;
  result.history =
      nn::train(network, train.images, train.labels, val.images, val.labels,
                nn::hard_label_loss(), optimizer, train_config, rng);
  if (!result.history.empty()) {
    result.final_val_error = result.history.back().val_top1_error;
  }
  return result;
}

}  // namespace mfdfp::core
