// Baseline floating-point training (the "FLnet" input of Algorithm 1).
#pragma once

#include "data/dataset.hpp"
#include "nn/trainer.hpp"

namespace mfdfp::core {

struct FloatTrainConfig {
  std::size_t max_epochs = 12;
  std::size_t batch_size = 32;
  float learning_rate = 0.02f;
  float momentum = 0.9f;
  float weight_decay = 1e-4f;
  /// Plateau schedule: divide lr by `lr_factor` after `patience` stale
  /// epochs; stop below `min_lr`.
  float lr_factor = 10.0f;
  int lr_patience = 3;
  float min_lr = 1e-5f;
  std::uint64_t seed = 1;
  bool verbose = false;
};

struct FloatTrainResult {
  std::vector<nn::EpochStats> history;
  float final_val_error = 1.0f;
};

/// Trains `network` in place with SGD + plateau schedule on hard labels.
FloatTrainResult train_float_network(nn::Network& network,
                                     const data::Dataset& train,
                                     const data::Dataset& val,
                                     const FloatTrainConfig& config);

}  // namespace mfdfp::core
