#include "core/ensemble.hpp"

#include <stdexcept>

#include "core/hw_eval.hpp"
#include "nn/metrics.hpp"
#include "util/logging.hpp"

namespace mfdfp::core {

std::vector<nn::Network*> EnsembleResult::member_networks() {
  std::vector<nn::Network*> nets;
  nets.reserve(members.size());
  for (ConversionResult& member : members) nets.push_back(&member.network);
  return nets;
}

EnsembleResult EnsembleBuilder::build(const FloatNetFactory& factory,
                                      const data::Dataset& train,
                                      const data::Dataset& val) const {
  if (config_.member_count == 0) {
    throw std::invalid_argument("EnsembleBuilder: zero members");
  }
  EnsembleResult result;
  result.members.reserve(config_.member_count);
  for (std::size_t m = 0; m < config_.member_count; ++m) {
    ConverterConfig member_config = config_.converter;
    // Decorrelate member fine-tuning streams while staying deterministic.
    member_config.seed = config_.converter.seed + 0x100 * (m + 1);
    const nn::Network float_net = factory(m);
    MfDfpConverter converter(member_config);
    ConversionResult converted = converter.convert(float_net, train, val);
    if (member_config.verbose) {
      util::logf() << "ensemble member " << m << " final err "
                   << converted.final_error;
    }
    result.members.push_back(std::move(converted));
  }
  return result;
}

std::vector<hw::QNetDesc> extract_member_qnets(const EnsembleResult& ensemble,
                                               const std::string& name) {
  if (ensemble.members.empty()) {
    throw std::invalid_argument("extract_member_qnets: empty ensemble");
  }
  std::vector<hw::QNetDesc> qnets;
  qnets.reserve(ensemble.members.size());
  for (std::size_t m = 0; m < ensemble.members.size(); ++m) {
    const ConversionResult& member = ensemble.members[m];
    qnets.push_back(hw::extract_qnet(member.network, member.spec,
                                     name + "/" + std::to_string(m)));
  }
  return qnets;
}

nn::EvalResult evaluate_mfdfp_ensemble(EnsembleResult& ensemble,
                                       const tensor::Tensor& images,
                                       std::span<const int> labels) {
  if (ensemble.members.empty()) {
    throw std::invalid_argument("evaluate_mfdfp_ensemble: empty ensemble");
  }
  // Compiled fast path: the plan executor is bit-identical to running the
  // fake-quantized float members on quantize_input()-ed images (the input
  // encode subsumes quantize_input), so accuracy is unchanged — it just
  // arrives batched through the same artifact deploy() serves.
  return evaluate_qnets_compiled(extract_member_qnets(ensemble), images,
                                 labels);
}

}  // namespace mfdfp::core
