// Hardware-path evaluation backed by the deploy-time compiler.
//
// Training-side accuracy loops (ensemble eval, post-conversion accuracy
// checks) used to run the fake-quantized *float* simulation of each
// network; the compiled-plan executor produces bit-identical logits from
// the integer shift-add datapath (the repo's load-bearing invariant), in
// batches, so evaluation is faster and exercises the exact artifact that
// ModelServer::deploy() serves.
#pragma once

#include <span>

#include "compile/plan.hpp"
#include "hw/qnet.hpp"
#include "nn/metrics.hpp"

namespace mfdfp::core {

/// Evaluates `members` as an averaged-logit ensemble (a single network is
/// the one-member case) over raw float `images` (N, C, H, W) through
/// compiled plans: each member is lowered once by the standard pass
/// pipeline, then every batch runs the fused integer steps with logits
/// averaged exactly like hw::run_ensemble_batch. Bit-identical to
/// evaluating the fake-quantized float networks on quantize_input()-ed
/// images — input encoding is idempotent, so raw and pre-quantized images
/// produce the same codes.
[[nodiscard]] nn::EvalResult evaluate_qnets_compiled(
    std::span<const hw::QNetDesc> members, const tensor::Tensor& images,
    std::span<const int> labels, std::size_t batch_size = 64,
    const compile::CompileOptions& options = {});

}  // namespace mfdfp::core
