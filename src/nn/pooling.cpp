#include "nn/pooling.hpp"

#include <limits>
#include <stdexcept>

namespace mfdfp::nn {
namespace {

tensor::ConvGeometry pool_geometry(const Shape& input,
                                   const PoolConfig& config) {
  if (input.rank() != 4) {
    throw std::invalid_argument("pooling: rank-4 NCHW input required");
  }
  tensor::ConvGeometry g;
  g.in_c = input.c();
  g.in_h = input.h();
  g.in_w = input.w();
  g.kernel_h = g.kernel_w = config.window;
  g.stride = config.stride;
  g.pad = config.pad;
  if (!g.valid()) {
    throw std::invalid_argument("pooling: window does not fit input " +
                                input.to_string());
  }
  return g;
}

}  // namespace

Shape pooled_shape(const Shape& input, const PoolConfig& config) {
  const auto g = pool_geometry(input, config);
  return Shape{input.n(), input.c(), g.out_h(), g.out_w()};
}

// ---------------------------------------------------------------- MaxPool2D

MaxPool2D::MaxPool2D(const PoolConfig& config) : config_(config) {
  if (config.window == 0 || config.stride == 0) {
    throw std::invalid_argument("MaxPool2D: invalid config");
  }
}

Shape MaxPool2D::output_shape(const Shape& input) const {
  return pooled_shape(input, config_);
}

Tensor MaxPool2D::forward(const Tensor& input, Mode mode) {
  const auto g = pool_geometry(input.shape(), config_);
  const Shape out_shape = pooled_shape(input.shape(), config_);
  Tensor output{out_shape};
  cached_input_shape_ = input.shape();
  argmax_.assign(mode == Mode::kTrain ? out_shape.size() : 0, 0);

  const std::size_t batch = input.shape().n(), channels = input.shape().c();
  std::size_t out_i = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      for (std::size_t y = 0; y < g.out_h(); ++y) {
        for (std::size_t x = 0; x < g.out_w(); ++x, ++out_i) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          bool found = false;
          for (std::size_t ky = 0; ky < g.kernel_h; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(y * g.stride + ky) -
                static_cast<std::ptrdiff_t>(g.pad);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.in_h)) continue;
            for (std::size_t kx = 0; kx < g.kernel_w; ++kx) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(x * g.stride + kx) -
                  static_cast<std::ptrdiff_t>(g.pad);
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(g.in_w)) {
                continue;
              }
              const std::size_t idx = input.shape().offset(
                  n, c, static_cast<std::size_t>(iy),
                  static_cast<std::size_t>(ix));
              const float v = input[idx];
              if (!found || v > best) {
                best = v;
                best_idx = idx;
                found = true;
              }
            }
          }
          // g.valid() guarantees at least one in-bounds tap per window when
          // pad < window; an all-padded window yields 0.
          output[out_i] = found ? best : 0.0f;
          if (!argmax_.empty()) argmax_[out_i] = found ? best_idx : SIZE_MAX;
        }
      }
    }
  }
  apply_output_transform(output);
  return output;
}

Tensor MaxPool2D::backward(const Tensor& grad_output) {
  if (argmax_.empty()) {
    throw std::logic_error("MaxPool2D::backward: forward(kTrain) required");
  }
  if (grad_output.size() != argmax_.size()) {
    throw std::invalid_argument("MaxPool2D::backward: bad grad shape");
  }
  Tensor grad_input{cached_input_shape_};
  for (std::size_t i = 0; i < argmax_.size(); ++i) {
    if (argmax_[i] != SIZE_MAX) grad_input[argmax_[i]] += grad_output[i];
  }
  return grad_input;
}

std::unique_ptr<Layer> MaxPool2D::clone() const {
  auto copy = std::make_unique<MaxPool2D>(config_);
  copy->cached_input_shape_ = cached_input_shape_;
  copy->argmax_ = argmax_;
  copy->output_transform_ = output_transform_;
  return copy;
}

// ---------------------------------------------------------------- AvgPool2D

AvgPool2D::AvgPool2D(const PoolConfig& config) : config_(config) {
  if (config.window == 0 || config.stride == 0) {
    throw std::invalid_argument("AvgPool2D: invalid config");
  }
}

Shape AvgPool2D::output_shape(const Shape& input) const {
  return pooled_shape(input, config_);
}

Tensor AvgPool2D::forward(const Tensor& input, Mode /*mode*/) {
  const auto g = pool_geometry(input.shape(), config_);
  const Shape out_shape = pooled_shape(input.shape(), config_);
  Tensor output{out_shape};
  cached_input_shape_ = input.shape();

  const float inv_area =
      1.0f / static_cast<float>(config_.window * config_.window);
  const std::size_t batch = input.shape().n(), channels = input.shape().c();
  std::size_t out_i = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      for (std::size_t y = 0; y < g.out_h(); ++y) {
        for (std::size_t x = 0; x < g.out_w(); ++x, ++out_i) {
          float acc = 0.0f;
          for (std::size_t ky = 0; ky < g.kernel_h; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(y * g.stride + ky) -
                static_cast<std::ptrdiff_t>(g.pad);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.in_h)) continue;
            for (std::size_t kx = 0; kx < g.kernel_w; ++kx) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(x * g.stride + kx) -
                  static_cast<std::ptrdiff_t>(g.pad);
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(g.in_w)) {
                continue;
              }
              acc += input.at(n, c, static_cast<std::size_t>(iy),
                              static_cast<std::size_t>(ix));
            }
          }
          output[out_i] = acc * inv_area;
        }
      }
    }
  }
  apply_output_transform(output);
  return output;
}

Tensor AvgPool2D::backward(const Tensor& grad_output) {
  if (cached_input_shape_.rank() != 4) {
    throw std::logic_error("AvgPool2D::backward: forward required first");
  }
  const auto g = pool_geometry(cached_input_shape_, config_);
  if (grad_output.shape() != pooled_shape(cached_input_shape_, config_)) {
    throw std::invalid_argument("AvgPool2D::backward: bad grad shape");
  }
  Tensor grad_input{cached_input_shape_};
  const float inv_area =
      1.0f / static_cast<float>(config_.window * config_.window);
  const std::size_t batch = cached_input_shape_.n();
  const std::size_t channels = cached_input_shape_.c();
  std::size_t out_i = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      for (std::size_t y = 0; y < g.out_h(); ++y) {
        for (std::size_t x = 0; x < g.out_w(); ++x, ++out_i) {
          const float share = grad_output[out_i] * inv_area;
          for (std::size_t ky = 0; ky < g.kernel_h; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(y * g.stride + ky) -
                static_cast<std::ptrdiff_t>(g.pad);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.in_h)) continue;
            for (std::size_t kx = 0; kx < g.kernel_w; ++kx) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(x * g.stride + kx) -
                  static_cast<std::ptrdiff_t>(g.pad);
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(g.in_w)) {
                continue;
              }
              grad_input.at(n, c, static_cast<std::size_t>(iy),
                            static_cast<std::size_t>(ix)) += share;
            }
          }
        }
      }
    }
  }
  return grad_input;
}

std::unique_ptr<Layer> AvgPool2D::clone() const {
  auto copy = std::make_unique<AvgPool2D>(config_);
  copy->cached_input_shape_ = cached_input_shape_;
  copy->output_transform_ = output_transform_;
  return copy;
}

}  // namespace mfdfp::nn
