// Local Response Normalization (across channels), as in AlexNet.
//
// The paper *removes* LRN layers from its benchmark networks (Section 6.1)
// because the division/power operations cannot be mapped onto the
// multiplier-free datapath. We implement LRN anyway so that (a) the
// "remove LRN" design decision is reproducible as an ablation — train with
// and without and compare — and (b) extract_qnet correctly *rejects*
// networks that still contain it.
//
//   y_i = x_i / (k + alpha/n * sum_{j in window(i)} x_j^2)^beta
#pragma once

#include "nn/layer.hpp"

namespace mfdfp::nn {

class LocalResponseNorm final : public Layer {
 public:
  struct Config {
    std::size_t local_size = 5;  ///< channel window (odd)
    float alpha = 1e-4f;
    float beta = 0.75f;
    float k = 1.0f;
  };

  explicit LocalResponseNorm(const Config& config);

  [[nodiscard]] const char* kind() const noexcept override { return "lrn"; }
  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override {
    return input;
  }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
  Tensor cached_input_;
  Tensor cached_scale_;  ///< (k + alpha/n * window sum of squares) per elem
};

}  // namespace mfdfp::nn
