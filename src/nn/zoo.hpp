// Benchmark network architectures.
//
// The paper evaluates the Krizhevsky cuda-convnet CIFAR-10 architecture and
// an AlexNet-class ImageNet architecture (with LRN layers removed, Section
// 6.1 — LRN is not amenable to the multiplier-free datapath, and we follow
// that here: no normalization layers at all). These factories reproduce
// those topologies parameterized by input geometry and a width multiplier so
// the same code runs the paper-scale nets and the reduced-scale nets used by
// the synthetic benchmarks.
#pragma once

#include "nn/network.hpp"
#include "util/rng.hpp"

namespace mfdfp::nn {

struct ZooConfig {
  std::size_t in_channels = 3;
  std::size_t in_h = 32;
  std::size_t in_w = 32;
  std::size_t num_classes = 10;
  /// Scales every hidden channel count; rounded up, floor of 4 channels.
  float width_multiplier = 1.0f;
};

/// cuda-convnet CIFAR-10 topology (conv5-pool-relu ×3 + fc), pooling windows
/// reduced to 2x2/stride-2 so the net also fits 16x16 inputs.
/// conv1: 32ch maxpool; conv2: 32ch avgpool; conv3: 64ch avgpool; fc.
[[nodiscard]] Network make_cifar10_net(const ZooConfig& config,
                                       util::Rng& rng);

/// AlexNet-style topology scaled for small inputs: four conv blocks with two
/// pools plus a two-layer classifier head.
[[nodiscard]] Network make_alexnet_mini(const ZooConfig& config,
                                        util::Rng& rng);

/// Small MLP (flatten-fc-relu-fc), used by unit tests and the quickstart.
[[nodiscard]] Network make_mlp(const ZooConfig& config, std::size_t hidden,
                               util::Rng& rng);

}  // namespace mfdfp::nn
