// Layer abstraction for the training substrate.
//
// Layers are stateful value producers: forward() caches whatever backward()
// needs, so the call protocol is strictly forward-then-backward per batch.
//
// Two hook points exist for the MF-DFP pipeline (quantize-forward /
// float-backward, Algorithm 1 of the paper):
//   * a *parameter transform* maps the float master weights to the effective
//     weights used by forward/backward (e.g. round-to-power-of-two);
//   * an *output transform* post-processes the layer output (e.g. snap
//     activations to 8-bit dynamic fixed point).
// Gradients flow straight through both transforms (straight-through
// estimator) and the optimizer updates the float master copy, exactly as in
// Courbariaux et al. and Algorithm 1 lines 4-7.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace mfdfp::nn {

using tensor::Shape;
using tensor::Tensor;

enum class Mode { kTrain, kEval };

/// Elementwise tensor-to-tensor map used for fake quantization.
/// `dst` is pre-sized to `src`'s shape; implementations overwrite all of it.
using TensorTransform = std::function<void(const Tensor& src, Tensor& dst)>;

/// Non-owning view of one learnable parameter of a layer.
///
/// `master` is the float-precision weight the optimizer updates; `effective`
/// is what forward actually used this step (== master when no transform is
/// installed); `grad` is d(loss)/d(effective), which the straight-through
/// estimator treats as d(loss)/d(master).
struct ParamView {
  Tensor* master = nullptr;
  Tensor* grad = nullptr;
  const Tensor* effective = nullptr;
  std::string name;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Stable identifier used in serialization and diagnostics ("conv2d", ...).
  [[nodiscard]] virtual const char* kind() const noexcept = 0;

  /// Computes the layer output, caching activations needed by backward().
  virtual Tensor forward(const Tensor& input, Mode mode) = 0;

  /// Given d(loss)/d(output), fills parameter gradients and returns
  /// d(loss)/d(input). Must be preceded by forward() on the same batch.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Output shape produced for a given input shape (shape inference).
  [[nodiscard]] virtual Shape output_shape(const Shape& input) const = 0;

  /// Learnable parameters; empty for stateless layers.
  virtual std::vector<ParamView> params() { return {}; }

  /// Deep copy, including weights and installed transforms.
  [[nodiscard]] virtual std::unique_ptr<Layer> clone() const = 0;

  /// Installs/clears the activation (output) transform.
  void set_output_transform(TensorTransform transform) {
    output_transform_ = std::move(transform);
  }
  [[nodiscard]] bool has_output_transform() const noexcept {
    return static_cast<bool>(output_transform_);
  }

 protected:
  /// Applies the output transform in place if installed.
  void apply_output_transform(Tensor& out) const {
    if (output_transform_) {
      Tensor transformed{out.shape()};
      output_transform_(out, transformed);
      out = std::move(transformed);
    }
  }

  TensorTransform output_transform_;
};

/// Base for layers with weights + bias (Conv2D, FullyConnected).
class WeightedLayer : public Layer {
 public:
  std::vector<ParamView> params() override {
    return {
        ParamView{&weights_, &grad_weights_, &effective_weights(), "weights"},
        ParamView{&bias_, &grad_bias_, &effective_bias(), "bias"},
    };
  }

  /// Installs/clears the master->effective transforms. Weights and bias get
  /// independent transforms because the MF-DFP scheme quantizes them
  /// differently (power-of-two vs 8-bit DFP). Pass nullptr to clear.
  void set_param_transform(TensorTransform weight_transform,
                           TensorTransform bias_transform) {
    weight_transform_ = std::move(weight_transform);
    bias_transform_ = std::move(bias_transform);
  }
  [[nodiscard]] bool has_param_transform() const noexcept {
    return static_cast<bool>(weight_transform_) ||
           static_cast<bool>(bias_transform_);
  }

  [[nodiscard]] const Tensor& master_weights() const noexcept {
    return weights_;
  }
  [[nodiscard]] Tensor& master_weights() noexcept { return weights_; }
  [[nodiscard]] const Tensor& master_bias() const noexcept { return bias_; }
  [[nodiscard]] Tensor& master_bias() noexcept { return bias_; }

  /// Effective (possibly quantized) parameters used by the last forward.
  [[nodiscard]] const Tensor& effective_weights() const noexcept {
    return weight_transform_ ? eff_weights_ : weights_;
  }
  [[nodiscard]] const Tensor& effective_bias() const noexcept {
    return bias_transform_ ? eff_bias_ : bias_;
  }

 protected:
  /// Recomputes effective weights from masters; called at each forward().
  void refresh_effective_params() {
    if (weight_transform_) {
      if (eff_weights_.shape() != weights_.shape()) {
        eff_weights_ = Tensor{weights_.shape()};
      }
      weight_transform_(weights_, eff_weights_);
    }
    if (bias_transform_) {
      if (eff_bias_.shape() != bias_.shape()) {
        eff_bias_ = Tensor{bias_.shape()};
      }
      bias_transform_(bias_, eff_bias_);
    }
  }

  /// Copies weighted-layer state (weights + transforms) into `dst`.
  void copy_weighted_state_to(WeightedLayer& dst) const {
    dst.weights_ = weights_;
    dst.bias_ = bias_;
    dst.grad_weights_ = grad_weights_;
    dst.grad_bias_ = grad_bias_;
    dst.eff_weights_ = eff_weights_;
    dst.eff_bias_ = eff_bias_;
    dst.weight_transform_ = weight_transform_;
    dst.bias_transform_ = bias_transform_;
    dst.output_transform_ = output_transform_;
  }

  Tensor weights_, bias_;
  Tensor grad_weights_, grad_bias_;
  Tensor eff_weights_, eff_bias_;
  TensorTransform weight_transform_;
  TensorTransform bias_transform_;
};

}  // namespace mfdfp::nn
