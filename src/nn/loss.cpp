#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace mfdfp::nn {
namespace {

void check_logits(const Tensor& logits, std::span<const int> labels) {
  if (logits.shape().rank() != 2) {
    throw std::invalid_argument("loss: logits must be {N, K}");
  }
  if (labels.size() != logits.shape().dim(0)) {
    throw std::invalid_argument("loss: label count mismatch");
  }
  const auto classes = static_cast<int>(logits.shape().dim(1));
  for (int label : labels) {
    if (label < 0 || label >= classes) {
      throw std::invalid_argument("loss: label out of range");
    }
  }
}

constexpr float kLogFloor = 1e-12f;  // clamp for log() numerical safety

}  // namespace

Tensor softmax(const Tensor& logits, float temperature) {
  if (logits.shape().rank() != 2) {
    throw std::invalid_argument("softmax: logits must be {N, K}");
  }
  if (!(temperature > 0.0f)) {
    throw std::invalid_argument("softmax: temperature must be > 0");
  }
  const std::size_t batch = logits.shape().dim(0);
  const std::size_t classes = logits.shape().dim(1);
  Tensor probs{logits.shape()};
  for (std::size_t n = 0; n < batch; ++n) {
    const float* row = logits.data().data() + n * classes;
    float* out = probs.data().data() + n * classes;
    float max_logit = row[0];
    for (std::size_t k = 1; k < classes; ++k) {
      max_logit = std::max(max_logit, row[k]);
    }
    float denom = 0.0f;
    for (std::size_t k = 0; k < classes; ++k) {
      out[k] = std::exp((row[k] - max_logit) / temperature);
      denom += out[k];
    }
    const float inv = 1.0f / denom;
    for (std::size_t k = 0; k < classes; ++k) out[k] *= inv;
  }
  return probs;
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const int> labels) {
  check_logits(logits, labels);
  const std::size_t batch = logits.shape().dim(0);
  const std::size_t classes = logits.shape().dim(1);
  const float inv_batch = 1.0f / static_cast<float>(batch);

  Tensor probs = softmax(logits);
  LossResult result;
  result.grad_logits = probs;  // start from P, subtract one-hot below
  float loss = 0.0f;
  for (std::size_t n = 0; n < batch; ++n) {
    const auto label = static_cast<std::size_t>(labels[n]);
    const float p = probs.data()[n * classes + label];
    loss -= std::log(std::max(p, kLogFloor));
    result.grad_logits[n * classes + label] -= 1.0f;
  }
  result.grad_logits.scale(inv_batch);
  result.loss = loss * inv_batch;
  return result;
}

LossResult distillation_loss(const Tensor& student_logits,
                             const Tensor& teacher_logits,
                             std::span<const int> labels, float tau,
                             float beta) {
  check_logits(student_logits, labels);
  if (teacher_logits.shape() != student_logits.shape()) {
    throw std::invalid_argument("distillation_loss: logits shape mismatch");
  }
  if (!(tau > 0.0f) || beta < 0.0f) {
    throw std::invalid_argument("distillation_loss: bad tau/beta");
  }
  const std::size_t batch = student_logits.shape().dim(0);
  const std::size_t classes = student_logits.shape().dim(1);
  const float inv_batch = 1.0f / static_cast<float>(batch);

  // Hard-label term at tau = 1.
  LossResult result = softmax_cross_entropy(student_logits, labels);

  // Soft term: H(P_T, P_S) at temperature tau.
  const Tensor soft_student = softmax(student_logits, tau);
  const Tensor soft_teacher = softmax(teacher_logits, tau);
  float soft_loss = 0.0f;
  for (std::size_t i = 0; i < batch * classes; ++i) {
    soft_loss -=
        soft_teacher[i] * std::log(std::max(soft_student[i], kLogFloor));
    // d/dz_S of H(P_T, P_S) with temperature tau is (P_S - P_T)/tau.
    result.grad_logits[i] +=
        beta * inv_batch / tau * (soft_student[i] - soft_teacher[i]);
  }
  result.loss += beta * soft_loss * inv_batch;
  return result;
}

LossResult distillation_loss_approx(const Tensor& student_logits,
                                    const Tensor& teacher_logits,
                                    std::span<const int> labels, float tau,
                                    float beta) {
  check_logits(student_logits, labels);
  if (teacher_logits.shape() != student_logits.shape()) {
    throw std::invalid_argument("distillation_loss_approx: shape mismatch");
  }
  const std::size_t batch = student_logits.shape().dim(0);
  const std::size_t classes = student_logits.shape().dim(1);
  const float inv_batch = 1.0f / static_cast<float>(batch);

  LossResult result = softmax_cross_entropy(student_logits, labels);

  // Paper Eq. 2: beta/(N*tau^2) * (z_S - z_T), where the paper's N is the
  // logit vector length (class count); rows are zero-meaned to satisfy the
  // derivation's assumption sum_j z_j = 0. The batch mean adds inv_batch.
  const float scale =
      beta * inv_batch / (static_cast<float>(classes) * tau * tau);
  for (std::size_t n = 0; n < batch; ++n) {
    const float* zs = student_logits.data().data() + n * classes;
    const float* zt = teacher_logits.data().data() + n * classes;
    float mean_s = 0.0f, mean_t = 0.0f;
    for (std::size_t k = 0; k < classes; ++k) {
      mean_s += zs[k];
      mean_t += zt[k];
    }
    mean_s /= static_cast<float>(classes);
    mean_t /= static_cast<float>(classes);
    for (std::size_t k = 0; k < classes; ++k) {
      result.grad_logits[n * classes + k] +=
          scale * ((zs[k] - mean_s) - (zt[k] - mean_t));
    }
    // Loss bookkeeping: quadratic surrogate 0.5*scale*||zs-zt||^2 per row.
    for (std::size_t k = 0; k < classes; ++k) {
      const float d = (zs[k] - mean_s) - (zt[k] - mean_t);
      result.loss += 0.5f * scale * d * d;
    }
  }
  return result;
}

}  // namespace mfdfp::nn
