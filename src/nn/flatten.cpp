#include "nn/flatten.hpp"

#include <stdexcept>

namespace mfdfp::nn {

Shape Flatten::output_shape(const Shape& input) const {
  if (input.rank() < 2) {
    throw std::invalid_argument("Flatten: rank >= 2 input required");
  }
  std::size_t features = 1;
  for (std::size_t axis = 1; axis < input.rank(); ++axis) {
    features *= input.dim(axis);
  }
  return Shape{input.dim(0), features};
}

Tensor Flatten::forward(const Tensor& input, Mode /*mode*/) {
  cached_input_shape_ = input.shape();
  Tensor out = input.reshaped(output_shape(input.shape()));
  apply_output_transform(out);
  return out;
}

Tensor Flatten::backward(const Tensor& grad_output) {
  if (cached_input_shape_.rank() == 0) {
    throw std::logic_error("Flatten::backward: forward required first");
  }
  return grad_output.reshaped(cached_input_shape_);
}

std::unique_ptr<Layer> Flatten::clone() const {
  auto copy = std::make_unique<Flatten>();
  copy->cached_input_shape_ = cached_input_shape_;
  copy->output_transform_ = output_transform_;
  return copy;
}

}  // namespace mfdfp::nn
