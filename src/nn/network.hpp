// Sequential network container.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"

namespace mfdfp::nn {

/// A feed-forward chain of layers with aggregate parameter access,
/// deep cloning (needed for teacher snapshots and ensembles), and hooks for
/// the MF-DFP quantization pipeline.
class Network {
 public:
  Network() = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  /// Appends a layer; returns a reference for chained configuration.
  Layer& add(std::unique_ptr<Layer> layer);

  [[nodiscard]] std::size_t layer_count() const noexcept {
    return layers_.size();
  }
  [[nodiscard]] Layer& layer(std::size_t i) { return *layers_.at(i); }
  [[nodiscard]] const Layer& layer(std::size_t i) const {
    return *layers_.at(i);
  }

  /// Runs all layers in order.
  Tensor forward(const Tensor& input, Mode mode = Mode::kEval);

  /// Propagates d(loss)/d(logits) back through all layers; fills parameter
  /// gradients; returns d(loss)/d(input).
  Tensor backward(const Tensor& grad_logits);

  /// All learnable parameters, in layer order.
  [[nodiscard]] std::vector<ParamView> params();

  /// Total learnable scalar count.
  [[nodiscard]] std::size_t param_count() const;

  /// Deep copy (weights, transforms, cached state).
  [[nodiscard]] Network clone() const;

  /// Output shape for a given input shape, via per-layer inference.
  [[nodiscard]] Shape output_shape(Shape input) const;

  /// Indices of WeightedLayer entries (conv/fc), in order.
  [[nodiscard]] std::vector<std::size_t> weighted_layer_indices() const;

  /// Removes all parameter/output transforms (back to pure float network).
  void clear_transforms();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace mfdfp::nn
