// 2-D convolution layer (NCHW), lowered to im2col + GEMM.
#pragma once

#include "nn/layer.hpp"
#include "tensor/im2col.hpp"
#include "util/rng.hpp"

namespace mfdfp::nn {

/// Standard cross-correlation conv layer with square kernels, zero padding,
/// uniform stride, and per-output-channel bias.
///
/// Weights are stored as a rank-2 tensor {out_channels, in_c*k*k} so the
/// forward pass is a single GEMM per batch item; this layout also matches the
/// synapse ordering the hardware accelerator's weight buffer uses.
class Conv2D final : public WeightedLayer {
 public:
  struct Config {
    std::size_t in_channels = 0;
    std::size_t out_channels = 0;
    std::size_t kernel = 3;
    std::size_t stride = 1;
    std::size_t pad = 0;
  };

  /// He-normal weight init using `rng`; bias zero.
  Conv2D(const Config& config, util::Rng& rng);

  [[nodiscard]] const char* kind() const noexcept override { return "conv2d"; }
  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  [[nodiscard]] tensor::ConvGeometry geometry(const Shape& input) const;

  Config config_;
  // Backward caches: lowered input patches for every batch item plus the
  // input shape; grad_output is re-derived from the caller's tensor.
  std::vector<Tensor> cached_columns_;
  Shape cached_input_shape_{};
};

}  // namespace mfdfp::nn
