#include "nn/activations.hpp"

#include <cmath>
#include <stdexcept>

namespace mfdfp::nn {

Tensor ReLU::forward(const Tensor& input, Mode mode) {
  Tensor output{input.shape()};
  cached_shape_ = input.shape();
  if (mode == Mode::kTrain) {
    mask_.assign(input.size(), 0);
  } else {
    mask_.clear();
  }
  for (std::size_t i = 0; i < input.size(); ++i) {
    const bool pass = input[i] > 0.0f;
    output[i] = pass ? input[i] : 0.0f;
    if (!mask_.empty()) mask_[i] = pass ? 1 : 0;
  }
  apply_output_transform(output);
  return output;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  if (mask_.empty()) {
    throw std::logic_error("ReLU::backward: forward(kTrain) required");
  }
  if (grad_output.size() != mask_.size()) {
    throw std::invalid_argument("ReLU::backward: bad grad shape");
  }
  Tensor grad_input{cached_shape_};
  for (std::size_t i = 0; i < mask_.size(); ++i) {
    grad_input[i] = mask_[i] ? grad_output[i] : 0.0f;
  }
  return grad_input;
}

std::unique_ptr<Layer> ReLU::clone() const {
  auto copy = std::make_unique<ReLU>();
  copy->mask_ = mask_;
  copy->cached_shape_ = cached_shape_;
  copy->output_transform_ = output_transform_;
  return copy;
}

Tensor Tanh::forward(const Tensor& input, Mode mode) {
  Tensor output{input.shape()};
  for (std::size_t i = 0; i < input.size(); ++i) {
    output[i] = std::tanh(input[i]);
  }
  cached_output_ = (mode == Mode::kTrain) ? output : Tensor{};
  apply_output_transform(output);
  return output;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  if (cached_output_.empty()) {
    throw std::logic_error("Tanh::backward: forward(kTrain) required");
  }
  if (grad_output.size() != cached_output_.size()) {
    throw std::invalid_argument("Tanh::backward: bad grad shape");
  }
  Tensor grad_input{cached_output_.shape()};
  for (std::size_t i = 0; i < grad_output.size(); ++i) {
    const float y = cached_output_[i];
    grad_input[i] = grad_output[i] * (1.0f - y * y);
  }
  return grad_input;
}

std::unique_ptr<Layer> Tanh::clone() const {
  auto copy = std::make_unique<Tanh>();
  copy->cached_output_ = cached_output_;
  copy->output_transform_ = output_transform_;
  return copy;
}

}  // namespace mfdfp::nn
