// SGD with momentum and weight decay, plus learning-rate schedules.
//
// The optimizer always updates the *master* (float) weights using gradients
// computed against the *effective* (possibly quantized) weights — this is the
// straight-through update of Algorithm 1 line 6.
#pragma once

#include <unordered_map>
#include <vector>

#include "nn/layer.hpp"

namespace mfdfp::nn {

class SgdOptimizer {
 public:
  struct Config {
    float learning_rate = 0.01f;
    float momentum = 0.9f;
    float weight_decay = 0.0f;  ///< L2 on master weights
  };

  explicit SgdOptimizer(const Config& config) : config_(config) {}

  /// v <- mu*v - lr*(g + wd*w); w <- w + v, for every param view.
  /// Momentum state is keyed by the master tensor's address, so views must
  /// come from the same live Network across calls.
  void step(const std::vector<ParamView>& params);

  void set_learning_rate(float lr) noexcept { config_.learning_rate = lr; }
  [[nodiscard]] float learning_rate() const noexcept {
    return config_.learning_rate;
  }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// Drops all momentum state (e.g. when switching training phases).
  void reset_state() { velocity_.clear(); }

 private:
  Config config_;
  std::unordered_map<const Tensor*, Tensor> velocity_;
};

/// "Reduce on plateau" schedule matching the paper's protocol: divide the
/// learning rate by `factor` when the monitored error has not improved for
/// `patience` epochs; stop when lr < min_lr.
class PlateauSchedule {
 public:
  struct Config {
    float factor = 10.0f;
    int patience = 3;
    float min_lr = 1e-7f;
    float min_improvement = 1e-4f;
  };

  explicit PlateauSchedule(const Config& config) : config_(config) {}

  /// Feeds this epoch's validation error; returns true if training should
  /// stop (lr exhausted). Adjusts `optimizer`'s lr in place.
  bool observe(float error, SgdOptimizer& optimizer);

  [[nodiscard]] float best_error() const noexcept { return best_; }

 private:
  Config config_;
  float best_ = 1e30f;
  int stale_epochs_ = 0;
};

}  // namespace mfdfp::nn
