#include "nn/lrn.hpp"

#include <cmath>
#include <stdexcept>

namespace mfdfp::nn {

LocalResponseNorm::LocalResponseNorm(const Config& config)
    : config_(config) {
  if (config.local_size == 0 || config.local_size % 2 == 0) {
    throw std::invalid_argument("LRN: local_size must be odd and > 0");
  }
}

Tensor LocalResponseNorm::forward(const Tensor& input, Mode mode) {
  if (input.shape().rank() != 4) {
    throw std::invalid_argument("LRN: rank-4 NCHW input required");
  }
  const std::size_t batch = input.shape().n(), channels = input.shape().c();
  const std::size_t spatial = input.shape().h() * input.shape().w();
  const auto half = static_cast<std::ptrdiff_t>(config_.local_size / 2);
  const float alpha_over_n =
      config_.alpha / static_cast<float>(config_.local_size);

  Tensor scale{input.shape()};
  Tensor output{input.shape()};
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      const std::ptrdiff_t lo =
          std::max<std::ptrdiff_t>(0, static_cast<std::ptrdiff_t>(c) - half);
      const std::ptrdiff_t hi = std::min<std::ptrdiff_t>(
          static_cast<std::ptrdiff_t>(channels) - 1,
          static_cast<std::ptrdiff_t>(c) + half);
      for (std::size_t s = 0; s < spatial; ++s) {
        float sum_sq = 0.0f;
        for (std::ptrdiff_t j = lo; j <= hi; ++j) {
          const float v =
              input[(n * channels + static_cast<std::size_t>(j)) * spatial +
                    s];
          sum_sq += v * v;
        }
        const std::size_t idx = (n * channels + c) * spatial + s;
        const float denom = config_.k + alpha_over_n * sum_sq;
        scale[idx] = denom;
        output[idx] = input[idx] * std::pow(denom, -config_.beta);
      }
    }
  }
  if (mode == Mode::kTrain) {
    cached_input_ = input;
    cached_scale_ = scale;
  } else {
    cached_input_ = Tensor{};
    cached_scale_ = Tensor{};
  }
  apply_output_transform(output);
  return output;
}

Tensor LocalResponseNorm::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) {
    throw std::logic_error("LRN::backward: forward(kTrain) required");
  }
  if (grad_output.shape() != cached_input_.shape()) {
    throw std::invalid_argument("LRN::backward: bad grad shape");
  }
  const Shape& shape = cached_input_.shape();
  const std::size_t batch = shape.n(), channels = shape.c();
  const std::size_t spatial = shape.h() * shape.w();
  const auto half = static_cast<std::ptrdiff_t>(config_.local_size / 2);
  const float alpha_over_n =
      config_.alpha / static_cast<float>(config_.local_size);

  // dL/dx_i = g_i * S_i^-beta
  //           - 2*alpha/n*beta * x_i * sum_{j: i in window(j)}
  //             g_j * x_j * S_j^-(beta+1)
  Tensor grad_input{shape};
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t s = 0; s < spatial; ++s) {
      for (std::size_t c = 0; c < channels; ++c) {
        const std::size_t idx = (n * channels + c) * spatial + s;
        float acc = grad_output[idx] *
                    std::pow(cached_scale_[idx], -config_.beta);
        const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(
            0, static_cast<std::ptrdiff_t>(c) - half);
        const std::ptrdiff_t hi = std::min<std::ptrdiff_t>(
            static_cast<std::ptrdiff_t>(channels) - 1,
            static_cast<std::ptrdiff_t>(c) + half);
        for (std::ptrdiff_t j = lo; j <= hi; ++j) {
          const std::size_t jdx =
              (n * channels + static_cast<std::size_t>(j)) * spatial + s;
          acc -= 2.0f * alpha_over_n * config_.beta * cached_input_[idx] *
                 grad_output[jdx] * cached_input_[jdx] *
                 std::pow(cached_scale_[jdx], -(config_.beta + 1.0f));
        }
        grad_input[idx] = acc;
      }
    }
  }
  return grad_input;
}

std::unique_ptr<Layer> LocalResponseNorm::clone() const {
  auto copy = std::make_unique<LocalResponseNorm>(config_);
  copy->cached_input_ = cached_input_;
  copy->cached_scale_ = cached_scale_;
  copy->output_transform_ = output_transform_;
  return copy;
}

}  // namespace mfdfp::nn
