#include "nn/network.hpp"

#include <stdexcept>

namespace mfdfp::nn {

Layer& Network::add(std::unique_ptr<Layer> layer) {
  if (!layer) throw std::invalid_argument("Network::add: null layer");
  layers_.push_back(std::move(layer));
  return *layers_.back();
}

Tensor Network::forward(const Tensor& input, Mode mode) {
  if (layers_.empty()) throw std::logic_error("Network::forward: empty");
  Tensor activation = layers_.front()->forward(input, mode);
  for (std::size_t i = 1; i < layers_.size(); ++i) {
    activation = layers_[i]->forward(activation, mode);
  }
  return activation;
}

Tensor Network::backward(const Tensor& grad_logits) {
  if (layers_.empty()) throw std::logic_error("Network::backward: empty");
  Tensor grad = grad_logits;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    grad = layers_[i]->backward(grad);
  }
  return grad;
}

std::vector<ParamView> Network::params() {
  std::vector<ParamView> all;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    for (ParamView view : layers_[i]->params()) {
      view.name = std::string(layers_[i]->kind()) + "." +
                  std::to_string(i) + "." + view.name;
      all.push_back(std::move(view));
    }
  }
  return all;
}

std::size_t Network::param_count() const {
  std::size_t total = 0;
  for (const auto& layer : layers_) {
    // params() is non-const by design (exposes mutable views); cast is safe
    // for counting.
    for (const ParamView& view :
         const_cast<Layer&>(*layer).params()) {
      total += view.master->size();
    }
  }
  return total;
}

Network Network::clone() const {
  Network copy;
  for (const auto& layer : layers_) copy.layers_.push_back(layer->clone());
  return copy;
}

Shape Network::output_shape(Shape input) const {
  for (const auto& layer : layers_) input = layer->output_shape(input);
  return input;
}

std::vector<std::size_t> Network::weighted_layer_indices() const {
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (dynamic_cast<const WeightedLayer*>(layers_[i].get()) != nullptr) {
      indices.push_back(i);
    }
  }
  return indices;
}

void Network::clear_transforms() {
  for (auto& layer : layers_) {
    layer->set_output_transform(nullptr);
    if (auto* weighted = dynamic_cast<WeightedLayer*>(layer.get())) {
      weighted->set_param_transform(nullptr, nullptr);
    }
  }
}

}  // namespace mfdfp::nn
