#include "nn/fully_connected.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/im2col.hpp"

namespace mfdfp::nn {

FullyConnected::FullyConnected(const Config& config, util::Rng& rng)
    : config_(config) {
  if (config.in_features == 0 || config.out_features == 0) {
    throw std::invalid_argument("FullyConnected: invalid config");
  }
  weights_ = Tensor{Shape{config.out_features, config.in_features}};
  bias_ = Tensor{Shape{config.out_features}};
  grad_weights_ = Tensor{weights_.shape()};
  grad_bias_ = Tensor{bias_.shape()};
  const float stddev =
      std::sqrt(2.0f / static_cast<float>(config.in_features));
  weights_.fill_normal(rng, 0.0f, stddev);
}

Shape FullyConnected::output_shape(const Shape& input) const {
  if (input.rank() != 2 || input.dim(1) != config_.in_features) {
    throw std::invalid_argument("FullyConnected: want {N, " +
                                std::to_string(config_.in_features) +
                                "}, got " + input.to_string());
  }
  return Shape{input.dim(0), config_.out_features};
}

Tensor FullyConnected::forward(const Tensor& input, Mode mode) {
  refresh_effective_params();
  const Shape out_shape = output_shape(input.shape());
  const std::size_t batch = input.shape().dim(0);

  Tensor output{out_shape};
  // y = x * W^T  (x: {N, in}, W: {out, in})
  tensor::matmul_nt(input, effective_weights(), output);
  const Tensor& b = effective_bias();
  for (std::size_t n = 0; n < batch; ++n) {
    float* row = output.data().data() + n * config_.out_features;
    for (std::size_t j = 0; j < config_.out_features; ++j) row[j] += b[j];
  }

  cached_input_ = (mode == Mode::kTrain) ? input : Tensor{};
  apply_output_transform(output);
  return output;
}

Tensor FullyConnected::backward(const Tensor& grad_output) {
  if (cached_input_.empty()) {
    throw std::logic_error("FullyConnected::backward: no cached input; "
                           "call forward(kTrain) first");
  }
  const std::size_t batch = cached_input_.shape().dim(0);
  const Shape expected{batch, config_.out_features};
  if (grad_output.shape() != expected) {
    throw std::invalid_argument("FullyConnected::backward: bad grad shape");
  }

  // dW = G^T * X ; db = column sums of G ; dX = G * W.
  tensor::matmul_tn(grad_output, cached_input_, grad_weights_);
  grad_bias_.zero();
  for (std::size_t n = 0; n < batch; ++n) {
    const float* row = grad_output.data().data() + n * config_.out_features;
    for (std::size_t j = 0; j < config_.out_features; ++j) {
      grad_bias_[j] += row[j];
    }
  }
  Tensor grad_input{cached_input_.shape()};
  tensor::matmul(grad_output, effective_weights(), grad_input);
  return grad_input;
}

std::unique_ptr<Layer> FullyConnected::clone() const {
  util::Rng throwaway{0};
  auto copy = std::make_unique<FullyConnected>(config_, throwaway);
  copy_weighted_state_to(*copy);
  copy->cached_input_ = cached_input_;
  return copy;
}

}  // namespace mfdfp::nn
