#include "nn/layer.hpp"

// Layer and WeightedLayer are header-only; this TU anchors the vtable.

namespace mfdfp::nn {}  // namespace mfdfp::nn
