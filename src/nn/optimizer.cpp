#include "nn/optimizer.hpp"

namespace mfdfp::nn {

void SgdOptimizer::step(const std::vector<ParamView>& params) {
  for (const ParamView& view : params) {
    Tensor& w = *view.master;
    const Tensor& g = *view.grad;
    auto [it, inserted] = velocity_.try_emplace(view.master, w.shape());
    Tensor& v = it->second;
    if (!inserted && v.shape() != w.shape()) v = Tensor{w.shape()};
    for (std::size_t i = 0; i < w.size(); ++i) {
      const float grad = g[i] + config_.weight_decay * w[i];
      v[i] = config_.momentum * v[i] - config_.learning_rate * grad;
      w[i] += v[i];
    }
  }
}

bool PlateauSchedule::observe(float error, SgdOptimizer& optimizer) {
  if (error < best_ - config_.min_improvement) {
    best_ = error;
    stale_epochs_ = 0;
    return false;
  }
  if (++stale_epochs_ < config_.patience) return false;
  stale_epochs_ = 0;
  const float next = optimizer.learning_rate() / config_.factor;
  if (next < config_.min_lr) return true;
  optimizer.set_learning_rate(next);
  return false;
}

}  // namespace mfdfp::nn
