#include "nn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mfdfp::nn {
namespace {

constexpr char kMagic[4] = {'M', 'F', 'D', 'P'};
constexpr std::uint32_t kVersion = 1;

void put_bytes(std::string& out, const void* data, std::size_t size) {
  out.append(static_cast<const char*>(data), size);
}

template <typename T>
void put(std::string& out, T value) {
  put_bytes(out, &value, sizeof value);
}

class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  void read_bytes(void* dst, std::size_t size) {
    if (pos_ + size > bytes_.size()) {
      throw std::runtime_error("weights: truncated stream");
    }
    std::memcpy(dst, bytes_.data() + pos_, size);
    pos_ += size;
  }

  template <typename T>
  T read() {
    T value;
    read_bytes(&value, sizeof value);
    return value;
  }

  [[nodiscard]] bool exhausted() const noexcept {
    return pos_ == bytes_.size();
  }

 private:
  const std::string& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string weights_to_bytes(Network& network) {
  std::string out;
  put_bytes(out, kMagic, sizeof kMagic);
  put(out, kVersion);
  put(out, static_cast<std::uint64_t>(network.layer_count()));
  for (std::size_t i = 0; i < network.layer_count(); ++i) {
    Layer& layer = network.layer(i);
    const std::string kind = layer.kind();
    put(out, static_cast<std::uint32_t>(kind.size()));
    put_bytes(out, kind.data(), kind.size());
    const auto params = layer.params();
    put(out, static_cast<std::uint64_t>(params.size()));
    for (const ParamView& view : params) {
      const Tensor& t = *view.master;
      put(out, static_cast<std::uint64_t>(t.shape().rank()));
      for (std::size_t axis = 0; axis < t.shape().rank(); ++axis) {
        put(out, static_cast<std::uint64_t>(t.shape().dim(axis)));
      }
      put_bytes(out, t.data().data(), t.size() * sizeof(float));
    }
  }
  return out;
}

void weights_from_bytes(Network& network, const std::string& bytes) {
  Reader reader(bytes);
  char magic[4];
  reader.read_bytes(magic, sizeof magic);
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("weights: bad magic");
  }
  if (reader.read<std::uint32_t>() != kVersion) {
    throw std::runtime_error("weights: unsupported version");
  }
  const auto layer_count = reader.read<std::uint64_t>();
  if (layer_count != network.layer_count()) {
    throw std::runtime_error("weights: layer count mismatch");
  }
  for (std::size_t i = 0; i < layer_count; ++i) {
    Layer& layer = network.layer(i);
    const auto kind_len = reader.read<std::uint32_t>();
    std::string kind(kind_len, '\0');
    reader.read_bytes(kind.data(), kind_len);
    if (kind != layer.kind()) {
      throw std::runtime_error("weights: layer kind mismatch at index " +
                               std::to_string(i) + ": file has '" + kind +
                               "', network has '" + layer.kind() + "'");
    }
    const auto param_count = reader.read<std::uint64_t>();
    auto params = layer.params();
    if (param_count != params.size()) {
      throw std::runtime_error("weights: param count mismatch");
    }
    for (ParamView& view : params) {
      const auto rank = reader.read<std::uint64_t>();
      if (rank != view.master->shape().rank()) {
        throw std::runtime_error("weights: param rank mismatch");
      }
      for (std::size_t axis = 0; axis < rank; ++axis) {
        if (reader.read<std::uint64_t>() != view.master->shape().dim(axis)) {
          throw std::runtime_error("weights: param dim mismatch");
        }
      }
      reader.read_bytes(view.master->data().data(),
                        view.master->size() * sizeof(float));
    }
  }
  if (!reader.exhausted()) {
    throw std::runtime_error("weights: trailing bytes");
  }
}

void save_weights(Network& network, const std::string& path) {
  const std::string bytes = weights_to_bytes(network);
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) throw std::runtime_error("weights: cannot open " + path);
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!file) throw std::runtime_error("weights: write failed for " + path);
}

void load_weights(Network& network, const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("weights: cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  weights_from_bytes(network, buffer.str());
}

}  // namespace mfdfp::nn
