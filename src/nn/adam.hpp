// Adam optimizer (Kingma & Ba), provided as an alternative to SGD+momentum
// for the fine-tuning ablations. Algorithm 1 is optimizer-agnostic ("variants
// of gradient descent methods", Section 4.1): the straight-through shadow
// update works with any first-order method.
#pragma once

#include <unordered_map>

#include "nn/layer.hpp"

namespace mfdfp::nn {

class AdamOptimizer {
 public:
  struct Config {
    float learning_rate = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float epsilon = 1e-8f;
    float weight_decay = 0.0f;  ///< decoupled (AdamW-style)
  };

  explicit AdamOptimizer(const Config& config) : config_(config) {}

  /// m <- b1*m + (1-b1)*g; v <- b2*v + (1-b2)*g^2;
  /// w <- w - lr * mhat/(sqrt(vhat)+eps) - lr*wd*w.
  void step(const std::vector<ParamView>& params);

  void set_learning_rate(float lr) noexcept { config_.learning_rate = lr; }
  [[nodiscard]] float learning_rate() const noexcept {
    return config_.learning_rate;
  }

  void reset_state() {
    first_moment_.clear();
    second_moment_.clear();
    step_count_ = 0;
  }

 private:
  Config config_;
  std::unordered_map<const Tensor*, Tensor> first_moment_;
  std::unordered_map<const Tensor*, Tensor> second_moment_;
  long step_count_ = 0;
};

}  // namespace mfdfp::nn
