// Fully-connected (inner-product) layer.
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace mfdfp::nn {

/// y = x * W^T + b with W stored {out_features, in_features}.
/// Input must be rank-2 {batch, in_features}; use Flatten upstream for
/// feature maps.
class FullyConnected final : public WeightedLayer {
 public:
  struct Config {
    std::size_t in_features = 0;
    std::size_t out_features = 0;
  };

  /// He-normal weight init; bias zero.
  FullyConnected(const Config& config, util::Rng& rng);

  [[nodiscard]] const char* kind() const noexcept override { return "fc"; }
  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
  Tensor cached_input_;  ///< {batch, in_features}, kept for backward.
};

}  // namespace mfdfp::nn
