// Binary (de)serialization of network weights.
//
// Format (little-endian):
//   magic "MFDP" | u32 version | u64 layer_count |
//   per layer: u32 kind_len | kind bytes | u64 param_count |
//     per param: u64 rank | u64 dims[rank] | f32 data[size]
// Only *master* float weights are stored; transforms are reinstalled by the
// quantization pipeline after load.
#pragma once

#include <string>

#include "nn/network.hpp"

namespace mfdfp::nn {

/// Serializes master weights of all layers. Throws std::runtime_error on I/O
/// failure.
void save_weights(Network& network, const std::string& path);

/// Loads weights into an already-constructed network with identical
/// architecture. Throws std::runtime_error on format/shape mismatch.
void load_weights(Network& network, const std::string& path);

/// In-memory round-trip helpers (used by tests and the ensemble builder).
[[nodiscard]] std::string weights_to_bytes(Network& network);
void weights_from_bytes(Network& network, const std::string& bytes);

}  // namespace mfdfp::nn
