// Flatten layer: NCHW feature maps -> {N, C*H*W} vectors.
#pragma once

#include "nn/layer.hpp"

namespace mfdfp::nn {

class Flatten final : public Layer {
 public:
  [[nodiscard]] const char* kind() const noexcept override {
    return "flatten";
  }
  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;

 private:
  Shape cached_input_shape_{};
};

}  // namespace mfdfp::nn
