#include "nn/conv2d.hpp"

#include <cmath>
#include <stdexcept>

namespace mfdfp::nn {

using tensor::ConvGeometry;

Conv2D::Conv2D(const Config& config, util::Rng& rng) : config_(config) {
  if (config.in_channels == 0 || config.out_channels == 0 ||
      config.kernel == 0 || config.stride == 0) {
    throw std::invalid_argument("Conv2D: invalid config");
  }
  const std::size_t fan_in =
      config.in_channels * config.kernel * config.kernel;
  weights_ = Tensor{Shape{config.out_channels, fan_in}};
  bias_ = Tensor{Shape{config.out_channels}};
  grad_weights_ = Tensor{weights_.shape()};
  grad_bias_ = Tensor{bias_.shape()};
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  weights_.fill_normal(rng, 0.0f, stddev);
}

ConvGeometry Conv2D::geometry(const Shape& input) const {
  if (input.rank() != 4) {
    throw std::invalid_argument("Conv2D: rank-4 NCHW input required, got " +
                                input.to_string());
  }
  if (input.c() != config_.in_channels) {
    throw std::invalid_argument("Conv2D: expected " +
                                std::to_string(config_.in_channels) +
                                " input channels, got " +
                                std::to_string(input.c()));
  }
  ConvGeometry g;
  g.in_c = input.c();
  g.in_h = input.h();
  g.in_w = input.w();
  g.kernel_h = g.kernel_w = config_.kernel;
  g.stride = config_.stride;
  g.pad = config_.pad;
  if (!g.valid()) {
    throw std::invalid_argument("Conv2D: kernel does not fit input " +
                                input.to_string());
  }
  return g;
}

Shape Conv2D::output_shape(const Shape& input) const {
  const ConvGeometry g = geometry(input);
  return Shape{input.n(), config_.out_channels, g.out_h(), g.out_w()};
}

Tensor Conv2D::forward(const Tensor& input, Mode mode) {
  refresh_effective_params();
  const ConvGeometry g = geometry(input.shape());
  const std::size_t batch = input.shape().n();
  const std::size_t oh = g.out_h(), ow = g.out_w();
  const std::size_t out_spatial = oh * ow;

  Tensor output{Shape{batch, config_.out_channels, oh, ow}};
  cached_input_shape_ = input.shape();
  if (mode == Mode::kTrain) {
    cached_columns_.assign(batch, Tensor{Shape{g.patch_size(), out_spatial}});
  }

  const Tensor& w = effective_weights();
  const Tensor& b = effective_bias();
  Tensor columns{Shape{g.patch_size(), out_spatial}};
  Tensor product{Shape{config_.out_channels, out_spatial}};
  for (std::size_t n = 0; n < batch; ++n) {
    Tensor& cols = (mode == Mode::kTrain) ? cached_columns_[n] : columns;
    tensor::im2col(input, n, g, cols);
    tensor::matmul(w, cols, product);
    float* dst = output.data().data() +
                 n * config_.out_channels * out_spatial;
    const float* src = product.data().data();
    for (std::size_t oc = 0; oc < config_.out_channels; ++oc) {
      const float bias_v = b[oc];
      for (std::size_t i = 0; i < out_spatial; ++i) {
        dst[oc * out_spatial + i] = src[oc * out_spatial + i] + bias_v;
      }
    }
  }
  apply_output_transform(output);
  return output;
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  if (cached_columns_.empty()) {
    throw std::logic_error("Conv2D::backward: no cached forward state; "
                           "call forward(kTrain) first");
  }
  const ConvGeometry g = geometry(cached_input_shape_);
  const std::size_t batch = cached_input_shape_.n();
  const std::size_t out_spatial = g.out_h() * g.out_w();
  const Shape expected{batch, config_.out_channels, g.out_h(), g.out_w()};
  if (grad_output.shape() != expected) {
    throw std::invalid_argument("Conv2D::backward: grad shape " +
                                grad_output.shape().to_string() + " != " +
                                expected.to_string());
  }

  grad_weights_.zero();
  grad_bias_.zero();
  Tensor grad_input{cached_input_shape_};

  const Tensor& w = effective_weights();
  Tensor g_item{Shape{config_.out_channels, out_spatial}};
  Tensor dw_item{Shape{weights_.shape().dim(0), weights_.shape().dim(1)}};
  Tensor dcols{Shape{g.patch_size(), out_spatial}};
  for (std::size_t n = 0; n < batch; ++n) {
    // Slice grad_output for this item into a rank-2 view copy.
    const float* src = grad_output.data().data() +
                       n * config_.out_channels * out_spatial;
    std::copy(src, src + config_.out_channels * out_spatial,
              g_item.data().data());

    // dW += G * cols^T ; db += row-sums of G.
    tensor::matmul_nt(g_item, cached_columns_[n], dw_item);
    grad_weights_.add(dw_item);
    for (std::size_t oc = 0; oc < config_.out_channels; ++oc) {
      float acc = 0.0f;
      const float* row = g_item.data().data() + oc * out_spatial;
      for (std::size_t i = 0; i < out_spatial; ++i) acc += row[i];
      grad_bias_[oc] += acc;
    }

    // dInput via dcols = W^T * G, then col2im scatter.
    tensor::matmul_tn(w, g_item, dcols);
    tensor::col2im(dcols, n, g, grad_input);
  }
  return grad_input;
}

std::unique_ptr<Layer> Conv2D::clone() const {
  util::Rng throwaway{0};
  auto copy = std::make_unique<Conv2D>(config_, throwaway);
  copy_weighted_state_to(*copy);
  return copy;
}

}  // namespace mfdfp::nn
