#include "nn/trainer.hpp"

#include <numeric>
#include <stdexcept>

namespace mfdfp::nn {

LossFn hard_label_loss() {
  return [](const Tensor& logits, std::span<const int> labels,
            std::span<const std::size_t>) {
    return softmax_cross_entropy(logits, labels);
  };
}

std::vector<EpochStats> train(Network& network, const Tensor& train_images,
                              std::span<const int> train_labels,
                              const Tensor& val_images,
                              std::span<const int> val_labels,
                              const LossFn& loss_fn, SgdOptimizer& optimizer,
                              const TrainConfig& config, util::Rng& rng) {
  const std::size_t total = train_images.shape().dim(0);
  if (train_labels.size() != total) {
    throw std::invalid_argument("train: label count mismatch");
  }
  if (config.batch_size == 0 || config.max_epochs == 0) {
    throw std::invalid_argument("train: empty config");
  }

  std::vector<std::size_t> order(total);
  std::iota(order.begin(), order.end(), 0);
  std::vector<EpochStats> history;
  history.reserve(config.max_epochs);

  for (std::size_t epoch = 0; epoch < config.max_epochs; ++epoch) {
    if (config.shuffle) {
      // Fisher-Yates with our deterministic Rng.
      for (std::size_t i = total; i > 1; --i) {
        const std::size_t j = rng.uniform_u64(i);
        std::swap(order[i - 1], order[j]);
      }
    }

    double loss_sum = 0.0;
    std::size_t seen = 0;
    for (std::size_t begin = 0; begin < total; begin += config.batch_size) {
      const std::size_t end = std::min(begin + config.batch_size, total);
      const std::span<const std::size_t> batch_indices{order.data() + begin,
                                                       end - begin};
      const Tensor batch_images =
          tensor::gather_outer(train_images, batch_indices);
      std::vector<int> batch_labels(batch_indices.size());
      for (std::size_t i = 0; i < batch_indices.size(); ++i) {
        batch_labels[i] = train_labels[batch_indices[i]];
      }

      const Tensor logits = network.forward(batch_images, Mode::kTrain);
      LossResult loss = loss_fn(logits, batch_labels, batch_indices);
      network.backward(loss.grad_logits);
      optimizer.step(network.params());

      loss_sum += static_cast<double>(loss.loss) *
                  static_cast<double>(batch_indices.size());
      seen += batch_indices.size();
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = static_cast<float>(loss_sum /
                                          static_cast<double>(seen));
    const EvalResult val = evaluate(network, val_images, val_labels,
                                    config.batch_size);
    stats.val_top1_error = static_cast<float>(1.0 - val.top1);
    history.push_back(stats);

    if (config.on_epoch &&
        !config.on_epoch(epoch, stats.train_loss, stats.val_top1_error)) {
      break;
    }
  }
  return history;
}

}  // namespace mfdfp::nn
