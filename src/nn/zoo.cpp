#include "nn/zoo.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/fully_connected.hpp"
#include "nn/pooling.hpp"

namespace mfdfp::nn {
namespace {

[[nodiscard]] std::size_t scaled(std::size_t channels, float multiplier) {
  const auto value = static_cast<std::size_t>(
      std::ceil(static_cast<double>(channels) * multiplier));
  return std::max<std::size_t>(value, 4);
}

[[nodiscard]] std::size_t flat_features(const Network& net,
                                        const ZooConfig& config) {
  const Shape out = net.output_shape(
      Shape{1, config.in_channels, config.in_h, config.in_w});
  std::size_t features = 1;
  for (std::size_t axis = 1; axis < out.rank(); ++axis) {
    features *= out.dim(axis);
  }
  return features;
}

}  // namespace

Network make_cifar10_net(const ZooConfig& config, util::Rng& rng) {
  if (config.in_h % 8 != 0 || config.in_w % 8 != 0) {
    throw std::invalid_argument(
        "make_cifar10_net: input dims must be divisible by 8");
  }
  const std::size_t c1 = scaled(32, config.width_multiplier);
  const std::size_t c2 = scaled(32, config.width_multiplier);
  const std::size_t c3 = scaled(64, config.width_multiplier);

  Network net;
  net.add(std::make_unique<Conv2D>(
      Conv2D::Config{config.in_channels, c1, 5, 1, 2}, rng));
  net.add(std::make_unique<MaxPool2D>(PoolConfig{2, 2, 0}));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<Conv2D>(Conv2D::Config{c1, c2, 5, 1, 2}, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<AvgPool2D>(PoolConfig{2, 2, 0}));
  net.add(std::make_unique<Conv2D>(Conv2D::Config{c2, c3, 5, 1, 2}, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<AvgPool2D>(PoolConfig{2, 2, 0}));
  net.add(std::make_unique<Flatten>());
  net.add(std::make_unique<FullyConnected>(
      FullyConnected::Config{flat_features(net, config), config.num_classes},
      rng));
  return net;
}

Network make_alexnet_mini(const ZooConfig& config, util::Rng& rng) {
  if (config.in_h % 8 != 0 || config.in_w % 8 != 0) {
    throw std::invalid_argument(
        "make_alexnet_mini: input dims must be divisible by 8");
  }
  const std::size_t c1 = scaled(16, config.width_multiplier);
  const std::size_t c2 = scaled(32, config.width_multiplier);
  const std::size_t c3 = scaled(48, config.width_multiplier);
  const std::size_t c4 = scaled(48, config.width_multiplier);
  const std::size_t hidden = scaled(128, config.width_multiplier);

  Network net;
  net.add(std::make_unique<Conv2D>(
      Conv2D::Config{config.in_channels, c1, 5, 1, 2}, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<MaxPool2D>(PoolConfig{2, 2, 0}));
  net.add(std::make_unique<Conv2D>(Conv2D::Config{c1, c2, 5, 1, 2}, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<MaxPool2D>(PoolConfig{2, 2, 0}));
  net.add(std::make_unique<Conv2D>(Conv2D::Config{c2, c3, 3, 1, 1}, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<Conv2D>(Conv2D::Config{c3, c4, 3, 1, 1}, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<MaxPool2D>(PoolConfig{2, 2, 0}));
  net.add(std::make_unique<Flatten>());
  net.add(std::make_unique<FullyConnected>(
      FullyConnected::Config{flat_features(net, config), hidden}, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<FullyConnected>(
      FullyConnected::Config{hidden, config.num_classes}, rng));
  return net;
}

Network make_mlp(const ZooConfig& config, std::size_t hidden,
                 util::Rng& rng) {
  const std::size_t features =
      config.in_channels * config.in_h * config.in_w;
  Network net;
  net.add(std::make_unique<Flatten>());
  net.add(std::make_unique<FullyConnected>(
      FullyConnected::Config{features, hidden}, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<FullyConnected>(
      FullyConnected::Config{hidden, config.num_classes}, rng));
  return net;
}

}  // namespace mfdfp::nn
