// Loss functions: softmax cross-entropy and the student-teacher
// (knowledge-distillation) loss of the paper (Section 4.2, Eq. 1-2).
#pragma once

#include <span>

#include "tensor/tensor.hpp"

namespace mfdfp::nn {

using tensor::Tensor;

struct LossResult {
  float loss = 0.0f;   ///< mean loss over the batch
  Tensor grad_logits;  ///< d(mean loss)/d(logits), shape {N, K}
};

/// Row-wise softmax with temperature: P_i = exp(z_i/tau) / sum_j exp(z_j/tau).
/// `logits` is {N, K}; tau must be > 0.
[[nodiscard]] Tensor softmax(const Tensor& logits, float temperature = 1.0f);

/// Mean softmax cross-entropy against integer labels, with gradient
/// (P - Y)/N w.r.t. logits. `labels[i]` in [0, K).
[[nodiscard]] LossResult softmax_cross_entropy(const Tensor& logits,
                                               std::span<const int> labels);

/// Student-teacher loss (paper Eq. 1):
///   L = H(Y, P_S) + beta * H(P_T, P_S)
/// where P_S/P_T are temperature-tau softmaxes of student/teacher logits.
/// The returned gradient is exact:
///   dL/dz_S = (softmax(z_S) - Y)/N + beta/(N*tau) * (P_S - P_T)
/// which reduces to the paper's Eq. 2 approximation for large tau.
[[nodiscard]] LossResult distillation_loss(const Tensor& student_logits,
                                           const Tensor& teacher_logits,
                                           std::span<const int> labels,
                                           float tau, float beta);

/// The paper's large-tau *approximate* gradient (Eq. 2), exposed for the
/// ablation bench: dL/dz_S ~= (P_S1 - Y)/N + beta/(N*tau^2) * (z_S - z_T)
/// with P_S1 the tau=1 softmax and logits zero-meaned per row.
[[nodiscard]] LossResult distillation_loss_approx(const Tensor& student_logits,
                                                  const Tensor& teacher_logits,
                                                  std::span<const int> labels,
                                                  float tau, float beta);

}  // namespace mfdfp::nn
