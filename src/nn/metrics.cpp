#include "nn/metrics.hpp"

#include <stdexcept>

#include "nn/loss.hpp"

namespace mfdfp::nn {

bool in_top_k(const Tensor& logits, std::size_t row, int label,
              std::size_t k) {
  const std::size_t classes = logits.shape().dim(1);
  const float* values = logits.data().data() + row * classes;
  const auto target = static_cast<std::size_t>(label);
  const float target_value = values[target];
  // Count entries strictly greater, plus equal entries at lower index
  // (deterministic tie break).
  std::size_t rank = 0;
  for (std::size_t j = 0; j < classes; ++j) {
    if (values[j] > target_value ||
        (values[j] == target_value && j < target)) {
      ++rank;
    }
  }
  return rank < k;
}

namespace {

template <typename LogitsFn>
EvalResult evaluate_impl(LogitsFn&& batch_logits, const Tensor& images,
                         std::span<const int> labels,
                         std::size_t batch_size) {
  const std::size_t total = images.shape().dim(0);
  if (labels.size() != total) {
    throw std::invalid_argument("evaluate: label count mismatch");
  }
  if (batch_size == 0) throw std::invalid_argument("evaluate: batch_size 0");

  EvalResult result;
  double loss_sum = 0.0;
  std::size_t top1 = 0, top5 = 0;
  for (std::size_t begin = 0; begin < total; begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, total);
    const Tensor batch = tensor::slice_outer(images, begin, end);
    const Tensor logits = batch_logits(batch);
    const std::span<const int> batch_labels =
        labels.subspan(begin, end - begin);
    const LossResult loss = softmax_cross_entropy(logits, batch_labels);
    loss_sum += static_cast<double>(loss.loss) *
                static_cast<double>(end - begin);
    for (std::size_t i = 0; i < batch_labels.size(); ++i) {
      if (in_top_k(logits, i, batch_labels[i], 1)) ++top1;
      if (in_top_k(logits, i, batch_labels[i], 5)) ++top5;
    }
  }
  result.sample_count = total;
  result.top1 = static_cast<double>(top1) / static_cast<double>(total);
  result.top5 = static_cast<double>(top5) / static_cast<double>(total);
  result.mean_loss = loss_sum / static_cast<double>(total);
  return result;
}

}  // namespace

EvalResult evaluate(Network& network, const Tensor& images,
                    std::span<const int> labels, std::size_t batch_size) {
  return evaluate_impl(
      [&](const Tensor& batch) { return network.forward(batch, Mode::kEval); },
      images, labels, batch_size);
}

EvalResult evaluate_logits(
    const std::function<Tensor(const Tensor&)>& batch_logits,
    const Tensor& images, std::span<const int> labels,
    std::size_t batch_size) {
  if (!batch_logits) {
    throw std::invalid_argument("evaluate_logits: null logits source");
  }
  return evaluate_impl(batch_logits, images, labels, batch_size);
}

EvalResult evaluate_ensemble(std::span<Network* const> members,
                             const Tensor& images,
                             std::span<const int> labels,
                             std::size_t batch_size) {
  if (members.empty()) {
    throw std::invalid_argument("evaluate_ensemble: no members");
  }
  return evaluate_impl(
      [&](const Tensor& batch) {
        Tensor sum = members.front()->forward(batch, Mode::kEval);
        for (std::size_t m = 1; m < members.size(); ++m) {
          sum.add(members[m]->forward(batch, Mode::kEval));
        }
        sum.scale(1.0f / static_cast<float>(members.size()));
        return sum;
      },
      images, labels, batch_size);
}

}  // namespace mfdfp::nn
