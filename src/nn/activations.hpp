// Elementwise nonlinearity layers.
#pragma once

#include "nn/layer.hpp"

namespace mfdfp::nn {

/// Rectified linear unit: y = max(0, x).
class ReLU final : public Layer {
 public:
  [[nodiscard]] const char* kind() const noexcept override { return "relu"; }
  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override {
    return input;
  }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;

 private:
  /// Per-element pass-through mask from the last training forward.
  std::vector<unsigned char> mask_;
  Shape cached_shape_{};
};

/// Hyperbolic tangent: y = tanh(x). Included for architecture variety in
/// tests; the paper's networks use ReLU.
class Tanh final : public Layer {
 public:
  [[nodiscard]] const char* kind() const noexcept override { return "tanh"; }
  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override {
    return input;
  }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;

 private:
  Tensor cached_output_;
};

}  // namespace mfdfp::nn
