// Classification metrics and batched network evaluation.
#pragma once

#include <functional>
#include <span>

#include "nn/network.hpp"

namespace mfdfp::nn {

/// True iff `label` is among the `k` largest entries of logits row `row`.
/// Ties resolve in favour of lower class indices (deterministic).
[[nodiscard]] bool in_top_k(const Tensor& logits, std::size_t row, int label,
                            std::size_t k);

struct EvalResult {
  double top1 = 0.0;           ///< fraction correct, top-1
  double top5 = 0.0;           ///< fraction correct, top-5 (== top1 if K<=5)
  double mean_loss = 0.0;      ///< mean softmax cross-entropy
  std::size_t sample_count = 0;
};

/// Runs `network` over `images`/`labels` in eval mode, `batch_size` items at
/// a time, accumulating top-1/top-5 accuracy and mean loss.
[[nodiscard]] EvalResult evaluate(Network& network, const Tensor& images,
                                  std::span<const int> labels,
                                  std::size_t batch_size = 64);

/// Evaluates an averaged-logit ensemble (paper Section 4.3): class scores are
/// the mean of each member's logits.
[[nodiscard]] EvalResult evaluate_ensemble(std::span<Network* const> members,
                                           const Tensor& images,
                                           std::span<const int> labels,
                                           std::size_t batch_size = 64);

/// Evaluates an arbitrary logits source: `batch_logits` receives each
/// `batch_size` outer slice of `images` and returns its (batch, classes)
/// logit rows. Same metric arithmetic as evaluate(), but decoupled from
/// nn::Network so hardware paths (compiled plans, executors) can reuse it.
[[nodiscard]] EvalResult evaluate_logits(
    const std::function<Tensor(const Tensor&)>& batch_logits,
    const Tensor& images, std::span<const int> labels,
    std::size_t batch_size = 64);

}  // namespace mfdfp::nn
