#include "nn/adam.hpp"

#include <cmath>

namespace mfdfp::nn {

void AdamOptimizer::step(const std::vector<ParamView>& params) {
  ++step_count_;
  const float bias1 =
      1.0f - std::pow(config_.beta1, static_cast<float>(step_count_));
  const float bias2 =
      1.0f - std::pow(config_.beta2, static_cast<float>(step_count_));
  for (const ParamView& view : params) {
    Tensor& w = *view.master;
    const Tensor& g = *view.grad;
    auto [mit, m_new] = first_moment_.try_emplace(view.master, w.shape());
    auto [vit, v_new] = second_moment_.try_emplace(view.master, w.shape());
    Tensor& m = mit->second;
    Tensor& v = vit->second;
    if ((!m_new && m.shape() != w.shape()) ||
        (!v_new && v.shape() != w.shape())) {
      m = Tensor{w.shape()};
      v = Tensor{w.shape()};
    }
    for (std::size_t i = 0; i < w.size(); ++i) {
      m[i] = config_.beta1 * m[i] + (1.0f - config_.beta1) * g[i];
      v[i] = config_.beta2 * v[i] + (1.0f - config_.beta2) * g[i] * g[i];
      const float m_hat = m[i] / bias1;
      const float v_hat = v[i] / bias2;
      w[i] -= config_.learning_rate *
              (m_hat / (std::sqrt(v_hat) + config_.epsilon) +
               config_.weight_decay * w[i]);
    }
  }
}

}  // namespace mfdfp::nn
