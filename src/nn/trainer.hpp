// Generic mini-batch training loop.
//
// The loss is injected as a callback from logits + labels so the same loop
// drives plain cross-entropy training (Phase 1) and student-teacher
// distillation (Phase 2), where the callback also consults the teacher.
#pragma once

#include <functional>
#include <span>

#include "nn/loss.hpp"
#include "nn/metrics.hpp"
#include "nn/network.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"

namespace mfdfp::nn {

/// Computes loss + d(loss)/d(logits) for one batch. `batch_indices` are the
/// dataset positions of the batch rows (used by distillation to look up
/// precomputed teacher logits).
using LossFn = std::function<LossResult(const Tensor& logits,
                                        std::span<const int> labels,
                                        std::span<const std::size_t>
                                            batch_indices)>;

struct TrainConfig {
  std::size_t batch_size = 32;
  std::size_t max_epochs = 20;
  bool shuffle = true;
  /// Called after each epoch with (epoch, train_loss, val_error); returning
  /// false stops training early.
  std::function<bool(std::size_t, float, float)> on_epoch;
};

struct EpochStats {
  std::size_t epoch = 0;
  float train_loss = 0.0f;
  float val_top1_error = 0.0f;
};

/// Trains `network` on (train_images, train_labels); after each epoch
/// evaluates top-1 error on (val_images, val_labels). Returns per-epoch
/// stats. `rng` drives shuffling only.
std::vector<EpochStats> train(Network& network, const Tensor& train_images,
                              std::span<const int> train_labels,
                              const Tensor& val_images,
                              std::span<const int> val_labels,
                              const LossFn& loss_fn, SgdOptimizer& optimizer,
                              const TrainConfig& config, util::Rng& rng);

/// Standard hard-label loss callback.
[[nodiscard]] LossFn hard_label_loss();

}  // namespace mfdfp::nn
