// Max and average pooling layers (NCHW).
//
// Both support arbitrary square window/stride/pad (the CIFAR reference net
// uses overlapping 3x3/stride-2 pools). Padding taps are excluded from the
// max and contribute zeros to the average, matching Caffe semantics.
#pragma once

#include "nn/layer.hpp"
#include "tensor/im2col.hpp"

namespace mfdfp::nn {

struct PoolConfig {
  std::size_t window = 2;
  std::size_t stride = 2;
  std::size_t pad = 0;
};

class MaxPool2D final : public Layer {
 public:
  explicit MaxPool2D(const PoolConfig& config);

  [[nodiscard]] const char* kind() const noexcept override {
    return "maxpool";
  }
  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;

  [[nodiscard]] const PoolConfig& config() const noexcept { return config_; }

 private:
  PoolConfig config_;
  Shape cached_input_shape_{};
  /// Flat input index of the winning tap for each output element.
  std::vector<std::size_t> argmax_;
};

class AvgPool2D final : public Layer {
 public:
  explicit AvgPool2D(const PoolConfig& config);

  [[nodiscard]] const char* kind() const noexcept override {
    return "avgpool";
  }
  Tensor forward(const Tensor& input, Mode mode) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] Shape output_shape(const Shape& input) const override;
  [[nodiscard]] std::unique_ptr<Layer> clone() const override;

  [[nodiscard]] const PoolConfig& config() const noexcept { return config_; }

 private:
  PoolConfig config_;
  Shape cached_input_shape_{};
};

/// Shared shape inference for pooling with given config.
[[nodiscard]] Shape pooled_shape(const Shape& input, const PoolConfig& config);

}  // namespace mfdfp::nn
