#include "data/cifar10_loader.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace mfdfp::data {
namespace {

constexpr std::size_t kImageBytes = 3 * 32 * 32;
constexpr std::size_t kRecordBytes = 1 + kImageBytes;

}  // namespace

Dataset load_cifar10_batch(const std::string& path) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) throw std::runtime_error("cifar10: cannot open " + path);
  const auto bytes = static_cast<std::size_t>(file.tellg());
  if (bytes == 0 || bytes % kRecordBytes != 0) {
    throw std::runtime_error("cifar10: " + path + " has unexpected size " +
                             std::to_string(bytes));
  }
  const std::size_t count = bytes / kRecordBytes;
  file.seekg(0);

  Dataset ds;
  ds.name = "cifar10:" + std::filesystem::path(path).filename().string();
  ds.num_classes = 10;
  ds.images = Tensor{Shape{count, 3, 32, 32}};
  ds.labels.resize(count);

  std::vector<unsigned char> record(kRecordBytes);
  for (std::size_t n = 0; n < count; ++n) {
    file.read(reinterpret_cast<char*>(record.data()),
              static_cast<std::streamsize>(kRecordBytes));
    if (!file) throw std::runtime_error("cifar10: short read in " + path);
    if (record[0] > 9) {
      throw std::runtime_error("cifar10: bad label in " + path);
    }
    ds.labels[n] = record[0];
    float* dst = ds.images.data().data() + n * kImageBytes;
    for (std::size_t i = 0; i < kImageBytes; ++i) {
      dst[i] = (static_cast<float>(record[1 + i]) / 255.0f - 0.5f) * 2.0f;
    }
  }
  ds.validate();
  return ds;
}

std::optional<DatasetPair> load_cifar10(const std::string& dir) {
  namespace fs = std::filesystem;
  const fs::path base{dir};
  std::vector<std::string> train_files;
  for (int i = 1; i <= 5; ++i) {
    train_files.push_back(
        (base / ("data_batch_" + std::to_string(i) + ".bin")).string());
  }
  const std::string test_file = (base / "test_batch.bin").string();
  for (const auto& f : train_files) {
    if (!fs::exists(f)) return std::nullopt;
  }
  if (!fs::exists(test_file)) return std::nullopt;

  DatasetPair pair;
  pair.test = load_cifar10_batch(test_file);
  pair.test.name = "cifar10/test";

  // Concatenate the five training batches.
  std::vector<Dataset> batches;
  batches.reserve(train_files.size());
  std::size_t total = 0;
  for (const auto& f : train_files) {
    batches.push_back(load_cifar10_batch(f));
    total += batches.back().size();
  }
  Dataset train;
  train.name = "cifar10/train";
  train.num_classes = 10;
  train.images = Tensor{Shape{total, 3, 32, 32}};
  train.labels.resize(total);
  std::size_t offset = 0;
  for (const Dataset& b : batches) {
    std::copy(b.images.data().begin(), b.images.data().end(),
              train.images.data().data() + offset * kImageBytes);
    std::copy(b.labels.begin(), b.labels.end(),
              train.labels.begin() + static_cast<std::ptrdiff_t>(offset));
    offset += b.size();
  }
  train.validate();
  pair.train = std::move(train);
  return pair;
}

}  // namespace mfdfp::data
