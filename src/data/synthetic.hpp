// Deterministic synthetic class-conditional image datasets.
//
// Substitution for CIFAR-10 / ImageNet-2012 (see DESIGN.md): each class is a
// procedural prototype (superposed oriented gratings + Gaussian blobs, per
// channel); samples are jittered copies (random cyclic shift, amplitude
// scale, pixel noise). Difficulty is controlled by noise/shift so that a
// small convnet reaches high-but-imperfect accuracy — the regime where the
// paper's quantization-gap and ensemble effects are observable.
#pragma once

#include "data/dataset.hpp"

namespace mfdfp::data {

struct SyntheticSpec {
  std::string name = "synthetic";
  std::size_t num_classes = 10;
  std::size_t channels = 3;
  std::size_t height = 16;
  std::size_t width = 16;
  std::size_t train_count = 1000;
  std::size_t test_count = 400;
  /// Std-dev of additive pixel noise (image values are ~[-1,1]).
  float noise_stddev = 0.45f;
  /// Max cyclic shift (pixels) in each spatial direction.
  std::size_t max_shift = 2;
  /// Per-sample amplitude jitter range [1-a, 1+a].
  float amplitude_jitter = 0.25f;
  std::uint64_t seed = 42;
};

/// Spec mirroring the paper's CIFAR-10 benchmark at reduced scale:
/// 10 classes, 3x16x16.
[[nodiscard]] SyntheticSpec cifar_like_spec();

/// Spec mirroring the ImageNet benchmark's *role* (more classes, larger
/// images, top-5 reporting meaningful): 20 classes, 3x24x24.
[[nodiscard]] SyntheticSpec imagenet_like_spec();

/// Generates train + test sets. Classes are balanced (round-robin); the
/// same seed always yields the identical byte-for-byte dataset.
[[nodiscard]] DatasetPair make_synthetic(const SyntheticSpec& spec);

}  // namespace mfdfp::data
