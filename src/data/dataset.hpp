// Labeled image dataset container.
#pragma once

#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace mfdfp::data {

using tensor::Shape;
using tensor::Tensor;

/// Images ({N,C,H,W}, float, roughly [-1,1]) with integer labels.
struct Dataset {
  std::string name;
  Tensor images;
  std::vector<int> labels;
  std::size_t num_classes = 0;

  [[nodiscard]] std::size_t size() const {
    return images.empty() ? 0 : images.shape().dim(0);
  }

  /// Throws std::logic_error if sizes/labels/classes are inconsistent.
  void validate() const;
};

/// Train/test pair.
struct DatasetPair {
  Dataset train;
  Dataset test;
};

/// Returns a copy containing only items [begin, end).
[[nodiscard]] Dataset subset(const Dataset& dataset, std::size_t begin,
                             std::size_t end);

/// Deterministically shuffles items (images + labels together).
void shuffle_in_place(Dataset& dataset, util::Rng& rng);

/// Per-class item counts; length == num_classes.
[[nodiscard]] std::vector<std::size_t> class_histogram(const Dataset& ds);

}  // namespace mfdfp::data
