#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace mfdfp::data {
namespace {

/// Procedural per-class, per-channel pattern parameters.
struct Grating {
  float fx, fy, phase, amplitude;
};

struct Blob {
  float cx, cy, sigma, amplitude;
};

struct ClassPrototype {
  // [channel][component]
  std::vector<std::vector<Grating>> gratings;
  std::vector<std::vector<Blob>> blobs;
};

constexpr std::size_t kGratingsPerChannel = 3;
constexpr std::size_t kBlobsPerChannel = 2;

ClassPrototype make_prototype(util::Rng& rng, std::size_t channels) {
  ClassPrototype proto;
  proto.gratings.resize(channels);
  proto.blobs.resize(channels);
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t i = 0; i < kGratingsPerChannel; ++i) {
      Grating g;
      g.fx = rng.uniform_f(0.5f, 3.0f) * (rng.bernoulli(0.5) ? 1.0f : -1.0f);
      g.fy = rng.uniform_f(0.5f, 3.0f) * (rng.bernoulli(0.5) ? 1.0f : -1.0f);
      g.phase = rng.uniform_f(0.0f, 2.0f * std::numbers::pi_v<float>);
      g.amplitude = rng.uniform_f(0.25f, 0.6f);
      proto.gratings[c].push_back(g);
    }
    for (std::size_t i = 0; i < kBlobsPerChannel; ++i) {
      Blob b;
      b.cx = rng.uniform_f(0.2f, 0.8f);
      b.cy = rng.uniform_f(0.2f, 0.8f);
      b.sigma = rng.uniform_f(0.12f, 0.3f);
      b.amplitude =
          rng.uniform_f(0.4f, 0.9f) * (rng.bernoulli(0.5) ? 1.0f : -1.0f);
      proto.blobs[c].push_back(b);
    }
  }
  return proto;
}

/// Prototype value at normalized coordinates (u, v) in [0,1).
float prototype_value(const ClassPrototype& proto, std::size_t channel,
                      float u, float v) {
  float value = 0.0f;
  constexpr float two_pi = 2.0f * std::numbers::pi_v<float>;
  for (const Grating& g : proto.gratings[channel]) {
    value += g.amplitude * std::sin(two_pi * (g.fx * u + g.fy * v) + g.phase);
  }
  for (const Blob& b : proto.blobs[channel]) {
    const float du = u - b.cx;
    const float dv = v - b.cy;
    value += b.amplitude *
             std::exp(-(du * du + dv * dv) / (2.0f * b.sigma * b.sigma));
  }
  return value;
}

void render_sample(const ClassPrototype& proto, const SyntheticSpec& spec,
                   util::Rng& rng, float* dst) {
  // Per-sample jitter: cyclic shift, amplitude scale, noise.
  const auto shift_range = static_cast<std::int64_t>(spec.max_shift);
  const auto dx = static_cast<float>(
      rng.uniform_int(-shift_range, shift_range));
  const auto dy = static_cast<float>(
      rng.uniform_int(-shift_range, shift_range));
  const float scale =
      rng.uniform_f(1.0f - spec.amplitude_jitter, 1.0f + spec.amplitude_jitter);

  const auto h = static_cast<float>(spec.height);
  const auto w = static_cast<float>(spec.width);
  std::size_t i = 0;
  for (std::size_t c = 0; c < spec.channels; ++c) {
    for (std::size_t y = 0; y < spec.height; ++y) {
      for (std::size_t x = 0; x < spec.width; ++x, ++i) {
        const float u = (static_cast<float>(x) + dx) / w;
        const float v = (static_cast<float>(y) + dy) / h;
        float value = scale * prototype_value(proto, c, u, v) +
                      rng.normal_f(0.0f, spec.noise_stddev);
        dst[i] = std::clamp(value, -1.0f, 1.0f);
      }
    }
  }
}

Dataset render_split(const std::vector<ClassPrototype>& protos,
                     const SyntheticSpec& spec, std::size_t count,
                     util::Rng& rng, const std::string& split_name) {
  Dataset ds;
  ds.name = spec.name + "/" + split_name;
  ds.num_classes = spec.num_classes;
  ds.images = Tensor{Shape{count, spec.channels, spec.height, spec.width}};
  ds.labels.resize(count);
  const std::size_t item = spec.channels * spec.height * spec.width;
  for (std::size_t n = 0; n < count; ++n) {
    const auto label = static_cast<int>(n % spec.num_classes);
    ds.labels[n] = label;
    render_sample(protos[static_cast<std::size_t>(label)], spec, rng,
                  ds.images.data().data() + n * item);
  }
  // Interleave classes deterministically so mini-batches are mixed.
  util::Rng shuffle_rng = rng.fork(0x5u);
  shuffle_in_place(ds, shuffle_rng);
  ds.validate();
  return ds;
}

}  // namespace

SyntheticSpec cifar_like_spec() {
  SyntheticSpec spec;
  spec.name = "cifar10-like";
  spec.num_classes = 10;
  spec.channels = 3;
  spec.height = spec.width = 16;
  spec.train_count = 1000;
  spec.test_count = 400;
  // Tuned so the float baseline lands in the high-80s like the paper's
  // CIFAR-10 setup — hard enough that quantization/ensemble effects show.
  spec.noise_stddev = 1.3f;
  spec.max_shift = 3;
  spec.amplitude_jitter = 0.4f;
  spec.seed = 0xC1FA8ULL;
  return spec;
}

SyntheticSpec imagenet_like_spec() {
  SyntheticSpec spec;
  spec.name = "imagenet-like";
  spec.num_classes = 20;
  spec.channels = 3;
  spec.height = spec.width = 24;
  spec.train_count = 800;
  spec.test_count = 400;
  spec.noise_stddev = 1.4f;
  spec.max_shift = 3;
  spec.amplitude_jitter = 0.4f;
  spec.seed = 0x13A9E7ULL;
  return spec;
}

DatasetPair make_synthetic(const SyntheticSpec& spec) {
  if (spec.num_classes == 0 || spec.channels == 0 || spec.height == 0 ||
      spec.width == 0 || spec.train_count == 0 || spec.test_count == 0) {
    throw std::invalid_argument("make_synthetic: empty spec");
  }
  util::Rng rng{spec.seed};
  std::vector<ClassPrototype> protos;
  protos.reserve(spec.num_classes);
  for (std::size_t k = 0; k < spec.num_classes; ++k) {
    util::Rng proto_rng = rng.fork(k);
    protos.push_back(make_prototype(proto_rng, spec.channels));
  }
  util::Rng train_rng = rng.fork(0x7001u);
  util::Rng test_rng = rng.fork(0x7002u);
  DatasetPair pair;
  pair.train = render_split(protos, spec, spec.train_count, train_rng,
                            "train");
  pair.test = render_split(protos, spec, spec.test_count, test_rng, "test");
  return pair;
}

}  // namespace mfdfp::data
