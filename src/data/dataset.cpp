#include "data/dataset.hpp"

#include <numeric>
#include <stdexcept>

namespace mfdfp::data {

void Dataset::validate() const {
  if (images.empty() && labels.empty()) return;
  if (images.shape().rank() != 4) {
    throw std::logic_error("Dataset: images must be rank-4 NCHW");
  }
  if (labels.size() != images.shape().dim(0)) {
    throw std::logic_error("Dataset: label count " +
                           std::to_string(labels.size()) + " != image count " +
                           std::to_string(images.shape().dim(0)));
  }
  if (num_classes == 0) throw std::logic_error("Dataset: num_classes == 0");
  for (int label : labels) {
    if (label < 0 || static_cast<std::size_t>(label) >= num_classes) {
      throw std::logic_error("Dataset: label out of range");
    }
  }
}

Dataset subset(const Dataset& dataset, std::size_t begin, std::size_t end) {
  if (begin >= end || end > dataset.size()) {
    throw std::out_of_range("subset: bad range");
  }
  Dataset out;
  out.name = dataset.name;
  out.num_classes = dataset.num_classes;
  out.images = tensor::slice_outer(dataset.images, begin, end);
  out.labels.assign(dataset.labels.begin() +
                        static_cast<std::ptrdiff_t>(begin),
                    dataset.labels.begin() + static_cast<std::ptrdiff_t>(end));
  return out;
}

void shuffle_in_place(Dataset& dataset, util::Rng& rng) {
  const std::size_t total = dataset.size();
  std::vector<std::size_t> order(total);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = total; i > 1; --i) {
    const std::size_t j = rng.uniform_u64(i);
    std::swap(order[i - 1], order[j]);
  }
  dataset.images = tensor::gather_outer(dataset.images, order);
  std::vector<int> labels(total);
  for (std::size_t i = 0; i < total; ++i) {
    labels[i] = dataset.labels[order[i]];
  }
  dataset.labels = std::move(labels);
}

std::vector<std::size_t> class_histogram(const Dataset& ds) {
  std::vector<std::size_t> histogram(ds.num_classes, 0);
  for (int label : ds.labels) {
    ++histogram[static_cast<std::size_t>(label)];
  }
  return histogram;
}

}  // namespace mfdfp::data
