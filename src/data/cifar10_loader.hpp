// Loader for the real CIFAR-10 binary distribution.
//
// When the canonical `cifar-10-batches-bin` files are present on disk the
// experiments can run on real data; otherwise they fall back to the
// synthetic generator (see synthetic.hpp). Binary record format:
// 1 label byte + 3072 bytes (RGB planes of a 32x32 image).
#pragma once

#include <optional>
#include <string>

#include "data/dataset.hpp"

namespace mfdfp::data {

/// Reads one CIFAR-10 batch file (10000 records). Pixels are mapped to
/// floats in [-1, 1]. Throws std::runtime_error on malformed files.
[[nodiscard]] Dataset load_cifar10_batch(const std::string& path);

/// Loads the full train (5 batches) + test (1 batch) split from `dir`.
/// Returns std::nullopt if the directory or any batch file is missing.
[[nodiscard]] std::optional<DatasetPair> load_cifar10(const std::string& dir);

}  // namespace mfdfp::data
