// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component in this repository draws from an explicitly
// seeded Rng so that training runs, synthetic datasets, and property tests
// are reproducible bit-for-bit across runs and platforms. We implement
// xoshiro256** (Blackman & Vigna) seeded via SplitMix64 rather than relying
// on std::mt19937, whose distributions are not guaranteed to be identical
// across standard-library implementations.
#pragma once

#include <cstdint>
#include <limits>

namespace mfdfp::util {

/// Stateless SplitMix64 step; used to expand a 64-bit seed into stream state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic, explicitly seeded PRNG (xoshiro256**).
///
/// Provides uniform/normal/integer draws with implementation-defined-free
/// arithmetic so results are stable across compilers.
class Rng {
 public:
  /// Seeds the four 64-bit words of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x1234abcdULL) noexcept { reseed(seed); }

  /// Re-initializes the stream; equivalent to constructing Rng(seed).
  void reseed(std::uint64_t seed) noexcept {
    for (auto& word : state_) word = splitmix64(seed);
    // Guard against the all-zero state, which is a fixed point of xoshiro.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform float in [lo, hi).
  float uniform_f(float lo, float hi) noexcept {
    return static_cast<float>(uniform(lo, hi));
  }

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t uniform_u64(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection method: unbiased, one division at most.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_u64(span));
  }

  /// Standard normal via Box–Muller (cached second variate).
  double normal() noexcept;

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Normal float convenience.
  float normal_f(float mean, float stddev) noexcept {
    return static_cast<float>(normal(mean, stddev));
  }

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Derives an independent child stream; children with distinct tags are
  /// decorrelated from the parent and from each other.
  [[nodiscard]] Rng fork(std::uint64_t tag) noexcept {
    std::uint64_t s = next_u64() ^ (0x9e3779b97f4a7c15ULL * (tag + 1));
    return Rng{s};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double cached_normal_ = std::numeric_limits<double>::quiet_NaN();
  bool has_cached_normal_ = false;
};

}  // namespace mfdfp::util
