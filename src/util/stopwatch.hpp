// Wall-clock stopwatch for coarse timing of training/eval loops.
//
// Note: *reported* inference latency/energy in the benches comes from the
// hw::CycleModel (deterministic), not from this wall clock; the stopwatch is
// for progress logging only.
#pragma once

#include <chrono>

namespace mfdfp::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the reference point to now.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mfdfp::util
