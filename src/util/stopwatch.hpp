// Wall-clock stopwatch for coarse timing of training/eval loops.
//
// Note: *reported* inference latency/energy in the benches comes from the
// hw::CycleModel (deterministic), not from this wall clock; the stopwatch is
// for progress logging only.
#pragma once

#include <chrono>
#include <cstdint>

namespace mfdfp::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the reference point to now.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

  /// Whole microseconds elapsed (monotonic; what the serving layer records
  /// into latency histograms).
  [[nodiscard]] std::int64_t micros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  /// Monotonic microsecond timestamp with an arbitrary (per-process) epoch.
  /// Differences between two calls are valid durations; the absolute value
  /// is meaningless. Used for request enqueue/deadline accounting.
  [[nodiscard]] static std::int64_t now_us() {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now().time_since_epoch())
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mfdfp::util
