#include "util/csv.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mfdfp::util {

std::string csv_escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  if (row.size() != columns_.size()) {
    throw std::invalid_argument("CsvWriter: row width mismatch");
  }
  rows_.push_back(row);
}

void CsvWriter::add_row(const std::vector<double>& row) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%g", v);
    cells.emplace_back(buffer);
  }
  add_row(cells);
}

std::string CsvWriter::to_string() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << csv_escape(row[c]);
    }
    out << '\n';
  };
  emit(columns_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

bool CsvWriter::write_file(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return false;
  file << to_string();
  return static_cast<bool>(file);
}

}  // namespace mfdfp::util
