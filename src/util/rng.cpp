#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace mfdfp::util {

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller transform; u1 is kept away from 0 so log() is finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0x1.0p-60);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

}  // namespace mfdfp::util
