// Console table rendering for benchmark output.
//
// Every bench binary reproduces one table/figure of the paper and prints it
// in the same row/column layout; TablePrinter handles alignment so the bench
// code stays declarative.
#pragma once

#include <string>
#include <vector>

namespace mfdfp::util {

/// Accumulates rows of strings and renders an aligned ASCII table.
class TablePrinter {
 public:
  /// `title` is printed above the table; may be empty.
  explicit TablePrinter(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row. Column count is fixed by this call.
  void set_header(std::vector<std::string> header);

  /// Appends a data row; must match the header's column count if one was set.
  void add_row(std::vector<std::string> row);

  /// Renders the table. Columns are left-aligned for the first column and
  /// right-aligned for the rest (numeric convention).
  [[nodiscard]] std::string to_string() const;

  /// Renders and writes to stdout.
  void print() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` with `digits` digits after the decimal point.
[[nodiscard]] std::string fmt_fixed(double value, int digits);

/// Formats a ratio as a percentage string with `digits` decimals (no % sign).
[[nodiscard]] std::string fmt_percent(double ratio, int digits = 2);

}  // namespace mfdfp::util
