// Clang thread-safety analysis annotations (-Wthread-safety).
//
// These macros attach static locking contracts to types, fields, and
// functions: which mutex guards a field, which lock a function requires,
// acquires, or releases. Under clang with -Wthread-safety the compiler
// checks every access against the declared contract at build time; a
// read of a GUARDED_BY field outside its lock is a hard error in the
// clang CI job (-Werror). Under gcc (the default local toolchain) every
// macro expands to nothing, so the annotations cost nothing and the
// tier-1 build is unaffected.
//
// Conventions (see docs/static-analysis.md):
//   * shared state is declared `util::Mutex` (util/mutex.hpp), never a
//     bare std::mutex — only the wrapper carries the CAPABILITY type the
//     analysis needs;
//   * every field written on one thread and read on another is either
//     GUARDED_BY a mutex, a std::atomic, or documented immutable after
//     construction;
//   * private helpers that assume a held lock say so with REQUIRES
//     instead of a comment.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MFDFP_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif

#ifndef MFDFP_THREAD_ANNOTATION
#define MFDFP_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Declares a type to be a lockable capability ("mutex" in diagnostics).
#define CAPABILITY(x) MFDFP_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability in its constructor
/// and releases it in its destructor.
#define SCOPED_CAPABILITY MFDFP_THREAD_ANNOTATION(scoped_lockable)

/// The annotated field may only be accessed while holding `x`.
#define GUARDED_BY(x) MFDFP_THREAD_ANNOTATION(guarded_by(x))

/// The data pointed to by the annotated pointer is guarded by `x` (the
/// pointer itself is not).
#define PT_GUARDED_BY(x) MFDFP_THREAD_ANNOTATION(pt_guarded_by(x))

/// Caller must hold the capability (exclusively) to call this function.
#define REQUIRES(...) \
  MFDFP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must hold the capability at least shared to call this function.
#define REQUIRES_SHARED(...) \
  MFDFP_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// This function acquires the capability and does not release it.
#define ACQUIRE(...) MFDFP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// This function releases a capability the caller held.
#define RELEASE(...) MFDFP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// This function acquires the capability iff it returns `ret`.
#define TRY_ACQUIRE(ret, ...) \
  MFDFP_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Caller must NOT hold the capability (deadlock prevention on
/// self-calling public APIs).
#define EXCLUDES(...) MFDFP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares that this function returns a reference to the capability
/// guarding it (lets accessors participate in the analysis).
#define RETURN_CAPABILITY(x) MFDFP_THREAD_ANNOTATION(lock_returned(x))

/// Acquisition order: this capability must be acquired after `...`.
#define ACQUIRED_AFTER(...) MFDFP_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Acquisition order: this capability must be acquired before `...`.
#define ACQUIRED_BEFORE(...) \
  MFDFP_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/// Escape hatch for code the analysis cannot model (e.g. locking every
/// element of a collection, or exclusive ownership of a local scratch
/// instance). Use sparingly and say why at the use site.
#define NO_THREAD_SAFETY_ANALYSIS \
  MFDFP_THREAD_ANNOTATION(no_thread_safety_analysis)
