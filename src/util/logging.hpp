// Minimal leveled logging used by training loops and benches.
//
// Deliberately tiny: printf-style would pull in format-string risk, iostreams
// everywhere would be noisy. Callers build the message with std::string /
// std::to_string or std::ostringstream and hand it over.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace mfdfp::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Defaults to kInfo.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emits `message` to stderr with a level tag if `level` >= threshold.
void log(LogLevel level, std::string_view message);

inline void log_debug(std::string_view m) { log(LogLevel::kDebug, m); }
inline void log_info(std::string_view m) { log(LogLevel::kInfo, m); }
inline void log_warn(std::string_view m) { log(LogLevel::kWarn, m); }
inline void log_error(std::string_view m) { log(LogLevel::kError, m); }

/// Stream-style helper: logf(LogLevel::kInfo) << "epoch " << e;
/// The message is emitted when the temporary is destroyed.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log(level_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

inline LogStream logf(LogLevel level = LogLevel::kInfo) {
  return LogStream{level};
}

}  // namespace mfdfp::util
