#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

namespace mfdfp::util {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

[[nodiscard]] const char* tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  std::fprintf(stderr, "[%s] %.*s\n", tag(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace mfdfp::util
