#include "util/table.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace mfdfp::util {

void TablePrinter::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::add_row(std::vector<std::string> row) {
  if (!header_.empty() && row.size() != header_.size()) {
    throw std::invalid_argument("TablePrinter: row width " +
                                std::to_string(row.size()) +
                                " != header width " +
                                std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
}

std::string TablePrinter::to_string() const {
  // Compute per-column widths over header and all rows.
  std::size_t columns = header_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());
  std::vector<std::size_t> width(columns, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream out;
  if (!title_.empty()) out << title_ << '\n';

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < columns; ++c) {
      const std::string cell = c < row.size() ? row[c] : std::string{};
      const auto pad = width[c] - cell.size();
      if (c == 0) {  // left-align label column
        out << cell << std::string(pad, ' ');
      } else {
        out << std::string(pad, ' ') << cell;
      }
      out << (c + 1 == columns ? "" : "  ");
    }
    out << '\n';
  };

  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < columns; ++c) total += width[c] + 2;
    out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void TablePrinter::print() const {
  const std::string rendered = to_string();
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  std::fflush(stdout);
}

std::string fmt_fixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", digits, value);
  return buffer;
}

std::string fmt_percent(double ratio, int digits) {
  return fmt_fixed(100.0 * ratio, digits);
}

}  // namespace mfdfp::util
