// CSV emission for experiment artifacts (training curves, sweeps).
//
// Benches write machine-readable CSVs next to their console tables so curves
// like Figure 3 can be re-plotted without re-running training.
#pragma once

#include <string>
#include <vector>

namespace mfdfp::util {

/// Buffered CSV writer with RFC-4180 quoting for cells that need it.
class CsvWriter {
 public:
  /// Sets the column names; written as the first row.
  explicit CsvWriter(std::vector<std::string> columns);

  /// Appends a row of already-formatted cells; width must match columns.
  void add_row(const std::vector<std::string>& row);

  /// Convenience: appends a row of doubles formatted with %g.
  void add_row(const std::vector<double>& row);

  /// Serializes header + rows.
  [[nodiscard]] std::string to_string() const;

  /// Writes the CSV to `path`, overwriting. Returns false on I/O failure.
  bool write_file(const std::string& path) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Quotes a CSV cell if it contains separators/quotes/newlines.
[[nodiscard]] std::string csv_escape(const std::string& cell);

}  // namespace mfdfp::util
