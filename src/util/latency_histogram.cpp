#include "util/latency_histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace mfdfp::util {

namespace {
constexpr std::int64_t kTrackableMax = (std::int64_t{1} << 40) - 1;
}  // namespace

LatencyHistogram::LatencyHistogram()
    // Bucket 0..63 exact, then 32 sub-buckets per power-of-two range.
    : buckets_(static_cast<std::size_t>(kSubBuckets) +
                   static_cast<std::size_t>(kMaxShift) * (kSubBuckets / 2),
               0) {}

std::size_t LatencyHistogram::bucket_index(std::int64_t value) noexcept {
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  // Shift so the value lands in [kSubBuckets/2, kSubBuckets); `shift` counts
  // which power-of-two range the value is in (1 for [64,128), ...).
  const int shift =
      std::bit_width(static_cast<std::uint64_t>(value)) - kSubBucketBits;
  const std::int64_t sub = value >> shift;  // in [32, 64)
  return static_cast<std::size_t>(kSubBuckets) +
         static_cast<std::size_t>(shift - 1) * (kSubBuckets / 2) +
         static_cast<std::size_t>(sub - kSubBuckets / 2);
}

std::int64_t LatencyHistogram::bucket_upper_bound(std::size_t index) noexcept {
  if (index < static_cast<std::size_t>(kSubBuckets)) {
    return static_cast<std::int64_t>(index);
  }
  const std::size_t rest = index - static_cast<std::size_t>(kSubBuckets);
  const int shift = static_cast<int>(rest / (kSubBuckets / 2)) + 1;
  const std::int64_t sub = static_cast<std::int64_t>(rest % (kSubBuckets / 2)) +
                           kSubBuckets / 2;
  return ((sub + 1) << shift) - 1;
}

void LatencyHistogram::record(std::int64_t value) {
  value = std::clamp<std::int64_t>(value, 0, kTrackableMax);
  ++buckets_[bucket_index(value)];
  if (count_ == 0 || value < min_) min_ = value;
  max_ = std::max(max_, value);
  sum_ += static_cast<double>(value);
  ++count_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    max_ = std::max(max_, other.max_);
  }
  sum_ += other.sum_;
  count_ += other.count_;
}

void LatencyHistogram::clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  max_ = 0;
  min_ = 0;
  sum_ = 0.0;
}

std::int64_t LatencyHistogram::min() const noexcept {
  return count_ == 0 ? 0 : min_;
}

double LatencyHistogram::mean() const noexcept {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

std::int64_t LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  const auto target = static_cast<std::uint64_t>(std::max(
      1.0, std::ceil(p / 100.0 * static_cast<double>(count_))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= target) {
      // Never report beyond the observed maximum (the last bucket's upper
      // bound can overshoot it).
      return std::min(bucket_upper_bound(i), max_);
    }
  }
  return max_;
}

}  // namespace mfdfp::util
