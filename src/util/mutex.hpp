// Annotated mutex primitives for the clang thread-safety analysis.
//
// util::Mutex wraps std::mutex with the CAPABILITY attribute so
// -Wthread-safety can track what it guards; MutexLock / ReleasableMutexLock
// are the RAII guards (SCOPED_CAPABILITY), and CondVar pairs a
// std::condition_variable_any directly with a held Mutex so predicate
// waits keep their REQUIRES contract. Everything compiles to the plain
// std:: primitives — the wrapper adds no state and no overhead; off
// clang the annotations vanish entirely (util/annotations.hpp).
//
// Usage:
//   class Queue {
//    public:
//     void push(Item item) EXCLUDES(mutex_) {
//       util::MutexLock lock(mutex_);
//       items_.push_back(std::move(item));   // checked: mutex_ held
//       ready_.notify_one();
//     }
//    private:
//     util::Mutex mutex_;
//     util::CondVar ready_;
//     std::deque<Item> items_ GUARDED_BY(mutex_);
//   };
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/annotations.hpp"

namespace mfdfp::util {

/// std::mutex with the capability attribute. Satisfies BasicLockable, so
/// it still works with std:: lock machinery where needed.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mutex_.lock(); }
  void unlock() RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  /// The wrapped handle, for interop that the analysis cannot follow
  /// anyway (callers should pair it with NO_THREAD_SAFETY_ANALYSIS).
  [[nodiscard]] std::mutex& native() noexcept { return mutex_; }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

/// RAII guard: acquires in the constructor, releases in the destructor.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// RAII guard that can release early (for unlock-work-relock patterns);
/// the destructor only unlocks if still held.
class SCOPED_CAPABILITY ReleasableMutexLock {
 public:
  explicit ReleasableMutexLock(Mutex& mutex) ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~ReleasableMutexLock() RELEASE() {
    if (held_) mutex_.unlock();
  }

  void Release() RELEASE() {
    mutex_.unlock();
    held_ = false;
  }

  ReleasableMutexLock(const ReleasableMutexLock&) = delete;
  ReleasableMutexLock& operator=(const ReleasableMutexLock&) = delete;

 private:
  Mutex& mutex_;
  bool held_ = true;
};

/// Condition variable that waits on a held util::Mutex. Built on
/// condition_variable_any so it can wait on the annotated wrapper
/// directly — no unique_lock juggling at call sites, and every wait
/// declares REQUIRES(mutex) like any other under-lock helper.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically releases `mutex`, blocks, and reacquires before
  /// returning. The analysis cannot model the release-reacquire cycle,
  /// so the body opts out; the REQUIRES contract still checks callers.
  void wait(Mutex& mutex) REQUIRES(mutex) NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mutex);
  }

  template <typename Predicate>
  void wait(Mutex& mutex, Predicate predicate) REQUIRES(mutex)
      NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mutex, std::move(predicate));
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mutex,
                          std::chrono::duration<Rep, Period> timeout)
      REQUIRES(mutex) NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_for(mutex, timeout);
  }

  template <typename Rep, typename Period, typename Predicate>
  bool wait_for(Mutex& mutex, std::chrono::duration<Rep, Period> timeout,
                Predicate predicate) REQUIRES(mutex)
      NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_for(mutex, timeout, std::move(predicate));
  }

  template <typename Clock, typename Duration, typename Predicate>
  bool wait_until(Mutex& mutex,
                  std::chrono::time_point<Clock, Duration> deadline,
                  Predicate predicate) REQUIRES(mutex)
      NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_until(mutex, deadline, std::move(predicate));
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace mfdfp::util
