// Bounded-memory latency histogram with ~1.6% relative error.
//
// HdrHistogram-style bucketing: values below 64 are recorded exactly; above
// that, each power-of-two range is split into 32 linear sub-buckets, so the
// recorded value of any sample is within 1/32 of its true value. Memory is a
// fixed ~9 KB regardless of sample count, so the serving layer can keep one
// histogram per metric without ever storing raw samples; merge() combines
// histograms from independent collectors (e.g. several engines or shards).
// Values are whole microseconds (any unit works — the histogram is
// unit-agnostic).
#pragma once

#include <cstdint>
#include <vector>

namespace mfdfp::util {

class LatencyHistogram {
 public:
  LatencyHistogram();

  /// Records one sample. Negative values clamp to 0; values above the
  /// trackable maximum (~2^40) clamp to it.
  void record(std::int64_t value);

  /// Adds every bucket of `other` into this histogram.
  void merge(const LatencyHistogram& other);

  void clear();

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::int64_t min() const noexcept;  ///< 0 when empty
  [[nodiscard]] std::int64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept;

  /// Value at or below which `p` percent of samples fall (p in [0, 100]).
  /// Returns the bucket's upper bound, so the result never understates the
  /// sample. Returns 0 for an empty histogram.
  [[nodiscard]] std::int64_t percentile(double p) const;

  [[nodiscard]] std::int64_t p50() const { return percentile(50.0); }
  [[nodiscard]] std::int64_t p95() const { return percentile(95.0); }
  [[nodiscard]] std::int64_t p99() const { return percentile(99.0); }

 private:
  // Values < kSubBuckets are exact (one bucket per value); every later
  // power-of-two range reuses the upper kSubBuckets/2 sub-buckets.
  static constexpr int kSubBucketBits = 6;  // 64 sub-buckets
  static constexpr std::int64_t kSubBuckets = std::int64_t{1}
                                              << kSubBucketBits;
  static constexpr int kMaxShift = 35;  // trackable max ~2^40 (~12 days in us)

  [[nodiscard]] static std::size_t bucket_index(std::int64_t value) noexcept;
  [[nodiscard]] static std::int64_t bucket_upper_bound(
      std::size_t index) noexcept;

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::int64_t max_ = 0;
  std::int64_t min_ = 0;
  double sum_ = 0.0;
};

}  // namespace mfdfp::util
