#include "analysis/analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "compile/plan_executor.hpp"
#include "hw/fixed_point.hpp"
#include "quant/dfp.hpp"
#include "util/table.hpp"

namespace mfdfp::analysis {

namespace {

using compile::CompiledPlan;
using compile::PlanStep;
using compile::StepKind;

constexpr std::int64_t kI64Min = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kI64Max = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kCodeMin = hw::min_for_bits(hw::kInputBits);
constexpr std::int64_t kCodeMax = hw::max_for_bits(hw::kInputBits);

/// Saturating add on the int64 model carrier; sets `overflow` when the
/// mathematical sum does not fit (the bound itself is then unusable — the
/// plan gets a carrier-overflow violation, strictly stronger than any
/// accumulator-width violation).
std::int64_t sat_add(std::int64_t a, std::int64_t b, bool& overflow) {
  if (b > 0 && a > kI64Max - b) {
    overflow = true;
    return kI64Max;
  }
  if (b < 0 && a < kI64Min - b) {
    overflow = true;
    return kI64Min;
  }
  return a + b;
}

/// Mirrors hw::shift_left_checked without throwing: sets `overflow` where
/// the runtime would throw std::overflow_error.
std::int64_t shl_model(std::int64_t value, int shift, bool& overflow) {
  if (shift >= 62 && value != 0) {
    overflow = true;
    return value > 0 ? kI64Max : kI64Min;
  }
  const std::int64_t shifted =
      static_cast<std::int64_t>(static_cast<std::uint64_t>(value)
                                << static_cast<unsigned>(shift));
  if (shift > 0 && (shifted >> shift) != value) {
    overflow = true;
    return value > 0 ? kI64Max : kI64Min;
  }
  return shifted;
}

Interval saturate8(const Interval& iv) noexcept {
  return {hw::saturate(iv.lo, hw::kInputBits),
          hw::saturate(iv.hi, hw::kInputBits)};
}

/// Worst-case excess of `iv` beyond the 8-bit code range, in code units.
/// Saturating: an interval already saturated to the carrier limits (which
/// only happens alongside a carrier-overflow violation) reports a clamped
/// clip instead of wrapping.
std::int64_t clip_excess(const Interval& iv) noexcept {
  bool saturated = false;
  std::int64_t clip = 0;
  if (iv.hi > kCodeMax) clip = iv.hi - kCodeMax;
  if (iv.lo < kCodeMin) clip = sat_add(clip, kCodeMin - iv.lo, saturated);
  return clip;
}

/// Saturating clip accumulation (same rationale as clip_excess).
void add_clip(std::int64_t& clip, std::int64_t amount) noexcept {
  bool saturated = false;
  clip = sat_add(clip, amount, saturated);
}

/// hw::convert_code on both endpoints (it is monotone: a left shift or a
/// round-half-away right shift, then saturation). Accumulates the
/// conversion's own worst-case clip into `clip`; sets `overflow` when the
/// runtime conversion would throw on carrier overflow.
Interval convert_interval(const Interval& iv, int from_frac, int to_frac,
                          std::int64_t& clip, bool& overflow) {
  Interval wide;
  if (to_frac >= from_frac) {
    wide.lo = shl_model(iv.lo, to_frac - from_frac, overflow);
    wide.hi = shl_model(iv.hi, to_frac - from_frac, overflow);
  } else {
    wide.lo = hw::shift_round(iv.lo, from_frac - to_frac);
    wide.hi = hw::shift_round(iv.hi, from_frac - to_frac);
  }
  add_clip(clip, clip_excess(wide));
  return saturate8(wide);
}

/// AccumulatorRouting::route() on an accumulator interval, shift for
/// shift: align accumulator and bias on the common radix grid, add,
/// round-half-away back to the output radix. Returns the pre-saturation
/// ("routed") interval; every float-free op in route() is monotone, so the
/// endpoints bound every reachable value.
Interval route_interval(const Interval& dot, int in_frac, int out_frac,
                        std::int32_t bias_code, bool& overflow) {
  const int acc_frac = in_frac + hw::kProductFracBits;
  const int grid = std::max(acc_frac, out_frac);
  Interval aligned{shl_model(dot.lo, grid - acc_frac, overflow),
                   shl_model(dot.hi, grid - acc_frac, overflow)};
  const std::int64_t bias_aligned =
      shl_model(bias_code, grid - out_frac, overflow);
  Interval sum{sat_add(aligned.lo, bias_aligned, overflow),
               sat_add(aligned.hi, bias_aligned, overflow)};
  return {hw::shift_round(sum.lo, grid - out_frac),
          hw::shift_round(sum.hi, grid - out_frac)};
}

/// In-bounds tap-count range over every pool window of the geometry (a
/// padded pool's edge windows cover fewer real taps).
std::pair<std::size_t, std::size_t> pool_tap_counts(const hw::QPool& pool,
                                                    std::size_t ih,
                                                    std::size_t iw,
                                                    std::size_t oh,
                                                    std::size_t ow) {
  std::size_t min_taps = pool.window * pool.window;
  std::size_t max_taps = 0;
  for (std::size_t oy = 0; oy < oh; ++oy) {
    for (std::size_t ox = 0; ox < ow; ++ox) {
      std::size_t taps = 0;
      for (std::size_t ky = 0; ky < pool.window; ++ky) {
        const std::ptrdiff_t iy =
            static_cast<std::ptrdiff_t>(oy * pool.stride + ky) -
            static_cast<std::ptrdiff_t>(pool.pad);
        if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(ih)) continue;
        for (std::size_t kx = 0; kx < pool.window; ++kx) {
          const std::ptrdiff_t ix =
              static_cast<std::ptrdiff_t>(ox * pool.stride + kx) -
              static_cast<std::ptrdiff_t>(pool.pad);
          if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(iw)) continue;
          ++taps;
        }
      }
      min_taps = std::min(min_taps, taps);
      max_taps = std::max(max_taps, taps);
    }
  }
  return {min_taps, max_taps};
}

/// The kernel's exact avg-pool expression at one tap-sum value — every op
/// (exact double widening, ldexp, float rounding, multiply by a positive
/// constant, encode's round-half-away) is monotone nondecreasing in `sum`,
/// so evaluating it at the sum interval's endpoints bounds every window.
std::int64_t avg_pool_code(std::int64_t sum, int in_frac,
                           const quant::DfpFormat& out_format,
                           float inv_area) {
  const float value =
      static_cast<float>(std::ldexp(static_cast<double>(sum), -in_frac)) *
      inv_area;
  return out_format.encode(value);
}

/// pool_forward on a per-channel input interval. Identical geometry for
/// every channel, so one transform serves all.
Interval pool_interval(const hw::QPool& pool, const Interval& in,
                       int in_frac, std::size_t ih, std::size_t iw,
                       std::size_t oh, std::size_t ow, std::int64_t& clip,
                       bool& overflow) {
  const auto [min_taps, max_taps] = pool_tap_counts(pool, ih, iw, oh, ow);
  if (pool.is_max) {
    // max of n >= 1 taps each in [lo, hi] stays in [lo, hi]; a fully
    // padded window contributes code 0.
    Interval best = in;
    if (min_taps == 0) best = best.hull({0, 0});
    return convert_interval(best, in_frac, pool.out_frac, clip, overflow);
  }
  // Average: the tap sum of n in-bounds taps each in [lo, hi] is minimized
  // by n*lo (largest n when lo < 0) and maximized by n*hi.
  const auto n_lo = static_cast<std::int64_t>(min_taps);
  const auto n_hi = static_cast<std::int64_t>(max_taps);
  const std::int64_t sum_lo = in.lo < 0 ? n_hi * in.lo : n_lo * in.lo;
  const std::int64_t sum_hi = in.hi > 0 ? n_hi * in.hi : n_lo * in.hi;
  const quant::DfpFormat out_format{hw::kInputBits, pool.out_frac};
  const float inv_area =
      1.0f / static_cast<float>(pool.window * pool.window);
  // encode() saturates internally; avg pool therefore never overflows, and
  // its clip (if any) is already folded into the returned codes.
  return {avg_pool_code(sum_lo, in_frac, out_format, inv_area),
          avg_pool_code(sum_hi, in_frac, out_format, inv_area)};
}

/// Which conv taps can be padded (SIZE_MAX) for at least one output pixel
/// — those contribute 0 instead of w*code for such pixels, so their
/// interval is widened with 0.
std::vector<bool> maybe_padded_taps(const PlanStep& s) {
  const std::size_t patch = s.in_c * s.kernel * s.kernel;
  std::vector<bool> maybe(patch, false);
  if (s.gather.size() == s.out_h * s.out_w * patch) {
    for (std::size_t row = 0; row < s.out_h * s.out_w; ++row) {
      const std::size_t* taps = s.gather.data() + row * patch;
      for (std::size_t k = 0; k < patch; ++k) {
        if (taps[k] == SIZE_MAX) maybe[k] = true;
      }
    }
  } else if (s.pad != 0) {
    // No gather table to consult (hand-built plan): conservatively treat
    // every tap as paddable.
    maybe.assign(patch, true);
  }
  return maybe;
}

std::string interval_str(const Interval& iv) {
  return "[" + std::to_string(iv.lo) + ", " + std::to_string(iv.hi) + "]";
}

const char* kind_name(StepKind kind) {
  switch (kind) {
    case StepKind::kConv:           return "conv";
    case StepKind::kFullyConnected: return "fc";
    case StepKind::kPool:           return "pool";
    case StepKind::kRelu:           return "relu";
    case StepKind::kFlatten:        return "flatten";
  }
  return "?";
}

}  // namespace

int bits_needed(const Interval& iv) noexcept {
  for (int bits = 1; bits < 64; ++bits) {
    if (hw::fits_bits(iv.lo, bits) && hw::fits_bits(iv.hi, bits)) return bits;
  }
  return 64;
}

AnalysisReport analyze_plan(const CompiledPlan& plan,
                            const AnalysisOptions& options) {
  AnalysisReport report;
  report.model = plan.model;

  // Abstract state: one code interval per channel while spatial, one per
  // feature after flatten. Codes are 8-bit everywhere, so the state is
  // always within [-128, 127]; only transient dot/route values widen.
  Interval input = {std::max(options.input.lo, kCodeMin),
                    std::min(options.input.hi, kCodeMax)};
  if (input.lo > input.hi) {
    throw std::invalid_argument("analyze_plan: empty input interval");
  }
  std::vector<Interval> state(plan.in_c, input);
  bool spatial = true;
  std::size_t h = plan.in_h, w = plan.in_w;
  int frac = plan.input_frac;

  const auto violation = [&report](std::size_t step, const std::string& what) {
    report.violations.push_back("step " + std::to_string(step) + ": " + what);
  };

  for (std::size_t i = 0; i < plan.steps.size(); ++i) {
    const PlanStep& s = plan.steps[i];
    StepBounds row;
    row.step = i;
    row.label = s.label;
    row.kind = s.kind;
    row.in_frac = s.in_frac;
    row.out_frac = s.out_frac;
    row.result_frac = s.result_frac();

    if (s.in_frac != frac) {
      violation(i, "radix chain break: step expects <8," +
                       std::to_string(s.in_frac) + "> but receives <8," +
                       std::to_string(frac) + ">");
    }

    bool overflow = false;
    switch (s.kind) {
      case StepKind::kConv:
      case StepKind::kFullyConnected: {
        const bool conv = s.kind == StepKind::kConv;
        const std::size_t patch = conv ? s.in_c * s.kernel * s.kernel
                                       : s.in_features;
        const std::size_t outputs = conv ? s.out_c : s.out_features;
        if (s.weights.size() != outputs * patch ||
            s.bias.size() != outputs) {
          throw std::invalid_argument(
              "analyze_plan: step " + std::to_string(i) +
              ": weight/bias tables not built (run pass_build_tables "
              "before analyze)");
        }
        if (conv ? state.size() != s.in_c : state.size() != patch) {
          throw std::invalid_argument(
              "analyze_plan: step " + std::to_string(i) + ": input " +
              (conv ? "channel" : "feature") + " count mismatch");
        }
        const std::vector<bool> maybe_pad =
            conv ? maybe_padded_taps(s) : std::vector<bool>(patch, false);
        const std::size_t kk = conv ? s.kernel * s.kernel : 1;

        Interval dot_hull{0, 0};
        Interval routed_hull{0, 0};
        std::int64_t clip = 0;
        std::vector<Interval> next(outputs);
        bool first = true;
        for (std::size_t oc = 0; oc < outputs; ++oc) {
          const std::int32_t* wrow = s.weights.data() + oc * patch;
          Interval dot{0, 0};
          for (std::size_t k = 0; k < patch; ++k) {
            const Interval& in = conv ? state[k / kk] : state[k];
            const std::int64_t a = static_cast<std::int64_t>(wrow[k]) * in.lo;
            const std::int64_t b = static_cast<std::int64_t>(wrow[k]) * in.hi;
            Interval contrib{std::min(a, b), std::max(a, b)};
            if (maybe_pad[k]) contrib = contrib.hull({0, 0});
            dot.lo = sat_add(dot.lo, contrib.lo, overflow);
            dot.hi = sat_add(dot.hi, contrib.hi, overflow);
          }
          const Interval routed =
              route_interval(dot, s.in_frac, s.out_frac, s.bias[oc], overflow);
          add_clip(clip, clip_excess(routed));
          Interval out = saturate8(routed);
          if (s.fused_relu) {
            const Interval rectified{std::max<std::int64_t>(0, out.lo),
                                     std::max<std::int64_t>(0, out.hi)};
            out = convert_interval(rectified, s.out_frac, s.relu_frac, clip,
                                   overflow);
          }
          next[oc] = out;
          if (first) {
            dot_hull = dot;
            routed_hull = routed;
            first = false;
          } else {
            dot_hull = dot_hull.hull(dot);
            routed_hull = routed_hull.hull(routed);
          }
        }

        row.dot = dot_hull;
        row.routed = routed_hull;
        row.accumulator_bits = bits_needed(dot_hull);
        row.int32_dot = patch <= compile::kI32SafePatch;
        row.clip_mass = clip;

        if (overflow) {
          violation(i, "int64 model-carrier overflow in the dot/route chain "
                       "(radix realignment by " +
                           std::to_string(std::max(
                               0, s.out_frac - s.in_frac -
                                      hw::kProductFracBits)) +
                           " bits would throw at runtime)");
        }
        if (row.accumulator_bits > options.accumulator_bits) {
          violation(i, "accumulator overflow: worst-case dot " +
                           interval_str(dot_hull) + " needs " +
                           std::to_string(row.accumulator_bits) +
                           " bits, register has " +
                           std::to_string(options.accumulator_bits));
        }
        if (row.int32_dot &&
            !(hw::fits_bits(dot_hull.lo, 32) &&
              hw::fits_bits(dot_hull.hi, 32))) {
          violation(i, "int32 fast-dot path can wrap: worst-case dot " +
                           interval_str(dot_hull));
        }

        // Per-output-channel (or per-feature) state keeps downstream
        // bounds tight; the fused pool (if any) transforms it in place.
        state = std::move(next);
        if (conv) {
          h = s.out_h;
          w = s.out_w;
          if (s.fused_pool) {
            std::int64_t pool_clip = 0;
            for (Interval& iv : state) {
              iv = pool_interval(s.pool, iv, s.fused_relu ? s.relu_frac
                                                          : s.out_frac,
                                 s.out_h, s.out_w, s.pool_oh, s.pool_ow,
                                 pool_clip, overflow);
            }
            add_clip(row.clip_mass, pool_clip);
            h = s.pool_oh;
            w = s.pool_ow;
          }
        } else {
          spatial = false;
        }
        row.out = state.empty() ? Interval{0, 0} : state.front();
        for (const Interval& iv : state) row.out = row.out.hull(iv);
        break;
      }
      case StepKind::kPool: {
        std::int64_t clip = 0;
        for (Interval& iv : state) {
          iv = pool_interval(s.pool, iv, s.in_frac, s.in_h, s.in_w, s.out_h,
                             s.out_w, clip, overflow);
        }
        row.clip_mass = clip;
        h = s.out_h;
        w = s.out_w;
        row.out = state.empty() ? Interval{0, 0} : state.front();
        for (const Interval& iv : state) row.out = row.out.hull(iv);
        break;
      }
      case StepKind::kRelu: {
        std::int64_t clip = 0;
        for (Interval& iv : state) {
          const Interval rectified{std::max<std::int64_t>(0, iv.lo),
                                   std::max<std::int64_t>(0, iv.hi)};
          iv = convert_interval(rectified, s.in_frac, s.out_frac, clip,
                                overflow);
        }
        row.clip_mass = clip;
        row.out = state.empty() ? Interval{0, 0} : state.front();
        for (const Interval& iv : state) row.out = row.out.hull(iv);
        break;
      }
      case StepKind::kFlatten: {
        std::int64_t clip = 0;
        std::vector<Interval> features;
        features.reserve(state.size() * h * w);
        for (const Interval& channel : state) {
          Interval iv = channel;
          if (s.out_frac != s.in_frac) {
            iv = convert_interval(iv, s.in_frac, s.out_frac, clip, overflow);
          }
          features.insert(features.end(), h * w, iv);
        }
        state = std::move(features);
        spatial = false;
        row.clip_mass = clip;
        row.out = state.empty() ? Interval{0, 0} : state.front();
        for (const Interval& iv : state) row.out = row.out.hull(iv);
        break;
      }
    }

    if (overflow && s.kind != StepKind::kConv &&
        s.kind != StepKind::kFullyConnected) {
      violation(i, "int64 model-carrier overflow in a code conversion "
                   "(convert_code would throw at runtime)");
    }
    if (options.fail_on_clip && row.clip_mass > 0) {
      violation(i, "saturation: worst-case clip mass " +
                       std::to_string(row.clip_mass) + " code units");
    }
    add_clip(report.total_clip_mass, row.clip_mass);
    frac = s.result_frac();
    report.steps.push_back(std::move(row));
  }

  (void)spatial;
  return report;
}

std::string AnalysisReport::table() const {
  util::TablePrinter table("plan bounds: " + model);
  table.set_header({"step", "kind", "label", "frac m->n->r", "dot range",
                    "acc bits", "routed range", "out codes", "clip"});
  for (const StepBounds& row : steps) {
    const bool mac = row.kind == StepKind::kConv ||
                     row.kind == StepKind::kFullyConnected;
    table.add_row(
        {std::to_string(row.step), kind_name(row.kind), row.label,
         std::to_string(row.in_frac) + "->" + std::to_string(row.out_frac) +
             "->" + std::to_string(row.result_frac),
         mac ? interval_str(row.dot) : "-",
         mac ? std::to_string(row.accumulator_bits) +
                   (row.int32_dot ? " (i32)" : " (i64)")
             : "-",
         mac ? interval_str(row.routed) : "-", interval_str(row.out),
         std::to_string(row.clip_mass)});
  }
  std::ostringstream out;
  out << table.to_string();
  if (!violations.empty()) {
    out << "violations:\n";
    for (const std::string& v : violations) out << "  ! " << v << "\n";
  }
  return out.str();
}

std::string AnalysisReport::summary() const {
  std::ostringstream out;
  out << "plan '" << model << "': " << steps.size() << " steps, ";
  if (ok()) {
    out << "proven overflow-free";
    if (total_clip_mass == 0) {
      out << ", saturation-free";
    } else {
      out << ", worst-case clip mass " << total_clip_mass;
    }
  } else {
    out << violations.size() << " violation(s)";
  }
  return out.str();
}

PlanRejectedError::PlanRejectedError(AnalysisReport report)
    : std::runtime_error("plan analyzer: '" + report.model + "' rejected: " +
                         (report.violations.empty()
                              ? std::string("unknown")
                              : report.violations.front()) +
                         (report.violations.size() > 1
                              ? " (+" +
                                    std::to_string(report.violations.size() -
                                                   1) +
                                    " more)"
                              : "")),
      report_(std::move(report)) {}

void pass_analyze(const CompiledPlan& plan) {
  AnalysisReport report = analyze_plan(plan);
  if (!report.ok()) throw PlanRejectedError(std::move(report));
}

}  // namespace mfdfp::analysis
