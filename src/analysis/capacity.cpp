#include "analysis/capacity.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/table.hpp"

namespace mfdfp::analysis {

namespace {

/// One (model, replica) row on a physical device, with the
/// speed-proportional share of the model's declared rate that routing
/// steers to it (kNormalizedWork balances load so a 2x device absorbs 2x
/// traffic; the proofs assume that declared split).
struct TenantShare {
  const ModelFacts* model = nullptr;
  const ReplicaFacts* replica = nullptr;
  double rate_rps = 0.0;
};

/// All tenants contending for one physical device (same device_key).
struct DeviceGroup {
  std::string key;
  std::string name;
  bool shared = false;
  std::vector<TenantShare> tenants;
  double busy_us_per_s = 0.0;
  bool stable = true;
  /// Any tenant declared an envelope: only then does the device carry
  /// proof obligations (undeclared models still contribute blocking).
  bool obligated = false;
};

std::size_t pass_cap(const ReplicaFacts& pu) {
  return std::max<std::size_t>(pu.max_pass_samples, 1);
}

/// Samples one engine sub-batch of `t` can put into a single device pass.
std::size_t sub_batch_samples(const ReplicaFacts& t) {
  const std::size_t batch = std::max<std::size_t>(t.max_batch, 1);
  return t.shared ? std::min(batch, pass_cap(t)) : batch;
}

/// Modeled cost of one sub-batch of `t` through its device, including the
/// per-pass costs it can be charged (weight reload + pass overhead on a
/// shared PU; a dedicated engine batch pays neither).
double sub_batch_cost_us(const ReplicaFacts& t) {
  const double extra = t.shared ? t.switch_us + t.pass_overhead_us : 0.0;
  return committed_delay_us(static_cast<double>(sub_batch_samples(t)),
                            t.sample_us, extra);
}

/// Chunked passes on this device? (SharedDevice preemption: chunks only
/// exist on co-batching shared PUs with a positive granularity. Time-sliced
/// PUs keep the monolithic bounds — conservative, and one sub-batch is
/// already the pass there.)
bool preemptible(const DeviceGroup& d) {
  const ReplicaFacts& pu = *d.tenants.front().replica;
  return d.shared && pu.cobatch && pu.preempt_granularity_us > 0.0;
}

/// Worst case of one monolithic co-batched pass: a maximal pass of the
/// slowest tenant's samples that pays every tenant's weight reload (the
/// exact ablation_shared_pu tail shape).
double pass_blocking_us(const DeviceGroup& d) {
  const ReplicaFacts& pu = *d.tenants.front().replica;
  double switch_sum = 0.0;
  double max_sample = 0.0;
  for (const TenantShare& t : d.tenants) {
    switch_sum += t.replica->switch_us;
    max_sample = std::max(max_sample, t.replica->sample_us);
  }
  return committed_delay_us(static_cast<double>(pass_cap(pu)), max_sample,
                            switch_sum + pu.pass_overhead_us);
}

/// Worst case of one *chunk* on a preemptible PU: at most the granularity
/// of compute (SharedDevice never plans below one sample, so the slowest
/// tenant's sample floors it), plus the one reload a chunk can pay
/// entering (the largest tenant's — chunks never mix tenants), plus the
/// pass overhead a first chunk carries.
double chunk_blocking_us(const DeviceGroup& d) {
  const ReplicaFacts& pu = *d.tenants.front().replica;
  double max_switch = 0.0;
  double max_sample = 0.0;
  for (const TenantShare& t : d.tenants) {
    max_switch = std::max(max_switch, t.replica->switch_us);
    max_sample = std::max(max_sample, t.replica->sample_us);
  }
  return std::max(pu.preempt_granularity_us, max_sample) + max_switch +
         pu.pass_overhead_us;
}

/// The largest non-preemptible unit the device can be busy with when a
/// request arrives — the term every latency bound starts from. Co-batching
/// shared PU: a maximal monolithic pass, or — when the PU is preemptible —
/// one maximal chunk (min()'d against the pass, so the chunked bound can
/// only ever tighten). Time-sliced shared PU: the costliest single
/// sub-batch pass. Dedicated: one full engine batch.
double blocking_us(const DeviceGroup& d) {
  double worst = 0.0;
  if (d.shared && d.tenants.front().replica->cobatch) {
    const double pass = pass_blocking_us(d);
    return preemptible(d) ? std::min(pass, chunk_blocking_us(d)) : pass;
  }
  for (const TenantShare& t : d.tenants) {
    worst = std::max(worst, sub_batch_cost_us(*t.replica));
  }
  return worst;
}

/// Host-side pass-formation latency a request can additionally wait: the
/// coalesce window applies only to co-batching shared PUs — and never to
/// probes on a preemptible one, where a pending interactive sub-batch cuts
/// the window (SharedDevice::wait_for_work_locked) and late work joins
/// in-flight passes instead of waiting for formation.
double window_us(const DeviceGroup& d) {
  const ReplicaFacts& r = *d.tenants.front().replica;
  return d.shared && r.cobatch && !preemptible(d)
             ? static_cast<double>(std::max<std::int64_t>(
                   r.coalesce_window_us, 0))
             : 0.0;
}

/// Worst-case cost of getting ONE of `t`'s sub-batches through the device
/// once it is at the head of its lane. Co-batching: it rides a pass that
/// may be maximal (neighbours fill it and every reload is paid);
/// preemptible: it preempts after at most one more chunk and rides its own
/// probe pass (its sub-batch cost, reload included). Time-sliced: fairness
/// gives every other tenant one sub-batch pass per round-robin sweep
/// before `t` rides again. Dedicated: its own batch.
double ride_us(const DeviceGroup& d, const ReplicaFacts& t) {
  if (!d.shared) return sub_batch_cost_us(t);
  if (t.cobatch) {
    const double pass = pass_blocking_us(d);
    return preemptible(d)
               ? std::min(pass, chunk_blocking_us(d) + sub_batch_cost_us(t))
               : pass;
  }
  double sweep = 0.0;
  for (const TenantShare& other : d.tenants) {
    sweep += sub_batch_cost_us(*other.replica);
  }
  return sweep;
}

std::string fmt_rho(double busy_us_per_s) {
  return util::fmt_fixed(busy_us_per_s / 1e6, 3);
}

/// Sub-batches the interactive burst of `m` spans on replica `t`.
double burst_sub_batches(const ModelFacts& m, const ReplicaFacts& t) {
  const double burst = static_cast<double>(
      std::max<std::size_t>(m.envelope.interactive_burst, 1));
  return std::ceil(burst / static_cast<double>(
                               std::max<std::size_t>(t.max_batch, 1)));
}

}  // namespace

const char* proof_name(ProofKind proof) noexcept {
  switch (proof) {
    case ProofKind::kUtilization:        return "utilization";
    case ProofKind::kInteractiveLatency: return "interactive_latency";
    case ProofKind::kBatchFeasibility:   return "batch_feasibility";
    case ProofKind::kQueueCapacity:      return "queue_capacity";
  }
  return "unknown";
}

const char* verdict_name(Verdict verdict) noexcept {
  switch (verdict) {
    case Verdict::kProven:    return "proven";
    case Verdict::kViolated:  return "VIOLATED";
    case Verdict::kUnbounded: return "UNBOUNDED";
  }
  return "unknown";
}

bool CapacityReport::feasible() const noexcept {
  return std::all_of(findings.begin(), findings.end(), [](const Finding& f) {
    return f.verdict == Verdict::kProven;
  });
}

std::size_t CapacityReport::violated_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(), [](const Finding& f) {
        return f.verdict == Verdict::kViolated;
      }));
}

std::size_t CapacityReport::unbounded_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(), [](const Finding& f) {
        return f.verdict == Verdict::kUnbounded;
      }));
}

std::string CapacityReport::table(const std::string& title) const {
  util::TablePrinter table(title);
  table.set_header({"device", "model", "proof", "worst case", "budget",
                    "verdict", "explanation"});
  for (const Finding& f : findings) {
    table.add_row({f.device.empty() ? "-" : f.device,
                   f.model.empty() ? "-" : f.model, proof_name(f.proof),
                   util::fmt_fixed(f.worst_case_us, 1),
                   util::fmt_fixed(f.budget_us, 1), verdict_name(f.verdict),
                   f.explanation});
  }
  return table.to_string();
}

std::string CapacityReport::summary() const {
  const std::size_t violated = violated_count();
  const std::size_t unbounded = unbounded_count();
  if (violated == 0 && unbounded == 0) {
    return "capacity: " + std::to_string(findings.size()) +
           " proof obligation(s) hold — placement feasible";
  }
  std::string out = "capacity: " + std::to_string(violated) + " violated, " +
                    std::to_string(unbounded) + " unbounded of " +
                    std::to_string(findings.size()) +
                    " proof obligation(s) — INFEASIBLE";
  for (const Finding& f : findings) {
    if (f.verdict == Verdict::kProven) continue;
    out += ": [" + std::string(proof_name(f.proof)) +
           (f.model.empty() ? "" : " " + f.model) +
           (f.device.empty() ? "" : " on " + f.device) + "] " + f.explanation;
    break;  // first failure only; the table has the rest
  }
  return out;
}

CapacityReport analyze_capacity(const std::vector<ModelFacts>& models) {
  CapacityReport report;

  // ---- Group replicas by physical device, with speed-split rates --------
  std::vector<DeviceGroup> devices;
  const auto group_of = [&devices](const ReplicaFacts& r) -> DeviceGroup& {
    for (DeviceGroup& d : devices) {
      if (d.key == r.device_key) return d;
    }
    devices.push_back(DeviceGroup{r.device_key, r.device, r.shared, {}, 0.0,
                                  true, false});
    return devices.back();
  };
  for (const ModelFacts& m : models) {
    double total_speed = 0.0;
    for (const ReplicaFacts& r : m.replicas) total_speed += r.speed_factor;
    for (const ReplicaFacts& r : m.replicas) {
      DeviceGroup& d = group_of(r);
      const double share =
          total_speed > 0.0 ? r.speed_factor / total_speed : 0.0;
      d.tenants.push_back(
          TenantShare{&m, &r, m.envelope.arrival_rps * share});
      d.obligated = d.obligated || m.envelope.declared() ||
                    m.envelope.interactive_deadline_us > 0.0;
    }
  }

  // ---- Proof 1: per-device utilization, rho < 1 -------------------------
  for (DeviceGroup& d : devices) {
    double compute = 0.0;    // us of samples per wall second
    double amortized = 0.0;  // us of reloads + pass overhead per second
    double total_rate = 0.0;
    for (const TenantShare& t : d.tenants) {
      compute += t.rate_rps * t.replica->sample_us;
      total_rate += t.rate_rps;
    }
    if (d.shared) {
      const ReplicaFacts& pu = *d.tenants.front().replica;
      if (pu.cobatch) {
        // Under backlog the scheduler fills passes to max_pass_samples, so
        // the sustained pass rate is total_rate / max_pass, each pass
        // paying at worst every tenant's reload plus the fixed overhead.
        double switch_sum = 0.0;
        for (const TenantShare& t : d.tenants) {
          switch_sum += t.replica->switch_us;
        }
        amortized = total_rate / static_cast<double>(pass_cap(pu)) *
                    (switch_sum + pu.pass_overhead_us);
        if (pu.preempt_granularity_us > 0.0) {
          // Preemption reload tax: every probe sub-batch can suspend a
          // pass, forcing its own reload on entry and the suspended
          // tenant's again on resume — worst case two reloads per probe
          // sub-batch beyond the amortized schedule above.
          double max_switch = 0.0;
          for (const TenantShare& t : d.tenants) {
            max_switch = std::max(max_switch, t.replica->switch_us);
          }
          for (const TenantShare& t : d.tenants) {
            const double interactive_rps =
                t.rate_rps * t.model->envelope.interactive_fraction;
            if (interactive_rps <= 0.0) continue;
            amortized +=
                interactive_rps /
                static_cast<double>(sub_batch_samples(*t.replica)) *
                (t.replica->switch_us + max_switch);
          }
        }
      } else {
        // Time-sliced: every sub-batch is its own pass; worst case each
        // one reloads (strict round-robin alternates models).
        for (const TenantShare& t : d.tenants) {
          amortized +=
              t.rate_rps /
              static_cast<double>(sub_batch_samples(*t.replica)) *
              (t.replica->switch_us + t.replica->pass_overhead_us);
        }
      }
    }
    d.busy_us_per_s = compute + amortized;
    d.stable = d.busy_us_per_s < 1e6;
    if (!d.obligated) continue;
    Finding f;
    f.proof = ProofKind::kUtilization;
    f.verdict = d.stable ? Verdict::kProven : Verdict::kViolated;
    f.device = d.name;
    f.worst_case_us = d.busy_us_per_s;
    f.budget_us = 1e6;
    f.explanation = "rho=" + fmt_rho(d.busy_us_per_s) + " (compute " +
                    util::fmt_fixed(compute, 0) + "us/s + reload/overhead " +
                    util::fmt_fixed(amortized, 0) +
                    "us/s per wall second; stability needs rho < 1)";
    report.findings.push_back(std::move(f));
  }

  // ---- Per-model obligations -------------------------------------------
  for (const ModelFacts& m : models) {
    const bool has_interactive_slo = m.envelope.interactive_deadline_us > 0.0;
    const bool has_batch_slo = m.envelope.batch_deadline_us > 0.0;

    // Proof 2: interactive worst case per (model, device). Routing may
    // pick any replica under transient load, so the bound must hold on
    // every device the model is placed on.
    if (has_interactive_slo) {
      std::vector<std::string> seen_keys;
      for (const ReplicaFacts& r : m.replicas) {
        const DeviceGroup& d = group_of(r);
        if (std::find(seen_keys.begin(), seen_keys.end(), d.key) !=
            seen_keys.end()) {
          continue;  // co-located replicas share one bound
        }
        seen_keys.push_back(d.key);
        const double blocking = blocking_us(d);
        const double ride = ride_us(d, r);
        const double rides = burst_sub_batches(m, r);
        const double bound =
            blocking + window_us(d) +
            static_cast<double>(std::max<std::int64_t>(r.max_wait_us, 0)) +
            rides * ride;
        Finding f;
        f.proof = ProofKind::kInteractiveLatency;
        f.device = d.name;
        f.model = m.model;
        f.worst_case_us = bound;
        f.budget_us = m.envelope.interactive_deadline_us;
        f.verdict = !d.stable ? Verdict::kUnbounded
                    : bound <= f.budget_us ? Verdict::kProven
                                           : Verdict::kViolated;
        f.explanation =
            "blocking " + util::fmt_fixed(blocking, 0) + "us + window " +
            util::fmt_fixed(window_us(d), 0) + "us + batch wait " +
            std::to_string(r.max_wait_us) + "us + " +
            util::fmt_fixed(rides, 0) + " burst sub-batch ride(s) x " +
            util::fmt_fixed(ride, 0) + "us" +
            (preemptible(d)
                 ? "; preemptible PU: blocking/ride are one chunk wide"
                 : "") +
            (!d.stable ? "; device unstable, bound not attainable" : "");
        report.findings.push_back(std::move(f));
      }
    }

    // Proof 3: batch-lane feasibility. The floor is the best service any
    // kBatch sub-batch can hope for across the replicas — above the
    // budget, admission sheds (or the deadline expires) 100% of the lane.
    if (has_batch_slo || (m.batch_quota > 0 && m.envelope.batch_rps() > 0)) {
      double floor = std::numeric_limits<double>::infinity();
      const ReplicaFacts* best = nullptr;
      bool best_stable = true;
      for (const ReplicaFacts& r : m.replicas) {
        const DeviceGroup& d = group_of(r);
        const double f = blocking_us(d) + window_us(d) +
                         static_cast<double>(
                             std::max<std::int64_t>(r.max_wait_us, 0)) +
                         ride_us(d, r);
        if (f < floor) {
          floor = f;
          best = &r;
          best_stable = d.stable;
        }
      }
      if (best != nullptr && has_batch_slo) {
        Finding f;
        f.proof = ProofKind::kBatchFeasibility;
        f.device = best->device;
        f.model = m.model;
        f.worst_case_us = floor;
        f.budget_us = m.envelope.batch_deadline_us;
        f.verdict = !best_stable ? Verdict::kUnbounded
                    : floor <= f.budget_us ? Verdict::kProven
                                           : Verdict::kViolated;
        f.explanation =
            "best-case service floor of one kBatch sub-batch; above the "
            "budget the lane starves (" +
            std::string(m.admission_control ? "admission sheds every request"
                                            : "every request times out") +
            ")";
        report.findings.push_back(std::move(f));
      }
      if (best != nullptr && m.batch_quota > 0 &&
          m.envelope.batch_rps() > 0) {
        // Little's law: sustaining batch_rps at the floor needs this many
        // requests in flight; a smaller quota sheds declared traffic.
        const double occupancy = m.envelope.batch_rps() * floor / 1e6;
        Finding f;
        f.proof = ProofKind::kBatchFeasibility;
        f.device = best->device;
        f.model = m.model;
        f.worst_case_us = occupancy;
        f.budget_us = static_cast<double>(m.batch_quota);
        f.verdict = !best_stable ? Verdict::kUnbounded
                    : occupancy <= f.budget_us ? Verdict::kProven
                                               : Verdict::kViolated;
        f.explanation =
            "Little's-law occupancy (requests in flight) of the declared "
            "batch rate vs batch_quota slots";
        report.findings.push_back(std::move(f));
      }
    }

    // Proof 4: queue capacity per (model, device): arrivals during one
    // worst-case stall (blocking + window + batch wait), plus the burst,
    // must fit the replica's bounded queue.
    if (m.envelope.declared()) {
      std::vector<std::string> seen_keys;
      for (const ReplicaFacts& r : m.replicas) {
        const DeviceGroup& d = group_of(r);
        if (std::find(seen_keys.begin(), seen_keys.end(), d.key) !=
            seen_keys.end()) {
          continue;
        }
        seen_keys.push_back(d.key);
        double rate = 0.0;  // this model's share steered to this replica
        for (const TenantShare& t : d.tenants) {
          if (t.model == &m && t.replica == &r) rate = t.rate_rps;
        }
        const double horizon =
            blocking_us(d) + window_us(d) +
            static_cast<double>(std::max<std::int64_t>(r.max_wait_us, 0));
        const double needed =
            std::ceil(rate * horizon / 1e6 +
                      static_cast<double>(std::max<std::size_t>(
                          m.envelope.interactive_burst, 1)));
        Finding f;
        f.proof = ProofKind::kQueueCapacity;
        f.device = d.name;
        f.model = m.model;
        f.worst_case_us = needed;
        f.budget_us = static_cast<double>(r.queue_capacity);
        f.verdict = !d.stable ? Verdict::kUnbounded
                    : needed <= f.budget_us ? Verdict::kProven
                                            : Verdict::kViolated;
        f.explanation = "queue slots needed across one " +
                        util::fmt_fixed(horizon, 0) +
                        "us worst-case stall (plus the declared burst) vs "
                        "queue_capacity";
        report.findings.push_back(std::move(f));
      }
    }
  }
  return report;
}

}  // namespace mfdfp::analysis
