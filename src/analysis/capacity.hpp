// Deploy-time SLO schedulability analysis of a serving placement.
//
// The numeric analyzer (analyzer.hpp) proves a CompiledPlan's *values* are
// safe; this module proves a placement's *timing* is: given the static
// facts of a deployment — each replica's per-sample cycle cost on its
// device (speed_factor-scaled, the same number the admission controller
// prices with), batching/queueing knobs, shared-PU tenancy (coalesce
// window, max pass size, weight-reload cost) — and a declared per-model
// TrafficEnvelope (offered rate, interactive/batch mix, deadline budgets),
// it derives worst-case bounds and emits one typed Finding per proof
// obligation:
//
//   kUtilization         per device: modeled busy microseconds per wall
//                        second under the declared rates (compute plus,
//                        on a shared PU, amortized weight reloads and
//                        per-pass overhead) must stay under 1e6 — the
//                        ρ < 1 stability obligation. Every other bound is
//                        meaningful only when this one holds.
//   kInteractiveLatency  per (model, device): worst-case end-to-end delay
//                        of one interactive burst, built from
//                        non-preemptible blocking — the largest possible
//                        pass already on the device (max_pass_samples of
//                        the slowest tenant plus every tenant's weight
//                        reload plus pass overhead; exactly the tail shape
//                        bench/ablation_shared_pu measures), the coalesce
//                        window, the engine's batch-formation wait, and
//                        the burst's own sub-batches each riding a
//                        worst-case pass — vs interactive_deadline_us.
//                        On a preemptible PU (preempt_granularity_us > 0)
//                        the non-preemptible unit is one *chunk*, probes
//                        skip the coalesce window, and each burst ride is
//                        one chunk plus the probe's own sub-batch — a
//                        strictly tighter bound (never looser: every
//                        chunked term is min()'d against its monolithic
//                        counterpart).
//   kBatchFeasibility    per model: the *best-case* service floor of one
//                        kBatch sub-batch across the replicas vs
//                        batch_deadline_us (a floor above the budget means
//                        admission control starves the lane: every batch
//                        request it admits still times out), plus a
//                        Little's-law check that batch_quota does not cap
//                        outstanding work below what the declared batch
//                        rate needs in flight.
//   kQueueCapacity       per (model, device): arrivals that can pile up
//                        while the device drains one worst-case blocking
//                        term (plus the declared burst) must fit the
//                        replica's bounded queue.
//
// Soundness stance: bounds are conservative (worst-case pass composition,
// worst-case routing choice, no cross-replica overlap credit); a kProven
// finding over-covers the measured tail, never under — which is what
// bench/ablation_capacity enforces against live paced traffic. Verdicts on
// a device whose utilization obligation fails are kUnbounded: with ρ >= 1
// the backlog grows without bound and no finite worst case exists.
//
// Single source of truth: every service/blocking term is assembled through
// committed_delay_us(), the same linear cost formula
// InferenceEngine::estimated_queue_delay_us() admission/routing prices
// with (tests/test_capacity.cpp cross-checks engine, router, and analyzer
// on identical inputs).
//
// Consumed by ModelServer::deploy() (DeployConfig.envelope; an infeasible
// placement is rejected as DeployError{kInfeasibleSlo} before it serves a
// single request, or reported when the envelope is warn_only) and by
// tools/servelint.cpp, which prints the per-device bound table for
// checked-in placement specs in CI. docs/static-analysis.md walks through
// the proofs and the table format.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mfdfp::analysis {

/// Declared offered load and SLO budgets of one deployed model — the
/// traffic contract the schedulability proofs hold against. Default
/// (arrival_rps == 0) means "no envelope declared": deploy() skips the
/// analysis for this model, though its replicas still contribute blocking
/// terms to co-tenants' proofs.
struct TrafficEnvelope {
  /// Total offered rate across priority classes, requests/second.
  double arrival_rps = 0.0;

  /// Share of arrivals submitted kInteractive, [0, 1]; the rest is kBatch.
  double interactive_fraction = 0.0;

  /// Largest instantaneous burst of interactive probes (requests arriving
  /// before the first can be served). The latency bound covers the whole
  /// burst, its last probe included.
  std::size_t interactive_burst = 1;

  /// Worst-case end-to-end budget for interactive traffic, microseconds;
  /// 0 = no interactive latency obligation.
  double interactive_deadline_us = 0.0;

  /// Deadline budget attached to kBatch submissions, microseconds; 0 =
  /// deadline-less batch traffic (no starvation obligation).
  double batch_deadline_us = 0.0;

  /// Report violated proofs instead of rejecting the deploy (the findings
  /// stay visible through ModelServer::capacity_report()).
  bool warn_only = false;

  [[nodiscard]] bool declared() const noexcept { return arrival_rps > 0.0; }
  [[nodiscard]] double interactive_rps() const noexcept {
    return arrival_rps * interactive_fraction;
  }
  [[nodiscard]] double batch_rps() const noexcept {
    return arrival_rps - interactive_rps();
  }
};

/// The one cost formula the serving stack prices queueing delay with:
/// `outstanding` requests at `sample_us` modeled microseconds each, plus
/// work already committed to the device by others. InferenceEngine
/// admission, ReplicaSet/Router routing, and every service/blocking term
/// of the capacity analyzer all call this — drift between the admission
/// path and the proofs is a compile-time impossibility, not a code-review
/// hope.
[[nodiscard]] constexpr double committed_delay_us(
    double outstanding, double sample_us, double cross_backlog_us) noexcept {
  return outstanding * sample_us + cross_backlog_us;
}

/// Static facts of one replica: the engine knobs and device pricing the
/// proofs are built from. serve::ReplicaSet::capacity_facts() fills one
/// per replica from the live deployment; tools/servelint builds them from
/// a placement spec.
struct ReplicaFacts {
  /// Display name of the device this replica executes on.
  std::string device;
  /// Physical identity: replicas (of any model) with the same key share
  /// one device's cycles. Shared PUs use the PU name; dedicated devices
  /// get a per-replica key, since two models' "dev0" are distinct
  /// hardware.
  std::string device_key;
  bool shared = false;
  double speed_factor = 1.0;
  /// Per-sample modeled cost on this device, microseconds —
  /// CycleReport::microseconds(accel, speed_factor), identical to what
  /// the replica's backend->sample_us() reports.
  double sample_us = 0.0;
  /// Resolved engine knobs (device overrides already applied).
  std::size_t max_batch = 8;
  std::int64_t max_wait_us = 0;
  std::size_t queue_capacity = 0;
  // Shared-PU scheduling facts (meaningful only when `shared`).
  double switch_us = 0.0;  ///< this tenant's weight-reload penalty
  std::size_t max_pass_samples = 0;
  bool cobatch = true;
  std::int64_t coalesce_window_us = 0;
  double pass_overhead_us = 0.0;
  /// SharedDeviceConfig::preempt_granularity_us of the PU. > 0 means
  /// passes are chunked and preemptible: the worst-case blocking a probe
  /// can see shrinks from one maximal pass to one maximal *chunk* (the
  /// granularity of compute, never less than one sample, plus the largest
  /// reload + pass overhead), probes skip the coalesce window, and
  /// utilization gains a preemption reload tax (suspension + resume can
  /// each force a reload). 0 keeps the monolithic-pass bounds.
  double preempt_granularity_us = 0.0;
};

/// Static facts of one deployed model: its envelope, set-level QoS knobs,
/// and one ReplicaFacts per replica.
struct ModelFacts {
  std::string model;
  TrafficEnvelope envelope;
  bool admission_control = true;
  std::size_t batch_quota = 0;  ///< 0 = unlimited
  std::vector<ReplicaFacts> replicas;
};

/// Which obligation a Finding proves (see file comment).
enum class ProofKind {
  kUtilization,
  kInteractiveLatency,
  kBatchFeasibility,
  kQueueCapacity,
};

enum class Verdict {
  kProven,     ///< worst case within budget
  kViolated,   ///< worst case exceeds budget
  kUnbounded,  ///< device utilization >= 1: no finite worst case exists
};

[[nodiscard]] const char* proof_name(ProofKind proof) noexcept;
[[nodiscard]] const char* verdict_name(Verdict verdict) noexcept;

/// One proof obligation's outcome. worst_case_us/budget_us are modeled
/// microseconds for the latency proofs; the utilization proof reports busy
/// microseconds per wall second (budget 1e6 == ρ < 1), and the
/// queue/quota proofs report request slots (the explanation spells out
/// the units either way).
struct Finding {
  ProofKind proof = ProofKind::kUtilization;
  Verdict verdict = Verdict::kProven;
  std::string device;  ///< display name; empty for set-level proofs
  std::string model;   ///< empty for device-level proofs
  double worst_case_us = 0.0;
  double budget_us = 0.0;
  std::string explanation;
};

/// Every finding of one analysis run, renderable as the servelint table.
struct CapacityReport {
  std::vector<Finding> findings;

  /// True when every obligation is kProven (vacuously true with no
  /// declared envelope anywhere).
  [[nodiscard]] bool feasible() const noexcept;
  [[nodiscard]] std::size_t violated_count() const noexcept;
  [[nodiscard]] std::size_t unbounded_count() const noexcept;

  /// Aligned per-device/per-proof bound table (the servelint output).
  [[nodiscard]] std::string table(const std::string& title) const;
  /// One-line verdict for logs and DeployError messages.
  [[nodiscard]] std::string summary() const;
};

/// Analyzes one placement: all models sharing the process (replicas with
/// equal device_key contend for one device). Models without a declared
/// envelope contribute blocking terms (their passes still occupy shared
/// PUs) but carry no obligations of their own. Pure function of the
/// facts — never throws, never touches live serving state.
[[nodiscard]] CapacityReport analyze_capacity(
    const std::vector<ModelFacts>& models);

}  // namespace mfdfp::analysis
