// Deploy-time numeric static analysis of CompiledPlans.
//
// An interval-domain abstract interpreter over the plan's steps: starting
// from the 8-bit input code range, it propagates a per-channel (spatial) /
// per-feature (flattened) [min, max] code interval through every pow2
// weight dot, bias add, route_sum rescaling, ReLU, pool, and flatten —
// mirroring the exact integer arithmetic of hw/kernels + hw/datapath, so
// the derived bounds are sound for *every* possible input image:
//
//   * conv / fc dots are bounded exactly per output channel: each
//     predecoded ±2^(7+e) weight contributes max(w·lo, w·hi) to the upper
//     bound and min(w·lo, w·hi) to the lower (taps that can be padded for
//     some output pixel widen their contribution with 0);
//   * route_sum is modeled shift-for-shift: radix alignment onto the
//     common grid, bias add, round-half-away, 8-bit saturation — the
//     interval before saturation yields the worst-case clip mass;
//   * max pool is monotone (interval-preserving + convert_code); avg pool
//     re-runs the kernel's exact decode→mean→encode expression at the
//     interval endpoints (every float op in it is monotone in the tap sum).
//
// What it proves (violations reject the plan):
//   * the hw::kAccumulatorBits-wide accumulator register cannot overflow
//     for the deployed geometry — the runtime check_width can never fire;
//   * the int32 fast-dot path the plan executor selects is exact;
//   * every radix realignment shift fits the int64 model carrier
//     (shift_left_checked cannot throw), i.e. the DFP fraction chain is
//     consistent end to end;
//   * (optionally) no layer can saturate — otherwise the report carries
//     the worst-case clip mass per layer.
//
// Wired into PassPipeline::standard as the `analyze` pass
// (CompileOptions::analyze, default on): an unsafe plan is rejected at
// deploy() before it can serve a single request. The standalone `planlint`
// tool (tools/planlint.cpp) prints the per-layer bound table for every
// zoo model; docs/static-analysis.md explains how to read it.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "compile/plan.hpp"
#include "hw/datapath.hpp"

namespace mfdfp::analysis {

/// Closed integer interval [lo, hi] of activation codes / accumulator
/// values. Invariant: lo <= hi.
struct Interval {
  std::int64_t lo = 0;
  std::int64_t hi = 0;

  [[nodiscard]] bool contains(std::int64_t v) const noexcept {
    return lo <= v && v <= hi;
  }
  [[nodiscard]] Interval hull(const Interval& other) const noexcept {
    return {lo < other.lo ? lo : other.lo, hi > other.hi ? hi : other.hi};
  }
  [[nodiscard]] bool operator==(const Interval&) const noexcept = default;
};

/// Smallest two's-complement width (in bits, >= 1) that holds both
/// endpoints of `iv`; 64 when only the full carrier does.
[[nodiscard]] int bits_needed(const Interval& iv) noexcept;

/// Analyzer knobs. Defaults model the deployed hardware exactly.
struct AnalysisOptions {
  /// Input activation code range. Default: the full 8-bit code range the
  /// DMA can deliver. Narrow it when the input format provably cannot
  /// reach the extremes (tightens every downstream bound).
  Interval input{hw::min_for_bits(hw::kInputBits),
                 hw::max_for_bits(hw::kInputBits)};
  /// Accumulator register width to prove against (tests tighten this to
  /// exercise the overflow check without multi-GB weight tables).
  int accumulator_bits = hw::kAccumulatorBits;
  /// When true, a layer whose routed interval exceeds the 8-bit output
  /// range (clip mass > 0) is a violation instead of a report line.
  bool fail_on_clip = false;
};

/// Per-step analysis row — one line of the planlint bound table.
struct StepBounds {
  std::size_t step = 0;
  std::string label;
  compile::StepKind kind = compile::StepKind::kConv;
  int in_frac = 0;
  int out_frac = 0;
  int result_frac = 0;
  /// Worst-case raw dot-product range across output channels (conv/fc
  /// steps; zero interval otherwise) — what the accumulator must hold.
  Interval dot;
  /// Two's-complement bits the worst-case dot needs (vs accumulator_bits).
  int accumulator_bits = 0;
  /// True when the plan executor takes the int32 dense-dot fast path.
  bool int32_dot = false;
  /// Routed value range *before* 8-bit saturation (conv/fc steps).
  Interval routed;
  /// Final output code range after every fused stage.
  Interval out;
  /// Worst-case saturation excess in code units: how far the routed (or
  /// converted) value can land outside the 8-bit range. 0 = provably
  /// saturation-free.
  std::int64_t clip_mass = 0;
};

/// The analyzer's verdict: per-step bounds plus every violated proof
/// obligation. `ok()` plans cannot overflow any accumulator, wrap any
/// int32 fast path, or throw from any radix realignment at runtime.
struct AnalysisReport {
  std::string model;
  std::vector<StepBounds> steps;
  std::vector<std::string> violations;
  /// Sum of per-step clip masses (0 = the whole plan is saturation-free).
  std::int64_t total_clip_mass = 0;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
  /// Aligned per-layer bound table (the planlint output).
  [[nodiscard]] std::string table() const;
  /// One-line verdict for logs.
  [[nodiscard]] std::string summary() const;
};

/// Abstract-interprets `plan` (tables must be built, i.e. post
/// pass_build_tables). Never throws on unsafe plans — violations are
/// reported; throws std::invalid_argument only on structurally broken
/// plans the verifier would reject anyway.
[[nodiscard]] AnalysisReport analyze_plan(const compile::CompiledPlan& plan,
                                          const AnalysisOptions& options = {});

/// Thrown by the `analyze` pass (and thus by deploy()) when a plan fails
/// a proof obligation. Carries the full report for diagnostics.
class PlanRejectedError : public std::runtime_error {
 public:
  explicit PlanRejectedError(AnalysisReport report);

  [[nodiscard]] const AnalysisReport& report() const noexcept {
    return report_;
  }

 private:
  AnalysisReport report_;
};

/// The PassPipeline `analyze` pass body: analyze with default options and
/// throw PlanRejectedError unless the plan is proven safe.
void pass_analyze(const compile::CompiledPlan& plan);

}  // namespace mfdfp::analysis
