// Reproduces paper Table 1: design area and power of the proposed MF-DFP
// accelerator against the floating-point baseline (65 nm block-level model,
// see DESIGN.md for the calibration).
//
// Paper reference values:
//   Floating-point(32,32):  16.52 mm2  1361.61 mW      0 %      0 %
//   Proposed MF-DFP(8,4):    1.99 mm2   138.96 mW  87.97 %  89.79 %
//   Ens. MF-DFP(8,4):        3.96 mm2   270.27 mW  76.00 %  80.15 %
#include <cstdio>

#include "hw/cost_model.hpp"
#include "util/table.hpp"

int main() {
  using namespace mfdfp;

  const hw::AcceleratorConfig fp = hw::float_baseline_config();
  const hw::AcceleratorConfig mf1 = hw::mfdfp_config(1);
  const hw::AcceleratorConfig mf2 = hw::mfdfp_config(2);

  const hw::CostBreakdown cost_fp = hw::cost_model(fp);
  const hw::CostBreakdown cost_mf1 = hw::cost_model(mf1);
  const hw::CostBreakdown cost_mf2 = hw::cost_model(mf2);

  util::TablePrinter table(
      "Table 1: design metrics of the proposed MF-DFP accelerator vs the "
      "floating-point baseline");
  table.set_header({"Precision (in,w)", "Area (mm2)", "Power (mW)",
                    "Area Saving (%)", "Power Saving (%)"});
  auto add = [&](const char* name, const hw::CostBreakdown& cost) {
    table.add_row(
        {name, util::fmt_fixed(cost.total_area_mm2(), 2),
         util::fmt_fixed(cost.total_power_mw(), 2),
         util::fmt_percent(
             hw::saving(cost_fp.total_area_mm2(), cost.total_area_mm2())),
         util::fmt_percent(
             hw::saving(cost_fp.total_power_mw(), cost.total_power_mw()))});
  };
  add("Floating-point(32,32)", cost_fp);
  add("Proposed MF-DFP(8,4)", cost_mf1);
  add("Ens. MF-DFP(8,4)", cost_mf2);
  table.print();

  std::printf(
      "\nPaper reference:        area 16.52 / 1.99 / 3.96 mm2, "
      "power 1361.61 / 138.96 / 270.27 mW,\n"
      "                        savings 87.97 / 89.79 (single), "
      "76.00 / 80.15 (ensemble) %%\n");

  // Block-level breakdown (not in the paper's table, but what the model is
  // made of — lets readers audit where the savings come from).
  util::TablePrinter blocks("\nBlock-level breakdown");
  blocks.set_header({"Block", "FP area", "MF area", "FP power", "MF power"});
  auto block = [&](const char* name, double fa, double ma, double fp_p,
                   double mp) {
    blocks.add_row({name, util::fmt_fixed(fa, 3), util::fmt_fixed(ma, 3),
                    util::fmt_fixed(fp_p, 1), util::fmt_fixed(mp, 1)});
  };
  block("multipliers/shifters", cost_fp.multiplier_area_mm2,
        cost_mf1.multiplier_area_mm2, cost_fp.multiplier_power_mw,
        cost_mf1.multiplier_power_mw);
  block("adder tree", cost_fp.adder_tree_area_mm2,
        cost_mf1.adder_tree_area_mm2, cost_fp.adder_tree_power_mw,
        cost_mf1.adder_tree_power_mw);
  block("accumulator+routing", cost_fp.accumulator_area_mm2,
        cost_mf1.accumulator_area_mm2, cost_fp.accumulator_power_mw,
        cost_mf1.accumulator_power_mw);
  block("nonlinearity", cost_fp.nonlinearity_area_mm2,
        cost_mf1.nonlinearity_area_mm2, cost_fp.nonlinearity_power_mw,
        cost_mf1.nonlinearity_power_mw);
  block("SRAM buffers", cost_fp.buffer_area_mm2, cost_mf1.buffer_area_mm2,
        cost_fp.buffer_power_mw, cost_mf1.buffer_power_mw);
  block("control+DMA", cost_fp.control_area_mm2, cost_mf1.control_area_mm2,
        cost_fp.control_power_mw, cost_mf1.control_power_mw);
  blocks.print();
  return 0;
}
