// Shared pipeline driver for the accuracy benches (Table 2, Figure 3,
// ablations): dataset construction, float training, conversion, ensemble,
// and the derived hardware metrics.
//
// Setting MFDFP_QUICK=1 in the environment shrinks datasets/epochs ~4x for
// fast iteration; the full (default) settings are what EXPERIMENTS.md
// records.
#pragma once

#include <cstdlib>
#include <string>

#include "core/converter.hpp"
#include "core/ensemble.hpp"
#include "data/synthetic.hpp"
#include "hw/cycle_model.hpp"
#include "hw/executor.hpp"
#include "nn/metrics.hpp"
#include "nn/zoo.hpp"
#include "util/logging.hpp"

namespace mfdfp::bench {

inline bool quick_mode() {
  const char* flag = std::getenv("MFDFP_QUICK");
  return flag != nullptr && flag[0] == '1';
}

/// One of the two paper benchmarks, at reduced synthetic scale.
struct BenchmarkSpec {
  std::string name;
  data::SyntheticSpec data;
  bool alexnet = false;       ///< alexnet_mini vs cifar10_net topology
  float width = 0.5f;
  // The float baseline must be trained to (near) convergence — as in the
  // paper — or the fine-tuning epochs of Algorithm 1 would dominate the
  // quantization effect and invert the float-vs-MF-DFP ordering.
  std::size_t float_epochs = 30;
  std::size_t phase1_epochs = 6;
  std::size_t phase2_epochs = 4;
};

inline BenchmarkSpec cifar_benchmark() {
  BenchmarkSpec spec;
  spec.name = "CIFAR-10 (synthetic)";
  spec.data = data::cifar_like_spec();
  spec.alexnet = false;
  if (quick_mode()) {
    spec.data.train_count = 300;
    spec.data.test_count = 120;
    spec.float_epochs = 4;
    spec.phase1_epochs = 2;
    spec.phase2_epochs = 2;
  }
  return spec;
}

inline BenchmarkSpec imagenet_benchmark() {
  BenchmarkSpec spec;
  spec.name = "ImageNet (synthetic)";
  spec.data = data::imagenet_like_spec();
  spec.alexnet = true;
  if (quick_mode()) {
    spec.data.train_count = 240;
    spec.data.test_count = 120;
    spec.float_epochs = 4;
    spec.phase1_epochs = 2;
    spec.phase2_epochs = 2;
  }
  return spec;
}

inline nn::ZooConfig zoo_config(const BenchmarkSpec& spec) {
  nn::ZooConfig config;
  config.in_channels = spec.data.channels;
  config.in_h = spec.data.height;
  config.in_w = spec.data.width;
  config.num_classes = spec.data.num_classes;
  config.width_multiplier = spec.width;
  return config;
}

inline nn::Network make_net(const BenchmarkSpec& spec, util::Rng& rng) {
  const nn::ZooConfig config = zoo_config(spec);
  return spec.alexnet ? nn::make_alexnet_mini(config, rng)
                      : nn::make_cifar10_net(config, rng);
}

/// Trains one float network for the benchmark (seeded).
inline nn::Network train_float(const BenchmarkSpec& spec,
                               const data::DatasetPair& ds,
                               std::uint64_t seed) {
  util::Rng rng{seed};
  nn::Network net = make_net(spec, rng);
  core::FloatTrainConfig config;
  config.max_epochs = spec.float_epochs;
  config.seed = seed;
  core::train_float_network(net, ds.train, ds.test, config);
  return net;
}

inline core::ConverterConfig converter_config(const BenchmarkSpec& spec,
                                              std::uint64_t seed) {
  core::ConverterConfig config;
  config.phase1_epochs = spec.phase1_epochs;
  config.phase2_epochs = spec.phase2_epochs;
  config.seed = seed;
  return config;
}

}  // namespace mfdfp::bench
