// Multi-model ModelServer ablation: mixed two-model, two-priority traffic.
//
// Three phases:
//  1. correctness — a single-net model ("cnn") and a 2-member averaged-logit
//     ensemble ("ens") deployed concurrently on one ModelServer must return
//     logits bit-identical to per-sample AcceleratorExecutor::run() /
//     run_ensemble(), across both priority classes;
//  2. priority ablation — the same overloaded mixed traffic (a standing
//     kBatch backlog on both models, periodic kInteractive probes) runs once
//     with strict-priority scheduling and once with plain FIFO; interactive
//     p99 must be strictly better with priority scheduling;
//  3. admission control — with shedding enabled, tight-budget kBatch traffic
//     submitted into a standing backlog is refused as kShedded instead of
//     queueing work that cannot finish in time.
//
// Emits a JSON fragment (path = argv[1], default ./BENCH_multimodel.json);
// scripts/run_bench.sh folds it into BENCH_serve.json next to the git SHA.
// Exits nonzero when any phase fails its acceptance check. MFDFP_QUICK=1
// shrinks the probe counts.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/server.hpp"
#include "util/latency_histogram.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace mfdfp;
using tensor::Shape;
using tensor::Tensor;

hw::QNetDesc make_qnet(std::uint64_t seed, bool conv_net) {
  util::Rng rng{seed};
  nn::ZooConfig config;
  config.in_channels = 3;
  config.in_h = config.in_w = 16;
  config.num_classes = 5;
  config.width_multiplier = 0.2f;
  nn::Network net = conv_net ? nn::make_cifar10_net(config, rng)
                             : nn::make_mlp(config, 12, rng);
  Tensor calibration{Shape{8, 3, 16, 16}};
  calibration.fill_uniform(rng, -1.0f, 1.0f);
  const quant::QuantSpec spec = quant::quantize_network(net, calibration);
  return hw::extract_qnet(net, spec, conv_net ? "cnn" : "mlp");
}

serve::DeployConfig overload_config(bool priority_scheduling) {
  serve::DeployConfig config;
  config.in_c = 3;
  config.in_h = config.in_w = 16;
  // One worker and a short coalescing wait: the standing backlog, not the
  // batcher, dominates latency — exactly the regime priority classes target.
  config.workers = 1;
  config.max_batch = 8;
  config.max_wait_us = 200;
  config.queue_capacity = 8192;
  config.priority_scheduling = priority_scheduling;
  config.admission_control = false;  // phase 3 turns it on separately
  return config;
}

struct MixedTrafficResult {
  std::int64_t interactive_p99_us = 0;
  std::int64_t interactive_p50_us = 0;
  std::int64_t batch_p99_us = 0;
  std::size_t probes = 0;
  std::size_t batch_requests = 0;
};

/// Drives both models with a standing kBatch backlog plus periodic
/// kInteractive probes and reports the merged interactive tail.
MixedTrafficResult run_mixed_traffic(const hw::QNetDesc& cnn,
                                     const std::vector<hw::QNetDesc>& ens,
                                     const Tensor& images,
                                     bool priority_scheduling) {
  const std::size_t probes_per_model = bench::quick_mode() ? 10 : 24;
  constexpr std::size_t kBacklog = 96;
  constexpr std::int64_t kProbeGapUs = 2000;
  const std::vector<std::string> names{"cnn", "ens"};

  serve::ModelServer server;
  server.deploy("cnn", {cnn}, overload_config(priority_scheduling));
  server.deploy("ens", ens, overload_config(priority_scheduling));

  const std::size_t pool = images.shape().n();
  std::size_t next_image = 0;
  auto sample = [&] {
    const std::size_t i = next_image++ % pool;
    return tensor::slice_outer(images, i, i + 1);
  };

  serve::SubmitOptions batch_options;
  batch_options.priority = serve::Priority::kBatch;
  batch_options.deadline_us = 0;  // backlog traffic never expires
  serve::SubmitOptions interactive_options;
  interactive_options.priority = serve::Priority::kInteractive;
  interactive_options.deadline_us = 0;

  std::vector<std::future<serve::Response>> batch_futures;
  std::vector<std::future<serve::Response>> interactive_futures;
  auto top_up = [&](const std::string& name) {
    const auto engine = server.engine(name);
    while (engine->queue_depth() < kBacklog) {
      batch_futures.push_back(server.submit(name, sample(), batch_options));
    }
  };

  for (std::size_t k = 0; k < probes_per_model; ++k) {
    for (const std::string& name : names) {
      top_up(name);  // keep the engine overloaded at probe time
      interactive_futures.push_back(
          server.submit(name, sample(), interactive_options));
    }
    std::this_thread::sleep_for(std::chrono::microseconds(kProbeGapUs));
  }

  MixedTrafficResult result;
  util::LatencyHistogram interactive_e2e;
  for (auto& future : interactive_futures) {
    const serve::Response response = future.get();
    if (!serve::ok(response.status)) std::abort();
    interactive_e2e.record(response.e2e_us);
  }
  util::LatencyHistogram batch_e2e;
  for (auto& future : batch_futures) {
    const serve::Response response = future.get();
    if (!serve::ok(response.status)) std::abort();
    batch_e2e.record(response.e2e_us);
  }
  server.shutdown();

  result.interactive_p99_us = interactive_e2e.p99();
  result.interactive_p50_us = interactive_e2e.p50();
  result.batch_p99_us = batch_e2e.p99();
  result.probes = interactive_futures.size();
  result.batch_requests = batch_futures.size();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_multimodel.json";

  const hw::QNetDesc cnn = make_qnet(91, true);
  const std::vector<hw::QNetDesc> ens{make_qnet(92, false),
                                      make_qnet(93, false)};
  util::Rng rng{94};
  Tensor images{Shape{32, 3, 16, 16}};
  images.fill_uniform(rng, -1.0f, 1.0f);

  // ---- Phase 1: two concurrent models, bit-identical logits ---------------
  bool bit_identical = true;
  {
    const hw::AcceleratorExecutor ref_cnn(cnn);
    const hw::AcceleratorExecutor ref_a(ens[0]), ref_b(ens[1]);
    const std::vector<const hw::AcceleratorExecutor*> ref_members{&ref_a,
                                                                  &ref_b};
    serve::ModelServer server;
    serve::DeployConfig config = overload_config(true);
    config.workers = 2;
    server.deploy("cnn", {cnn}, config);
    server.deploy("ens", ens, config);

    const std::size_t checks = bench::quick_mode() ? 12 : 32;
    std::vector<std::future<serve::Response>> cnn_futures, ens_futures;
    for (std::size_t i = 0; i < checks; ++i) {
      serve::SubmitOptions options;
      options.priority = i % 2 == 0 ? serve::Priority::kInteractive
                                    : serve::Priority::kBatch;
      const std::size_t img = i % images.shape().n();
      cnn_futures.push_back(server.submit(
          "cnn", tensor::slice_outer(images, img, img + 1), options));
      ens_futures.push_back(server.submit(
          "ens", tensor::slice_outer(images, img, img + 1), options));
    }
    for (std::size_t i = 0; i < checks; ++i) {
      const std::size_t img = i % images.shape().n();
      const Tensor sample = tensor::slice_outer(images, img, img + 1);
      const serve::Response from_cnn = cnn_futures[i].get();
      const serve::Response from_ens = ens_futures[i].get();
      if (!serve::ok(from_cnn.status) || !serve::ok(from_ens.status) ||
          tensor::max_abs_diff(from_cnn.logits, ref_cnn.run(sample)) !=
              0.0f ||
          tensor::max_abs_diff(from_ens.logits,
                               hw::run_ensemble(ref_members, sample)) !=
              0.0f) {
        bit_identical = false;
      }
    }
    server.shutdown();
  }
  std::printf("phase 1: two-model logits bit-identical to run(): %s\n",
              bit_identical ? "yes" : "NO");

  // ---- Phase 2: strict priority vs FIFO under the same mixed load ---------
  const MixedTrafficResult with_priority =
      run_mixed_traffic(cnn, ens, images, /*priority_scheduling=*/true);
  const MixedTrafficResult fifo =
      run_mixed_traffic(cnn, ens, images, /*priority_scheduling=*/false);
  const double improvement =
      with_priority.interactive_p99_us > 0
          ? static_cast<double>(fifo.interactive_p99_us) /
                static_cast<double>(with_priority.interactive_p99_us)
          : 0.0;

  util::TablePrinter table("Mixed two-model traffic (" +
                           std::to_string(with_priority.probes) +
                           " interactive probes, backlog 96/model)");
  table.set_header(
      {"scheduling", "interactive p50 us", "interactive p99 us",
       "batch p99 us"});
  table.add_row({"strict priority",
                 std::to_string(with_priority.interactive_p50_us),
                 std::to_string(with_priority.interactive_p99_us),
                 std::to_string(with_priority.batch_p99_us)});
  table.add_row({"FIFO (no classes)",
                 std::to_string(fifo.interactive_p50_us),
                 std::to_string(fifo.interactive_p99_us),
                 std::to_string(fifo.batch_p99_us)});
  table.print();
  std::printf("interactive p99 improvement from priority classes: %.2fx\n",
              improvement);

  // ---- Phase 3: admission control sheds tight-budget batch traffic --------
  std::size_t shedded = 0, shed_candidates = 0;
  {
    serve::ModelServer server;
    serve::DeployConfig config = overload_config(true);
    config.admission_control = true;
    config.max_wait_us = 300'000;  // park the worker: backlog stays put
    server.deploy("cnn", {cnn}, config);

    // Budget with wall-clock headroom (a slow host must not expire the
    // candidates before admission control sees them), backlog sized so the
    // estimated queue delay is >= 3x that budget, and max_batch above the
    // backlog so the lone worker stays parked in the coalescing wait.
    const double sample_us = server.engine("cnn")->simulated_sample_us();
    const std::int64_t budget_us = std::max<std::int64_t>(
        2000, static_cast<std::int64_t>(sample_us * 16.0));
    const std::size_t backlog_depth = static_cast<std::size_t>(
        3.0 * static_cast<double>(budget_us) / sample_us) + 8;
    config.max_batch = backlog_depth + 64;
    server.deploy("cnn", {cnn}, config);  // hot redeploy, same members
    const auto engine = server.engine("cnn");

    serve::SubmitOptions backlog_options;
    backlog_options.priority = serve::Priority::kBatch;
    backlog_options.deadline_us = 0;
    std::vector<std::future<serve::Response>> futures;
    for (std::size_t i = 0; i < backlog_depth; ++i) {
      const std::size_t img = i % images.shape().n();
      futures.push_back(server.submit(
          "cnn", tensor::slice_outer(images, img, img + 1),
          backlog_options));
    }
    shed_candidates = 32;
    std::vector<std::future<serve::Response>> candidates;
    for (std::size_t i = 0; i < shed_candidates; ++i) {
      serve::SubmitOptions tight;
      tight.priority = serve::Priority::kBatch;
      tight.deadline_us = util::Stopwatch::now_us() + budget_us;
      const std::size_t img = i % images.shape().n();
      candidates.push_back(server.submit(
          "cnn", tensor::slice_outer(images, img, img + 1), tight));
    }
    for (auto& future : candidates) {
      if (future.get().status == serve::StatusCode::kShedded) ++shedded;
    }
    server.shutdown();
    for (auto& future : futures) (void)future.get();
  }
  std::printf("phase 3: admission control shed %zu/%zu tight-budget batch "
              "requests\n", shedded, shed_candidates);

  // ---- Report + acceptance ------------------------------------------------
  const bool priority_wins =
      with_priority.interactive_p99_us < fifo.interactive_p99_us;
  const bool sheds = shedded > 0;

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"ablation_multimodel\",\n"
       << "  \"models\": 2,\n"
       << "  \"interactive_probes\": " << with_priority.probes << ",\n"
       << "  \"batch_requests_priority\": " << with_priority.batch_requests
       << ",\n"
       << "  \"batch_requests_fifo\": " << fifo.batch_requests << ",\n"
       << "  \"bit_identical\": " << (bit_identical ? "true" : "false")
       << ",\n"
       << "  \"interactive_p50_us\": {\"priority\": "
       << with_priority.interactive_p50_us << ", \"fifo\": "
       << fifo.interactive_p50_us << "},\n"
       << "  \"interactive_p99_us\": {\"priority\": "
       << with_priority.interactive_p99_us << ", \"fifo\": "
       << fifo.interactive_p99_us << "},\n"
       << "  \"batch_p99_us\": {\"priority\": " << with_priority.batch_p99_us
       << ", \"fifo\": " << fifo.batch_p99_us << "},\n"
       << "  \"interactive_p99_improvement\": " << improvement << ",\n"
       << "  \"shedded\": " << shedded << ",\n"
       << "  \"shed_candidates\": " << shed_candidates << "\n"
       << "}\n";
  json.flush();
  if (!json) {
    std::fprintf(stderr, "error: could not write %s\n", json_path);
    return 1;
  }
  std::printf("wrote %s\n", json_path);

  if (!bit_identical) {
    std::printf("FAIL: served logits diverged from per-sample run()\n");
    return 1;
  }
  if (!priority_wins) {
    std::printf("FAIL: interactive p99 not improved by priority classes\n");
    return 1;
  }
  if (!sheds) {
    std::printf("FAIL: admission control shed nothing under overload\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
