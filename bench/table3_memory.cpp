// Reproduces paper Table 3: parameter-memory requirements of floating-point
// vs MF-DFP vs ensemble MF-DFP networks.
//
// Two views:
//  1. the paper's actual architectures (cuda-convnet CIFAR-10 and AlexNet),
//     counted analytically — reproducing the paper's absolute megabytes;
//  2. the reduced-scale synthetic-benchmark networks actually trained here.
//
// Paper reference: CIFAR-10 0.3417 / 0.0428 / 0.0855 MB;
//                  ImageNet 237.95 / 29.75 / 59.50 MB.
#include <cstdio>

#include "bench_common.hpp"
#include "quant/memory.hpp"
#include "util/table.hpp"

namespace {

using namespace mfdfp;

struct ParamCount {
  std::size_t weights = 0;
  std::size_t biases = 0;
};

/// Conv/fc parameter counts of the paper's CIFAR-10 network (cuda-convnet).
ParamCount paper_cifar_params() {
  ParamCount p;
  p.weights = 32 * 3 * 25 + 32 * 32 * 25 + 64 * 32 * 25 + 10 * 64 * 4 * 4;
  p.biases = 32 + 32 + 64 + 10;
  return p;
}

/// AlexNet (no grouping, LRN removed) parameter counts.
ParamCount paper_alexnet_params() {
  ParamCount p;
  p.weights = 96ULL * 3 * 121 + 256ULL * 96 * 25 + 384ULL * 256 * 9 +
              384ULL * 384 * 9 + 256ULL * 384 * 9 + 4096ULL * 256 * 36 +
              4096ULL * 4096 + 1000ULL * 4096;
  p.biases = 96 + 256 + 384 + 384 + 256 + 4096 + 4096 + 1000;
  return p;
}

double float_mb(const ParamCount& p) {
  return 4.0 * static_cast<double>(p.weights + p.biases) / (1024.0 * 1024.0);
}

double mfdfp_mb(const ParamCount& p) {
  return (0.5 * static_cast<double>(p.weights) +
          static_cast<double>(p.biases)) /
         (1024.0 * 1024.0);
}

}  // namespace

int main() {
  util::set_log_level(util::LogLevel::kWarn);

  util::TablePrinter paper(
      "Table 3 (paper-scale architectures, analytic count)");
  paper.set_header({"Precision", "CIFAR-10 (MB)", "ImageNet (MB)"});
  const ParamCount cifar = paper_cifar_params();
  const ParamCount alexnet = paper_alexnet_params();
  paper.add_row({"Floating-Point", util::fmt_fixed(float_mb(cifar), 4),
                 util::fmt_fixed(float_mb(alexnet), 2)});
  paper.add_row({"MF-DFP", util::fmt_fixed(mfdfp_mb(cifar), 4),
                 util::fmt_fixed(mfdfp_mb(alexnet), 2)});
  paper.add_row({"Ensemble MF-DFP", util::fmt_fixed(2 * mfdfp_mb(cifar), 4),
                 util::fmt_fixed(2 * mfdfp_mb(alexnet), 2)});
  paper.print();
  std::printf(
      "paper reference:  0.3417 / 0.0428 / 0.0855 and 237.95 / 29.75 / "
      "59.50 MB\n\n");

  // Reduced-scale networks actually used by the synthetic benchmarks.
  util::TablePrinter ours("Table 3 (this repo's benchmark networks)");
  ours.set_header({"Precision", "CIFAR-like (MB)", "ImageNet-like (MB)"});
  util::Rng rng{1};
  nn::Network cifar_net =
      bench::make_net(bench::cifar_benchmark(), rng);
  nn::Network imagenet_net =
      bench::make_net(bench::imagenet_benchmark(), rng);
  const quant::MemoryReport mc = quant::memory_report(cifar_net);
  const quant::MemoryReport mi = quant::memory_report(imagenet_net);
  ours.add_row({"Floating-Point", util::fmt_fixed(mc.float_mb(), 4),
                util::fmt_fixed(mi.float_mb(), 4)});
  ours.add_row({"MF-DFP", util::fmt_fixed(mc.mfdfp_mb(), 4),
                util::fmt_fixed(mi.mfdfp_mb(), 4)});
  ours.add_row({"Ensemble MF-DFP", util::fmt_fixed(2 * mc.mfdfp_mb(), 4),
                util::fmt_fixed(2 * mi.mfdfp_mb(), 4)});
  ours.print();
  std::printf("compression: x%.2f (CIFAR-like), x%.2f (ImageNet-like)\n",
              mc.compression(), mi.compression());
  return 0;
}
