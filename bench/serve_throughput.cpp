// Serving load generator: serial per-request baseline vs the batched
// ModelServer, closed-loop and open-loop (Poisson arrivals).
//
// Three phases over the same synthetic CIFAR-style workload:
//  A. serial baseline — one thread, one AcceleratorExecutor::run per request
//     (the repo's only serving story before src/serve existed);
//  B. closed-loop batched — K client threads submit back-to-back into a
//     ModelServer deployment (dynamic batching + worker pool + run_batch);
//  C. open-loop Poisson — requests arrive at a fixed fraction of the
//     measured batched capacity, the realistic traffic shape.
//
// Emits a JSON fragment (path = argv[1], default ./BENCH_serve.json) with
// throughput and tail latency for the perf trajectory — scripts/run_bench.sh
// wraps it together with the multi-model ablation numbers and the git SHA —
// and exits nonzero if batched serving fails the >= 2x acceptance bar over
// the serial baseline. MFDFP_QUICK=1 shrinks the request counts ~4x.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/server.hpp"
#include "util/latency_histogram.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace mfdfp;
using tensor::Shape;
using tensor::Tensor;

struct Workload {
  hw::QNetDesc qnet;
  Tensor images;  ///< {N, 3, 16, 16}
};

Workload make_workload(std::size_t request_count) {
  util::Rng rng{2024};
  nn::ZooConfig config;
  config.in_channels = 3;
  config.in_h = config.in_w = 16;
  config.num_classes = 5;
  config.width_multiplier = 0.2f;
  nn::Network net = nn::make_cifar10_net(config, rng);
  Tensor calibration{Shape{8, 3, 16, 16}};
  calibration.fill_uniform(rng, -1.0f, 1.0f);
  const quant::QuantSpec spec = quant::quantize_network(net, calibration);

  Workload workload;
  workload.qnet = hw::extract_qnet(net, spec, "serve_bench");
  workload.images = Tensor{Shape{request_count, 3, 16, 16}};
  workload.images.fill_uniform(rng, -1.0f, 1.0f);
  return workload;
}

serve::DeployConfig deploy_config() {
  serve::DeployConfig config;
  config.in_c = 3;
  config.in_h = config.in_w = 16;
  config.max_batch = 8;
  config.max_wait_us = 2000;
  config.workers = 4;
  config.queue_capacity = 4096;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_serve.json";
  const std::size_t requests = bench::quick_mode() ? 64 : 256;
  const Workload workload = make_workload(requests);

  // ---- Phase A: serial per-request baseline -------------------------------
  const hw::AcceleratorExecutor baseline(workload.qnet);
  util::LatencyHistogram serial_latency;
  util::Stopwatch wall;
  for (std::size_t i = 0; i < requests; ++i) {
    util::Stopwatch per_request;
    (void)baseline.run(tensor::slice_outer(workload.images, i, i + 1));
    serial_latency.record(per_request.micros());
  }
  const double serial_seconds = wall.seconds();
  const double serial_rps = static_cast<double>(requests) / serial_seconds;

  // ---- Phase B: closed-loop batched serving -------------------------------
  serve::ModelServer server;
  server.deploy("cnn", {workload.qnet}, deploy_config());
  const auto engine = server.engine("cnn");
  engine->stats().clear();
  constexpr std::size_t kClients = 8;
  wall.reset();
  {
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (std::size_t i = c; i < requests; i += kClients) {
          auto future = server.submit(
              "cnn", tensor::slice_outer(workload.images, i, i + 1));
          if (!serve::ok(future.get().status)) std::abort();
        }
      });
    }
    for (std::thread& thread : clients) thread.join();
  }
  const double closed_seconds = wall.seconds();
  const double batched_rps = static_cast<double>(requests) / closed_seconds;
  const serve::StatsSnapshot closed = engine->stats().snapshot();

  // ---- Phase C: open-loop Poisson arrivals at 60% of capacity -------------
  const double open_rate = 0.6 * batched_rps;
  engine->stats().clear();
  {
    util::Rng arrivals{7};
    std::vector<std::future<serve::Response>> futures;
    futures.reserve(requests);
    for (std::size_t i = 0; i < requests; ++i) {
      const double gap_s = -std::log(1.0 - arrivals.uniform()) / open_rate;
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<std::int64_t>(gap_s * 1e6)));
      futures.push_back(server.submit(
          "cnn", tensor::slice_outer(workload.images, i, i + 1)));
    }
    for (auto& future : futures) (void)future.get();
  }
  const serve::StatsSnapshot open = engine->stats().snapshot();
  server.shutdown();

  // ---- Report -------------------------------------------------------------
  const double speedup = batched_rps / serial_rps;
  util::TablePrinter table("Serving throughput (" + std::to_string(requests) +
                           " requests, batch<=8, 4 workers)");
  table.set_header({"configuration", "req/s", "p50 us", "p99 us"});
  table.add_row({"serial run()", util::fmt_fixed(serial_rps, 1),
                 std::to_string(serial_latency.p50()),
                 std::to_string(serial_latency.p99())});
  table.add_row({"engine closed-loop", util::fmt_fixed(batched_rps, 1),
                 std::to_string(closed.e2e_p50_us),
                 std::to_string(closed.e2e_p99_us)});
  table.add_row({"engine open-loop (Poisson)",
                 util::fmt_fixed(open.throughput_rps, 1),
                 std::to_string(open.e2e_p50_us),
                 std::to_string(open.e2e_p99_us)});
  table.print();
  std::printf("\nmean batch size (closed loop): %.2f\n",
              closed.mean_batch_size);
  std::printf("speedup over serial: %.2fx (acceptance bar: >= 2x)\n",
              speedup);

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"serve_throughput\",\n"
       << "  \"requests\": " << requests << ",\n"
       << "  \"workers\": 4,\n"
       << "  \"max_batch\": 8,\n"
       << "  \"serial_rps\": " << serial_rps << ",\n"
       << "  \"batched_rps\": " << batched_rps << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"closed_loop\": {\"p50_us\": " << closed.e2e_p50_us
       << ", \"p95_us\": " << closed.e2e_p95_us
       << ", \"p99_us\": " << closed.e2e_p99_us
       << ", \"mean_batch\": " << closed.mean_batch_size << "},\n"
       << "  \"open_loop\": {\"rate_rps\": " << open_rate
       << ", \"throughput_rps\": " << open.throughput_rps
       << ", \"p50_us\": " << open.e2e_p50_us
       << ", \"p99_us\": " << open.e2e_p99_us
       << ", \"timed_out\": " << open.timed_out << "}\n"
       << "}\n";
  json.flush();
  if (!json) {
    std::fprintf(stderr, "error: could not write %s\n", json_path);
    return 1;
  }
  std::printf("wrote %s\n", json_path);

  if (speedup < 2.0) {
    std::printf("FAIL: batched serving below the 2x acceptance bar\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
