// Capacity-analyzer ablation: the deploy-time schedulability analyzer
// (src/analysis/capacity.hpp) versus the live system it models, on the
// shared-PU interference workload of ablation_shared_pu.
//
// Three phases:
//  1. soundness — a feasible two-tenant placement (interactive probe model
//     + deadline-less flood neighbour, both declaring TrafficEnvelopes)
//     deploys through the analyzer gate; the bench then drives the exact
//     adversarial workload the analyzer assumed (standing flood + probe
//     bursts) and the measured interactive p99 must stay at or under the
//     analyzer's proven worst-case bound. A measured tail above the static
//     bound means the proof is unsound — hard failure;
//  2. typed rejection — the same placement redeclared with a deadline below
//     the provable bound must be refused at deploy() as
//     DeployError{kInfeasibleSlo}, before a single request is served;
//  3. warn-only honesty — the infeasible envelope redeployed with
//     warn_only drives the same workload, and the measured p99 must
//     actually violate the declared deadline: the analyzer rejected a
//     placement that really does miss its SLO, not a conservative phantom.
//
// Emits a JSON fragment (path = argv[1], default ./BENCH_capacity.json);
// scripts/run_bench.sh folds it into BENCH_serve.json next to the git SHA.
// Exits nonzero when any phase fails its acceptance check. MFDFP_QUICK=1
// shrinks the request counts.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "analysis/capacity.hpp"
#include "bench_common.hpp"
#include "serve/server.hpp"
#include "serve/shared_device.hpp"
#include "util/latency_histogram.hpp"
#include "util/table.hpp"

namespace {

using namespace mfdfp;
using tensor::Shape;
using tensor::Tensor;

hw::QNetDesc make_qnet(std::uint64_t seed) {
  util::Rng rng{seed};
  nn::ZooConfig config;
  config.in_channels = 3;
  config.in_h = config.in_w = 16;
  config.num_classes = 5;
  config.width_multiplier = 0.2f;
  nn::Network net = nn::make_mlp(config, 12, rng);
  Tensor calibration{Shape{8, 3, 16, 16}};
  calibration.fill_uniform(rng, -1.0f, 1.0f);
  const quant::QuantSpec spec = quant::quantize_network(net, calibration);
  return hw::extract_qnet(net, spec, "mlp");
}

// Constants mirror ablation_shared_pu (and bench/envelopes/capacity.envelope)
// so the analyzer's 74700us bound derivation in docs/static-analysis.md is
// the same number this bench enforces.
constexpr double kTargetSampleUs = 400.0;
constexpr double kSwitchUs = 1000.0;
constexpr std::size_t kMaxPassSamples = 32;
constexpr std::size_t kEngineMaxBatch = 4;
constexpr std::size_t kBurst = 16;
constexpr std::size_t kBacklog = 64;
/// Feasible deadline: above the 74700us provable bound.
constexpr double kFeasibleDeadlineUs = 80000.0;
/// Infeasible deadline: far below even the single-tenant bound.
constexpr double kInfeasibleDeadlineUs = 10000.0;

serve::SharedDeviceConfig pu_config() {
  serve::SharedDeviceConfig config;
  config.max_pass_samples = kMaxPassSamples;
  config.cobatch = true;
  config.paced = true;
  config.model_switch_us = kSwitchUs;
  return config;
}

serve::DeployConfig tenant_config(
    const std::shared_ptr<serve::SharedDevice>& pu,
    const hw::AcceleratorConfig& accel) {
  serve::DeployConfig config;
  config.in_c = 3;
  config.in_h = config.in_w = 16;
  config.workers = 4;
  config.max_batch = kEngineMaxBatch;
  config.max_wait_us = 200;
  config.queue_capacity = 8192;
  config.placement = {serve::DeviceSpec::on(pu)};
  config.accel = accel;
  return config;
}

analysis::TrafficEnvelope probe_envelope(double deadline_us,
                                         bool warn_only = false) {
  analysis::TrafficEnvelope envelope;
  envelope.arrival_rps = 40.0;
  envelope.interactive_fraction = 1.0;
  envelope.interactive_burst = kBurst;
  envelope.interactive_deadline_us = deadline_us;
  envelope.warn_only = warn_only;
  return envelope;
}

analysis::TrafficEnvelope flood_envelope(bool warn_only = false) {
  analysis::TrafficEnvelope envelope;
  envelope.arrival_rps = 100.0;
  envelope.interactive_fraction = 0.0;
  envelope.warn_only = warn_only;
  return envelope;
}

/// Standing kBatch flood on "flood" + bursts of interactive probes to
/// "probe", the adversarial workload the analyzer's bound assumes. Returns
/// the probes' p99 e2e latency, microseconds.
std::int64_t drive_interference(serve::ModelServer& server,
                                const Tensor& images) {
  const std::size_t rounds = bench::quick_mode() ? 4 : 8;
  const auto flood_set = server.replica_set("flood");

  const std::size_t pool = images.shape().n();
  std::size_t next_image = 0;
  auto sample = [&] {
    const std::size_t i = next_image++ % pool;
    return tensor::slice_outer(images, i, i + 1);
  };

  serve::SubmitOptions batch_options;
  batch_options.priority = serve::Priority::kBatch;
  batch_options.deadline_us = 0;
  serve::SubmitOptions interactive_options;
  interactive_options.priority = serve::Priority::kInteractive;
  interactive_options.deadline_us = 0;

  std::vector<std::future<serve::Response>> backlog, probes;
  util::LatencyHistogram probe_e2e;
  for (std::size_t round = 0; round < rounds; ++round) {
    while (flood_set->queue_depth() < kBacklog) {
      backlog.push_back(server.submit("flood", sample(), batch_options));
    }
    for (std::size_t i = 0; i < kBurst; ++i) {
      probes.push_back(server.submit("probe", sample(), interactive_options));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (auto& probe : probes) {
    const serve::Response response = probe.get();
    if (!serve::ok(response.status)) std::abort();
    probe_e2e.record(response.e2e_us);
  }
  server.shutdown();
  for (auto& future : backlog) {
    if (!serve::ok(future.get().status)) std::abort();
  }
  return probe_e2e.p99();
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_capacity.json";

  const hw::QNetDesc qnet_a = make_qnet(95);
  const hw::QNetDesc qnet_b = make_qnet(96);
  util::Rng rng{97};
  Tensor images{Shape{32, 3, 16, 16}};
  images.fill_uniform(rng, -1.0f, 1.0f);

  // Scale the modeled clock so one sample costs ~kTargetSampleUs on the PU.
  hw::AcceleratorConfig accel;
  {
    serve::ModelServer probe;
    serve::DeployConfig config;
    config.in_c = 3;
    config.in_h = config.in_w = 16;
    probe.deploy("probe", {qnet_a}, config);
    const double native_us = probe.engine("probe")->simulated_sample_us();
    probe.shutdown();
    accel.clock_hz *= native_us / kTargetSampleUs;
  }

  // ---- Phase 1: analyzer bound is sound against the measured tail ---------
  double analyzer_bound_us = 0.0;
  std::int64_t feasible_p99 = 0;
  {
    auto pu = serve::SharedDevice::create({}, pu_config());
    serve::ModelServer server;
    serve::DeployConfig probe_cfg = tenant_config(pu, accel);
    probe_cfg.envelope = probe_envelope(kFeasibleDeadlineUs);
    server.deploy("probe", {qnet_a}, probe_cfg);
    serve::DeployConfig flood_cfg = tenant_config(pu, accel);
    flood_cfg.envelope = flood_envelope();
    server.deploy("flood", {qnet_b}, flood_cfg);

    const analysis::CapacityReport report = server.capacity_report();
    std::printf("%s%s\n",
                report.table("deploy-time schedulability bounds").c_str(),
                report.summary().c_str());
    for (const analysis::Finding& finding : report.findings) {
      if (finding.proof == analysis::ProofKind::kInteractiveLatency &&
          finding.model == "probe") {
        analyzer_bound_us = finding.worst_case_us;
      }
    }
    feasible_p99 = drive_interference(server, images);
  }
  std::printf("phase 1: measured interactive p99 %lld us vs analyzer bound "
              "%.0f us\n",
              static_cast<long long>(feasible_p99), analyzer_bound_us);

  // ---- Phase 2: infeasible envelope is refused, typed ---------------------
  bool typed_rejection = false;
  {
    auto pu = serve::SharedDevice::create({}, pu_config());
    serve::ModelServer server;
    serve::DeployConfig probe_cfg = tenant_config(pu, accel);
    probe_cfg.envelope = probe_envelope(kInfeasibleDeadlineUs);
    try {
      server.deploy("probe", {qnet_a}, probe_cfg);
    } catch (const serve::DeployError& error) {
      typed_rejection =
          error.code() == serve::StatusCode::kInfeasibleSlo &&
          server.model_count() == 0;
    }
  }
  std::printf("phase 2: infeasible deadline (%.0f us) rejected as "
              "kInfeasibleSlo before serving: %s\n",
              kInfeasibleDeadlineUs, typed_rejection ? "yes" : "NO");

  // ---- Phase 3: warn-only deploys, and really does miss the SLO -----------
  std::int64_t warn_only_p99 = 0;
  {
    auto pu = serve::SharedDevice::create({}, pu_config());
    serve::ModelServer server;
    serve::DeployConfig probe_cfg = tenant_config(pu, accel);
    probe_cfg.envelope = probe_envelope(kInfeasibleDeadlineUs,
                                        /*warn_only=*/true);
    server.deploy("probe", {qnet_a}, probe_cfg);
    serve::DeployConfig flood_cfg = tenant_config(pu, accel);
    flood_cfg.envelope = flood_envelope(/*warn_only=*/true);
    server.deploy("flood", {qnet_b}, flood_cfg);
    warn_only_p99 = drive_interference(server, images);
  }
  std::printf("phase 3: warn-only deployment measured p99 %lld us against "
              "its declared %.0f us deadline\n",
              static_cast<long long>(warn_only_p99), kInfeasibleDeadlineUs);

  // ---- Report + acceptance ------------------------------------------------
  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"ablation_capacity\",\n"
       << "  \"paced_sample_us\": " << kTargetSampleUs << ",\n"
       << "  \"model_switch_us\": " << kSwitchUs << ",\n"
       << "  \"analyzer_bound_us\": " << analyzer_bound_us << ",\n"
       << "  \"feasible_deadline_us\": " << kFeasibleDeadlineUs << ",\n"
       << "  \"feasible_p99_us\": " << feasible_p99 << ",\n"
       << "  \"infeasible_deadline_us\": " << kInfeasibleDeadlineUs << ",\n"
       << "  \"typed_rejection\": " << (typed_rejection ? "true" : "false")
       << ",\n"
       << "  \"warn_only_p99_us\": " << warn_only_p99 << "\n"
       << "}\n";
  json.flush();
  if (!json) {
    std::fprintf(stderr, "error: could not write %s\n", json_path);
    return 1;
  }
  std::printf("wrote %s\n", json_path);

  if (analyzer_bound_us <= 0.0) {
    std::printf("FAIL: analyzer emitted no interactive bound for the "
                "feasible placement\n");
    return 1;
  }
  if (static_cast<double>(feasible_p99) > analyzer_bound_us) {
    std::printf("FAIL: measured p99 %lld us exceeds the analyzer's proven "
                "bound %.0f us — the static proof is unsound\n",
                static_cast<long long>(feasible_p99), analyzer_bound_us);
    return 1;
  }
  if (!typed_rejection) {
    std::printf("FAIL: infeasible envelope was not rejected as "
                "DeployError{kInfeasibleSlo}\n");
    return 1;
  }
  if (static_cast<double>(warn_only_p99) <= kInfeasibleDeadlineUs) {
    std::printf("FAIL: warn-only deployment met the %.0f us deadline "
                "(p99 %lld us) — the analyzer rejected a feasible config\n",
                kInfeasibleDeadlineUs,
                static_cast<long long>(warn_only_p99));
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
