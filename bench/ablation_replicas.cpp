// Replica-sharding ablation: one model behind 1/2/4 paced engine replicas.
//
// Three phases:
//  1. correctness — a 4-replica deployment must return logits bit-identical
//     to per-sample AcceleratorExecutor::run(), whichever replica serves
//     each request;
//  2. throughput scaling — the same closed-loop kBatch workload runs against
//     1, 2, and 4 replicas with `paced_execution` on (each worker holds a
//     batch until the cycle model says the accelerator would finish it, so
//     wall-clock throughput tracks the modeled hardware, not the host core
//     count); completion must speed up >= 1.7x at 2 replicas and >= 3.0x at
//     4 — near-linear, since N replicas are N simulated accelerator
//     instances draining independently;
//  3. overload tail — under a standing kBatch backlog, bursts of
//     kInteractive probes must see a strictly better p99 on 4 replicas than
//     on a single engine: a burst spreads across replicas instead of
//     serializing behind one paced batch pipeline.
//
// Emits a JSON fragment (path = argv[1], default ./BENCH_replicas.json);
// scripts/run_bench.sh folds it into BENCH_serve.json next to the git SHA.
// Exits nonzero when any phase fails its acceptance check. MFDFP_QUICK=1
// shrinks the request counts.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/server.hpp"
#include "util/latency_histogram.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace mfdfp;
using tensor::Shape;
using tensor::Tensor;

hw::QNetDesc make_qnet(std::uint64_t seed) {
  util::Rng rng{seed};
  nn::ZooConfig config;
  config.in_channels = 3;
  config.in_h = config.in_w = 16;
  config.num_classes = 5;
  config.width_multiplier = 0.2f;
  nn::Network net = nn::make_mlp(config, 12, rng);
  Tensor calibration{Shape{8, 3, 16, 16}};
  calibration.fill_uniform(rng, -1.0f, 1.0f);
  const quant::QuantSpec spec = quant::quantize_network(net, calibration);
  return hw::extract_qnet(net, spec, "mlp");
}

/// Per-sample simulated cost the pacing should impose, microseconds. Large
/// enough that pacing sleeps dominate the host-side MLP compute (a few us
/// per sample), so measured scaling reflects the modeled accelerators.
constexpr double kTargetSampleUs = 400.0;

serve::DeployConfig paced_config(std::size_t num_replicas,
                                 const hw::AcceleratorConfig& accel) {
  serve::DeployConfig config;
  config.in_c = 3;
  config.in_h = config.in_w = 16;
  config.workers = 1;  // one drain thread per simulated accelerator
  config.max_batch = 8;
  config.max_wait_us = 200;
  config.queue_capacity = 8192;
  config.num_replicas = num_replicas;
  config.paced_execution = true;
  config.accel = accel;
  return config;
}

/// Closed-loop kBatch workload: preload `requests` samples, wait for all.
/// Returns wall seconds from first submit to last completion.
double run_throughput(const hw::QNetDesc& qnet,
                      const hw::AcceleratorConfig& accel,
                      const Tensor& images, std::size_t num_replicas,
                      std::size_t requests) {
  serve::ModelServer server;
  server.deploy("m", {qnet}, paced_config(num_replicas, accel));

  serve::SubmitOptions options;
  options.priority = serve::Priority::kBatch;
  options.deadline_us = 0;

  util::Stopwatch wall;
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    const std::size_t img = i % images.shape().n();
    futures.push_back(server.submit(
        "m", tensor::slice_outer(images, img, img + 1), options));
  }
  for (auto& future : futures) {
    if (!serve::ok(future.get().status)) std::abort();
  }
  const double seconds = wall.seconds();
  server.shutdown();
  return seconds;
}

/// Standing kBatch backlog + bursts of interactive probes; returns the
/// probes' p99 e2e latency, microseconds.
std::int64_t run_overload_tail(const hw::QNetDesc& qnet,
                               const hw::AcceleratorConfig& accel,
                               const Tensor& images,
                               std::size_t num_replicas) {
  const std::size_t rounds = bench::quick_mode() ? 4 : 8;
  constexpr std::size_t kBurst = 16;
  constexpr std::size_t kBacklog = 96;

  serve::ModelServer server;
  server.deploy("m", {qnet}, paced_config(num_replicas, accel));
  const auto set = server.replica_set("m");

  const std::size_t pool = images.shape().n();
  std::size_t next_image = 0;
  auto sample = [&] {
    const std::size_t i = next_image++ % pool;
    return tensor::slice_outer(images, i, i + 1);
  };

  serve::SubmitOptions batch_options;
  batch_options.priority = serve::Priority::kBatch;
  batch_options.deadline_us = 0;
  serve::SubmitOptions interactive_options;
  interactive_options.priority = serve::Priority::kInteractive;
  interactive_options.deadline_us = 0;

  std::vector<std::future<serve::Response>> backlog, probes;
  util::LatencyHistogram probe_e2e;
  for (std::size_t round = 0; round < rounds; ++round) {
    // Keep every replica saturated with paced batch work at probe time.
    while (set->queue_depth() < kBacklog) {
      backlog.push_back(server.submit("m", sample(), batch_options));
    }
    for (std::size_t i = 0; i < kBurst; ++i) {
      probes.push_back(server.submit("m", sample(), interactive_options));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (auto& probe : probes) {
    const serve::Response response = probe.get();
    if (!serve::ok(response.status)) std::abort();
    probe_e2e.record(response.e2e_us);
  }
  server.shutdown();
  for (auto& future : backlog) {
    if (!serve::ok(future.get().status)) std::abort();
  }
  return probe_e2e.p99();
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_replicas.json";

  const hw::QNetDesc qnet = make_qnet(81);
  util::Rng rng{82};
  Tensor images{Shape{32, 3, 16, 16}};
  images.fill_uniform(rng, -1.0f, 1.0f);

  // Scale the simulated clock so one sample costs ~kTargetSampleUs: pacing
  // then dominates host compute and the measured scaling is the modeled
  // accelerators', not the host scheduler's.
  hw::AcceleratorConfig accel;
  double native_sample_us = 0.0;
  {
    serve::ModelServer probe;
    probe.deploy("probe", {qnet}, paced_config(1, accel));
    native_sample_us = probe.engine("probe")->simulated_sample_us();
    probe.shutdown();
  }
  accel.clock_hz *= native_sample_us / kTargetSampleUs;

  // ---- Phase 1: replicated deployment, bit-identical logits ---------------
  bool bit_identical = true;
  double sample_us = 0.0;
  {
    const hw::AcceleratorExecutor reference(qnet);
    serve::ModelServer server;
    serve::DeployConfig config = paced_config(4, accel);
    config.paced_execution = false;  // correctness only; keep it fast
    server.deploy("m", {qnet}, config);
    sample_us = server.engine("m")->simulated_sample_us();

    const std::size_t checks = bench::quick_mode() ? 16 : 48;
    std::vector<std::future<serve::Response>> futures;
    for (std::size_t i = 0; i < checks; ++i) {
      const std::size_t img = i % images.shape().n();
      futures.push_back(server.submit(
          "m", tensor::slice_outer(images, img, img + 1)));
    }
    for (std::size_t i = 0; i < checks; ++i) {
      const std::size_t img = i % images.shape().n();
      const Tensor sample = tensor::slice_outer(images, img, img + 1);
      const serve::Response response = futures[i].get();
      if (!serve::ok(response.status) ||
          tensor::max_abs_diff(response.logits, reference.run(sample)) !=
              0.0f) {
        bit_identical = false;
      }
    }
    server.shutdown();
  }
  std::printf("phase 1: 4-replica logits bit-identical to run(): %s "
              "(paced sample cost %.0f us)\n",
              bit_identical ? "yes" : "NO", sample_us);

  // ---- Phase 2: throughput scaling at 1/2/4 replicas ----------------------
  const std::size_t requests = bench::quick_mode() ? 120 : 240;
  const std::vector<std::size_t> replica_counts{1, 2, 4};
  std::vector<double> throughput_rps;
  for (const std::size_t replicas : replica_counts) {
    const double seconds =
        run_throughput(qnet, accel, images, replicas, requests);
    throughput_rps.push_back(static_cast<double>(requests) / seconds);
  }
  const double speedup_2x = throughput_rps[1] / throughput_rps[0];
  const double speedup_4x = throughput_rps[2] / throughput_rps[0];

  util::TablePrinter scaling("Replica scaling, paced closed loop (" +
                             std::to_string(requests) + " kBatch requests)");
  scaling.set_header({"replicas", "throughput (req/s)", "speedup"});
  for (std::size_t i = 0; i < replica_counts.size(); ++i) {
    scaling.add_row({std::to_string(replica_counts[i]),
                     util::fmt_fixed(throughput_rps[i], 1),
                     util::fmt_fixed(throughput_rps[i] / throughput_rps[0],
                                     2) + "x"});
  }
  scaling.print();

  // ---- Phase 3: interactive p99 under overload, 1 vs 4 replicas -----------
  const std::int64_t p99_single =
      run_overload_tail(qnet, accel, images, 1);
  const std::int64_t p99_replicated =
      run_overload_tail(qnet, accel, images, 4);
  const double tail_improvement =
      p99_replicated > 0 ? static_cast<double>(p99_single) /
                               static_cast<double>(p99_replicated)
                         : 0.0;
  std::printf("phase 3: interactive p99 under overload: single %lld us, "
              "4 replicas %lld us (%.2fx better)\n",
              static_cast<long long>(p99_single),
              static_cast<long long>(p99_replicated), tail_improvement);

  // ---- Report + acceptance ------------------------------------------------
  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"ablation_replicas\",\n"
       << "  \"paced_sample_us\": " << sample_us << ",\n"
       << "  \"requests\": " << requests << ",\n"
       << "  \"bit_identical\": " << (bit_identical ? "true" : "false")
       << ",\n"
       << "  \"throughput_rps\": {\"r1\": " << throughput_rps[0]
       << ", \"r2\": " << throughput_rps[1] << ", \"r4\": "
       << throughput_rps[2] << "},\n"
       << "  \"speedup_2_replicas\": " << speedup_2x << ",\n"
       << "  \"speedup_4_replicas\": " << speedup_4x << ",\n"
       << "  \"interactive_p99_us\": {\"r1\": " << p99_single << ", \"r4\": "
       << p99_replicated << "},\n"
       << "  \"interactive_p99_improvement\": " << tail_improvement << "\n"
       << "}\n";
  json.flush();
  if (!json) {
    std::fprintf(stderr, "error: could not write %s\n", json_path);
    return 1;
  }
  std::printf("wrote %s\n", json_path);

  if (!bit_identical) {
    std::printf("FAIL: replicated logits diverged from per-sample run()\n");
    return 1;
  }
  if (speedup_2x < 1.7 || speedup_4x < 3.0) {
    std::printf("FAIL: replica scaling below threshold (2x: %.2f, need "
                ">= 1.7; 4x: %.2f, need >= 3.0)\n",
                speedup_2x, speedup_4x);
    return 1;
  }
  if (p99_replicated >= p99_single) {
    std::printf("FAIL: 4 replicas did not improve interactive p99 under "
                "overload\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
