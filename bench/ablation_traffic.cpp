// Ablation E: off-chip (DMA) traffic and required bandwidth, FP32 baseline
// vs MF-DFP, on the paper-scale workloads — the bandwidth-side view of the
// paper's "8x less memory" claim (Section 6.2) and of the three-buffer
// memory subsystem of Fig. 2b. Also sweeps the weight-buffer capacity to
// show when weight re-fetch kicks in.
#include <cstdio>

#include "hw/traffic_model.hpp"
#include "util/table.hpp"

int main() {
  using namespace mfdfp;

  const auto workloads = {
      std::pair{"cuda-convnet CIFAR-10", hw::paper_cifar10_workload()},
      std::pair{"AlexNet ImageNet", hw::paper_imagenet_workload()},
  };

  for (const auto& [name, work] : workloads) {
    const hw::AcceleratorConfig fp = hw::float_baseline_config();
    const hw::AcceleratorConfig mf = hw::mfdfp_config(1);
    const hw::TrafficReport traffic_fp = hw::dma_traffic(work, fp);
    const hw::TrafficReport traffic_mf = hw::dma_traffic(work, mf);
    const double t_fp = hw::count_cycles(work, fp).seconds(fp);
    const double t_mf = hw::count_cycles(work, mf).seconds(mf);

    util::TablePrinter table(std::string("DMA traffic per inference: ") +
                             name);
    table.set_header({"Design", "Total (KB)", "Input (KB)", "Weights (KB)",
                      "Output (KB)", "BW needed (GB/s)"});
    auto add = [&](const char* label, const hw::TrafficReport& r,
                   double seconds) {
      double in = 0, w = 0, out = 0;
      for (const auto& layer : r.layers) {
        in += static_cast<double>(layer.input_bytes);
        w += static_cast<double>(layer.weight_bytes);
        out += static_cast<double>(layer.output_bytes);
      }
      table.add_row({label,
                     util::fmt_fixed(r.total_bytes / 1024.0, 1),
                     util::fmt_fixed(in / 1024.0, 1),
                     util::fmt_fixed(w / 1024.0, 1),
                     util::fmt_fixed(out / 1024.0, 1),
                     util::fmt_fixed(r.required_bandwidth_gbps(seconds),
                                     2)});
    };
    add("Float(32,32)", traffic_fp, t_fp);
    add("MF-DFP(8,4)", traffic_mf, t_mf);
    table.print();
    std::printf("traffic ratio: x%.2f less data moved\n\n",
                static_cast<double>(traffic_fp.total_bytes) /
                    static_cast<double>(traffic_mf.total_bytes));
  }

  // Weight-buffer sweep: when does the working set stop fitting?
  util::TablePrinter sweep(
      "Weight-buffer capacity sweep (AlexNet, MF-DFP, weight KB streamed)");
  sweep.set_header({"Buffer entries", "Weight traffic (KB)", "Refetch max"});
  const auto work = hw::paper_imagenet_workload();
  for (std::size_t entries : {2048, 8192, 16384, 65536, 262144}) {
    hw::AcceleratorConfig config = hw::mfdfp_config(1);
    config.weight_buffer_entries = entries;
    const hw::TrafficReport report = hw::dma_traffic(work, config);
    double weight_kb = 0;
    std::uint64_t max_refetch = 0;
    for (const auto& layer : report.layers) {
      weight_kb += static_cast<double>(layer.weight_bytes) / 1024.0;
      max_refetch = std::max(max_refetch, layer.weight_refetches);
    }
    sweep.add_row({std::to_string(entries), util::fmt_fixed(weight_kb, 1),
                   std::to_string(max_refetch)});
  }
  sweep.print();
  return 0;
}
