// Shared-PU ablation: two models co-located on one physical processing
// unit (serve::SharedDevice), submitting through the ExecutionBackend seam.
//
// Three phases:
//  1. correctness — two different models deployed on one shared PU must
//     return logits bit-identical to their own per-sample
//     AcceleratorExecutor::run(), and the device must actually mix the two
//     models inside passes (cobatched_passes > 0): pass composition changes
//     *when* a batch finishes, never *what* it computes;
//  2. throughput — the same closed-loop two-model kBatch workload runs once
//     with cross-model co-batching and once with time-sliced serialization
//     (SharedDeviceConfig.cobatch = false: one sub-batch per pass, strict
//     round-robin over tenants, a weight reload on every model change).
//     Co-batching groups sub-batches per model inside large passes, paying
//     each model's weight reload once per pass instead of once per
//     sub-batch; aggregate throughput must improve >= 1.3x;
//  3. interference tail — model B floods the PU with deadline-less kBatch
//     work while model A sends bursts of kInteractive probes; the probes'
//     p99 must stay under a bound derived from the device's own pass cost
//     (5 max-cost passes): per-tenant fair pass formation means a probe
//     rides one of the next passes instead of queueing behind the
//     neighbour's whole backlog (~16 passes deep);
//  4. preemptible tail — the same flood-vs-probes duel with
//     preempt_granularity_us set: passes execute as bounded chunks and a
//     probe boards at the next chunk boundary (joining the in-flight pass,
//     since the tenants share geometry) instead of waiting out a whole
//     maximal pass. The probes' p99 must fit inside TWO preemption chunks
//     (2 x (granularity + switch)) — a 12x tighter envelope than phase 3's
//     five maximal passes — with logits still bit-identical and at least
//     one sub-batch provably joining an in-flight pass.
//
// Emits a JSON fragment (path = argv[1], default ./BENCH_shared_pu.json);
// scripts/run_bench.sh folds it into BENCH_serve.json next to the git SHA.
// Exits nonzero when any phase fails its acceptance check. MFDFP_QUICK=1
// shrinks the request counts.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/server.hpp"
#include "serve/shared_device.hpp"
#include "util/latency_histogram.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace mfdfp;
using tensor::Shape;
using tensor::Tensor;

hw::QNetDesc make_qnet(std::uint64_t seed) {
  util::Rng rng{seed};
  nn::ZooConfig config;
  config.in_channels = 3;
  config.in_h = config.in_w = 16;
  config.num_classes = 5;
  config.width_multiplier = 0.2f;
  nn::Network net = nn::make_mlp(config, 12, rng);
  Tensor calibration{Shape{8, 3, 16, 16}};
  calibration.fill_uniform(rng, -1.0f, 1.0f);
  const quant::QuantSpec spec = quant::quantize_network(net, calibration);
  return hw::extract_qnet(net, spec, "mlp");
}

/// Per-sample modeled cost on the shared PU, microseconds. Large enough
/// that pacing sleeps dominate the host-side MLP compute, so measured
/// scaling reflects the modeled device, not the host scheduler.
constexpr double kTargetSampleUs = 400.0;
/// Weight-reload penalty when the PU switches models, microseconds (pinned
/// for determinism; see SharedDeviceConfig.model_switch_us). Comparable to
/// one 4-sample sub-batch's compute, so serializing per sub-batch hurts.
constexpr double kSwitchUs = 1000.0;
constexpr std::size_t kMaxPassSamples = 32;
constexpr std::size_t kEngineMaxBatch = 4;
/// Engine-side batching window — probes wait at most this long for the
/// worker to form their sub-batch before it reaches the device.
constexpr double kEngineMaxWaitUs = 200.0;
/// Probes per interactive burst in phase 4 (matches interactive_burst in
/// bench/envelopes/shared_pu_preempt.envelope).
constexpr std::size_t kProbeBurst = 4;
/// Phase 4's chunk budget: a pass suspends (or admits joiners) at least
/// every ~10 samples of modeled compute. Mirrors
/// bench/envelopes/shared_pu_preempt.envelope, which proves the analyzer
/// bound for exactly this configuration.
constexpr double kPreemptGranularityUs = 4000.0;

serve::SharedDeviceConfig pu_config(bool cobatch, bool paced) {
  serve::SharedDeviceConfig config;
  config.max_pass_samples = kMaxPassSamples;
  config.cobatch = cobatch;
  config.paced = paced;
  config.model_switch_us = kSwitchUs;
  return config;
}

serve::DeployConfig tenant_config(
    const std::shared_ptr<serve::SharedDevice>& pu,
    const hw::AcceleratorConfig& accel) {
  serve::DeployConfig config;
  config.in_c = 3;
  config.in_h = config.in_w = 16;
  // Four workers per tenant keep up to four sub-batches in the device lane,
  // so co-batched passes can fill to max_pass_samples; the device's single
  // dispatch thread serializes and paces actual execution either way.
  config.workers = 4;
  config.max_batch = kEngineMaxBatch;
  config.max_wait_us = static_cast<std::int64_t>(kEngineMaxWaitUs);
  config.queue_capacity = 8192;
  config.placement = {serve::DeviceSpec::on(pu)};
  config.accel = accel;
  return config;
}

/// Closed-loop two-model kBatch workload on one shared PU: preload
/// `requests` samples per model, wait for all. Returns aggregate requests
/// per second over the wall time from first submit to last completion.
double run_throughput(const hw::QNetDesc& qnet_a, const hw::QNetDesc& qnet_b,
                      const hw::AcceleratorConfig& accel,
                      const Tensor& images, std::size_t requests,
                      bool cobatch, serve::SharedDeviceSnapshot* device_out) {
  auto pu = serve::SharedDevice::create({}, pu_config(cobatch, true));
  serve::ModelServer server;
  server.deploy("a", {qnet_a}, tenant_config(pu, accel));
  server.deploy("b", {qnet_b}, tenant_config(pu, accel));

  serve::SubmitOptions options;
  options.priority = serve::Priority::kBatch;
  options.deadline_us = 0;

  util::Stopwatch wall;
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(2 * requests);
  for (std::size_t i = 0; i < requests; ++i) {
    const std::size_t img = i % images.shape().n();
    futures.push_back(server.submit(
        "a", tensor::slice_outer(images, img, img + 1), options));
    futures.push_back(server.submit(
        "b", tensor::slice_outer(images, img, img + 1), options));
  }
  for (auto& future : futures) {
    if (!serve::ok(future.get().status)) std::abort();
  }
  const double seconds = wall.seconds();
  server.shutdown();
  if (device_out != nullptr) *device_out = pu->snapshot();
  return static_cast<double>(2 * requests) / seconds;
}

/// Standing kBatch flood from model B + bursts of interactive probes to
/// model A, both tenants of one co-batching shared PU; returns the probes'
/// p99 e2e latency, microseconds.
std::int64_t run_interference_tail(const hw::QNetDesc& qnet_a,
                                   const hw::QNetDesc& qnet_b,
                                   const hw::AcceleratorConfig& accel,
                                   const Tensor& images) {
  const std::size_t rounds = bench::quick_mode() ? 4 : 8;
  constexpr std::size_t kBurst = 16;
  constexpr std::size_t kBacklog = 64;

  auto pu = serve::SharedDevice::create(
      {}, pu_config(/*cobatch=*/true, /*paced=*/true));
  serve::ModelServer server;
  server.deploy("a", {qnet_a}, tenant_config(pu, accel));
  server.deploy("b", {qnet_b}, tenant_config(pu, accel));
  const auto flood_set = server.replica_set("b");

  const std::size_t pool = images.shape().n();
  std::size_t next_image = 0;
  auto sample = [&] {
    const std::size_t i = next_image++ % pool;
    return tensor::slice_outer(images, i, i + 1);
  };

  serve::SubmitOptions batch_options;
  batch_options.priority = serve::Priority::kBatch;
  batch_options.deadline_us = 0;
  serve::SubmitOptions interactive_options;
  interactive_options.priority = serve::Priority::kInteractive;
  interactive_options.deadline_us = 0;

  std::vector<std::future<serve::Response>> backlog, probes;
  util::LatencyHistogram probe_e2e;
  for (std::size_t round = 0; round < rounds; ++round) {
    // Keep the neighbour's flood standing at probe time.
    while (flood_set->queue_depth() < kBacklog) {
      backlog.push_back(server.submit("b", sample(), batch_options));
    }
    for (std::size_t i = 0; i < kBurst; ++i) {
      probes.push_back(server.submit("a", sample(), interactive_options));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (auto& probe : probes) {
    const serve::Response response = probe.get();
    if (!serve::ok(response.status)) std::abort();
    probe_e2e.record(response.e2e_us);
  }
  server.shutdown();
  for (auto& future : backlog) {
    if (!serve::ok(future.get().status)) std::abort();
  }
  return probe_e2e.p99();
}

struct PreemptTailResult {
  std::int64_t p99_us = 0;
  bool bit_identical = true;
  serve::SharedDeviceSnapshot device;
};

/// Phase 3's flood-vs-probes duel on a preemptible PU
/// (preempt_granularity_us = kPreemptGranularityUs): probes board the
/// flood's in-flight passes at chunk boundaries, so their latency is
/// bounded by chunks, not whole maximal passes. Every probe's logits are
/// checked bit-identical against the tenant's own per-sample executor —
/// chunking and mid-pass joins must not change a single bit.
PreemptTailResult run_preemptible_tail(const hw::QNetDesc& qnet_a,
                                       const hw::QNetDesc& qnet_b,
                                       const hw::AcceleratorConfig& accel,
                                       const Tensor& images) {
  const std::size_t rounds = bench::quick_mode() ? 4 : 8;
  constexpr std::size_t kBurst = kProbeBurst;
  constexpr std::size_t kBacklog = 64;

  serve::SharedDeviceConfig config = pu_config(/*cobatch=*/true,
                                               /*paced=*/true);
  config.preempt_granularity_us = kPreemptGranularityUs;
  if (std::getenv("MFDFP_DEBUG_PREEMPT") != nullptr) {
    config.chunk_hook = [](const serve::SharedDeviceChunkEvent& event) {
      std::fprintf(stderr,
                   "chunk t=%lld pass=%llu model=%s samples=%zu "
                   "remaining=%zu interactive=%d preempting=%d\n",
                   (long long)util::Stopwatch::now_us(),
                   (unsigned long long)event.pass, event.model.c_str(),
                   event.chunk_samples, event.remaining_samples,
                   (int)event.interactive_pass, (int)event.preempting);
    };
  }
  auto pu = serve::SharedDevice::create({}, config);
  serve::ModelServer server;
  server.deploy("a", {qnet_a}, tenant_config(pu, accel));
  server.deploy("b", {qnet_b}, tenant_config(pu, accel));
  const auto flood_set = server.replica_set("b");
  const hw::AcceleratorExecutor ref_a(qnet_a);

  const std::size_t pool = images.shape().n();
  std::size_t next_image = 0;
  auto sample_index = [&] { return next_image++ % pool; };

  serve::SubmitOptions batch_options;
  batch_options.priority = serve::Priority::kBatch;
  batch_options.deadline_us = 0;
  serve::SubmitOptions interactive_options;
  interactive_options.priority = serve::Priority::kInteractive;
  interactive_options.deadline_us = 0;

  std::vector<std::future<serve::Response>> backlog;
  std::vector<std::pair<std::size_t, std::future<serve::Response>>> probes;
  PreemptTailResult result;
  util::LatencyHistogram probe_e2e;
  for (std::size_t round = 0; round < rounds; ++round) {
    while (flood_set->queue_depth() < kBacklog) {
      const std::size_t i = sample_index();
      backlog.push_back(server.submit(
          "b", tensor::slice_outer(images, i, i + 1), batch_options));
    }
    for (std::size_t p = 0; p < kBurst; ++p) {
      const std::size_t i = sample_index();
      probes.emplace_back(i,
                          server.submit("a",
                                        tensor::slice_outer(images, i, i + 1),
                                        interactive_options));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (auto& [img, probe] : probes) {
    const serve::Response response = probe.get();
    if (!serve::ok(response.status)) std::abort();
    if (std::getenv("MFDFP_DEBUG_PREEMPT") != nullptr) {
      std::fprintf(stderr,
                   "probe e2e=%lld queue_wait=%lld service=%lld batch=%zu\n",
                   (long long)response.e2e_us,
                   (long long)response.queue_wait_us,
                   (long long)response.service_us, response.batch_size);
    }
    probe_e2e.record(response.e2e_us);
    const Tensor sample = tensor::slice_outer(images, img, img + 1);
    if (tensor::max_abs_diff(response.logits, ref_a.run(sample)) != 0.0f) {
      result.bit_identical = false;
    }
  }
  server.shutdown();
  for (auto& future : backlog) {
    if (!serve::ok(future.get().status)) std::abort();
  }
  result.p99_us = probe_e2e.p99();
  result.device = pu->snapshot();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_shared_pu.json";

  const hw::QNetDesc qnet_a = make_qnet(95);
  const hw::QNetDesc qnet_b = make_qnet(96);
  util::Rng rng{97};
  Tensor images{Shape{32, 3, 16, 16}};
  images.fill_uniform(rng, -1.0f, 1.0f);

  // Scale the modeled clock so one sample costs ~kTargetSampleUs on the PU.
  hw::AcceleratorConfig accel;
  {
    serve::ModelServer probe;
    serve::DeployConfig config;
    config.in_c = 3;
    config.in_h = config.in_w = 16;
    probe.deploy("probe", {qnet_a}, config);
    const double native_us = probe.engine("probe")->simulated_sample_us();
    probe.shutdown();
    accel.clock_hz *= native_us / kTargetSampleUs;
  }

  // ---- Phase 1: co-batched execution, bit-identical logits ----------------
  // Runs twice: once monolithic and once with the pass chunked every
  // ~2 samples (900us budget at 400us/sample), so chunk boundaries
  // provably split sub-batches mid-tensor without changing a bit.
  struct CorrectnessResult {
    bool bit_identical = true;
    std::uint64_t cobatched = 0;
    std::uint64_t chunks = 0;
    std::uint64_t passes = 0;
  };
  const auto run_correctness = [&](double granularity_us) {
    CorrectnessResult result;
    const hw::AcceleratorExecutor ref_a(qnet_a);
    const hw::AcceleratorExecutor ref_b(qnet_b);
    // Paced: while one pass sleeps out its ~400us/sample modeled cost,
    // both models' engines keep feeding the lanes, so later passes
    // provably mix the two models (enforced below).
    serve::SharedDeviceConfig config = pu_config(/*cobatch=*/true,
                                                 /*paced=*/true);
    config.preempt_granularity_us = granularity_us;
    auto pu = serve::SharedDevice::create({}, config);
    serve::ModelServer server;
    server.deploy("a", {qnet_a}, tenant_config(pu, accel));
    server.deploy("b", {qnet_b}, tenant_config(pu, accel));

    const std::size_t checks = bench::quick_mode() ? 24 : 48;
    std::vector<std::future<serve::Response>> futures_a, futures_b;
    for (std::size_t i = 0; i < checks; ++i) {
      const std::size_t img = i % images.shape().n();
      const Tensor sample = tensor::slice_outer(images, img, img + 1);
      futures_a.push_back(server.submit("a", sample));
      futures_b.push_back(server.submit("b", sample));
    }
    for (std::size_t i = 0; i < checks; ++i) {
      const std::size_t img = i % images.shape().n();
      const Tensor sample = tensor::slice_outer(images, img, img + 1);
      const serve::Response ra = futures_a[i].get();
      const serve::Response rb = futures_b[i].get();
      if (!serve::ok(ra.status) || !serve::ok(rb.status) ||
          ra.device != pu->spec().name || rb.device != pu->spec().name ||
          tensor::max_abs_diff(ra.logits, ref_a.run(sample)) != 0.0f ||
          tensor::max_abs_diff(rb.logits, ref_b.run(sample)) != 0.0f) {
        result.bit_identical = false;
      }
    }
    server.shutdown();
    const serve::SharedDeviceSnapshot snapshot = pu->snapshot();
    result.cobatched = snapshot.cobatched_passes;
    result.chunks = snapshot.chunks;
    result.passes = snapshot.passes;
    if (result.cobatched == 0) result.bit_identical = false;
    return result;
  };
  const CorrectnessResult mono = run_correctness(0.0);
  const CorrectnessResult chunked = run_correctness(900.0);
  const bool bit_identical = mono.bit_identical && chunked.bit_identical &&
                             chunked.chunks > chunked.passes;
  const std::uint64_t correctness_cobatched = mono.cobatched;
  std::printf("phase 1: co-batched logits bit-identical to run(): %s "
              "(%llu cross-model passes); chunked rerun: %s "
              "(%llu chunks over %llu passes)\n",
              mono.bit_identical ? "yes" : "NO",
              static_cast<unsigned long long>(mono.cobatched),
              chunked.bit_identical && chunked.chunks > chunked.passes
                  ? "yes"
                  : "NO",
              static_cast<unsigned long long>(chunked.chunks),
              static_cast<unsigned long long>(chunked.passes));

  // ---- Phase 2: co-batching vs time-sliced serialization ------------------
  const std::size_t requests = bench::quick_mode() ? 96 : 192;
  serve::SharedDeviceSnapshot device_sliced, device_cobatch;
  const double rps_sliced =
      run_throughput(qnet_a, qnet_b, accel, images, requests,
                     /*cobatch=*/false, &device_sliced);
  const double rps_cobatch =
      run_throughput(qnet_a, qnet_b, accel, images, requests,
                     /*cobatch=*/true, &device_cobatch);
  const double speedup = rps_sliced > 0.0 ? rps_cobatch / rps_sliced : 0.0;

  util::TablePrinter scaling(
      "Two models on one shared PU, paced closed loop (" +
      std::to_string(requests) + " kBatch requests per model)");
  scaling.set_header({"scheduling", "throughput (req/s)", "passes",
                      "model switches", "switch busy (us)", "speedup"});
  scaling.add_row({"time-sliced serialization",
                   util::fmt_fixed(rps_sliced, 1),
                   std::to_string(device_sliced.passes),
                   std::to_string(device_sliced.model_switches),
                   util::fmt_fixed(device_sliced.switch_us, 1), "1.00x"});
  scaling.add_row({"cross-model co-batching",
                   util::fmt_fixed(rps_cobatch, 1),
                   std::to_string(device_cobatch.passes),
                   std::to_string(device_cobatch.model_switches),
                   util::fmt_fixed(device_cobatch.switch_us, 1),
                   util::fmt_fixed(speedup, 2) + "x"});
  scaling.print();

  // ---- Phase 3: interactive p99 under cross-model interference ------------
  const std::int64_t probe_p99 =
      run_interference_tail(qnet_a, qnet_b, accel, images);
  // A probe rides one of the next passes: worst case it waits out the pass
  // in flight, the burst's own 16 samples span up to two more shared
  // passes, plus engine batching and coalescing slack. Five max-cost
  // passes bound that with headroom for CI jitter while still failing
  // hard if fairness regresses to draining the neighbour's backlog first
  // (the standing flood alone is ~16 passes deep).
  const double max_pass_us =
      2.0 * kSwitchUs + static_cast<double>(kMaxPassSamples) * kTargetSampleUs;
  const std::int64_t p99_bound_us =
      static_cast<std::int64_t>(5.0 * max_pass_us);
  std::printf("phase 3: interactive p99 under a neighbour model's flood: "
              "%lld us (bound %lld us)\n",
              static_cast<long long>(probe_p99),
              static_cast<long long>(p99_bound_us));

  // ---- Phase 4: preemptible PU — the tail shrinks to chunks ---------------
  const PreemptTailResult preempt =
      run_preemptible_tail(qnet_a, qnet_b, accel, images);
  // A probe boards at the next chunk boundary: worst case it waits out
  // the chunk in flight plus one partial chunk draining the sub-batch on
  // the cursor — two preempt-granularity chunks of blocking, each at most
  // granularity + a weight reload — then the engine batching window and
  // the burst's own reload + execution. This is exactly the analyzer's
  // proved bound in bench/envelopes/shared_pu_preempt.envelope
  // (2*5000 + 200 + 1600 + 1000 = 12800 us), so the gate below
  // empirically validates the static proof — ~6x tighter than phase 3's
  // five-maximal-pass bound.
  const std::int64_t preempt_p99_bound_us = static_cast<std::int64_t>(
      2.0 * (kPreemptGranularityUs + kSwitchUs) + kEngineMaxWaitUs +
      static_cast<double>(kProbeBurst) * kTargetSampleUs + kSwitchUs);
  std::printf("phase 4: preemptible-PU interactive p99 under the same "
              "flood: %lld us (bound %lld us, %llu chunks over %llu "
              "passes, %llu joined sub-batches)\n",
              static_cast<long long>(preempt.p99_us),
              static_cast<long long>(preempt_p99_bound_us),
              static_cast<unsigned long long>(preempt.device.chunks),
              static_cast<unsigned long long>(preempt.device.passes),
              static_cast<unsigned long long>(preempt.device.joined_jobs));

  // ---- Report + acceptance ------------------------------------------------
  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"ablation_shared_pu\",\n"
       << "  \"paced_sample_us\": " << kTargetSampleUs << ",\n"
       << "  \"model_switch_us\": " << kSwitchUs << ",\n"
       << "  \"requests_per_model\": " << requests << ",\n"
       << "  \"bit_identical\": " << (bit_identical ? "true" : "false")
       << ",\n"
       << "  \"correctness_cobatched_passes\": " << correctness_cobatched
       << ",\n"
       << "  \"rps_time_sliced\": " << rps_sliced << ",\n"
       << "  \"rps_cobatch\": " << rps_cobatch << ",\n"
       << "  \"cobatch_speedup\": " << speedup << ",\n"
       << "  \"switches_time_sliced\": " << device_sliced.model_switches
       << ",\n"
       << "  \"switches_cobatch\": " << device_cobatch.model_switches
       << ",\n"
       << "  \"interactive_p99_us\": " << probe_p99 << ",\n"
       << "  \"interactive_p99_bound_us\": " << p99_bound_us << ",\n"
       << "  \"preempt_granularity_us\": " << kPreemptGranularityUs << ",\n"
       << "  \"preempt_p99_us\": " << preempt.p99_us << ",\n"
       << "  \"preempt_p99_bound_us\": " << preempt_p99_bound_us << ",\n"
       << "  \"preempt_bit_identical\": "
       << (preempt.bit_identical ? "true" : "false") << ",\n"
       << "  \"preempt_chunks\": " << preempt.device.chunks << ",\n"
       << "  \"preempt_passes\": " << preempt.device.passes << ",\n"
       << "  \"preempt_joined_jobs\": " << preempt.device.joined_jobs << ",\n"
       << "  \"preempt_preemptions\": " << preempt.device.preemptions << "\n"
       << "}\n";
  json.flush();
  if (!json) {
    std::fprintf(stderr, "error: could not write %s\n", json_path);
    return 1;
  }
  std::printf("wrote %s\n", json_path);

  if (!bit_identical) {
    std::printf("FAIL: co-batched logits diverged from per-sample run() "
                "(or no pass ever mixed the models)\n");
    return 1;
  }
  if (speedup < 1.3) {
    std::printf("FAIL: co-batching reached %.2fx aggregate throughput over "
                "time-sliced serialization, need >= 1.30x\n",
                speedup);
    return 1;
  }
  if (probe_p99 > p99_bound_us) {
    std::printf("FAIL: interactive p99 %lld us exceeds the %lld us bound "
                "under cross-model interference\n",
                static_cast<long long>(probe_p99),
                static_cast<long long>(p99_bound_us));
    return 1;
  }
  if (!preempt.bit_identical) {
    std::printf("FAIL: preemptible-PU probe logits diverged from "
                "per-sample run()\n");
    return 1;
  }
  if (preempt.p99_us > preempt_p99_bound_us) {
    std::printf("FAIL: preemptible-PU interactive p99 %lld us exceeds the "
                "analyzer's two-chunk-blocking bound %lld us\n",
                static_cast<long long>(preempt.p99_us),
                static_cast<long long>(preempt_p99_bound_us));
    return 1;
  }
  if (preempt.device.chunks <= preempt.device.passes) {
    std::printf("FAIL: preemptible PU never split a pass into chunks "
                "(%llu chunks / %llu passes)\n",
                static_cast<unsigned long long>(preempt.device.chunks),
                static_cast<unsigned long long>(preempt.device.passes));
    return 1;
  }
  if (preempt.device.joined_jobs == 0) {
    std::printf("FAIL: no sub-batch ever joined an in-flight pass under "
                "the preemptible flood\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
