// Reproduces paper Figure 3: validation top-1 error rate over fine-tuning
// epochs for (a) the quantized network trained with data labels only,
// (b) the quantized network with student-teacher learning in Phase 2, and
// (c) the floating-point reference line — on the ImageNet-like benchmark.
//
// Expected shape (as in the paper): both curves drop quickly in Phase 1;
// after the Phase-2 branch point the student-teacher curve tracks at or
// below the labels-only curve, both ending within ~1 point of the float
// line. The curve is written to fig3_curve.csv for plotting.
#include <cstdio>

#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace mfdfp;

void print_ascii_curve(const char* name, const std::vector<float>& curve,
                       float lo, float hi) {
  std::printf("%-16s", name);
  for (float e : curve) {
    const int level =
        static_cast<int>(8.99f * (e - lo) / std::max(hi - lo, 1e-6f));
    const char* blocks[] = {"_", "1", "2", "3", "4", "5", "6", "7", "8"};
    std::printf("%s", blocks[std::clamp(level, 0, 8)]);
  }
  std::printf("   (start %.3f end %.3f)\n", curve.front(), curve.back());
}

}  // namespace

int main() {
  util::set_log_level(util::LogLevel::kWarn);
  bench::BenchmarkSpec spec = bench::imagenet_benchmark();
  // Figure 3 needs long-enough curves to show the Phase-1 -> Phase-2
  // handoff clearly.
  if (!bench::quick_mode()) {
    spec.phase1_epochs = 8;
    spec.phase2_epochs = 8;
  }
  const data::DatasetPair ds = data::make_synthetic(spec.data);
  const nn::Network float_net = bench::train_float(spec, ds, 1);

  // (a) labels only: Phase 1 continued for the full budget.
  core::MfDfpConverter labels_converter(bench::converter_config(spec, 21));
  const core::ConversionResult labels_only =
      labels_converter.convert_labels_only(float_net, ds.train, ds.test);

  // (b) student-teacher: Phase 1 then Phase 2 (paper: branch from a
  // near-convergence, non-optimal point; tau=20, beta=0.2).
  core::MfDfpConverter st_converter(bench::converter_config(spec, 21));
  const core::ConversionResult student_teacher =
      st_converter.convert(float_net, ds.train, ds.test);

  // Assemble aligned curves.
  std::vector<float> curve_labels = labels_only.curves.phase1_error;
  std::vector<float> curve_st = student_teacher.curves.phase1_error;
  curve_st.insert(curve_st.end(),
                  student_teacher.curves.phase2_error.begin(),
                  student_teacher.curves.phase2_error.end());
  const float float_error = student_teacher.curves.float_error;
  const std::size_t phase2_start =
      student_teacher.curves.phase1_error.size();

  util::CsvWriter csv({"epoch", "labels_only_error", "student_teacher_error",
                       "float_error", "phase"});
  const std::size_t epochs = std::min(curve_labels.size(), curve_st.size());
  float lo = float_error, hi = float_error;
  for (std::size_t e = 0; e < epochs; ++e) {
    lo = std::min({lo, curve_labels[e], curve_st[e]});
    hi = std::max({hi, curve_labels[e], curve_st[e]});
    csv.add_row({std::to_string(e), util::fmt_fixed(curve_labels[e], 5),
                 util::fmt_fixed(curve_st[e], 5),
                 util::fmt_fixed(float_error, 5),
                 e < phase2_start ? "1" : "2"});
  }

  std::printf("Figure 3: validation top-1 error vs fine-tuning epoch "
              "(%s)\n\n", spec.name.c_str());
  print_ascii_curve("labels-only", curve_labels, lo, hi);
  print_ascii_curve("student-teacher", curve_st, lo, hi);
  std::printf("%-16s%s\n", "phase boundary",
              (std::string(phase2_start, ' ') + "^phase2").c_str());
  std::printf("\nfloat reference error: %.4f\n", float_error);
  std::printf("labels-only final:     %.4f\n", curve_labels.back());
  std::printf("student-teacher final: %.4f\n", curve_st.back());

  util::TablePrinter summary("\nFigure 3 summary");
  summary.set_header({"curve", "final error", "gap to float (pts)"});
  summary.add_row({"floating-point", util::fmt_fixed(float_error, 4), "0"});
  summary.add_row({"labels only", util::fmt_fixed(curve_labels.back(), 4),
                   util::fmt_fixed(100.0 * (curve_labels.back() -
                                            float_error), 2)});
  summary.add_row({"student-teacher", util::fmt_fixed(curve_st.back(), 4),
                   util::fmt_fixed(100.0 * (curve_st.back() - float_error),
                                   2)});
  summary.print();

  if (csv.write_file("fig3_curve.csv")) {
    std::printf("\nwrote fig3_curve.csv\n");
  }
  return 0;
}
