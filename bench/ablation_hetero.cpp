// Heterogeneous-placement ablation: one model behind differently-
// provisioned accelerator devices (DeviceSpec.speed_factor) on one name.
//
// Three phases:
//  1. correctness — {1x, 2x} and {1x, 1x, 4x} placements must return logits
//     bit-identical to per-sample AcceleratorExecutor::run(), whichever
//     device serves each request (provisioning changes *when* a batch
//     finishes, never *what* it computes);
//  2. throughput scaling — the same closed-loop kBatch workload runs against
//     a single 1x replica and the two heterogeneous mixes with
//     `paced_execution` on (each worker holds a batch until that *device's*
//     cycle model says it would finish, so wall-clock throughput tracks the
//     modeled provisioning); aggregate throughput must reach >= 0.85x the
//     sum of device speeds ({1x, 2x}: >= 2.55x one 1x replica, which also
//     covers the >= 2.5x acceptance bar; {1x, 1x, 4x}: >= 5.1x) — routing
//     that ignored provisioning would leave the 4x device starved and fail
//     this;
//  3. routing ablation — under a standing kBatch backlog on a {1x, 4x}
//     placement, bursts of kInteractive probes must see a strictly better
//     p99 with the default normalized-work routing (RoutingPolicy::
//     kNormalizedWork) than with speed-blind least-outstanding-count
//     routing: counting requests queues as many probes behind the 1x device
//     as behind the 4x one, and the 1x device paces 4x slower.
//
// Emits a JSON fragment (path = argv[1], default ./BENCH_hetero.json);
// scripts/run_bench.sh folds it into BENCH_serve.json next to the git SHA.
// Exits nonzero when any phase fails its acceptance check. MFDFP_QUICK=1
// shrinks the request counts.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/server.hpp"
#include "util/latency_histogram.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace mfdfp;
using tensor::Shape;
using tensor::Tensor;

hw::QNetDesc make_qnet(std::uint64_t seed) {
  util::Rng rng{seed};
  nn::ZooConfig config;
  config.in_channels = 3;
  config.in_h = config.in_w = 16;
  config.num_classes = 5;
  config.width_multiplier = 0.2f;
  nn::Network net = nn::make_mlp(config, 12, rng);
  Tensor calibration{Shape{8, 3, 16, 16}};
  calibration.fill_uniform(rng, -1.0f, 1.0f);
  const quant::QuantSpec spec = quant::quantize_network(net, calibration);
  return hw::extract_qnet(net, spec, "mlp");
}

/// Per-sample modeled cost on a 1x device, microseconds. Large enough that
/// pacing sleeps dominate the host-side MLP compute (a few us per sample),
/// so measured scaling reflects the modeled devices.
constexpr double kTargetSampleUs = 400.0;

std::vector<serve::DeviceSpec> make_placement(
    const std::vector<double>& speeds) {
  std::vector<serve::DeviceSpec> placement;
  placement.reserve(speeds.size());
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    serve::DeviceSpec device;
    device.name = "npu" + std::to_string(i) + "-" +
                  util::fmt_fixed(speeds[i], 0) + "x";
    device.speed_factor = speeds[i];
    placement.push_back(std::move(device));
  }
  return placement;
}

std::string placement_label(const std::vector<double>& speeds) {
  std::string label = "{";
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    if (i != 0) label += ",";
    label += util::fmt_fixed(speeds[i], 0) + "x";
  }
  return label + "}";
}

/// With `scale_batch_with_speed`, each device's max_batch grows with its
/// speed_factor (a DeviceSpec per-device override), keeping the pacing
/// quantum — batch samples x per-sample device time — constant across the
/// mix: a 4x device would otherwise close 4x as many batches per second and
/// pay the host-side per-batch overhead (formation, wakeup jitter) 4x as
/// often, understating the modeled hardware's aggregate throughput.
serve::DeployConfig paced_config(const std::vector<double>& speeds,
                                 const hw::AcceleratorConfig& accel,
                                 bool scale_batch_with_speed = false) {
  serve::DeployConfig config;
  config.in_c = 3;
  config.in_h = config.in_w = 16;
  config.workers = 1;  // one drain thread per modeled accelerator
  config.max_batch = 8;
  config.max_wait_us = 200;
  config.queue_capacity = 8192;
  config.placement = make_placement(speeds);
  if (scale_batch_with_speed) {
    for (std::size_t i = 0; i < speeds.size(); ++i) {
      config.placement[i].max_batch = static_cast<std::size_t>(
          static_cast<double>(config.max_batch) * speeds[i] + 0.5);
    }
  }
  config.paced_execution = true;
  config.accel = accel;
  return config;
}

/// Closed-loop kBatch workload: preload `requests` samples, wait for all.
/// Returns wall seconds from first submit to last completion.
double run_throughput(const hw::QNetDesc& qnet,
                      const hw::AcceleratorConfig& accel,
                      const Tensor& images, const std::vector<double>& speeds,
                      std::size_t requests) {
  serve::ModelServer server;
  server.deploy("m", {qnet},
                paced_config(speeds, accel, /*scale_batch_with_speed=*/true));

  serve::SubmitOptions options;
  options.priority = serve::Priority::kBatch;
  options.deadline_us = 0;

  util::Stopwatch wall;
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    const std::size_t img = i % images.shape().n();
    futures.push_back(server.submit(
        "m", tensor::slice_outer(images, img, img + 1), options));
  }
  for (auto& future : futures) {
    if (!serve::ok(future.get().status)) std::abort();
  }
  const double seconds = wall.seconds();
  server.shutdown();
  return seconds;
}

/// Standing kBatch backlog on a {1x, 4x} placement + bursts of interactive
/// probes; returns the probes' p99 e2e latency, microseconds.
std::int64_t run_overload_tail(const hw::QNetDesc& qnet,
                               const hw::AcceleratorConfig& accel,
                               const Tensor& images,
                               serve::RoutingPolicy routing) {
  const std::size_t rounds = bench::quick_mode() ? 4 : 8;
  constexpr std::size_t kBurst = 24;
  constexpr std::size_t kBacklog = 96;

  serve::ModelServer server;
  serve::DeployConfig config = paced_config({1.0, 4.0}, accel);
  config.routing = routing;
  server.deploy("m", {qnet}, config);
  const auto set = server.replica_set("m");

  const std::size_t pool = images.shape().n();
  std::size_t next_image = 0;
  auto sample = [&] {
    const std::size_t i = next_image++ % pool;
    return tensor::slice_outer(images, i, i + 1);
  };

  serve::SubmitOptions batch_options;
  batch_options.priority = serve::Priority::kBatch;
  batch_options.deadline_us = 0;
  serve::SubmitOptions interactive_options;
  interactive_options.priority = serve::Priority::kInteractive;
  interactive_options.deadline_us = 0;

  std::vector<std::future<serve::Response>> backlog, probes;
  util::LatencyHistogram probe_e2e;
  for (std::size_t round = 0; round < rounds; ++round) {
    // Keep both devices saturated with paced batch work at probe time.
    while (set->queue_depth() < kBacklog) {
      backlog.push_back(server.submit("m", sample(), batch_options));
    }
    for (std::size_t i = 0; i < kBurst; ++i) {
      probes.push_back(server.submit("m", sample(), interactive_options));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (auto& probe : probes) {
    const serve::Response response = probe.get();
    if (!serve::ok(response.status)) std::abort();
    probe_e2e.record(response.e2e_us);
  }
  server.shutdown();
  for (auto& future : backlog) {
    if (!serve::ok(future.get().status)) std::abort();
  }
  return probe_e2e.p99();
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_hetero.json";

  const hw::QNetDesc qnet = make_qnet(91);
  util::Rng rng{92};
  Tensor images{Shape{32, 3, 16, 16}};
  images.fill_uniform(rng, -1.0f, 1.0f);

  // Scale the modeled clock so one sample costs ~kTargetSampleUs on a 1x
  // device: pacing then dominates host compute and the measured scaling is
  // the modeled devices', not the host scheduler's.
  hw::AcceleratorConfig accel;
  {
    serve::ModelServer probe;
    probe.deploy("probe", {qnet}, paced_config({1.0}, accel));
    const double native_us = probe.engine("probe")->simulated_sample_us();
    probe.shutdown();
    accel.clock_hz *= native_us / kTargetSampleUs;
  }

  const std::vector<std::vector<double>> mixes{{1.0, 2.0}, {1.0, 1.0, 4.0}};

  // ---- Phase 1: heterogeneous placements, bit-identical logits ------------
  bool bit_identical = true;
  {
    const hw::AcceleratorExecutor reference(qnet);
    for (const std::vector<double>& speeds : mixes) {
      serve::ModelServer server;
      serve::DeployConfig config = paced_config(speeds, accel);
      config.paced_execution = false;  // correctness only; keep it fast
      server.deploy("m", {qnet}, config);

      const std::size_t checks = bench::quick_mode() ? 16 : 48;
      std::vector<std::future<serve::Response>> futures;
      for (std::size_t i = 0; i < checks; ++i) {
        const std::size_t img = i % images.shape().n();
        futures.push_back(server.submit(
            "m", tensor::slice_outer(images, img, img + 1)));
      }
      for (std::size_t i = 0; i < checks; ++i) {
        const std::size_t img = i % images.shape().n();
        const Tensor sample = tensor::slice_outer(images, img, img + 1);
        const serve::Response response = futures[i].get();
        if (!serve::ok(response.status) || response.device.empty() ||
            tensor::max_abs_diff(response.logits, reference.run(sample)) !=
                0.0f) {
          bit_identical = false;
        }
      }
      server.shutdown();
    }
  }
  std::printf("phase 1: heterogeneous logits bit-identical to run(): %s\n",
              bit_identical ? "yes" : "NO");

  // ---- Phase 2: aggregate throughput vs sum of device speeds --------------
  const std::size_t requests = bench::quick_mode() ? 120 : 240;
  const double baseline_rps =
      static_cast<double>(requests) /
      run_throughput(qnet, accel, images, {1.0}, requests);

  util::TablePrinter scaling("Heterogeneous scaling, paced closed loop (" +
                             std::to_string(requests) + " kBatch requests)");
  scaling.set_header({"placement", "total speed", "throughput (req/s)",
                      "speedup vs 1x", "efficiency"});
  scaling.add_row({"{1x}", "1.0", util::fmt_fixed(baseline_rps, 1), "1.00x",
                   "1.00"});
  std::vector<double> speedups, efficiencies, totals;
  for (const std::vector<double>& speeds : mixes) {
    double total = 0.0;
    for (const double speed : speeds) total += speed;
    const double rps =
        static_cast<double>(requests) /
        run_throughput(qnet, accel, images, speeds, requests);
    const double speedup = rps / baseline_rps;
    speedups.push_back(speedup);
    efficiencies.push_back(speedup / total);
    totals.push_back(total);
    scaling.add_row({placement_label(speeds), util::fmt_fixed(total, 1),
                     util::fmt_fixed(rps, 1),
                     util::fmt_fixed(speedup, 2) + "x",
                     util::fmt_fixed(speedup / total, 2)});
  }
  scaling.print();

  // ---- Phase 3: normalized vs speed-blind routing on {1x, 4x} -------------
  const std::int64_t p99_normalized = run_overload_tail(
      qnet, accel, images, serve::RoutingPolicy::kNormalizedWork);
  const std::int64_t p99_blind = run_overload_tail(
      qnet, accel, images, serve::RoutingPolicy::kOutstandingCount);
  const double routing_improvement =
      p99_normalized > 0 ? static_cast<double>(p99_blind) /
                               static_cast<double>(p99_normalized)
                         : 0.0;
  std::printf("phase 3: interactive p99 under overload on {1x,4x}: "
              "%s %lld us, %s %lld us (%.2fx better)\n",
              serve::routing_policy_name(
                  serve::RoutingPolicy::kNormalizedWork),
              static_cast<long long>(p99_normalized),
              serve::routing_policy_name(
                  serve::RoutingPolicy::kOutstandingCount),
              static_cast<long long>(p99_blind), routing_improvement);

  // ---- Report + acceptance ------------------------------------------------
  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"ablation_hetero\",\n"
       << "  \"paced_sample_us_1x\": " << kTargetSampleUs << ",\n"
       << "  \"requests\": " << requests << ",\n"
       << "  \"bit_identical\": " << (bit_identical ? "true" : "false")
       << ",\n"
       << "  \"baseline_rps_1x\": " << baseline_rps << ",\n"
       << "  \"speedup_1x_2x\": " << speedups[0] << ",\n"
       << "  \"speedup_1x_1x_4x\": " << speedups[1] << ",\n"
       << "  \"efficiency_1x_2x\": " << efficiencies[0] << ",\n"
       << "  \"efficiency_1x_1x_4x\": " << efficiencies[1] << ",\n"
       << "  \"interactive_p99_us\": {\""
       << serve::routing_policy_name(serve::RoutingPolicy::kNormalizedWork)
       << "\": " << p99_normalized << ", \""
       << serve::routing_policy_name(serve::RoutingPolicy::kOutstandingCount)
       << "\": " << p99_blind << "},\n"
       << "  \"routing_p99_improvement\": " << routing_improvement << "\n"
       << "}\n";
  json.flush();
  if (!json) {
    std::fprintf(stderr, "error: could not write %s\n", json_path);
    return 1;
  }
  std::printf("wrote %s\n", json_path);

  if (!bit_identical) {
    std::printf("FAIL: heterogeneous logits diverged from per-sample "
                "run()\n");
    return 1;
  }
  // >= 0.85x the sum of device speeds for every mix; for {1x, 2x} the 2.55x
  // floor also covers the >= 2.5x acceptance bar.
  for (std::size_t i = 0; i < speedups.size(); ++i) {
    const double floor = 0.85 * totals[i];
    if (speedups[i] < floor) {
      std::printf("FAIL: %s aggregate throughput %.2fx one 1x replica, need "
                  ">= %.2fx (0.85 x total speed %.1f)\n",
                  placement_label(mixes[i]).c_str(), speedups[i], floor,
                  totals[i]);
      return 1;
    }
  }
  if (p99_normalized >= p99_blind) {
    std::printf("FAIL: normalized routing did not beat speed-blind routing "
                "on interactive p99 under overload\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
