// Trace-overhead ablation: the observability stack (request-lifecycle
// tracing + per-layer profiling) must be effectively free.
//
// Three phases on one paced single-model deployment:
//  1. baseline — closed-loop interactive bursts with tracing disabled;
//     records the e2e p99 (best of several alternated runs: paced bursts
//     make the p99 deterministic, and the per-phase minimum filters host
//     scheduler noise so the ratio isolates tracing's systematic cost);
//  2. traced — the *same* workload with the global TraceRecorder enabled
//     (every span/instant/counter site live) and the per-layer profilers
//     accumulating. Acceptance: traced p99 <= 1.05x the baseline p99, and
//     every traced response's logits stay bit-identical to
//     AcceleratorExecutor::run() — observability can never perturb results;
//  3. reconciliation — the accumulated per-layer profile's cycle numbers
//     must reconcile *exactly* (integer ==) with an independently computed
//     hw::count_cycles() of the same workload: per-sample row sum ==
//     CycleReport::total_cycles, accumulated total == samples x per-sample,
//     samples == completed requests.
//
// Emits a JSON fragment (path = argv[1], default
// ./BENCH_trace_overhead.json); scripts/run_bench.sh folds it into
// BENCH_serve.json. Also writes the captured trace (argv[1] + ".trace.json",
// Chrome trace-event format — load at https://ui.perfetto.dev) and a
// Prometheus metrics dump (argv[1] + ".metrics.txt"); CI validates both.
// Exits nonzero when any phase fails. MFDFP_QUICK=1 shrinks request counts.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "hw/layer_profile.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "util/latency_histogram.hpp"
#include "util/table.hpp"

namespace {

using namespace mfdfp;
using tensor::Shape;
using tensor::Tensor;

hw::QNetDesc make_qnet(std::uint64_t seed) {
  util::Rng rng{seed};
  nn::ZooConfig config;
  config.in_channels = 3;
  config.in_h = config.in_w = 16;
  config.num_classes = 5;
  config.width_multiplier = 0.2f;
  nn::Network net = nn::make_mlp(config, 12, rng);
  Tensor calibration{Shape{8, 3, 16, 16}};
  calibration.fill_uniform(rng, -1.0f, 1.0f);
  const quant::QuantSpec spec = quant::quantize_network(net, calibration);
  return hw::extract_qnet(net, spec, "mlp");
}

/// Per-sample modeled cost, microseconds. Paced execution makes latencies
/// track this deterministic budget, so the 5% overhead bound compares
/// pacing-dominated tails — not host-scheduler noise — against tracing's
/// nanoseconds-per-event cost.
constexpr double kTargetSampleUs = 400.0;
/// Requests per closed-loop burst: the burst's tail request waits out
/// kBurst x kTargetSampleUs of deterministic pacing (~13 ms), so the p99 is
/// two orders of magnitude above scheduler jitter and the 5% bound compares
/// systematic cost, not noise.
constexpr std::size_t kBurst = 32;

serve::DeployConfig deploy_config(const hw::AcceleratorConfig& accel) {
  serve::DeployConfig config;
  config.in_c = 3;
  config.in_h = config.in_w = 16;
  config.max_batch = 8;
  config.max_wait_us = 500;
  config.queue_capacity = 8192;
  config.paced_execution = true;  // workers forced to 1
  config.accel = accel;
  return config;
}

struct PhaseResult {
  std::int64_t p99_us = 0;
  std::uint64_t completed = 0;
  bool bit_identical = true;
};

/// Closed-loop interactive burst workload against a fresh deployment;
/// identical for the traced and untraced phases: `rounds` bursts of kBurst
/// back-to-back submissions, each burst awaited before the next starts.
/// Logits are checked bit-exactly against the per-image `expected`
/// references. When `profile_out`/`metrics_out` are non-null the
/// accumulated layer profile and a metrics dump are read back before
/// shutdown.
PhaseResult run_phase(const hw::QNetDesc& qnet,
                      const hw::AcceleratorConfig& accel, const Tensor& images,
                      const std::vector<Tensor>& expected, std::size_t rounds,
                      hw::LayerProfile* profile_out,
                      std::string* metrics_out) {
  serve::ModelServer server;
  server.deploy("cnn", {qnet}, deploy_config(accel));

  serve::SubmitOptions options;
  options.priority = serve::Priority::kInteractive;
  options.deadline_us = 0;

  const std::size_t pool = images.shape().n();
  PhaseResult result;
  util::LatencyHistogram e2e;
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(kBurst);
  for (std::size_t round = 0; round < rounds; ++round) {
    futures.clear();
    for (std::size_t i = 0; i < kBurst; ++i) {
      const std::size_t img = (round * kBurst + i) % pool;
      futures.push_back(server.submit(
          "cnn", tensor::slice_outer(images, img, img + 1), options));
    }
    for (std::size_t i = 0; i < kBurst; ++i) {
      const serve::Response response = futures[i].get();
      if (!serve::ok(response.status)) std::abort();
      e2e.record(response.e2e_us);
      ++result.completed;
      const std::size_t img = (round * kBurst + i) % pool;
      if (tensor::max_abs_diff(response.logits, expected[img]) != 0.0f) {
        result.bit_identical = false;
      }
    }
  }
  result.p99_us = e2e.p99();

  if (profile_out != nullptr) {
    const std::vector<hw::LayerProfile> profiles =
        server.engine("cnn")->layer_profiles();
    if (profiles.empty()) std::abort();
    *profile_out = profiles.front();
  }
  if (metrics_out != nullptr) *metrics_out = server.export_metrics();
  server.shutdown();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      argc > 1 ? argv[1] : "BENCH_trace_overhead.json";
  const std::string trace_path = json_path + ".trace.json";
  const std::string metrics_path = json_path + ".metrics.txt";

  const hw::QNetDesc qnet = make_qnet(61);
  util::Rng rng{62};
  Tensor images{Shape{32, 3, 16, 16}};
  images.fill_uniform(rng, -1.0f, 1.0f);

  // Scale the modeled clock so one sample costs ~kTargetSampleUs.
  hw::AcceleratorConfig accel;
  {
    serve::ModelServer probe;
    serve::DeployConfig config;
    config.in_c = 3;
    config.in_h = config.in_w = 16;
    probe.deploy("probe", {qnet}, config);
    const double native_us = probe.engine("probe")->simulated_sample_us();
    probe.shutdown();
    accel.clock_hz *= native_us / kTargetSampleUs;
  }

  // Bit-exact per-image references (the datapath-faithful path).
  const hw::AcceleratorExecutor ref(qnet);
  std::vector<Tensor> expected;
  expected.reserve(images.shape().n());
  for (std::size_t i = 0; i < images.shape().n(); ++i) {
    expected.push_back(ref.run(tensor::slice_outer(images, i, i + 1)));
  }

  const std::size_t rounds = bench::quick_mode() ? 3 : 6;
  const std::size_t requests = rounds * kBurst;  // per measured run
  // Alternate off/on runs and keep each phase's *minimum* p99: host noise
  // (scheduler hiccups, sleep oversleep) only ever inflates a paced run, so
  // the min per phase converges on that phase's deterministic cost and the
  // ratio isolates tracing's systematic overhead.
  constexpr std::size_t kRepeats = 3;
  obs::TraceRecorder& trace = obs::trace();

  PhaseResult off, on;
  off.p99_us = on.p99_us = std::numeric_limits<std::int64_t>::max();
  off.bit_identical = on.bit_identical = true;
  hw::LayerProfile profile;
  std::string metrics;
  obs::TraceRecorder::Stats trace_stats;
  for (std::size_t rep = 0; rep < kRepeats; ++rep) {
    trace.set_enabled(false);
    const PhaseResult off_run = run_phase(qnet, accel, images, expected,
                                          rounds, nullptr, nullptr);
    off.p99_us = std::min(off.p99_us, off_run.p99_us);
    off.completed += off_run.completed;
    off.bit_identical = off.bit_identical && off_run.bit_identical;

    const bool last = rep + 1 == kRepeats;
    trace.clear();  // quiescent: the previous run's server is shut down
    trace.set_enabled(true);
    const PhaseResult on_run =
        run_phase(qnet, accel, images, expected, rounds,
                  last ? &profile : nullptr, last ? &metrics : nullptr);
    trace.set_enabled(false);
    on.p99_us = std::min(on.p99_us, on_run.p99_us);
    on.completed = on_run.completed;  // the run `profile` accumulated over
    on.bit_identical = on.bit_identical && on_run.bit_identical;
    if (last) trace_stats = trace.stats();
  }

  const double ratio =
      off.p99_us > 0 ? static_cast<double>(on.p99_us) /
                           static_cast<double>(off.p99_us)
                     : 0.0;
  util::TablePrinter overhead(
      "Tracing overhead, closed-loop interactive bursts (" +
      std::to_string(requests) + " requests/run, best of " +
      std::to_string(kRepeats) + " runs, paced " +
      util::fmt_fixed(kTargetSampleUs, 0) + " us/sample)");
  overhead.set_header({"phase", "e2e p99 (us)", "events recorded"});
  overhead.add_row({"tracing off", std::to_string(off.p99_us), "0"});
  overhead.add_row({"tracing on", std::to_string(on.p99_us),
                    std::to_string(trace_stats.recorded)});
  overhead.print();

  // ---- Phase 3: exact layer-profile reconciliation -----------------------
  const std::vector<hw::LayerWork> work =
      hw::workload_from_qnet(qnet, 3, 16, 16);
  const hw::CycleReport cycles = hw::count_cycles(work, accel);
  std::uint64_t row_sum = 0, row_total_sum = 0;
  for (const hw::LayerProfileRow& row : profile.rows) {
    row_sum += row.cycles_per_sample;
    row_total_sum += row.cycles_total;
  }
  const bool reconciled =
      profile.cycles_per_sample_total == cycles.total_cycles &&
      row_sum == cycles.total_cycles &&
      profile.cycles_total == profile.samples * cycles.total_cycles &&
      row_total_sum == profile.cycles_total &&
      profile.samples == on.completed && profile.passes > 0;
  std::printf("layer profile: %llu samples over %llu passes, "
              "%llu cycles/sample (CycleModel says %llu) — %s\n",
              static_cast<unsigned long long>(profile.samples),
              static_cast<unsigned long long>(profile.passes),
              static_cast<unsigned long long>(profile.cycles_per_sample_total),
              static_cast<unsigned long long>(cycles.total_cycles),
              reconciled ? "exact" : "MISMATCH");
  std::fputs(hw::render_layer_profile_table(profile, "cnn").c_str(), stdout);

  // ---- Artifacts ----------------------------------------------------------
  if (!trace.write_chrome_json(trace_path)) {
    std::fprintf(stderr, "error: could not write %s\n", trace_path.c_str());
    return 1;
  }
  std::ofstream metrics_file(metrics_path);
  metrics_file << metrics;
  metrics_file.flush();
  if (!metrics_file) {
    std::fprintf(stderr, "error: could not write %s\n", metrics_path.c_str());
    return 1;
  }
  std::printf("wrote %s and %s\n", trace_path.c_str(), metrics_path.c_str());

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"ablation_trace_overhead\",\n"
       << "  \"paced_sample_us\": " << kTargetSampleUs << ",\n"
       << "  \"requests\": " << requests << ",\n"
       << "  \"p99_off_us\": " << off.p99_us << ",\n"
       << "  \"p99_on_us\": " << on.p99_us << ",\n"
       << "  \"p99_ratio\": " << ratio << ",\n"
       << "  \"p99_ratio_bound\": 1.05,\n"
       << "  \"trace_events_recorded\": " << trace_stats.recorded << ",\n"
       << "  \"trace_events_dropped\": " << trace_stats.dropped << ",\n"
       << "  \"bit_identical\": "
       << (off.bit_identical && on.bit_identical ? "true" : "false") << ",\n"
       << "  \"profile_samples\": " << profile.samples << ",\n"
       << "  \"profile_cycles_per_sample\": "
       << profile.cycles_per_sample_total << ",\n"
       << "  \"cycle_model_total\": " << cycles.total_cycles << ",\n"
       << "  \"profile_reconciled\": " << (reconciled ? "true" : "false")
       << "\n"
       << "}\n";
  json.flush();
  if (!json) {
    std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());

  if (!off.bit_identical || !on.bit_identical) {
    std::printf("FAIL: served logits diverged from run() "
                "(tracing must never perturb results)\n");
    return 1;
  }
  if (trace_stats.recorded == 0) {
    std::printf("FAIL: tracing was enabled but recorded no events\n");
    return 1;
  }
  if (off.p99_us > 0 && ratio > 1.05) {
    std::printf("FAIL: tracing-on p99 is %.3fx tracing-off (%lld vs %lld "
                "us), need <= 1.05x\n",
                ratio, static_cast<long long>(on.p99_us),
                static_cast<long long>(off.p99_us));
    return 1;
  }
  if (!reconciled) {
    std::printf("FAIL: layer profile does not reconcile exactly with "
                "hw::count_cycles\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
