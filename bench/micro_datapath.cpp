// Micro-benchmarks (google-benchmark) of the neuron datapath models and the
// quantization codecs. These measure the *simulator*, not silicon — their
// role is to document the relative cost of the bit-accurate shift datapath
// vs the float reference path, and to keep codec hot paths fast.
#include <benchmark/benchmark.h>

#include "hw/datapath.hpp"
#include "hw/executor.hpp"
#include "quant/dfp.hpp"
#include "quant/pow2.hpp"
#include "util/rng.hpp"

namespace {

using namespace mfdfp;

void BM_ShiftNeuronTile(benchmark::State& state) {
  util::Rng rng{1};
  std::vector<std::int8_t> inputs(16);
  std::vector<quant::Pow2Weight> weights(16);
  for (int i = 0; i < 16; ++i) {
    inputs[i] = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
    weights[i] = quant::Pow2Weight{
        rng.bernoulli(0.5), static_cast<int>(rng.uniform_int(-7, 0))};
  }
  std::int64_t products[16];
  for (auto _ : state) {
    for (int i = 0; i < 16; ++i) {
      products[i] = hw::synapse_product(inputs[i], weights[i]);
    }
    benchmark::DoNotOptimize(hw::adder_tree({products, 16}));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_ShiftNeuronTile);

void BM_FloatNeuronTile(benchmark::State& state) {
  util::Rng rng{2};
  std::vector<float> inputs(16), weights(16);
  for (int i = 0; i < 16; ++i) {
    inputs[i] = rng.uniform_f(-1.0f, 1.0f);
    weights[i] = rng.uniform_f(-1.0f, 1.0f);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(hw::float_neuron(inputs, weights, 0.1f));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_FloatNeuronTile);

void BM_AccumulateAndRoute(benchmark::State& state) {
  for (auto _ : state) {
    hw::AccumulatorRouting acc(7, 4, 12);
    for (int t = 0; t < 8; ++t) acc.accumulate(1000 * t - 3500);
    benchmark::DoNotOptimize(acc.route());
  }
}
BENCHMARK(BM_AccumulateAndRoute);

void BM_DfpEncodeTensor(benchmark::State& state) {
  util::Rng rng{3};
  tensor::Tensor src{tensor::Shape{1024}};
  src.fill_normal(rng, 0.0f, 2.0f);
  tensor::Tensor dst{src.shape()};
  const quant::DfpFormat format{8, 4};
  for (auto _ : state) {
    quant::quantize_tensor(format, src, dst);
    benchmark::DoNotOptimize(dst.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_DfpEncodeTensor);

void BM_Pow2QuantizeTensor(benchmark::State& state) {
  util::Rng rng{4};
  tensor::Tensor src{tensor::Shape{1024}};
  src.fill_normal(rng, 0.0f, 0.3f);
  tensor::Tensor dst{src.shape()};
  for (auto _ : state) {
    quant::quantize_tensor_pow2(src, dst);
    benchmark::DoNotOptimize(dst.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_Pow2QuantizeTensor);

void BM_PackUnpackPow2(benchmark::State& state) {
  util::Rng rng{5};
  tensor::Tensor weights{tensor::Shape{4096}};
  weights.fill_normal(rng, 0.0f, 0.3f);
  for (auto _ : state) {
    const auto packed = quant::pack_pow2(weights);
    benchmark::DoNotOptimize(quant::unpack_pow2(packed, 4096));
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_PackUnpackPow2);

void BM_CodeTensorEncode(benchmark::State& state) {
  util::Rng rng{6};
  tensor::Tensor values{tensor::Shape{1, 3, 16, 16}};
  values.fill_uniform(rng, -1.0f, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hw::CodeTensor::encode(values, 7));
  }
}
BENCHMARK(BM_CodeTensorEncode);

}  // namespace

BENCHMARK_MAIN();
