// Deploy-time compiler ablation: what each pass of src/compile buys on a
// conv-heavy network, against the uncompiled AcceleratorExecutor::run_batch
// path that PR 5 measured 6x over per-sample run().
//
// Two phases:
//  1. correctness — the compiled plan's logits must be bit-identical to
//     run() and run_batch() on the same deployment image, for the full
//     pipeline AND every ablated variant (fusion off, specialization off,
//     strategy forced both ways). Fusion / im2col / specialization only
//     reorder exact integer arithmetic, so any diff is a bug;
//  2. throughput — single-core batch throughput (min-of-repeats wall time)
//     of each variant vs run_batch on the same thread. The full pipeline
//     must reach >= 1.15x; the per-pass rows quantify where the win comes
//     from (the ablation knobs of CompileOptions / DeployConfig.compile).
//
// Emits a JSON fragment (path = argv[1], default ./BENCH_compile.json);
// scripts/run_bench.sh folds it into BENCH_serve.json next to the git SHA.
// Exits nonzero when bit-identity or the speedup floor fails. MFDFP_QUICK=1
// shrinks batch size and repeat count.
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "compile/passes.hpp"
#include "compile/plan_executor.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace mfdfp;
using tensor::Shape;
using tensor::Tensor;

constexpr std::size_t kInC = 3, kInH = 32, kInW = 32;

/// Conv-heavy deployment image: the paper's CIFAR-10 topology at full width
/// on 3x32x32 inputs (untrained weights — throughput and bit-identity do
/// not care about accuracy).
hw::QNetDesc make_qnet(std::uint64_t seed) {
  util::Rng rng{seed};
  nn::ZooConfig config;
  config.in_channels = kInC;
  config.in_h = kInH;
  config.in_w = kInW;
  config.num_classes = 10;
  config.width_multiplier = 1.0f;
  nn::Network net = nn::make_cifar10_net(config, rng);
  Tensor calibration{Shape{8, kInC, kInH, kInW}};
  calibration.fill_uniform(rng, -1.0f, 1.0f);
  const quant::QuantSpec spec = quant::quantize_network(net, calibration);
  return hw::extract_qnet(net, spec, "cifar10");
}

struct Variant {
  std::string name;
  std::string json_key;
  compile::CompileOptions options;
};

std::vector<Variant> make_variants() {
  std::vector<Variant> variants;
  variants.push_back({"full pipeline", "compiled", {}});
  Variant no_fuse{"fusion off", "fusion_off", {}};
  no_fuse.options.fuse = false;
  variants.push_back(no_fuse);
  Variant no_spec{"specialization off", "specialize_off", {}};
  no_spec.options.specialize = false;
  variants.push_back(no_spec);
  Variant im2col{"strategy forced im2col", "force_im2col", {}};
  im2col.options.strategy = compile::ConvStrategy::kForceIm2col;
  variants.push_back(im2col);
  Variant direct{"strategy forced direct", "force_direct", {}};
  direct.options.strategy = compile::ConvStrategy::kForceDirect;
  variants.push_back(direct);
  return variants;
}

/// Min-of-repeats single-thread wall time for one callable, seconds.
template <typename Fn>
double min_seconds(std::size_t repeats, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < repeats; ++r) {
    util::Stopwatch watch;
    fn();
    best = std::min(best, watch.seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_compile.json";
  const std::size_t batch = bench::quick_mode() ? 8 : 32;
  const std::size_t repeats = bench::quick_mode() ? 3 : 7;

  const hw::QNetDesc desc = make_qnet(117);
  util::Rng rng{118};
  Tensor images{Shape{batch, kInC, kInH, kInW}};
  images.fill_uniform(rng, -1.0f, 1.0f);

  const hw::AcceleratorExecutor executor(desc);

  // ---- Phase 1: bit-identity of every variant -----------------------------
  const Tensor reference = executor.run(images);
  hw::ExecScratch legacy_scratch;
  const Tensor batched = executor.run_batch(images, legacy_scratch);
  bool bit_identical =
      tensor::max_abs_diff(reference, batched) == 0.0f;

  const std::vector<Variant> variants = make_variants();
  std::vector<std::shared_ptr<const compile::CompiledPlan>> plans;
  for (const Variant& variant : variants) {
    plans.push_back(
        compile::compile_qnet(desc, kInC, kInH, kInW, variant.options));
    hw::ExecScratch scratch;
    const Tensor logits = compile::run_plan_batch(*plans.back(), images,
                                                  scratch);
    const float diff = tensor::max_abs_diff(logits, reference);
    if (diff != 0.0f) {
      bit_identical = false;
      std::printf("DIVERGED: %s (max|diff| %g)\n", variant.name.c_str(),
                  diff);
    }
  }
  std::printf("phase 1: compiled logits bit-identical to run()/run_batch() "
              "across %zu variants: %s\n",
              variants.size(), bit_identical ? "yes" : "NO");

  // ---- Phase 2: single-core batch throughput ------------------------------
  // Warm (weights/tables already resident), one thread, min over repeats.
  const double legacy_s = min_seconds(repeats, [&] {
    hw::ExecScratch scratch;
    (void)executor.run_batch(images, scratch);
  });
  const double legacy_rps = static_cast<double>(batch) / legacy_s;

  util::TablePrinter table("Compiled-plan batch throughput, one core (" +
                           std::to_string(batch) + "-sample batch, min of " +
                           std::to_string(repeats) + " repeats)");
  table.set_header({"variant", "steps", "fused", "im2col",
                    "throughput (samples/s)", "speedup vs run_batch"});
  table.add_row({"uncompiled run_batch", "-", "-", "-",
                 util::fmt_fixed(legacy_rps, 1), "1.00x"});

  std::vector<double> speedups;
  for (std::size_t v = 0; v < variants.size(); ++v) {
    const auto& plan = *plans[v];
    const double seconds = min_seconds(repeats, [&] {
      hw::ExecScratch scratch;
      (void)compile::run_plan_batch(plan, images, scratch);
    });
    const double rps = static_cast<double>(batch) / seconds;
    speedups.push_back(rps / legacy_rps);
    table.add_row(
        {variants[v].name, std::to_string(plan.stats.steps),
         std::to_string(plan.stats.fused_relu + plan.stats.fused_pool),
         std::to_string(plan.stats.im2col), util::fmt_fixed(rps, 1),
         util::fmt_fixed(speedups.back(), 2) + "x"});
  }
  table.print();

  const double compiled_speedup = speedups.front();  // full pipeline row

  // ---- Report + acceptance ------------------------------------------------
  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"ablation_compile\",\n"
       << "  \"batch\": " << batch << ",\n"
       << "  \"repeats\": " << repeats << ",\n"
       << "  \"bit_identical\": " << (bit_identical ? "true" : "false")
       << ",\n"
       << "  \"rps_run_batch\": " << legacy_rps << ",\n"
       << "  \"speedup_compiled\": " << speedups[0] << ",\n"
       << "  \"speedup_fusion_off\": " << speedups[1] << ",\n"
       << "  \"speedup_specialize_off\": " << speedups[2] << ",\n"
       << "  \"speedup_force_im2col\": " << speedups[3] << ",\n"
       << "  \"speedup_force_direct\": " << speedups[4] << "\n"
       << "}\n";
  json.flush();
  if (!json) {
    std::fprintf(stderr, "error: could not write %s\n", json_path);
    return 1;
  }
  std::printf("wrote %s\n", json_path);

  if (!bit_identical) {
    std::printf("FAIL: a compiled variant diverged from the uncompiled "
                "executor\n");
    return 1;
  }
  if (compiled_speedup < 1.15) {
    std::printf("FAIL: full pipeline reached %.2fx single-core batch "
                "throughput over run_batch, need >= 1.15x\n",
                compiled_speedup);
    return 1;
  }
  std::printf("PASS (%.2fx)\n", compiled_speedup);
  return 0;
}
