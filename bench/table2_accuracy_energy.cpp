// Reproduces paper Table 2: classification accuracy, inference time, energy
// and energy saving for the floating-point design, a single MF-DFP network,
// and an ensemble of two MF-DFP networks, on both benchmarks.
//
// Absolute accuracies come from our synthetic datasets (see DESIGN.md
// substitutions); the *shape* reproduces the paper:
//   - MF-DFP within ~1 point of float accuracy,
//   - ensemble >= float accuracy,
//   - times nearly identical, energy savings ~90 % / ~80 %.
// Times/energies are also cross-checked against the paper's actual network
// workloads (cuda-convnet CIFAR-10, AlexNet), where our cycle model must
// land near 246 us / 15666 us.
//
// Paper reference rows:
//   CIFAR-10 : 81.53 / 80.77 / 82.61 %, 246.52/246.27/246.27 us,
//              335.68 / 34.22 / 66.56 uJ, 0 / 89.81 / 80.17 %
//   ImageNet : 56.95 / 56.16 / 57.57 top-1, 15666 us scale,
//              21332 / 2177 / 4234 uJ, 0 / 89.80 / 80.15 %
#include <cstdio>

#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace mfdfp;

struct DesignRow {
  std::string precision;
  double top1 = 0.0, top5 = 0.0;
  double time_us = 0.0, energy_uj = 0.0, saving_pct = 0.0;
};

void run_benchmark(const bench::BenchmarkSpec& spec, util::CsvWriter& csv) {
  util::Stopwatch watch;
  std::printf("== %s ==\n", spec.name.c_str());
  const data::DatasetPair ds = data::make_synthetic(spec.data);

  // Float baseline + two independently trained nets for the ensemble.
  nn::Network float_net = bench::train_float(spec, ds, 1);
  const nn::EvalResult float_eval =
      nn::evaluate(float_net, ds.test.images, ds.test.labels);

  core::MfDfpConverter converter(bench::converter_config(spec, 7));
  core::ConversionResult single =
      converter.convert(float_net, ds.train, ds.test);
  const tensor::Tensor qtest =
      quant::quantize_input(single.spec, ds.test.images);
  const nn::EvalResult mf_eval =
      nn::evaluate(single.network, qtest, ds.test.labels);

  // Ensemble member 2 from a different starting float net (Phase 3).
  nn::Network float_net2 = bench::train_float(spec, ds, 2);
  core::MfDfpConverter converter2(bench::converter_config(spec, 8));
  core::ConversionResult member2 =
      converter2.convert(float_net2, ds.train, ds.test);
  std::vector<nn::Network*> members{&single.network, &member2.network};
  const nn::EvalResult ens_eval =
      nn::evaluate_ensemble(members, qtest, ds.test.labels);

  // Bit-exactness spot check of the deployment path on a test sample.
  const hw::QNetDesc qnet = hw::extract_qnet(single.network, single.spec);
  const hw::AcceleratorExecutor executor(qnet);
  const tensor::Tensor sample = tensor::slice_outer(ds.test.images, 0, 32);
  const float hw_diff = tensor::max_abs_diff(
      executor.run(sample),
      single.network.forward(quant::quantize_input(single.spec, sample),
                             nn::Mode::kEval));

  // Hardware latency/energy from the cycle + cost models.
  const auto work = hw::workload_from_qnet(qnet, spec.data.channels,
                                           spec.data.height, spec.data.width);
  const hw::AcceleratorConfig fp_cfg = hw::float_baseline_config();
  const hw::AcceleratorConfig mf_cfg = hw::mfdfp_config(1);
  const hw::AcceleratorConfig ens_cfg = hw::mfdfp_config(2);
  const hw::CycleReport fp_cycles = hw::count_cycles(work, fp_cfg);
  const hw::CycleReport mf_cycles = hw::count_cycles(work, mf_cfg);
  // Ensemble: one member per PU, concurrent -> single-network latency.
  const hw::CycleReport ens_cycles = mf_cycles;

  const double e_fp = hw::energy_uj(fp_cycles, fp_cfg);
  const double e_mf = hw::energy_uj(mf_cycles, mf_cfg);
  const double e_ens = hw::energy_uj(ens_cycles, ens_cfg);

  std::vector<DesignRow> rows{
      {"Floating-Point (32,32)", float_eval.top1, float_eval.top5,
       fp_cycles.microseconds(fp_cfg), e_fp, 0.0},
      {"MF-DFP (8,4)", mf_eval.top1, mf_eval.top5,
       mf_cycles.microseconds(mf_cfg), e_mf, 100.0 * hw::saving(e_fp, e_mf)},
      {"Ensemble MF-DFP", ens_eval.top1, ens_eval.top5,
       ens_cycles.microseconds(ens_cfg), e_ens,
       100.0 * hw::saving(e_fp, e_ens)},
  };

  util::TablePrinter table("Table 2 (" + spec.name + ")");
  table.set_header({"Precision", "Accuracy (%)", "Time (us)", "Energy (uJ)",
                    "Energy Saving (%)"});
  for (const DesignRow& row : rows) {
    const std::string acc =
        util::fmt_fixed(100.0 * row.top1, 2) +
        (spec.alexnet ? " (" + util::fmt_fixed(100.0 * row.top5, 2) + ")"
                      : "");
    table.add_row({row.precision, acc, util::fmt_fixed(row.time_us, 2),
                   util::fmt_fixed(row.energy_uj, 2),
                   util::fmt_fixed(row.saving_pct, 2)});
    csv.add_row({spec.name, row.precision,
                 util::fmt_fixed(100.0 * row.top1, 3),
                 util::fmt_fixed(100.0 * row.top5, 3),
                 util::fmt_fixed(row.time_us, 3),
                 util::fmt_fixed(row.energy_uj, 3),
                 util::fmt_fixed(row.saving_pct, 3)});
  }
  table.print();
  std::printf(
      "accelerator-vs-software logit max|diff| on 32 images: %g (bit-exact "
      "expected)\n",
      hw_diff);
  std::printf("wall-clock for this benchmark: %.1fs\n\n", watch.seconds());
}

void paper_scale_cross_check() {
  std::printf("== Paper-scale workload cross-check (absolute times) ==\n");
  util::TablePrinter table("");
  table.set_header({"Workload", "Time (us)", "Paper (us)", "Energy FP (uJ)",
                    "Energy MF (uJ)", "Saving (%)"});
  const hw::AcceleratorConfig fp_cfg = hw::float_baseline_config();
  const hw::AcceleratorConfig mf_cfg = hw::mfdfp_config(1);
  struct Case {
    const char* name;
    std::vector<hw::LayerWork> work;
    double paper_us;
  };
  const std::vector<Case> cases{
      {"cuda-convnet CIFAR-10", hw::paper_cifar10_workload(), 246.27},
      {"AlexNet ImageNet", hw::paper_imagenet_workload(), 15666.06},
  };
  for (const Case& c : cases) {
    const hw::CycleReport mf = hw::count_cycles(c.work, mf_cfg);
    const hw::CycleReport fp = hw::count_cycles(c.work, fp_cfg);
    const double e_fp = hw::energy_uj(fp, fp_cfg);
    const double e_mf = hw::energy_uj(mf, mf_cfg);
    table.add_row({c.name, util::fmt_fixed(mf.microseconds(mf_cfg), 2),
                   util::fmt_fixed(c.paper_us, 2),
                   util::fmt_fixed(e_fp, 2), util::fmt_fixed(e_mf, 2),
                   util::fmt_percent(hw::saving(e_fp, e_mf))});
  }
  table.print();
}

}  // namespace

int main() {
  util::set_log_level(util::LogLevel::kWarn);
  util::CsvWriter csv({"benchmark", "precision", "top1", "top5", "time_us",
                       "energy_uj", "saving_pct"});
  run_benchmark(bench::cifar_benchmark(), csv);
  run_benchmark(bench::imagenet_benchmark(), csv);
  paper_scale_cross_check();
  if (csv.write_file("table2_results.csv")) {
    std::printf("\nwrote table2_results.csv\n");
  }
  return 0;
}
