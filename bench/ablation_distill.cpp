// Ablation C: sensitivity of Phase-2 student-teacher fine-tuning to the
// temperature tau and weight beta (paper uses tau=20, beta=0.2), plus the
// exact-vs-approximate (Eq. 2) gradient comparison.
#include <cstdio>

#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace mfdfp;
  util::set_log_level(util::LogLevel::kWarn);

  bench::BenchmarkSpec spec = bench::cifar_benchmark();
  const data::DatasetPair ds = data::make_synthetic(spec.data);
  const nn::Network float_net = bench::train_float(spec, ds, 1);

  util::TablePrinter table("Ablation: Phase-2 tau/beta grid (final error)");
  table.set_header({"tau", "beta=0.05", "beta=0.2", "beta=1.0"});
  util::CsvWriter csv({"tau", "beta", "final_error"});

  for (float tau : {1.0f, 5.0f, 20.0f}) {
    std::vector<std::string> row{util::fmt_fixed(tau, 0)};
    for (float beta : {0.05f, 0.2f, 1.0f}) {
      core::ConverterConfig config = bench::converter_config(spec, 9);
      config.tau = tau;
      config.beta = beta;
      core::MfDfpConverter converter(config);
      const core::ConversionResult result =
          converter.convert(float_net, ds.train, ds.test);
      row.push_back(util::fmt_fixed(result.final_error, 4));
      csv.add_row({static_cast<double>(tau), static_cast<double>(beta),
                   result.final_error});
    }
    table.add_row(row);
  }
  table.print();

  // Exact vs paper-Eq.-2 approximate gradient at the paper's setting.
  util::TablePrinter grad("\nExact vs approximate (Eq. 2) soft gradient");
  grad.set_header({"gradient", "final error"});
  for (bool approx : {false, true}) {
    core::ConverterConfig config = bench::converter_config(spec, 9);
    config.approximate_distill_gradient = approx;
    core::MfDfpConverter converter(config);
    const core::ConversionResult result =
        converter.convert(float_net, ds.train, ds.test);
    grad.add_row({approx ? "approximate (Eq. 2)" : "exact",
                  util::fmt_fixed(result.final_error, 4)});
  }
  grad.print();

  if (csv.write_file("ablation_distill.csv")) {
    std::printf("\nwrote ablation_distill.csv\n");
  }
  return 0;
}
