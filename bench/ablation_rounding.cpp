// Ablation A (paper Section 4.1): deterministic vs stochastic quantization
// during fine-tuning. The paper states "we found that deterministic
// quantization gives better performance"; this bench regenerates that
// comparison on the synthetic CIFAR benchmark.
#include <cstdio>

#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
  using namespace mfdfp;
  util::set_log_level(util::LogLevel::kWarn);

  bench::BenchmarkSpec spec = bench::cifar_benchmark();
  const data::DatasetPair ds = data::make_synthetic(spec.data);
  const nn::Network float_net = bench::train_float(spec, ds, 1);
  const float float_error = 1.0f - static_cast<float>(
      nn::evaluate(const_cast<nn::Network&>(float_net), ds.test.images,
                   ds.test.labels)
          .top1);

  util::TablePrinter table("Ablation: rounding mode in Algorithm 1");
  table.set_header({"Rounding", "Final error", "Gap to float (pts)"});
  table.add_row({"float reference", util::fmt_fixed(float_error, 4), "0"});

  for (const auto rounding :
       {quant::Rounding::kDeterministic, quant::Rounding::kStochastic}) {
    core::ConverterConfig config = bench::converter_config(spec, 5);
    config.rounding = rounding;
    core::MfDfpConverter converter(config);
    const core::ConversionResult result =
        converter.convert(float_net, ds.train, ds.test);
    table.add_row(
        {rounding == quant::Rounding::kDeterministic ? "deterministic"
                                                     : "stochastic",
         util::fmt_fixed(result.final_error, 4),
         util::fmt_fixed(100.0 * (result.final_error - float_error), 2)});
  }
  table.print();
  std::printf(
      "\npaper claim: deterministic rounding performs at least as well as "
      "stochastic.\n");
  return 0;
}
