// Ablation B (paper Section 4 motivation): dynamic vs static fixed point
// across activation bit widths, post-training (no fine-tuning).
//
// The paper argues that a *uniform* (static) fixed-point format needs large
// bit widths because ranges vary across layers — "even with 16-bit
// fixed-point, significant accuracy drop is observed" — while *dynamic*
// fixed point (per-layer radix) holds accuracy at 8 bits. This bench sweeps
// both schemes; weights are power-of-two in all configurations.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace mfdfp;

/// Builds a *static* spec: one format, chosen to cover the worst-case range
/// of all layers, applied everywhere.
quant::QuantSpec make_static_spec(const quant::QuantSpec& dynamic_spec,
                                  int bits) {
  float global_max = 0.0f;
  for (float m : dynamic_spec.layer_max_abs) {
    global_max = std::max(global_max, m);
  }
  quant::QuantSpec spec = dynamic_spec;
  const quant::DfpFormat uniform = quant::choose_format(global_max, bits);
  spec.activation_bits = bits;
  spec.input = quant::choose_format(1.0f, bits);
  for (auto& format : spec.layer_output) format = uniform;
  return spec;
}

quant::QuantSpec make_dynamic_spec(const quant::QuantSpec& base, int bits) {
  quant::QuantSpec spec = base;
  spec.activation_bits = bits;
  spec.input = quant::choose_format(1.0f, bits);
  for (std::size_t i = 0; i < spec.layer_output.size(); ++i) {
    spec.layer_output[i] =
        quant::choose_format(spec.layer_max_abs[i], bits);
  }
  return spec;
}

}  // namespace

int main() {
  util::set_log_level(util::LogLevel::kWarn);
  bench::BenchmarkSpec spec = bench::cifar_benchmark();
  const data::DatasetPair ds = data::make_synthetic(spec.data);
  nn::Network float_net = bench::train_float(spec, ds, 1);
  const double float_top1 =
      nn::evaluate(float_net, ds.test.images, ds.test.labels).top1;

  // Range analysis once on the float network.
  const tensor::Tensor calibration =
      tensor::slice_outer(ds.train.images, 0, 128);
  const quant::QuantSpec base =
      quant::analyze_ranges(float_net, calibration, 8);

  util::TablePrinter table(
      "Ablation: post-training accuracy vs activation bits "
      "(float top-1 " + util::fmt_percent(float_top1) + "%)");
  table.set_header({"Bits", "Dynamic FP top-1 (%)", "Static FP top-1 (%)"});
  util::CsvWriter csv({"bits", "dynamic_top1", "static_top1"});

  for (int bits : {4, 5, 6, 8, 10, 12, 16}) {
    double results[2] = {0.0, 0.0};
    for (int variant = 0; variant < 2; ++variant) {
      nn::Network net = float_net.clone();
      const quant::QuantSpec qspec = variant == 0
                                         ? make_dynamic_spec(base, bits)
                                         : make_static_spec(base, bits);
      quant::install_mf_dfp(net, qspec);
      const tensor::Tensor qtest =
          quant::quantize_input(qspec, ds.test.images);
      results[variant] =
          nn::evaluate(net, qtest, ds.test.labels).top1;
    }
    table.add_row({std::to_string(bits), util::fmt_percent(results[0]),
                   util::fmt_percent(results[1])});
    csv.add_row({static_cast<double>(bits), 100.0 * results[0],
                 100.0 * results[1]});
  }
  table.print();
  std::printf(
      "\npaper claim shape: dynamic holds near-float accuracy at 8 bits; "
      "static needs more bits\n(per-layer ranges differ), and no "
      "fine-tuning is applied here so low-bit static collapses.\n");
  if (csv.write_file("ablation_bitwidth.csv")) {
    std::printf("wrote ablation_bitwidth.csv\n");
  }
  return 0;
}
