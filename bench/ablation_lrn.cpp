// Ablation D (paper Section 6.1): "We remove all local response
// normalization layers since they are not amenable to our multiplier-free
// hardware implementation."
//
// This bench quantifies that design decision: it trains the ImageNet-style
// network with and without LRN layers and compares float accuracy, then
// demonstrates that the hardware mapper (extract_qnet) rejects the LRN
// variant — the reason the paper removes them.
#include <cstdio>

#include "bench_common.hpp"
#include "hw/qnet.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/fully_connected.hpp"
#include "nn/lrn.hpp"
#include "nn/pooling.hpp"
#include "util/table.hpp"

namespace {

using namespace mfdfp;

/// alexnet_mini with optional LRN after the first two conv+relu blocks
/// (AlexNet's placement).
nn::Network build(const nn::ZooConfig& config, bool with_lrn,
                  util::Rng& rng) {
  const auto c1 = static_cast<std::size_t>(16 * config.width_multiplier);
  const auto c2 = static_cast<std::size_t>(32 * config.width_multiplier);
  nn::Network net;
  net.add(std::make_unique<nn::Conv2D>(
      nn::Conv2D::Config{config.in_channels, c1, 5, 1, 2}, rng));
  net.add(std::make_unique<nn::ReLU>());
  if (with_lrn) {
    net.add(std::make_unique<nn::LocalResponseNorm>(
        nn::LocalResponseNorm::Config{5, 1e-4f, 0.75f, 2.0f}));
  }
  net.add(std::make_unique<nn::MaxPool2D>(nn::PoolConfig{2, 2, 0}));
  net.add(std::make_unique<nn::Conv2D>(nn::Conv2D::Config{c1, c2, 5, 1, 2},
                                       rng));
  net.add(std::make_unique<nn::ReLU>());
  if (with_lrn) {
    net.add(std::make_unique<nn::LocalResponseNorm>(
        nn::LocalResponseNorm::Config{5, 1e-4f, 0.75f, 2.0f}));
  }
  net.add(std::make_unique<nn::MaxPool2D>(nn::PoolConfig{2, 2, 0}));
  net.add(std::make_unique<nn::Flatten>());
  const tensor::Shape out = net.output_shape(
      tensor::Shape{1, config.in_channels, config.in_h, config.in_w});
  net.add(std::make_unique<nn::FullyConnected>(
      nn::FullyConnected::Config{out.dim(1), config.num_classes}, rng));
  return net;
}

}  // namespace

int main() {
  util::set_log_level(util::LogLevel::kWarn);
  bench::BenchmarkSpec spec = bench::imagenet_benchmark();
  spec.width = 0.5f;
  const data::DatasetPair ds = data::make_synthetic(spec.data);
  const nn::ZooConfig zoo = bench::zoo_config(spec);

  util::TablePrinter table("Ablation: LRN removal (paper Section 6.1)");
  table.set_header({"Variant", "Float top-1 (%)", "HW-mappable"});

  double top1_without = 0.0, top1_with = 0.0;
  for (bool with_lrn : {false, true}) {
    util::Rng rng{31};
    nn::Network net = build(zoo, with_lrn, rng);
    core::FloatTrainConfig config;
    config.max_epochs = bench::quick_mode() ? 4 : 15;
    config.seed = 31;
    core::train_float_network(net, ds.train, ds.test, config);
    const double top1 =
        nn::evaluate(net, ds.test.images, ds.test.labels).top1;

    // Mappability: extraction must succeed without LRN and throw with it.
    bool mappable = true;
    try {
      const tensor::Tensor calibration =
          tensor::slice_outer(ds.train.images, 0, 32);
      nn::Network probe = net.clone();
      const quant::QuantSpec qspec =
          quant::quantize_network(probe, calibration);
      (void)hw::extract_qnet(probe, qspec);
    } catch (const std::invalid_argument&) {
      mappable = false;
    }
    (with_lrn ? top1_with : top1_without) = top1;
    table.add_row({with_lrn ? "with LRN" : "LRN removed (paper)",
                   util::fmt_percent(top1), mappable ? "yes" : "NO (lrn)"});
  }
  table.print();
  std::printf(
      "\nmappability constraint reproduced: the LRN variant cannot be "
      "mapped onto the\nmultiplier-free datapath (extract_qnet rejects it), "
      "which is why the paper removes it.\nAccuracy cost of removal on this "
      "task: %+.2f pts (the paper reports a negligible cost\non its "
      "benchmarks; on this small synthetic task cross-channel "
      "normalization %s).\n",
      100.0 * (top1_without - top1_with),
      top1_with > top1_without + 0.005 ? "does help" : "is not needed");
  return 0;
}
