#include "tensor/im2col.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mfdfp::tensor {
namespace {

TEST(ConvGeometry, OutputDims) {
  ConvGeometry g{3, 8, 8, 3, 3, 1, 1};
  EXPECT_EQ(g.out_h(), 8u);
  EXPECT_EQ(g.out_w(), 8u);
  EXPECT_EQ(g.patch_size(), 27u);
  g.stride = 2;
  g.pad = 0;
  EXPECT_EQ(g.out_h(), 3u);
}

TEST(ConvGeometry, Validity) {
  EXPECT_TRUE((ConvGeometry{1, 4, 4, 2, 2, 1, 0}).valid());
  EXPECT_FALSE((ConvGeometry{1, 2, 2, 5, 5, 1, 0}).valid());  // kernel > in
  EXPECT_TRUE((ConvGeometry{1, 2, 2, 5, 5, 1, 2}).valid());   // pad fixes it
  EXPECT_FALSE((ConvGeometry{0, 4, 4, 2, 2, 1, 0}).valid());
  EXPECT_FALSE((ConvGeometry{1, 4, 4, 2, 2, 0, 0}).valid());
}

TEST(Im2Col, IdentityKernelExtractsPixels) {
  // 1x1 kernel: columns are exactly the flattened image.
  Tensor input{Shape{1, 2, 3, 3}};
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<float>(i);
  }
  const ConvGeometry g{2, 3, 3, 1, 1, 1, 0};
  Tensor columns{Shape{2, 9}};
  im2col(input, 0, g, columns);
  for (std::size_t i = 0; i < input.size(); ++i) {
    EXPECT_EQ(columns[i], input[i]);
  }
}

TEST(Im2Col, PaddingProducesZeros) {
  Tensor input{Shape{1, 1, 2, 2}, {1, 2, 3, 4}};
  const ConvGeometry g{1, 2, 2, 3, 3, 1, 1};
  Tensor columns{Shape{9, 4}};
  im2col(input, 0, g, columns);
  // Top-left output position: kernel centered at (0,0) -> the (0,0) tap is
  // padding except the bottom-right 2x2 region.
  EXPECT_EQ(columns.at2(0, 0), 0.0f);  // tap (-1,-1)
  EXPECT_EQ(columns.at2(4, 0), 1.0f);  // center tap = pixel (0,0)
  EXPECT_EQ(columns.at2(8, 0), 4.0f);  // tap (1,1)
}

TEST(Im2Col, ShapeMismatchThrows) {
  Tensor input{Shape{1, 1, 4, 4}};
  const ConvGeometry g{1, 4, 4, 2, 2, 2, 0};
  Tensor wrong{Shape{4, 3}};
  EXPECT_THROW(im2col(input, 0, g, wrong), std::invalid_argument);
}

TEST(Col2Im, AdjointOfIm2Col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y (exact adjoint pair).
  util::Rng rng{99};
  const ConvGeometry g{2, 5, 6, 3, 3, 2, 1};
  Tensor x{Shape{1, 2, 5, 6}};
  x.fill_normal(rng, 0.0f, 1.0f);
  Tensor cols{Shape{g.patch_size(), g.out_h() * g.out_w()}};
  im2col(x, 0, g, cols);

  Tensor y{cols.shape()};
  y.fill_normal(rng, 0.0f, 1.0f);
  Tensor back{x.shape()};
  col2im(y, 0, g, back);

  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < cols.size(); ++i) lhs += cols[i] * y[i];
  for (std::size_t i = 0; i < x.size(); ++i) rhs += x[i] * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Matmul, SmallKnownProduct) {
  const Tensor a{Shape{2, 3}, {1, 2, 3, 4, 5, 6}};
  const Tensor b{Shape{3, 2}, {7, 8, 9, 10, 11, 12}};
  Tensor c{Shape{2, 2}};
  matmul(a, b, c);
  EXPECT_FLOAT_EQ(c.at2(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at2(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at2(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at2(1, 1), 154.0f);
}

TEST(Matmul, VariantsAgree) {
  util::Rng rng{5};
  Tensor a{Shape{4, 6}}, b{Shape{6, 5}};
  a.fill_normal(rng, 0.0f, 1.0f);
  b.fill_normal(rng, 0.0f, 1.0f);
  Tensor c{Shape{4, 5}};
  matmul(a, b, c);

  // A^T path: at {6,4} transposed equals a.
  Tensor at{Shape{6, 4}};
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 6; ++j) at.at2(j, i) = a.at2(i, j);
  }
  Tensor c_tn{Shape{4, 5}};
  matmul_tn(at, b, c_tn);
  EXPECT_LT(max_abs_diff(c, c_tn), 1e-5f);

  // B^T path.
  Tensor bt{Shape{5, 6}};
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 5; ++j) bt.at2(j, i) = b.at2(i, j);
  }
  Tensor c_nt{Shape{4, 5}};
  matmul_nt(a, bt, c_nt);
  EXPECT_LT(max_abs_diff(c, c_nt), 1e-5f);
}

TEST(Matmul, ShapeChecks) {
  Tensor a{Shape{2, 3}}, b{Shape{4, 2}}, c{Shape{2, 2}};
  EXPECT_THROW(matmul(a, b, c), std::invalid_argument);
  Tensor b_ok{Shape{3, 2}}, c_bad{Shape{3, 2}};
  EXPECT_THROW(matmul(a, b_ok, c_bad), std::invalid_argument);
}

}  // namespace
}  // namespace mfdfp::tensor
